//! Profile-based family expansion — reproducing the *reason* behind the
//! paper's low Table III sensitivities.
//!
//! The GOS benchmark families were built by expanding clustered "core
//! sets" with profile-sequence matching; the paper attributes the low SE
//! of both gpClust and the GOS baseline to exactly this gap: "sequence-
//! sequence based matching is less sensitive comparing to the profile-
//! based matching techniques". This example closes the loop: cluster with
//! gpClust, build a PSSM per cluster, recruit unassigned sequences with
//! profile search, and show the sensitivity jump.
//!
//! Run with: `cargo run --release --example profile_expansion [n_seqs]`

use gpclust::align::profile::{expand_cluster, Pssm};
use gpclust::align::{GapPenalties, SmithWaterman};
use gpclust::core::quality::ConfusionCounts;
use gpclust::core::{GpClust, ShinglingParams};
use gpclust::gpu::{DeviceConfig, Gpu};
use gpclust::graph::Partition;
use gpclust::homology::{graph_from_metagenome, HomologyConfig};
use gpclust::seqsim::metagenome::{Metagenome, MetagenomeConfig};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_500);

    let mg = Metagenome::generate(&MetagenomeConfig::gos_2m_scaled(n, 19));
    let (graph, _) = graph_from_metagenome(&mg, &HomologyConfig::default());
    let benchmark = Partition::from_membership(mg.truth.clone());

    // Step 1: gpClust core sets.
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let pipeline = GpClust::new(ShinglingParams::paper_default(19), gpu).unwrap();
    let cores = pipeline
        .cluster(&graph)
        .expect("cluster")
        .partition
        .filter_min_size(5);
    let before = ConfusionCounts::count(&cores, &benchmark).scores();
    println!(
        "core sets: {} clusters covering {} of {} sequences",
        cores.n_groups(),
        cores.assigned_count(),
        mg.len()
    );
    println!("  before expansion: {before}");

    // Step 2: profile expansion. Build a PSSM per core set; recruit
    // unassigned sequences that clear a conservative per-position score.
    let sw = SmithWaterman::protein_default();
    let gaps = GapPenalties::default();
    let unassigned: Vec<u32> = (0..mg.len() as u32)
        .filter(|&v| cores.group_of(v).is_none())
        .collect();
    let candidates: Vec<&[u8]> = unassigned
        .iter()
        .map(|&v| mg.proteins[v as usize].residues.as_slice())
        .collect();

    let mut membership: Vec<Option<u32>> = cores.membership().to_vec();
    let mut recruited = 0usize;
    for (gid, members) in cores.groups().iter().enumerate() {
        if members.len() < 8 {
            continue; // profiles need enough members to be informative
        }
        let seqs: Vec<&[u8]> = members
            .iter()
            .map(|&v| mg.proteins[v as usize].residues.as_slice())
            .collect();
        let Some(pssm) = Pssm::from_members(&seqs, &sw, 0.5) else {
            continue;
        };
        for idx in expand_cluster(&pssm, &candidates, gaps, 1.0) {
            let v = unassigned[idx] as usize;
            if membership[v].is_none() {
                membership[v] = Some(gid as u32);
                recruited += 1;
            }
        }
    }
    let expanded = Partition::from_membership(membership);
    let after = ConfusionCounts::count(&expanded, &benchmark).scores();
    println!("\nprofile expansion recruited {recruited} additional sequences");
    println!("  after expansion:  {after}");
    println!(
        "\nsensitivity {} from {:.2}% to {:.2}% (PPV {:.2}% -> {:.2}%)",
        if after.se > before.se {
            "rose"
        } else {
            "did not rise"
        },
        before.se * 100.0,
        after.se * 100.0,
        before.ppv * 100.0,
        after.ppv * 100.0
    );
    println!(
        "this is the paper's explanation for Table III's low SE values: the \
         benchmark itself was built with profile matching, which recruits \
         fringe members that sequence-sequence matching cannot."
    );
}
