//! Quickstart: synthesize a small metagenome, build its homology graph,
//! cluster it with gpClust, and score the clusters against the planted
//! protein families.
//!
//! Run with: `cargo run --release --example quickstart`

use gpclust::core::quality::ConfusionCounts;
use gpclust::core::{GpClust, ShinglingParams};
use gpclust::gpu::{DeviceConfig, Gpu};
use gpclust::graph::Partition;
use gpclust::homology::{graph_from_metagenome, HomologyConfig};
use gpclust::seqsim::metagenome::{Metagenome, MetagenomeConfig};

fn main() {
    // 1. Synthesize 1,000 ORFs with planted family structure.
    let mg = Metagenome::generate(&MetagenomeConfig::tiny(1_000, 42));
    println!(
        "generated {} sequences across {} families (+{} noise ORFs)",
        mg.len(),
        mg.n_families,
        mg.n_noise()
    );

    // 2. Build the similarity graph: k-mer filter + Smith-Waterman.
    let (graph, stats) = graph_from_metagenome(&mg, &HomologyConfig::default());
    println!(
        "similarity graph: {} vertices, {} edges ({} candidate pairs aligned)",
        graph.n(),
        graph.m(),
        stats.pairs.n_pairs
    );

    // 3. Cluster with gpClust on a simulated Tesla K20.
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let pipeline = GpClust::new(ShinglingParams::paper_default(42), gpu).unwrap();
    let report = pipeline.cluster(&graph).expect("clustering");
    let clusters = report.partition.filter_min_size(3);
    println!(
        "gpClust found {} clusters (size >= 3) in {:.2}s modeled time \
         ({:.4}s simulated GPU)",
        clusters.n_groups(),
        report.times.total(),
        report.times.gpu
    );

    // 4. Score against the planted families.
    let benchmark = Partition::from_membership(mg.truth.clone());
    let scores = ConfusionCounts::count(&clusters, &benchmark).scores();
    println!("quality vs planted families: {scores}");
}
