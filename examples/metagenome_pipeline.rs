//! Full pipeline from FASTA on disk — the shape of a real metagenomics
//! workflow: sequences arrive as a FASTA file, the homology graph is built
//! and written to disk, and gpClust clusters it from that file (so the
//! Disk I/O stage of Table I is exercised too). Every stage is timed.
//!
//! Run with: `cargo run --release --example metagenome_pipeline [n_seqs]`

use gpclust::core::{GpClust, ShinglingParams};
use gpclust::gpu::{DeviceConfig, Gpu};
use gpclust::homology::{graph_from_fasta, HomologyConfig};
use gpclust::seqsim::metagenome::{Metagenome, MetagenomeConfig};
use gpclust::seqsim::{fasta, stats::DatasetStats};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000);
    let dir = std::env::temp_dir().join("gpclust_example_pipeline");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let fasta_path = dir.join("metagenome.faa");
    let graph_path = dir.join("metagenome.graph.bin");

    // Stage 0: sequencing (simulated) and FASTA export.
    let t = Instant::now();
    let mg = Metagenome::generate(&MetagenomeConfig::gos_2m_scaled(n, 7));
    fasta::write_file(&fasta_path, &mg.proteins).expect("write FASTA");
    println!(
        "[{:7.2}s] wrote {} sequences to {fasta_path:?}",
        t.elapsed().as_secs_f64(),
        n
    );
    println!("{}", DatasetStats::of(&mg));

    // Stage 1: homology graph construction from the FASTA file.
    let t = Instant::now();
    let (graph, stats) =
        graph_from_fasta(&fasta_path, &HomologyConfig::default()).expect("build graph");
    println!(
        "[{:7.2}s] built similarity graph: {} edges from {} candidates \
         ({} skipped hub k-mer buckets)",
        t.elapsed().as_secs_f64(),
        graph.m(),
        stats.pairs.n_pairs,
        stats.pairs.skipped_buckets
    );

    // Stage 2: persist the graph (the artifact pClust/gpClust consumes).
    let t = Instant::now();
    gpclust::graph::io::write_file(&graph_path, &graph).expect("write graph");
    println!(
        "[{:7.2}s] graph written to {graph_path:?}",
        t.elapsed().as_secs_f64()
    );

    // Stage 3: gpClust from disk, with the Table-I style breakdown.
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let pipeline = GpClust::new(ShinglingParams::paper_default(7), gpu).unwrap();
    let report = pipeline.cluster_from_file(&graph_path).expect("cluster");
    println!("component times: {}", report.times);
    let clusters = report.partition.filter_min_size(5);
    let sizes = clusters.size_stats();
    println!(
        "clusters (size >= 5): {} groups, {} sequences, largest {}",
        sizes.n_groups, sizes.n_assigned, sizes.largest
    );

    std::fs::remove_file(&fasta_path).ok();
    std::fs::remove_file(&graph_path).ok();
}
