//! Serial pClust vs GPU-accelerated gpClust on the same graph — a
//! miniature of the paper's Table I experiment, showing the component
//! breakdown and verifying that both paths report the *identical*
//! partition (the randomized algorithm is a pure function of the seed).
//!
//! Run with: `cargo run --release --example gpu_vs_serial [n_vertices]`

use gpclust::core::{GpClust, SerialShingling, ShinglingParams};
use gpclust::gpu::{DeviceConfig, Gpu};
use gpclust::graph::generate::{planted_partition, PlantedConfig};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10_000);

    // A homology-graph-shaped input: heavy-tailed dense groups + noise.
    let group_sizes = PlantedConfig::zipf_groups(n * 8 / 10, 4, n / 20, 1.4, 5);
    let pg = planted_partition(&PlantedConfig {
        group_sizes,
        n_noise_vertices: n / 5,
        p_intra: 0.8,
        max_intra_degree: 60.0,
        inter_edges_per_vertex: 0.1,
        seed: 5,
    });
    println!(
        "input graph: {} vertices, {} edges",
        pg.graph.n(),
        pg.graph.m()
    );

    let params = ShinglingParams::paper_default(99);

    // Serial pClust.
    let serial = SerialShingling::new(params).unwrap();
    let t = Instant::now();
    let serial_partition = serial.cluster(&pg.graph);
    let serial_secs = t.elapsed().as_secs_f64();
    println!("serial pClust: {serial_secs:.2}s wall");

    // gpClust on the simulated Tesla K20.
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let pipeline = GpClust::new(params, gpu).unwrap();
    let report = pipeline.cluster(&pg.graph).expect("gpClust");
    println!("gpClust breakdown: {}", report.times);
    println!(
        "  device telemetry: {} kernel launches, {:.1} MB H2D, {:.1} MB D2H, \
         peak device mem {:.1} MB",
        report.counters.kernel_launches,
        report.counters.h2d_bytes as f64 / 1e6,
        report.counters.d2h_bytes as f64 / 1e6,
        report.counters.mem_peak as f64 / 1e6
    );
    println!(
        "  speedups: total {:.2}X, GPU part {:.2}X (vs this host's serial shingling)",
        serial_secs / report.times.total(),
        serial_secs / report.times.gpu
    );

    // The partitions must be identical.
    assert_eq!(report.partition, serial_partition);
    println!(
        "serial and GPU paths agree exactly: {} clusters",
        report.partition.n_groups()
    );
}
