//! Protein family discovery study: gpClust vs the GOS k-neighbor baseline
//! against planted ground truth, with per-family diagnostics — which
//! families were recovered intact, which were fragmented into multiple
//! core sets, and which were missed.
//!
//! Run with: `cargo run --release --example family_discovery [n_seqs]`

use gpclust::core::quality::ConfusionCounts;
use gpclust::core::{kneighbor_clusters, GpClust, ShinglingParams};
use gpclust::gpu::{DeviceConfig, Gpu};
use gpclust::graph::Partition;
use gpclust::homology::{graph_from_metagenome, HomologyConfig};
use gpclust::seqsim::metagenome::{Metagenome, MetagenomeConfig};

/// How a planted family fared in a reported partition.
#[derive(Debug, Default)]
struct FamilyOutcome {
    intact: usize,     // ≥ 90 % of members in one cluster
    fragmented: usize, // split across ≥ 2 clusters, largest piece ≥ 50 %
    missed: usize,     // most members unclustered
}

fn diagnose(mg: &Metagenome, partition: &Partition) -> FamilyOutcome {
    let mut outcome = FamilyOutcome::default();
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); mg.n_families as usize];
    for (v, t) in mg.truth.iter().enumerate() {
        if let Some(f) = t {
            members[*f as usize].push(v as u32);
        }
    }
    for fam in &members {
        if fam.len() < 4 {
            continue;
        }
        // Largest cluster piece within this family.
        let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        let mut clustered = 0usize;
        for &v in fam {
            if let Some(g) = partition.group_of(v) {
                *counts.entry(g).or_insert(0) += 1;
                clustered += 1;
            }
        }
        let largest = counts.values().copied().max().unwrap_or(0);
        if largest * 10 >= fam.len() * 9 {
            outcome.intact += 1;
        } else if largest * 2 >= fam.len() {
            outcome.fragmented += 1;
        } else if clustered * 2 < fam.len() {
            outcome.missed += 1;
        } else {
            outcome.fragmented += 1;
        }
    }
    outcome
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3_000);

    let mg = Metagenome::generate(&MetagenomeConfig::gos_2m_scaled(n, 13));
    println!(
        "{} sequences, {} planted families, {} noise ORFs",
        mg.len(),
        mg.n_families,
        mg.n_noise()
    );
    let (graph, _) = graph_from_metagenome(&mg, &HomologyConfig::default());
    println!("similarity graph: {} edges", graph.m());

    let benchmark = Partition::from_membership(mg.truth.clone());

    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let pipeline = GpClust::new(ShinglingParams::paper_default(13), gpu).unwrap();
    let gpclust = pipeline.cluster(&graph).expect("gpClust").partition;
    let gos = kneighbor_clusters(&graph, 10);

    for (name, partition) in [("gpClust", &gpclust), ("GOS k-neighbor", &gos)] {
        let scores = ConfusionCounts::count(partition, &benchmark).scores();
        let o = diagnose(&mg, partition);
        println!("\n== {name} ==");
        println!("  {scores}");
        println!(
            "  families (size >= 4): {} intact, {} fragmented, {} missed",
            o.intact, o.fragmented, o.missed
        );
        let st = partition.size_stats();
        println!(
            "  {} clusters, largest {}, density {:.2}",
            st.n_groups,
            st.largest,
            partition.density_stats(&graph).mean
        );
    }
}
