//! # gpclust — GPU-accelerated protein family identification for metagenomics
//!
//! Facade crate over the gpClust reproduction workspace. Re-exports every
//! subsystem so examples and downstream users can depend on a single crate:
//!
//! * [`seqsim`] — synthetic metagenome / protein family generator.
//! * [`align`] — Smith–Waterman alignment and k-mer match filtering.
//! * [`homology`] — pGraph-like parallel homology graph construction.
//! * [`graph`] — CSR graphs, bipartite shingle graphs, components, partitions.
//! * [`gpu`] — SIMT GPU device simulator with Thrust-like primitives.
//! * [`core`] — the Shingling clustering algorithm (serial pClust and
//!   GPU-accelerated gpClust), the GOS k-neighbor baseline, and quality
//!   metrics.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory and experiment index.

pub use gpclust_align as align;
pub use gpclust_core as core;
pub use gpclust_gpu as gpu;
pub use gpclust_graph as graph;
pub use gpclust_homology as homology;
pub use gpclust_seqsim as seqsim;
