//! `gpclust` — command-line interface to the full pipeline.
//!
//! ```text
//! gpclust generate    --n 5000 --seed 7 --out data.faa [--truth truth.tsv]
//! gpclust build-graph --fasta data.faa --out graph.bin [--loose]
//! gpclust cluster     --graph graph.bin --out clusters.tsv
//!                     [--serial] [--devices N] [--seed 7] [--overlap]
//!                     [--kernel sort|select] [--aggregate host|device]
//!                     [--components host|device] [--plan auto|manual]
//!                     [--par-sort-min N]
//!                     [--mem-budget 64M] [--shards N]
//!                     [--s1 2 --c1 200 --s2 2 --c2 100] [--min-size 1]
//! gpclust stats       --graph graph.bin
//! gpclust quality     --test clusters.tsv --benchmark truth.tsv --n <vertices>
//! ```
//!
//! Cluster files are two-column TSV: `sequence_id <TAB> cluster_id`
//! (unassigned sequences omitted).

use gpclust::core::quality::ConfusionCounts;
use gpclust::core::{
    AggregationMode, CheckpointConfig, ComponentsMode, CrashPlan, FaultPolicy, ForcedAxes, GpClust,
    IncrementalEngine, IndexStore, PipelineMode, Plan, PlanMode, RefreshMode, SerialShingling,
    ShingleKernel, ShinglingParams,
};
use gpclust::gpu::{DeviceConfig, FaultPlan, Gpu};
use gpclust::graph::{io as graph_io, Partition};
use gpclust::homology::{graph_from_fasta, HomologyConfig};
use gpclust::seqsim::fasta;
use gpclust::seqsim::metagenome::{Metagenome, MetagenomeConfig};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let args = parse_flags(rest);
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "build-graph" => cmd_build_graph(&args),
        "cluster" => cmd_cluster(&args),
        "serve" => cmd_serve(&args),
        "stats" => cmd_stats(&args),
        "quality" => cmd_quality(&args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
gpclust — GPU-accelerated protein family identification (reproduction)

subcommands:
  generate     synthesize a metagenome        (--n, --seed, --out, [--truth])
  build-graph  FASTA -> similarity graph      (--fasta, --out, [--loose],
                                               [--backend kmer|suffix])
  cluster      graph -> clusters              (--graph, --out, [--serial],
                                               [--devices N], [--seed],
                                               [--overlap] for async streams,
                                               [--kernel sort|select] for the
                                               top-s extraction kernel,
                                               [--aggregate host|device] for
                                               where the shingle sort runs,
                                               [--components host|device] for
                                               where Phase III labels clusters
                                               (host union-find or the GPU
                                               pointer-jumping kernel),
                                               [--plan auto|manual] — `auto`
                                               picks the schedule axes by the
                                               cost-model argmin; explicitly
                                               passed axis flags stay forced,
                                               [--par-sort-min N],
                                               [--mem-budget BYTES] out-of-core
                                               resident-byte budget (K/M/G
                                               suffixes; also env
                                               GPCLUST_MEM_BUDGET) — Pass I
                                               shards to that bound, spilling
                                               sorted runs to disk,
                                               [--shards N] to pin the shard
                                               count explicitly,
                                               [--s1/--c1/--s2/--c2],
                                               [--min-size],
                                               [--inject-faults seed:rate]
                                               deterministic fault injection
                                               (also env GPCLUST_INJECT_FAULTS),
                                               [--max-retries N],
                                               [--oom-backoff true|false],
                                               [--no-degrade] to forbid the
                                               per-batch host fallback,
                                               [--checkpoint-dir PATH] durable
                                               run manifest: sealed, checksummed
                                               spill runs + a journal of
                                               completed shards,
                                               [--resume] replay completed
                                               shards from the manifest
                                               (refuses on input or plan
                                               mismatch),
                                               [--inject-crash SPEC] seeded
                                               kill injection, SPEC =
                                               `seed:rate` or
                                               `site:occurrence,...` with sites
                                               shard-seal|manifest-commit|merge
                                               (also env GPCLUST_INJECT_CRASH))
  serve        long-running incremental       (--index-dir DIR durable shingle
               clustering engine               index + snapshots,
                                               --graph graph.bin base graph
                                               (bootstrap; omit with --resume),
                                               [--resume] reopen the last
                                               sealed generation (refuses on
                                               axes/fingerprint mismatch),
                                               [--delta-batch N] auto-flush
                                               once N edges are pending
                                               (default: explicit `flush`),
                                               [--refresh auto|delta|full]
                                               refresh policy (auto prices the
                                               delta pass against a full
                                               recluster per flush),
                                               plus the `cluster` schedule
                                               flags: --devices, --seed,
                                               --overlap, --kernel,
                                               --aggregate, --components,
                                               --plan, --par-sort-min,
                                               --mem-budget, --shards,
                                               --s1/--c1/--s2/--c2.
               stdin commands (one per line, replies on stdout):
                 vertices K   append K vertices      -> ok
                 add U V      insert edge (U,V)      -> ok
                 flush        apply pending delta    -> flushed gen=G n=N
                                                        touched=T path=P
                 query V      family membership      -> family <id> | none
                 dump PATH    write partition TSV    -> ok
                 crash        exit(137), no flush    (crash-recovery testing)
                 quit         exit cleanly
  stats        Table II statistics            (--graph)
  quality      score clusters vs a benchmark  (--test, --benchmark, --n)";

type Flags = HashMap<String, String>;

fn parse_flags(tokens: &[String]) -> Flags {
    let mut map = Flags::new();
    let mut it = tokens.iter().peekable();
    while let Some(tok) = it.next() {
        if let Some(key) = tok.strip_prefix("--") {
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
                _ => String::from("true"),
            };
            map.insert(key.to_string(), value);
        }
    }
    map
}

fn need(args: &Flags, key: &str) -> Result<String, String> {
    args.get(key)
        .cloned()
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn get<T: std::str::FromStr>(args: &Flags, key: &str, default: T) -> T {
    args.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cmd_generate(args: &Flags) -> Result<(), String> {
    let n = get(args, "n", 5_000usize);
    let seed = get(args, "seed", 7u64);
    let out = need(args, "out")?;
    let mg = Metagenome::generate(&MetagenomeConfig::gos_2m_scaled(n, seed));
    fasta::write_file(&out, &mg.proteins).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} sequences ({} families, {} noise) to {out}",
        mg.len(),
        mg.n_families,
        mg.n_noise()
    );
    if let Some(truth_path) = args.get("truth") {
        let truth = Partition::from_membership(mg.truth.clone());
        write_partition(truth_path, &truth)?;
        eprintln!("wrote benchmark partition to {truth_path}");
    }
    Ok(())
}

fn cmd_build_graph(args: &Flags) -> Result<(), String> {
    let fasta_path = need(args, "fasta")?;
    let out = need(args, "out")?;
    let mut config = HomologyConfig::default();
    if args.contains_key("loose") {
        config.criteria = gpclust::align::AcceptCriteria::fast_default();
    }
    if args.get("backend").map(String::as_str) == Some("suffix") {
        config.backend = gpclust::homology::FilterBackend::SuffixArray;
    }
    let (graph, stats) = graph_from_fasta(&fasta_path, &config).map_err(|e| e.to_string())?;
    graph_io::write_file(&out, &graph).map_err(|e| e.to_string())?;
    eprintln!(
        "graph: {} vertices, {} edges ({} candidates aligned); written to {out}",
        graph.n(),
        graph.m(),
        stats.pairs.n_pairs
    );
    Ok(())
}

fn parse_kernel(args: &Flags, default: ShingleKernel) -> Result<ShingleKernel, String> {
    match args.get("kernel").map(String::as_str) {
        None => Ok(default),
        Some("sort") => Ok(ShingleKernel::SortCompact),
        Some("select") => Ok(ShingleKernel::FusedSelect),
        Some(other) => Err(format!(
            "--kernel must be `sort` (segmented sort + compaction) or \
             `select` (fused top-s selection), got `{other}`"
        )),
    }
}

fn parse_aggregation(args: &Flags, default: AggregationMode) -> Result<AggregationMode, String> {
    match args.get("aggregate").map(String::as_str) {
        None => Ok(default),
        Some("host") => Ok(AggregationMode::Host),
        Some("device") => Ok(AggregationMode::Device),
        Some(other) => Err(format!(
            "--aggregate must be `host` (global CPU sort) or `device` \
             (GPU radix-sorted runs + k-way host merge), got `{other}`"
        )),
    }
}

fn parse_components(args: &Flags, default: ComponentsMode) -> Result<ComponentsMode, String> {
    match args.get("components").map(String::as_str) {
        None => Ok(default),
        Some("host") => Ok(ComponentsMode::Host),
        Some("device") => Ok(ComponentsMode::Device),
        Some(other) => Err(format!(
            "--components must be `host` (streamed union-find) or `device` \
             (GPU shingle-graph inversion + pointer-jumping connected \
             components), got `{other}`"
        )),
    }
}

/// `--plan auto` turns the cost-model argmin on; any schedule-axis flag
/// the user passed explicitly stays *forced* — the autotuner only fills
/// in the axes left unspecified.
fn parse_plan(args: &Flags) -> Result<PlanMode, String> {
    match args.get("plan").map(String::as_str) {
        None | Some("manual") => Ok(PlanMode::Manual),
        Some("auto") => Ok(PlanMode::Auto(ForcedAxes {
            kernel: args.contains_key("kernel"),
            mode: args.contains_key("overlap"),
            aggregation: args.contains_key("aggregate"),
            components: args.contains_key("components"),
        })),
        Some(other) => Err(format!(
            "--plan must be `auto` (cost-model argmin over the unforced \
             schedule axes) or `manual` (flags + defaults as given), got \
             `{other}`"
        )),
    }
}

/// `--mem-budget BYTES` (with `K`/`M`/`G` binary suffixes) and
/// `--shards N` fill in the out-of-core [`MemoryBudget`]; the
/// `GPCLUST_MEM_BUDGET` env fallback is applied later, at plan lowering.
fn parse_mem_budget(
    args: &Flags,
    default: gpclust::core::MemoryBudget,
) -> Result<gpclust::core::MemoryBudget, String> {
    let mut budget = default;
    if let Some(v) = args.get("mem-budget") {
        budget.bytes = Some(gpclust::core::parse_bytes(v).ok_or_else(|| {
            format!("--mem-budget expects bytes with an optional K/M/G suffix, got `{v}`")
        })?);
    }
    if let Some(v) = args.get("shards") {
        budget.shards = Some(
            v.parse()
                .map_err(|e| format!("--shards expects a shard count: {e}"))?,
        );
    }
    Ok(budget)
}

/// `--inject-faults seed:rate` (falling back to `GPCLUST_INJECT_FAULTS`
/// in the environment), parsed into a deterministic device fault plan.
fn fault_plan(args: &Flags) -> Result<Option<FaultPlan>, String> {
    match args.get("inject-faults") {
        Some(spec) => FaultPlan::parse(spec).map(Some),
        None => Ok(FaultPlan::from_env()),
    }
}

/// The resilience knobs shared by the CLI and the bench binaries. Flags
/// that were not passed keep `default` (the params constructors stay the
/// single source of defaults).
fn fault_policy(args: &Flags, default: FaultPolicy) -> FaultPolicy {
    FaultPolicy {
        max_retries: get(args, "max-retries", default.max_retries),
        oom_backoff: get(args, "oom-backoff", default.oom_backoff),
        degrade_to_host: default.degrade_to_host && !args.contains_key("no-degrade"),
    }
}

/// `--checkpoint-dir PATH` opens the durable run manifest there;
/// `--resume` replays completed shards from it; `--inject-crash SPEC`
/// (falling back to `GPCLUST_INJECT_CRASH` in the environment) arms the
/// seeded in-process kill used by the crash-recovery harness.
fn checkpoint_config(args: &Flags) -> Result<Option<CheckpointConfig>, String> {
    let crash = match args.get("inject-crash") {
        Some(spec) => Some(CrashPlan::parse(spec)?),
        None => CrashPlan::from_env(),
    };
    let Some(dir) = args.get("checkpoint-dir") else {
        if args.contains_key("resume") {
            return Err("--resume requires --checkpoint-dir".into());
        }
        if crash.is_some() && args.contains_key("inject-crash") {
            return Err("--inject-crash requires --checkpoint-dir".into());
        }
        return Ok(None);
    };
    let mut cfg = CheckpointConfig::new(dir);
    if args.contains_key("resume") {
        cfg = cfg.resuming();
    }
    if let Some(crash) = crash {
        cfg = cfg.with_crash(crash);
    }
    Ok(Some(cfg))
}

/// The shared flag → parameter resolution: paper defaults, every flag an
/// override. Used identically by `cluster` and `serve` so an index built
/// by one is resumable by the other.
fn params_from_flags(args: &Flags) -> Result<ShinglingParams, String> {
    let base = ShinglingParams::paper_default(get(args, "seed", 7u64));
    Ok(ShinglingParams {
        s1: get(args, "s1", base.s1),
        c1: get(args, "c1", base.c1),
        s2: get(args, "s2", base.s2),
        c2: get(args, "c2", base.c2),
        mode: if args.contains_key("overlap") {
            PipelineMode::Overlapped
        } else {
            base.mode
        },
        kernel: parse_kernel(args, base.kernel)?,
        aggregation: parse_aggregation(args, base.aggregation)?,
        components: parse_components(args, base.components)?,
        par_sort_min: get(args, "par-sort-min", base.par_sort_min),
        fault: fault_policy(args, base.fault),
        plan: parse_plan(args)?,
        mem_budget: parse_mem_budget(args, base.mem_budget)?,
        ..base
    })
}

fn cmd_cluster(args: &Flags) -> Result<(), String> {
    let graph_path = need(args, "graph")?;
    let out = need(args, "out")?;
    let params = params_from_flags(args)?;
    let plan = fault_plan(args)?;
    let ckpt = checkpoint_config(args)?;
    if ckpt.is_some() && args.contains_key("serial") {
        return Err("--checkpoint-dir applies to the device paths, not --serial".into());
    }
    let min_size = get(args, "min-size", 1usize);
    let n_devices = get(args, "devices", 1usize);
    // Under a bounded budget the single-device path streams the graph
    // from the file shard by shard; don't materialize it here.
    let out_of_core = !params.mem_budget.or_env().is_unbounded()
        && !args.contains_key("serial")
        && n_devices <= 1;

    let partition = if out_of_core {
        let f = graph_io::CsrFile::open(&graph_path).map_err(|e| e.to_string())?;
        eprintln!(
            "opened graph: {} vertices, {} list elements (out-of-core)",
            f.n(),
            f.n_targets()
        );
        let gpu = Gpu::new(DeviceConfig::tesla_k20());
        if let Some(plan) = &plan {
            gpu.set_fault_plan(plan.clone().with_device(0));
        }
        let (exec_plan, _) =
            Plan::lower_auto(&params, std::slice::from_ref(&gpu), f.offsets(), f.n())
                .map_err(|e| e.to_string())?;
        eprintln!("plan: {}", exec_plan.describe());
        drop(f);
        let mut clust = GpClust::new(params, gpu)?;
        if let Some(cfg) = ckpt.clone() {
            clust = clust.with_checkpoint(cfg);
        }
        let report = clust
            .cluster_from_file(&graph_path)
            .map_err(|e| e.to_string())?;
        eprintln!("component times: {}", report.times);
        print_prediction_error(&report.times);
        if report.times.recovery.any() {
            eprintln!("recovery: {}", report.times.recovery);
        }
        report.partition
    } else {
        let g = graph_io::read_file(&graph_path).map_err(|e| e.to_string())?;
        eprintln!("loaded graph: {} vertices, {} edges", g.n(), g.m());
        cluster_resident(args, params, plan, ckpt, n_devices, &g)?
    };
    let filtered = partition.filter_min_size(min_size);
    write_partition(&out, &filtered)?;
    let st = filtered.size_stats();
    eprintln!(
        "wrote {} clusters covering {} sequences (largest {}) to {out}",
        st.n_groups, st.n_assigned, st.largest
    );
    Ok(())
}

/// The resident-graph cluster paths: serial oracle, single device, or
/// the multi-device driver (which bounds its record side by spilling
/// under a budget but keeps the input graph in memory).
fn cluster_resident(
    args: &Flags,
    params: ShinglingParams,
    plan: Option<FaultPlan>,
    ckpt: Option<CheckpointConfig>,
    n_devices: usize,
    g: &gpclust::graph::Csr,
) -> Result<Partition, String> {
    let partition = if args.contains_key("serial") {
        SerialShingling::new(params)?.cluster(g)
    } else if n_devices <= 1 {
        let gpu = Gpu::new(DeviceConfig::tesla_k20());
        if let Some(plan) = &plan {
            gpu.set_fault_plan(plan.clone().with_device(0));
        }
        let (exec_plan, _) =
            Plan::lower_auto(&params, std::slice::from_ref(&gpu), g.offsets(), g.n())
                .map_err(|e| e.to_string())?;
        eprintln!("plan: {}", exec_plan.describe());
        let mut clust = GpClust::new(params, gpu)?;
        if let Some(cfg) = ckpt {
            clust = clust.with_checkpoint(cfg);
        }
        let report = clust.cluster(g).map_err(|e| e.to_string())?;
        eprintln!("component times: {}", report.times);
        print_prediction_error(&report.times);
        if report.times.recovery.any() {
            eprintln!("recovery: {}", report.times.recovery);
        }
        report.partition
    } else {
        let gpus: Vec<Gpu> = (0..n_devices)
            .map(|d| {
                let gpu = Gpu::new(DeviceConfig::tesla_k20());
                if let Some(plan) = &plan {
                    gpu.set_fault_plan(plan.clone().with_device(d as u32));
                }
                gpu
            })
            .collect();
        let (exec_plan, _) =
            Plan::lower_auto(&params, &gpus, g.offsets(), g.n()).map_err(|e| e.to_string())?;
        eprintln!("plan: {}", exec_plan.describe());
        let mut multi = gpclust::core::multi_gpu::MultiGpuClust::new(params, gpus)?;
        if let Some(cfg) = ckpt {
            multi = multi.with_checkpoint(cfg);
        }
        let report = multi.cluster(g).map_err(|e| e.to_string())?;
        eprintln!("component times ({} devices): {}", n_devices, report.times);
        print_prediction_error(&report.times);
        if report.times.recovery.any() {
            eprintln!("recovery: {}", report.times.recovery);
        }
        report.partition
    };
    Ok(partition)
}

/// `--refresh auto|delta|full`: how `serve` refreshes on each flush.
fn parse_refresh(args: &Flags) -> Result<RefreshMode, String> {
    match args.get("refresh").map(String::as_str) {
        None | Some("auto") => Ok(RefreshMode::Auto),
        Some("delta") => Ok(RefreshMode::Delta),
        Some("full") => Ok(RefreshMode::Full),
        Some(other) => Err(format!(
            "--refresh must be `auto` (cost-model decision per flush), \
             `delta` (always the incremental pass) or `full` (always \
             re-cluster from scratch), got `{other}`"
        )),
    }
}

fn cmd_serve(args: &Flags) -> Result<(), String> {
    let dir = need(args, "index-dir")?;
    let params = params_from_flags(args)?;
    let plan = fault_plan(args)?;
    let n_devices = get(args, "devices", 1usize);
    let gpus: Vec<Gpu> = (0..n_devices)
        .map(|d| {
            let gpu = Gpu::new(DeviceConfig::tesla_k20());
            if let Some(plan) = &plan {
                gpu.set_fault_plan(plan.clone().with_device(d as u32));
            }
            gpu
        })
        .collect();
    let store = IndexStore::new(&dir);
    let mut engine = if args.contains_key("resume") {
        let engine = IncrementalEngine::resume(&params, gpus, store).map_err(|e| e.to_string())?;
        eprintln!(
            "resumed generation {} from {dir} ({} vertices)",
            engine.generation(),
            engine.n_vertices()
        );
        engine
    } else {
        let graph_path = args
            .get("graph")
            .ok_or("bootstrapping requires --graph (or pass --resume)")?;
        let g = graph_io::read_file(graph_path).map_err(|e| e.to_string())?;
        eprintln!("loaded graph: {} vertices, {} edges", g.n(), g.m());
        let engine = IncrementalEngine::bootstrap(&params, gpus, g)
            .map_err(|e| e.to_string())?
            .with_store(store)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "bootstrapped generation {} into {dir} ({} vertices)",
            engine.generation(),
            engine.n_vertices()
        );
        engine
    }
    .with_refresh(parse_refresh(args)?);
    let delta_batch = get(args, "delta-batch", 0usize);

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut say = move |line: String| -> Result<(), String> {
        writeln!(out, "{line}")
            .and_then(|()| out.flush())
            .map_err(|e| e.to_string())
    };
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let mut words = line.split_whitespace();
        match words.next() {
            None => {}
            Some("vertices") => match words.next().and_then(|k| k.parse::<usize>().ok()) {
                Some(k) => {
                    engine.add_vertices(k);
                    say("ok".into())?;
                }
                None => say("error: usage `vertices K`".into())?,
            },
            Some("add") => {
                let (u, v) = (
                    words.next().and_then(|w| w.parse::<u32>().ok()),
                    words.next().and_then(|w| w.parse::<u32>().ok()),
                );
                match (u, v) {
                    (Some(u), Some(v)) => {
                        engine.add_edge(u, v);
                        say("ok".into())?;
                        if delta_batch > 0 && engine.pending_edges() >= delta_batch {
                            let d = engine.flush().map_err(|e| e.to_string())?;
                            say(flushed_line(&engine, &d))?;
                        }
                    }
                    _ => say("error: usage `add U V`".into())?,
                }
            }
            Some("flush") => {
                let d = engine.flush().map_err(|e| e.to_string())?;
                say(flushed_line(&engine, &d))?;
            }
            Some("query") => match words.next().and_then(|w| w.parse::<u32>().ok()) {
                Some(v) => match engine.query(v) {
                    Some(g) => say(format!("family {g}"))?,
                    None => say("none".into())?,
                },
                None => say("error: usage `query V`".into())?,
            },
            Some("dump") => match words.next() {
                Some(path) => {
                    write_partition(path, engine.partition())?;
                    say("ok".into())?;
                }
                None => say("error: usage `dump PATH`".into())?,
            },
            Some("crash") => {
                // Deterministic kill for the crash-recovery harness: no
                // flush, no teardown — pending deltas are lost, the last
                // sealed generation survives.
                std::process::exit(137);
            }
            Some("quit") => break,
            Some(other) => say(format!("error: unknown command `{other}`"))?,
        }
    }
    eprintln!(
        "serve: exiting at generation {} ({} vertices, {} pending edges dropped)",
        engine.generation(),
        engine.n_vertices(),
        engine.pending_edges()
    );
    Ok(())
}

/// The `flushed` reply: what happened and which path the engine took.
fn flushed_line(
    engine: &gpclust::core::IncrementalEngine,
    d: &gpclust::core::RefreshDecision,
) -> String {
    let path = if d.touched == 0 {
        "noop"
    } else if d.full {
        "full"
    } else {
        "delta"
    };
    format!(
        "flushed gen={} n={} touched={} path={path}",
        engine.generation(),
        d.n_vertices.max(engine.n_vertices()),
        d.touched
    )
}

/// Under `--plan auto` the run carries the autotuner's makespan estimate;
/// report how far off the model was (the honesty check the cost model
/// lives or dies by). Manual runs carry no prediction and stay silent.
fn print_prediction_error(times: &gpclust::core::StageTimes) {
    if let Some(err) = times.prediction_error_pct() {
        eprintln!(
            "autotune: predicted device path {:.4}s vs measured {:.4}s ({:+.1}% relative error)",
            times.predicted_device_seconds, times.device_pipelined, err
        );
    }
}

fn cmd_stats(args: &Flags) -> Result<(), String> {
    let graph_path = need(args, "graph")?;
    let g = graph_io::read_file(&graph_path).map_err(|e| e.to_string())?;
    println!("{}", gpclust::graph::stats::GraphStats::of(&g));
    Ok(())
}

fn cmd_quality(args: &Flags) -> Result<(), String> {
    let n = get(args, "n", 0usize);
    if n == 0 {
        return Err("--n (total sequences) is required".into());
    }
    let test = read_partition(&need(args, "test")?, n)?;
    let benchmark = read_partition(&need(args, "benchmark")?, n)?;
    let counts = ConfusionCounts::count(&test, &benchmark);
    println!("{}", counts.scores());
    println!(
        "TP {}  FP {}  FN {}  TN {}",
        counts.tp, counts.fp, counts.fn_, counts.tn
    );
    Ok(())
}

fn write_partition(path: &str, p: &Partition) -> Result<(), String> {
    let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
    let mut w = std::io::BufWriter::new(f);
    for (v, m) in p.membership().iter().enumerate() {
        if let Some(g) = m {
            writeln!(w, "{v}\t{g}").map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn read_partition(path: &str, n: usize) -> Result<Partition, String> {
    let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut membership = vec![None; n];
    for (lineno, line) in std::io::BufReader::new(f).lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (v, g) = line
            .split_once('\t')
            .ok_or_else(|| format!("{path}:{}: expected `vertex<TAB>cluster`", lineno + 1))?;
        let v: usize = v
            .trim()
            .parse()
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let g: u32 = g
            .trim()
            .parse()
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        if v >= n {
            return Err(format!(
                "{path}:{}: vertex {v} out of range (n={n})",
                lineno + 1
            ));
        }
        membership[v] = Some(g);
    }
    Ok(Partition::from_membership(membership))
}
