//! Property tests for the alignment substrate.

use gpclust_align::banded::BandedSw;
use gpclust_align::filter::{candidate_pairs, FilterConfig};
use gpclust_align::matrix::SubstitutionMatrix;
use gpclust_align::sw::{GapPenalties, SmithWaterman, Workspace};
use proptest::prelude::*;

fn arb_seq(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..20, 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sw_score_is_symmetric_nonnegative(a in arb_seq(80), b in arb_seq(80)) {
        let sw = SmithWaterman::protein_default();
        let s_ab = sw.score(&a, &b);
        let s_ba = sw.score(&b, &a);
        prop_assert_eq!(s_ab, s_ba);
        prop_assert!(s_ab >= 0);
    }

    #[test]
    fn traceback_score_equals_score_only(a in arb_seq(60), b in arb_seq(60)) {
        let sw = SmithWaterman::protein_default();
        let aln = sw.align(&a, &b);
        prop_assert_eq!(aln.score, sw.score(&a, &b));
        prop_assert!(aln.identities <= aln.length);
        prop_assert!(aln.query_range.0 <= aln.query_range.1);
        prop_assert!(aln.query_range.1 <= a.len());
        prop_assert!(aln.target_range.1 <= b.len());
    }

    #[test]
    fn path_is_monotone_and_consistent(a in arb_seq(50), b in arb_seq(50)) {
        let sw = SmithWaterman::protein_default();
        let (aln, path) = sw.align_with_path(&a, &b);
        // Strictly increasing in both coordinates.
        for w in path.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 < w[1].1);
        }
        // Identities on the path match the reported count.
        let ids = path.iter().filter(|&&(i, j)| a[i] == b[j]).count();
        prop_assert_eq!(ids, aln.identities);
        for &(i, j) in &path {
            prop_assert!(i >= aln.query_range.0 && i < aln.query_range.1.max(1));
            prop_assert!(j >= aln.target_range.0 && j < aln.target_range.1.max(1));
        }
    }

    #[test]
    fn self_alignment_is_perfect(a in arb_seq(60)) {
        prop_assume!(!a.is_empty());
        let sw = SmithWaterman::protein_default();
        let aln = sw.align(&a, &a);
        prop_assert_eq!(aln.identities, a.len());
        prop_assert_eq!(aln.length, a.len());
    }

    #[test]
    fn workspace_reuse_is_pure(pairs in proptest::collection::vec((arb_seq(40), arb_seq(40)), 1..6)) {
        let sw = SmithWaterman::protein_default();
        let mut ws = Workspace::new();
        for (a, b) in &pairs {
            prop_assert_eq!(sw.score_with(&mut ws, a, b), sw.score(a, b));
        }
    }

    #[test]
    fn banded_is_a_lower_bound(a in arb_seq(50), b in arb_seq(50),
                               band in 1usize..12, diag in -10isize..10) {
        let full = SmithWaterman::protein_default().score(&a, &b);
        let banded = BandedSw::new(
            SubstitutionMatrix::blosum62(),
            GapPenalties::default(),
            band,
        )
        .score(&a, &b, diag);
        prop_assert!(banded <= full);
        prop_assert!(banded >= 0);
    }

    #[test]
    fn filter_finds_exactly_shared_kmer_pairs(
        seqs in proptest::collection::vec(arb_seq(25), 0..25),
        k in 2usize..5,
    ) {
        let cp = candidate_pairs(&seqs, &FilterConfig { k, max_bucket: usize::MAX });
        let sets: Vec<std::collections::HashSet<u64>> = seqs
            .iter()
            .map(|s| gpclust_align::kmer::kmers(s, k).into_iter().collect())
            .collect();
        let mut expected = Vec::new();
        for i in 0..seqs.len() {
            for j in i + 1..seqs.len() {
                if !sets[i].is_disjoint(&sets[j]) {
                    expected.push((i as u32, j as u32));
                }
            }
        }
        prop_assert_eq!(cp.into_vec(), expected);
    }
}
