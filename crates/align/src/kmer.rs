//! Packed k-mer extraction.
//!
//! Residue codes occupy 5 bits each (20 < 2⁵), so k-mers up to k = 12 pack
//! into a `u64`. Packing is done with a rolling shift so extracting all
//! k-mers of a sequence is O(n).

/// Maximum supported k (5 bits/residue in a u64).
pub const MAX_K: usize = 12;

/// A packed k-mer value.
pub type PackedKmer = u64;

/// Pack `k` residue codes starting at `seq[0]` into a u64.
///
/// # Panics
/// Panics if `seq.len() < k` or `k > MAX_K`.
#[inline]
pub fn pack(seq: &[u8], k: usize) -> PackedKmer {
    assert!(k <= MAX_K && seq.len() >= k);
    let mut v: u64 = 0;
    for &r in &seq[..k] {
        debug_assert!(r < 32);
        v = (v << 5) | r as u64;
    }
    v
}

/// Iterator over all packed k-mers of a sequence, with their start offsets.
pub struct KmerIter<'a> {
    seq: &'a [u8],
    k: usize,
    mask: u64,
    current: u64,
    pos: usize,
}

impl<'a> KmerIter<'a> {
    /// Create an iterator over the k-mers of `seq`. Yields nothing if the
    /// sequence is shorter than `k`.
    pub fn new(seq: &'a [u8], k: usize) -> Self {
        assert!((1..=MAX_K).contains(&k), "k must be in 1..={MAX_K}");
        let mask = if 5 * k == 64 {
            u64::MAX
        } else {
            (1u64 << (5 * k)) - 1
        };
        let mut it = KmerIter {
            seq,
            k,
            mask,
            current: 0,
            pos: 0,
        };
        if seq.len() >= k {
            // Pre-roll the first k-1 residues; next() completes the window.
            for &r in &seq[..k - 1] {
                it.current = (it.current << 5) | r as u64;
            }
            it.pos = k - 1;
        } else {
            it.pos = seq.len(); // exhausted
        }
        it
    }
}

impl Iterator for KmerIter<'_> {
    /// (start offset, packed k-mer)
    type Item = (usize, PackedKmer);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.seq.len() {
            return None;
        }
        self.current = ((self.current << 5) | self.seq[self.pos] as u64) & self.mask;
        self.pos += 1;
        Some((self.pos - self.k, self.current))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.seq.len().saturating_sub(self.pos);
        (rem, Some(rem))
    }
}

/// Collect all packed k-mers of `seq` (without positions).
pub fn kmers(seq: &[u8], k: usize) -> Vec<PackedKmer> {
    KmerIter::new(seq, k).map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_is_big_endian_5bit() {
        // codes [1, 2, 3] -> 1<<10 | 2<<5 | 3
        assert_eq!(pack(&[1, 2, 3], 3), (1 << 10) | (2 << 5) | 3);
    }

    #[test]
    fn iter_matches_pack_at_every_offset() {
        let seq: Vec<u8> = (0..30).map(|i| (i * 7 % 20) as u8).collect();
        for k in [1, 3, 5, 8, 12] {
            let got: Vec<_> = KmerIter::new(&seq, k).collect();
            assert_eq!(got.len(), seq.len() - k + 1);
            for (off, v) in got {
                assert_eq!(v, pack(&seq[off..], k), "k={k} off={off}");
            }
        }
    }

    #[test]
    fn short_sequence_yields_nothing() {
        let seq = [1u8, 2];
        assert_eq!(KmerIter::new(&seq, 5).count(), 0);
        assert_eq!(KmerIter::new(&[], 3).count(), 0);
    }

    #[test]
    fn exact_length_sequence_yields_one() {
        let seq = [4u8, 5, 6];
        let got: Vec<_> = KmerIter::new(&seq, 3).collect();
        assert_eq!(got, vec![(0, pack(&seq, 3))]);
    }

    #[test]
    fn distinct_kmers_pack_distinctly() {
        let a = pack(&[0, 1], 2);
        let b = pack(&[1, 0], 2);
        assert_ne!(a, b);
    }

    #[test]
    fn size_hint_exact() {
        let seq: Vec<u8> = vec![0; 10];
        let it = KmerIter::new(&seq, 4);
        assert_eq!(it.size_hint(), (7, Some(7)));
    }

    #[test]
    #[should_panic]
    fn k_too_large_panics() {
        KmerIter::new(&[0u8; 20], 13);
    }
}
