//! Smith–Waterman local alignment with affine gap penalties.
//!
//! Two kernels share the same recurrence (Gotoh's affine-gap formulation):
//!
//! * [`SmithWaterman::score`] — linear-memory, score-only. This is the hot
//!   path of homology graph construction: millions of calls on candidate
//!   pairs, so the inner loop is branch-light and allocation-free (the DP
//!   rows live in a reusable [`Workspace`]).
//! * [`SmithWaterman::align`] — quadratic-memory full traceback, reporting
//!   identity, alignment length and the aligned ranges. Used where the
//!   acceptance rule needs identity/coverage, and as the oracle in tests.
//!
//! Scores are `i32`; with BLOSUM62 (max 11/residue) overflow would need
//! sequences of ~2×10⁸ residues, far beyond ORF scale.

use crate::matrix::SubstitutionMatrix;

/// Affine gap penalties: opening a gap costs `open + extend`, each further
/// gap column costs `extend`. Both are positive magnitudes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapPenalties {
    /// Gap-open penalty (charged once per gap, in addition to `extend`).
    pub open: i32,
    /// Gap-extension penalty (charged per gap column).
    pub extend: i32,
}

impl GapPenalties {
    /// BLAST's default protein gap penalties (11, 1).
    pub fn blast_default() -> Self {
        GapPenalties {
            open: 10,
            extend: 1,
        }
    }
}

impl Default for GapPenalties {
    fn default() -> Self {
        Self::blast_default()
    }
}

/// Result of a full (traceback) local alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Optimal local alignment score.
    pub score: i32,
    /// Number of identical aligned residue pairs.
    pub identities: usize,
    /// Total alignment columns (matches + mismatches + gap columns).
    pub length: usize,
    /// Aligned range in the query, half-open.
    pub query_range: (usize, usize),
    /// Aligned range in the target, half-open.
    pub target_range: (usize, usize),
}

impl Alignment {
    /// Fraction of alignment columns that are identities.
    pub fn identity(&self) -> f64 {
        if self.length == 0 {
            0.0
        } else {
            self.identities as f64 / self.length as f64
        }
    }

    /// Fraction of the *shorter* sequence covered by the alignment — the
    /// coverage convention appropriate for fragment-rich metagenomic ORFs.
    pub fn coverage(&self, query_len: usize, target_len: usize) -> f64 {
        let shorter = query_len.min(target_len);
        if shorter == 0 {
            return 0.0;
        }
        let q = self.query_range.1 - self.query_range.0;
        let t = self.target_range.1 - self.target_range.0;
        q.min(t) as f64 / shorter as f64
    }
}

/// Reusable DP row buffers so batch alignment does not allocate per pair.
#[derive(Debug, Default)]
pub struct Workspace {
    h: Vec<i32>,
    e: Vec<i32>,
}

impl Workspace {
    /// Create an empty workspace; rows grow on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    fn reset(&mut self, width: usize) {
        self.h.clear();
        self.h.resize(width, 0);
        self.e.clear();
        self.e.resize(width, i32::MIN / 2);
    }
}

/// A configured Smith–Waterman aligner.
#[derive(Debug, Clone)]
pub struct SmithWaterman {
    matrix: SubstitutionMatrix,
    gaps: GapPenalties,
}

impl SmithWaterman {
    /// Create an aligner with the given matrix and gap penalties.
    pub fn new(matrix: SubstitutionMatrix, gaps: GapPenalties) -> Self {
        SmithWaterman { matrix, gaps }
    }

    /// BLOSUM62 with BLAST default gaps — the pipeline's standard aligner.
    pub fn protein_default() -> Self {
        SmithWaterman::new(SubstitutionMatrix::blosum62(), GapPenalties::default())
    }

    /// The substitution matrix in use.
    pub fn matrix(&self) -> &SubstitutionMatrix {
        &self.matrix
    }

    /// The gap penalties in use.
    pub fn gaps(&self) -> GapPenalties {
        self.gaps
    }

    /// Score-only Smith–Waterman in O(|b|) memory, reusing `ws` buffers.
    pub fn score_with(&self, ws: &mut Workspace, a: &[u8], b: &[u8]) -> i32 {
        if a.is_empty() || b.is_empty() {
            return 0;
        }
        let width = b.len() + 1;
        ws.reset(width);
        let go = self.gaps.open + self.gaps.extend;
        let ge = self.gaps.extend;
        let neg = i32::MIN / 2;

        let mut best = 0i32;
        for &ra in a {
            let row = self.matrix.row(ra);
            let mut f = neg; // gap-in-b running score for this row
            let mut h_diag = 0i32; // H[i-1][j-1]
            for j in 1..width {
                let e = (ws.e[j] - ge).max(ws.h[j] - go); // gap in a (vertical)
                f = (f - ge).max(ws.h[j - 1] - go); // gap in b (horizontal)
                let m = h_diag + row[b[j - 1] as usize] as i32;
                let h = m.max(e).max(f).max(0);
                h_diag = ws.h[j];
                ws.h[j] = h;
                ws.e[j] = e;
                if h > best {
                    best = h;
                }
            }
        }
        best
    }

    /// Score-only Smith–Waterman with a private workspace (convenience).
    pub fn score(&self, a: &[u8], b: &[u8]) -> i32 {
        let mut ws = Workspace::new();
        self.score_with(&mut ws, a, b)
    }

    /// Full Smith–Waterman with traceback. O(|a|·|b|) memory.
    pub fn align(&self, a: &[u8], b: &[u8]) -> Alignment {
        self.align_with_path(a, b).0
    }

    /// Full Smith–Waterman returning the alignment plus its matched
    /// residue-pair path: `(i, j)` for every aligned column (gap columns
    /// omitted), ascending. Star-alignment profile construction consumes
    /// the path.
    pub fn align_with_path(&self, a: &[u8], b: &[u8]) -> (Alignment, Vec<(usize, usize)>) {
        let (n, m) = (a.len(), b.len());
        if n == 0 || m == 0 {
            return (
                Alignment {
                    score: 0,
                    identities: 0,
                    length: 0,
                    query_range: (0, 0),
                    target_range: (0, 0),
                },
                Vec::new(),
            );
        }
        let go = self.gaps.open + self.gaps.extend;
        let ge = self.gaps.extend;
        let neg = i32::MIN / 2;
        let w = m + 1;

        // Traceback codes per cell for each of the three DP layers.
        const STOP: u8 = 0;
        const DIAG: u8 = 1;
        const UP: u8 = 2; // gap in b (consume a)
        const LEFT: u8 = 3; // gap in a (consume b)

        let mut h = vec![0i32; (n + 1) * w];
        let mut e = vec![neg; (n + 1) * w];
        let mut f = vec![neg; (n + 1) * w];
        // tb_h: where H came from; tb_e / tb_f: whether the gap layer opened
        // (1) here or extended (0) from the previous gap cell.
        let mut tb_h = vec![STOP; (n + 1) * w];
        let mut tb_e = vec![0u8; (n + 1) * w];
        let mut tb_f = vec![0u8; (n + 1) * w];

        let mut best = 0i32;
        let mut best_ij = (0usize, 0usize);
        for i in 1..=n {
            let row = self.matrix.row(a[i - 1]);
            for j in 1..=m {
                let idx = i * w + j;
                let up = idx - w;
                let left = idx - 1;

                let e_ext = e[up] - ge;
                let e_open = h[up] - go;
                if e_ext >= e_open {
                    e[idx] = e_ext;
                    tb_e[idx] = 0;
                } else {
                    e[idx] = e_open;
                    tb_e[idx] = 1;
                }

                let f_ext = f[left] - ge;
                let f_open = h[left] - go;
                if f_ext >= f_open {
                    f[idx] = f_ext;
                    tb_f[idx] = 0;
                } else {
                    f[idx] = f_open;
                    tb_f[idx] = 1;
                }

                let diag = h[idx - w - 1] + row[b[j - 1] as usize] as i32;
                let mut hv = 0i32;
                let mut tb = STOP;
                if diag > hv {
                    hv = diag;
                    tb = DIAG;
                }
                if e[idx] > hv {
                    hv = e[idx];
                    tb = UP;
                }
                if f[idx] > hv {
                    hv = f[idx];
                    tb = LEFT;
                }
                h[idx] = hv;
                tb_h[idx] = tb;
                if hv > best {
                    best = hv;
                    best_ij = (i, j);
                }
            }
        }

        // Traceback from the best cell, tracking which DP layer we are in.
        let (mut i, mut j) = best_ij;
        let (end_i, end_j) = best_ij;
        let mut identities = 0usize;
        let mut length = 0usize;
        let mut path: Vec<(usize, usize)> = Vec::new();
        #[derive(Clone, Copy, PartialEq)]
        enum Layer {
            H,
            E,
            F,
        }
        let mut layer = Layer::H;
        loop {
            let idx = i * w + j;
            match layer {
                Layer::H => match tb_h[idx] {
                    STOP => break,
                    DIAG => {
                        length += 1;
                        if a[i - 1] == b[j - 1] {
                            identities += 1;
                        }
                        path.push((i - 1, j - 1));
                        i -= 1;
                        j -= 1;
                    }
                    UP => layer = Layer::E,
                    LEFT => layer = Layer::F,
                    _ => unreachable!(),
                },
                Layer::E => {
                    length += 1;
                    let opened = tb_e[idx] == 1;
                    i -= 1;
                    if opened {
                        layer = Layer::H;
                    }
                }
                Layer::F => {
                    length += 1;
                    let opened = tb_f[idx] == 1;
                    j -= 1;
                    if opened {
                        layer = Layer::H;
                    }
                }
            }
        }

        path.reverse();
        (
            Alignment {
                score: best,
                identities,
                length,
                query_range: (i, end_i),
                target_range: (j, end_j),
            },
            path,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpclust_seqsim::alphabet::encode;

    fn aligner() -> SmithWaterman {
        SmithWaterman::protein_default()
    }

    fn seq(s: &[u8]) -> Vec<u8> {
        encode(s).unwrap()
    }

    #[test]
    fn identical_sequences_score_matrix_sum() {
        let sw = aligner();
        let a = seq(b"MKVLAWGY");
        let expected: i32 = a.iter().map(|&r| sw.matrix().score(r, r) as i32).sum();
        assert_eq!(sw.score(&a, &a), expected);
    }

    #[test]
    fn empty_inputs_score_zero() {
        let sw = aligner();
        assert_eq!(sw.score(&[], &seq(b"MKV")), 0);
        assert_eq!(sw.score(&seq(b"MKV"), &[]), 0);
        assert_eq!(sw.score(&[], &[]), 0);
    }

    #[test]
    fn score_is_symmetric() {
        let sw = aligner();
        let a = seq(b"MKVLAWGYACDEFG");
        let b = seq(b"MKVAWGYACDKFG");
        assert_eq!(sw.score(&a, &b), sw.score(&b, &a));
    }

    #[test]
    fn local_alignment_ignores_flanks() {
        let sw = aligner();
        let core = seq(b"WWWWWW");
        let mut a = seq(b"ACDEFG");
        a.extend_from_slice(&core);
        a.extend_from_slice(&seq(b"KLMNPQ"));
        // The WW core alone should dominate the score.
        let s = sw.score(&a, &core);
        assert_eq!(s, 6 * 11);
    }

    #[test]
    fn gap_penalty_applied() {
        let sw = SmithWaterman::new(
            SubstitutionMatrix::uniform(2, -3),
            GapPenalties { open: 4, extend: 1 },
        );
        // AACC vs AA-CC style: inserting one gap column.
        let a = seq(b"AACC");
        let b = seq(b"AAGCC");
        // Gapped AACC vs AA-CC scores 4*2 - (4+1) = 3; the best *local*
        // alignment is the ungapped AA prefix at 2*2 = 4.
        assert_eq!(sw.score(&a, &b), 4);
    }

    #[test]
    fn align_matches_score() {
        let sw = aligner();
        let a = seq(b"MKVLAWGYACDEFGHIKL");
        let b = seq(b"MKVLWGYACPEFGHKL");
        let aln = sw.align(&a, &b);
        assert_eq!(aln.score, sw.score(&a, &b));
    }

    #[test]
    fn align_identity_of_exact_match() {
        let sw = aligner();
        let a = seq(b"MKVLAWGY");
        let aln = sw.align(&a, &a);
        assert_eq!(aln.identities, a.len());
        assert_eq!(aln.length, a.len());
        assert!((aln.identity() - 1.0).abs() < 1e-12);
        assert_eq!(aln.query_range, (0, a.len()));
        assert_eq!(aln.target_range, (0, a.len()));
    }

    #[test]
    fn align_ranges_are_local() {
        let sw = aligner();
        let core = seq(b"WWWWWWWW");
        let mut a = seq(b"ACDEFG");
        a.extend_from_slice(&core);
        let b = core.clone();
        let aln = sw.align(&a, &b);
        assert_eq!(aln.query_range, (6, 14));
        assert_eq!(aln.target_range, (0, 8));
        assert!((aln.coverage(a.len(), b.len()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn align_empty() {
        let sw = aligner();
        let aln = sw.align(&[], &seq(b"MK"));
        assert_eq!(aln.score, 0);
        assert_eq!(aln.length, 0);
    }

    #[test]
    fn workspace_reuse_matches_fresh() {
        let sw = aligner();
        let mut ws = Workspace::new();
        let pairs = [
            (seq(b"MKVLAWGY"), seq(b"MKVLAWGY")),
            (seq(b"ACD"), seq(b"WWWWW")),
            (seq(b"MKVLAWGYACDEFGHIKL"), seq(b"KVLWGYACEFGIKL")),
        ];
        for (a, b) in &pairs {
            assert_eq!(sw.score_with(&mut ws, a, b), sw.score(a, b));
        }
    }

    #[test]
    fn score_nonnegative_and_bounded() {
        let sw = aligner();
        let a = seq(b"ACDEFGHIKLMNPQRSTVWY");
        let b = seq(b"YWVTSRQPNMLKIHGFEDCA");
        let s = sw.score(&a, &b);
        assert!(s >= 0);
        let upper: i32 = 20 * sw.matrix().max_score() as i32;
        assert!(s <= upper);
    }
}
