//! Edge acceptance: deciding when an alignment is "significant sequence
//! similarity" (the paper's edge criterion for the homology graph).
//!
//! Two modes are provided:
//!
//! * **fast** — score-density only: accept if `score ≥ min_score` and
//!   `score / min(|a|,|b|) ≥ min_score_density`. Needs only the score-only
//!   SW kernel, so it is the default for large runs.
//! * **strict** — additionally requires identity and short-sequence coverage
//!   thresholds computed from a full traceback. Used when edge quality
//!   matters more than throughput.

use crate::sw::{Alignment, SmithWaterman, Workspace};
use serde::{Deserialize, Serialize};

/// Thresholds for accepting a pair as homologous.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceptCriteria {
    /// Minimum raw Smith–Waterman score.
    pub min_score: i32,
    /// Minimum score per residue of the shorter sequence.
    pub min_score_density: f64,
    /// Minimum identity fraction over alignment columns (strict mode only).
    pub min_identity: f64,
    /// Minimum coverage of the shorter sequence (strict mode only).
    pub min_coverage: f64,
    /// Whether to run the strict (traceback) checks.
    pub strict: bool,
}

impl AcceptCriteria {
    /// Defaults tuned for the synthetic metagenome: core family members
    /// (~60–80 % identity) pass; unrelated background pairs essentially
    /// never do.
    pub fn homology_default() -> Self {
        AcceptCriteria {
            min_score: 60,
            min_score_density: 0.85,
            min_identity: 0.30,
            min_coverage: 0.5,
            strict: true,
        }
    }

    /// Fast variant: score and score-density gates only (no traceback).
    pub fn fast_default() -> Self {
        AcceptCriteria {
            strict: false,
            ..AcceptCriteria::homology_default()
        }
    }

    /// Strict variant of [`AcceptCriteria::homology_default`].
    pub fn strict_default() -> Self {
        AcceptCriteria {
            strict: true,
            ..AcceptCriteria::homology_default()
        }
    }
}

impl Default for AcceptCriteria {
    fn default() -> Self {
        Self::homology_default()
    }
}

/// Outcome of evaluating one candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairVerdict {
    /// Pair is homologous: add the edge.
    Accept,
    /// Rejected by the score threshold.
    RejectScore,
    /// Rejected by score density.
    RejectDensity,
    /// Rejected by identity (strict mode).
    RejectIdentity,
    /// Rejected by coverage (strict mode).
    RejectCoverage,
}

impl PairVerdict {
    /// True when the verdict accepts the pair.
    pub fn accepted(self) -> bool {
        self == PairVerdict::Accept
    }
}

/// Evaluate a candidate pair against `criteria`, reusing the SW `workspace`.
pub fn evaluate_pair(
    sw: &SmithWaterman,
    workspace: &mut Workspace,
    a: &[u8],
    b: &[u8],
    criteria: &AcceptCriteria,
) -> PairVerdict {
    let score = sw.score_with(workspace, a, b);
    if score < criteria.min_score {
        return PairVerdict::RejectScore;
    }
    let shorter = a.len().min(b.len()).max(1);
    if (score as f64) / (shorter as f64) < criteria.min_score_density {
        return PairVerdict::RejectDensity;
    }
    if criteria.strict {
        let aln = sw.align(a, b);
        return evaluate_alignment(&aln, a.len(), b.len(), criteria);
    }
    PairVerdict::Accept
}

/// Apply the strict checks to an already-computed alignment.
pub fn evaluate_alignment(
    aln: &Alignment,
    len_a: usize,
    len_b: usize,
    criteria: &AcceptCriteria,
) -> PairVerdict {
    if aln.score < criteria.min_score {
        return PairVerdict::RejectScore;
    }
    let shorter = len_a.min(len_b).max(1);
    if (aln.score as f64) / (shorter as f64) < criteria.min_score_density {
        return PairVerdict::RejectDensity;
    }
    if aln.identity() < criteria.min_identity {
        return PairVerdict::RejectIdentity;
    }
    if aln.coverage(len_a, len_b) < criteria.min_coverage {
        return PairVerdict::RejectCoverage;
    }
    PairVerdict::Accept
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpclust_seqsim::alphabet::{encode, BackgroundSampler};
    use gpclust_seqsim::mutate::MutationModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sw() -> SmithWaterman {
        SmithWaterman::protein_default()
    }

    #[test]
    fn identical_long_sequences_accepted() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = BackgroundSampler::new().sample_seq(&mut rng, 150);
        let mut ws = Workspace::new();
        let v = evaluate_pair(&sw(), &mut ws, &a, &a, &AcceptCriteria::homology_default());
        assert!(v.accepted());
    }

    #[test]
    fn random_pairs_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let bg = BackgroundSampler::new();
        let mut ws = Workspace::new();
        let crit = AcceptCriteria::homology_default();
        let aligner = sw();
        let mut accepted = 0;
        for _ in 0..50 {
            let a = bg.sample_seq(&mut rng, 120);
            let b = bg.sample_seq(&mut rng, 120);
            if evaluate_pair(&aligner, &mut ws, &a, &b, &crit).accepted() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 0, "unrelated pairs must not form edges");
    }

    #[test]
    fn family_core_pairs_accepted() {
        let mut rng = StdRng::seed_from_u64(3);
        let bg = BackgroundSampler::new();
        let model = MutationModel::family_default();
        let mut ws = Workspace::new();
        let crit = AcceptCriteria::homology_default();
        let aligner = sw();
        let mut accepted = 0;
        let trials = 40;
        for _ in 0..trials {
            let anc = bg.sample_seq(&mut rng, 150);
            let a = model.mutate(&mut rng, &anc, &bg);
            let b = model.mutate(&mut rng, &anc, &bg);
            if evaluate_pair(&aligner, &mut ws, &a, &b, &crit).accepted() {
                accepted += 1;
            }
        }
        assert!(
            accepted as f64 / trials as f64 > 0.7,
            "core pairs accepted: {accepted}/{trials}"
        );
    }

    #[test]
    fn short_score_rejected_first() {
        let a = encode(b"MKV").unwrap();
        let mut ws = Workspace::new();
        let v = evaluate_pair(&sw(), &mut ws, &a, &a, &AcceptCriteria::homology_default());
        assert_eq!(v, PairVerdict::RejectScore);
    }

    #[test]
    fn strict_mode_rejects_low_coverage() {
        // A short perfect core inside two otherwise unrelated long sequences:
        // good score density of the core region, bad coverage.
        let mut rng = StdRng::seed_from_u64(4);
        let bg = BackgroundSampler::new();
        let core = bg.sample_seq(&mut rng, 40);
        let mut a = bg.sample_seq(&mut rng, 120);
        let mut b = bg.sample_seq(&mut rng, 120);
        a.extend_from_slice(&core);
        b.extend_from_slice(&core);
        let crit = AcceptCriteria {
            min_score: 50,
            min_score_density: 0.0,
            min_identity: 0.0,
            min_coverage: 0.8,
            strict: true,
        };
        let mut ws = Workspace::new();
        let v = evaluate_pair(&sw(), &mut ws, &a, &b, &crit);
        assert_eq!(v, PairVerdict::RejectCoverage);
    }

    #[test]
    fn evaluate_alignment_identity_gate() {
        let aln = Alignment {
            score: 1_000,
            identities: 10,
            length: 100,
            query_range: (0, 100),
            target_range: (0, 100),
        };
        let crit = AcceptCriteria {
            min_score: 0,
            min_score_density: 0.0,
            min_identity: 0.5,
            min_coverage: 0.0,
            strict: true,
        };
        assert_eq!(
            evaluate_alignment(&aln, 100, 100, &crit),
            PairVerdict::RejectIdentity
        );
    }
}
