//! Position-specific scoring matrices (PSSMs) and profile–sequence search.
//!
//! The GOS study expanded its clustered "core sets" into full protein
//! families "through profile-sequence and profile-profile matching
//! techniques", and the paper leans on that to explain Table III's low
//! sensitivities: "sequence-sequence based matching is less sensitive
//! comparing to the profile-based matching techniques". This module
//! implements that expansion machinery so the effect is demonstrable:
//!
//! * [`Pssm::from_members`] — build a profile from a cluster by *star
//!   alignment*: every member is Smith–Waterman-aligned to a reference
//!   (the longest member), and aligned residues accumulate per-position
//!   counts, converted to log-odds scores against the background
//!   distribution with pseudocounts.
//! * [`Pssm::best_local_score`] — profile–sequence local alignment
//!   (Smith–Waterman with position-specific match scores).
//! * [`expand_cluster`] — recruit candidate sequences whose profile score
//!   clears a per-position threshold, the family-expansion step.

use crate::sw::{GapPenalties, SmithWaterman};
use gpclust_seqsim::alphabet::{ALPHABET_SIZE, BACKGROUND_FREQS};

/// A position-specific scoring matrix in half-bit-like integer scores.
#[derive(Debug, Clone)]
pub struct Pssm {
    /// `scores[pos][residue]` — log-odds score of `residue` at `pos`.
    scores: Vec<[i16; ALPHABET_SIZE]>,
    /// Number of member sequences the profile was built from.
    n_members: usize,
}

impl Pssm {
    /// Build a PSSM from cluster members via star alignment against the
    /// longest member. `pseudocount` smooths unseen residues (0.5–1.0 is
    /// typical).
    ///
    /// Returns `None` if `members` is empty.
    pub fn from_members<S: AsRef<[u8]>>(
        members: &[S],
        sw: &SmithWaterman,
        pseudocount: f64,
    ) -> Option<Pssm> {
        let reference = members
            .iter()
            .max_by_key(|s| s.as_ref().len())?
            .as_ref()
            .to_vec();
        if reference.is_empty() {
            return None;
        }
        let mut counts = vec![[0.0f64; ALPHABET_SIZE]; reference.len()];
        // The reference aligns to itself trivially; others via SW paths.
        for (pos, &res) in reference.iter().enumerate() {
            counts[pos][res as usize] += 1.0;
        }
        for m in members {
            let m = m.as_ref();
            if m == reference.as_slice() {
                continue;
            }
            let (_, path) = sw.align_with_path(&reference, m);
            for (ref_pos, mem_pos) in path {
                counts[ref_pos][m[mem_pos] as usize] += 1.0;
            }
        }
        // Log-odds vs the background, scaled ×2 ("half-bit" style) into i16.
        let scores = counts
            .iter()
            .map(|col| {
                let total: f64 = col.iter().sum::<f64>() + pseudocount * ALPHABET_SIZE as f64;
                let mut row = [0i16; ALPHABET_SIZE];
                for (r, score) in row.iter_mut().enumerate() {
                    let p = (col[r] + pseudocount) / total;
                    let odds = p / BACKGROUND_FREQS[r];
                    *score = (2.0 * odds.ln() / std::f64::consts::LN_2)
                        .round()
                        .clamp(i16::MIN as f64, i16::MAX as f64)
                        as i16;
                }
                row
            })
            .collect();
        Some(Pssm {
            scores,
            n_members: members.len(),
        })
    }

    /// Profile length (positions).
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True if the profile has no positions.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Number of sequences the profile was built from.
    pub fn n_members(&self) -> usize {
        self.n_members
    }

    /// Score of `residue` at `pos`.
    #[inline]
    pub fn score_at(&self, pos: usize, residue: u8) -> i16 {
        self.scores[pos][residue as usize]
    }

    /// Best local profile–sequence alignment score (Smith–Waterman shape
    /// with position-specific substitution scores and affine gaps).
    pub fn best_local_score(&self, seq: &[u8], gaps: GapPenalties) -> i32 {
        if self.is_empty() || seq.is_empty() {
            return 0;
        }
        let m = seq.len();
        let go = gaps.open + gaps.extend;
        let ge = gaps.extend;
        let neg = i32::MIN / 2;
        let mut h = vec![0i32; m + 1];
        let mut e = vec![neg; m + 1];
        let mut best = 0i32;
        for row in &self.scores {
            let mut f = neg;
            let mut h_diag = 0i32;
            for j in 1..=m {
                let e_j = (e[j] - ge).max(h[j] - go);
                f = (f - ge).max(h[j - 1] - go);
                let mscore = h_diag + row[seq[j - 1] as usize] as i32;
                let hv = mscore.max(e_j).max(f).max(0);
                h_diag = h[j];
                h[j] = hv;
                e[j] = e_j;
                best = best.max(hv);
            }
        }
        best
    }
}

/// Recruit, from `candidates`, the indices whose profile–sequence score is
/// at least `min_score_per_position × min(profile_len, seq_len)` — the
/// GOS-style family-expansion step.
pub fn expand_cluster<S: AsRef<[u8]>>(
    pssm: &Pssm,
    candidates: &[S],
    gaps: GapPenalties,
    min_score_per_position: f64,
) -> Vec<usize> {
    candidates
        .iter()
        .enumerate()
        .filter(|(_, seq)| {
            let seq = seq.as_ref();
            if seq.is_empty() {
                return false;
            }
            let span = pssm.len().min(seq.len()) as f64;
            pssm.best_local_score(seq, gaps) as f64 >= min_score_per_position * span
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpclust_seqsim::alphabet::BackgroundSampler;
    use gpclust_seqsim::mutate::MutationModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn family(seed: u64, n: usize, divergence: &MutationModel) -> (Vec<Vec<u8>>, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bg = BackgroundSampler::new();
        let ancestor = bg.sample_seq(&mut rng, 120);
        let members = (0..n)
            .map(|_| divergence.mutate(&mut rng, &ancestor, &bg))
            .collect();
        (members, ancestor)
    }

    fn no_frag(mut m: MutationModel) -> MutationModel {
        m.fragment_prob = 0.0;
        m
    }

    #[test]
    fn profile_scores_members_highly() {
        let (members, _) = family(1, 8, &no_frag(MutationModel::family_default()));
        let sw = SmithWaterman::protein_default();
        let pssm = Pssm::from_members(&members, &sw, 0.5).unwrap();
        assert_eq!(pssm.n_members(), 8);
        assert!(pssm.len() >= 100);
        let gaps = GapPenalties::default();
        for m in &members {
            let per_pos = pssm.best_local_score(m, gaps) as f64 / m.len() as f64;
            assert!(per_pos > 1.5, "member scored only {per_pos:.2}/pos");
        }
    }

    #[test]
    fn profile_rejects_unrelated_sequences() {
        let (members, _) = family(2, 8, &no_frag(MutationModel::family_default()));
        let sw = SmithWaterman::protein_default();
        let pssm = Pssm::from_members(&members, &sw, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let bg = BackgroundSampler::new();
        let gaps = GapPenalties::default();
        for _ in 0..20 {
            let unrelated = bg.sample_seq(&mut rng, 120);
            let per_pos = pssm.best_local_score(&unrelated, gaps) as f64 / 120.0;
            assert!(per_pos < 1.0, "unrelated scored {per_pos:.2}/pos");
        }
    }

    /// The paper's core claim: profiles recruit divergent fringe members
    /// that sequence–sequence matching misses.
    #[test]
    fn profile_more_sensitive_than_pairwise_on_fringe() {
        let mut rng = StdRng::seed_from_u64(3);
        let bg = BackgroundSampler::new();
        let ancestor = bg.sample_seq(&mut rng, 140);
        let core_model = no_frag(MutationModel::family_default());
        // Twilight-zone fringe (~30 % identity): hard for pairwise
        // matching, where profile conservation signal still helps.
        let fringe_model = no_frag(MutationModel::fringe_default().scaled(1.2));
        let core: Vec<Vec<u8>> = (0..10)
            .map(|_| core_model.mutate(&mut rng, &ancestor, &bg))
            .collect();
        let fringe: Vec<Vec<u8>> = (0..30)
            .map(|_| fringe_model.mutate(&mut rng, &ancestor, &bg))
            .collect();
        let unrelated: Vec<Vec<u8>> = (0..30).map(|_| bg.sample_seq(&mut rng, 140)).collect();

        let sw = SmithWaterman::protein_default();
        let gaps = GapPenalties::default();
        let pssm = Pssm::from_members(&core, &sw, 0.5).unwrap();

        // The two scoring systems are not numerically comparable, so
        // sensitivity is compared as rank separability (AUC): the fraction
        // of (fringe, unrelated) pairs where the fringe member outranks the
        // unrelated sequence. Higher AUC = better fringe/noise separation
        // at *every* threshold.
        let profile_per_pos = |seq: &Vec<u8>| {
            pssm.best_local_score(seq, gaps) as f64 / pssm.len().min(seq.len()) as f64
        };
        let pairwise_per_pos = |seq: &Vec<u8>| {
            core.iter()
                .map(|c| sw.score(c, seq) as f64 / c.len().min(seq.len()) as f64)
                .fold(0.0f64, f64::max)
        };
        let auc = |score: &dyn Fn(&Vec<u8>) -> f64| {
            let fs: Vec<f64> = fringe.iter().map(score).collect();
            let us: Vec<f64> = unrelated.iter().map(score).collect();
            let wins = fs
                .iter()
                .flat_map(|f| us.iter().map(move |u| usize::from(f > u)))
                .sum::<usize>();
            wins as f64 / (fs.len() * us.len()) as f64
        };
        let profile_auc = auc(&profile_per_pos);
        let pairwise_auc = auc(&pairwise_per_pos);
        assert!(
            profile_auc >= pairwise_auc,
            "profile AUC {profile_auc:.3} < pairwise AUC {pairwise_auc:.3}"
        );

        // And at a zero-false-positive threshold the profile must still
        // recruit essentially the whole fringe.
        let profile_threshold = unrelated.iter().map(profile_per_pos).fold(0.0, f64::max) * 1.05;
        let profile_hits = expand_cluster(&pssm, &fringe, gaps, profile_threshold).len();
        let false_hits = expand_cluster(&pssm, &unrelated, gaps, profile_threshold).len();
        assert!(
            profile_hits * 10 >= fringe.len() * 9,
            "hits {profile_hits}/30"
        );
        assert_eq!(false_hits, 0, "profile must not recruit noise");
    }

    #[test]
    fn empty_inputs() {
        let sw = SmithWaterman::protein_default();
        assert!(Pssm::from_members::<Vec<u8>>(&[], &sw, 0.5).is_none());
        let (members, _) = family(4, 3, &no_frag(MutationModel::family_default()));
        let pssm = Pssm::from_members(&members, &sw, 0.5).unwrap();
        assert_eq!(pssm.best_local_score(&[], GapPenalties::default()), 0);
    }

    #[test]
    fn conserved_position_scores_higher_than_variable() {
        // Hand-built members: position 0 always residue 0; position 1
        // varies uniformly.
        let members: Vec<Vec<u8>> = (0..10u8).map(|i| vec![0, i % 20, 5, 5, 5, 5]).collect();
        let sw = SmithWaterman::protein_default();
        let pssm = Pssm::from_members(&members, &sw, 0.5).unwrap();
        assert!(pssm.score_at(0, 0) > pssm.score_at(1, 1));
    }
}
