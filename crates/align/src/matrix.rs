//! Amino-acid substitution matrices.
//!
//! The canonical BLOSUM62 matrix is stored in its standard NCBI residue
//! order (`ARNDCQEGHILKMFPSTWYV`) and permuted once, at construction time,
//! into this workspace's alphabetical residue coding (see
//! `gpclust_seqsim::alphabet`). Permuting programmatically — instead of
//! hand-reordering 210 entries — keeps the data verbatim from the published
//! table.

use gpclust_seqsim::alphabet::{letter_to_code, ALPHABET_SIZE};

/// NCBI residue order used by the raw BLOSUM62 table below.
const NCBI_ORDER: &[u8; 20] = b"ARNDCQEGHILKMFPSTWYV";

/// BLOSUM62, rows/columns in [`NCBI_ORDER`].
#[rustfmt::skip]
const BLOSUM62_RAW: [[i8; 20]; 20] = [
    // A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    [  4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0], // A
    [ -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3], // R
    [ -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3], // N
    [ -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3], // D
    [  0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1], // C
    [ -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2], // Q
    [ -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2], // E
    [  0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3], // G
    [ -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3], // H
    [ -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3], // I
    [ -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1], // L
    [ -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2], // K
    [ -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1], // M
    [ -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1], // F
    [ -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2], // P
    [  1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2], // S
    [  0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0], // T
    [ -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3], // W
    [ -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1], // Y
    [  0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4], // V
];

/// A 20×20 substitution matrix indexed by residue codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstitutionMatrix {
    scores: [[i16; ALPHABET_SIZE]; ALPHABET_SIZE],
    name: &'static str,
}

impl SubstitutionMatrix {
    /// The BLOSUM62 matrix, the default for protein homology searches (and
    /// the standard choice for BLAST-style metagenomic ORF comparison).
    pub fn blosum62() -> Self {
        let mut scores = [[0i16; ALPHABET_SIZE]; ALPHABET_SIZE];
        for (i, &ri) in NCBI_ORDER.iter().enumerate() {
            let ci = letter_to_code(ri).expect("NCBI order letter") as usize;
            for (j, &rj) in NCBI_ORDER.iter().enumerate() {
                let cj = letter_to_code(rj).expect("NCBI order letter") as usize;
                scores[ci][cj] = BLOSUM62_RAW[i][j] as i16;
            }
        }
        SubstitutionMatrix {
            scores,
            name: "BLOSUM62",
        }
    }

    /// A parametric match/mismatch matrix, useful for tests and for
    /// synthetic-data experiments where a biological matrix is overkill.
    pub fn uniform(match_score: i16, mismatch_score: i16) -> Self {
        let mut scores = [[mismatch_score; ALPHABET_SIZE]; ALPHABET_SIZE];
        for (i, row) in scores.iter_mut().enumerate() {
            row[i] = match_score;
        }
        SubstitutionMatrix {
            scores,
            name: "uniform",
        }
    }

    /// Score of aligning residue codes `a` against `b`.
    ///
    /// # Panics
    /// Panics if either code is out of range (debug builds index-check).
    #[inline(always)]
    pub fn score(&self, a: u8, b: u8) -> i16 {
        self.scores[a as usize][b as usize]
    }

    /// Row of scores against residue `a`; lets inner loops hoist one index.
    #[inline(always)]
    pub fn row(&self, a: u8) -> &[i16; ALPHABET_SIZE] {
        &self.scores[a as usize]
    }

    /// Human-readable matrix name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Maximum score in the matrix (the best possible per-residue score).
    pub fn max_score(&self) -> i16 {
        self.scores
            .iter()
            .flat_map(|r| r.iter().copied())
            .max()
            .expect("matrix is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blosum62_is_symmetric() {
        let m = SubstitutionMatrix::blosum62();
        for a in 0..ALPHABET_SIZE as u8 {
            for b in 0..ALPHABET_SIZE as u8 {
                assert_eq!(m.score(a, b), m.score(b, a), "asymmetry at ({a},{b})");
            }
        }
    }

    #[test]
    fn blosum62_spot_values() {
        let m = SubstitutionMatrix::blosum62();
        let code = |l: u8| letter_to_code(l).unwrap();
        // Values straight from the published table.
        assert_eq!(m.score(code(b'W'), code(b'W')), 11);
        assert_eq!(m.score(code(b'A'), code(b'A')), 4);
        assert_eq!(m.score(code(b'C'), code(b'C')), 9);
        assert_eq!(m.score(code(b'I'), code(b'L')), 2);
        assert_eq!(m.score(code(b'D'), code(b'E')), 2);
        assert_eq!(m.score(code(b'W'), code(b'P')), -4);
        assert_eq!(m.score(code(b'G'), code(b'I')), -4);
        assert_eq!(m.score(code(b'K'), code(b'R')), 2);
    }

    #[test]
    fn blosum62_diagonal_positive() {
        let m = SubstitutionMatrix::blosum62();
        for a in 0..ALPHABET_SIZE as u8 {
            assert!(m.score(a, a) > 0, "diagonal must be positive at {a}");
        }
    }

    #[test]
    fn blosum62_diagonal_dominates_row() {
        let m = SubstitutionMatrix::blosum62();
        for a in 0..ALPHABET_SIZE as u8 {
            for b in 0..ALPHABET_SIZE as u8 {
                if a != b {
                    assert!(m.score(a, a) > m.score(a, b));
                }
            }
        }
    }

    #[test]
    fn uniform_matrix() {
        let m = SubstitutionMatrix::uniform(5, -4);
        assert_eq!(m.score(0, 0), 5);
        assert_eq!(m.score(0, 1), -4);
        assert_eq!(m.max_score(), 5);
    }

    #[test]
    fn max_score_is_tryptophan_match() {
        let m = SubstitutionMatrix::blosum62();
        assert_eq!(m.max_score(), 11);
    }
}
