//! Banded Smith–Waterman.
//!
//! When a candidate pair comes from a shared k-mer seed, the optimal local
//! alignment almost always lies near the diagonal implied by the seed. A
//! banded scan restricted to `±band` around that diagonal costs
//! O(band · max(|a|,|b|)) instead of O(|a|·|b|), which matters when long
//! near-duplicate ORFs dominate a dataset. The band is a *lower bound*
//! filter: a banded score equals the unbanded score whenever the true
//! alignment fits in the band, and never exceeds it.

use crate::matrix::SubstitutionMatrix;
use crate::sw::GapPenalties;

/// A banded Smith–Waterman scorer.
#[derive(Debug, Clone)]
pub struct BandedSw {
    matrix: SubstitutionMatrix,
    gaps: GapPenalties,
    /// Half-width of the band around the anchor diagonal.
    band: usize,
}

impl BandedSw {
    /// Create a banded aligner with half-width `band`.
    pub fn new(matrix: SubstitutionMatrix, gaps: GapPenalties, band: usize) -> Self {
        assert!(band >= 1, "band must be at least 1");
        BandedSw { matrix, gaps, band }
    }

    /// Score `a` vs `b` within `±band` of the diagonal `diag = pos_a - pos_b`
    /// implied by a seed match at those positions.
    ///
    /// Cells outside the band are treated as unreachable (score −∞), so the
    /// result is a lower bound on the full Smith–Waterman score.
    pub fn score(&self, a: &[u8], b: &[u8], diag: isize) -> i32 {
        if a.is_empty() || b.is_empty() {
            return 0;
        }
        let m = b.len();
        let go = self.gaps.open + self.gaps.extend;
        let ge = self.gaps.extend;
        let neg = i32::MIN / 2;
        let band = self.band as isize;

        // Row-major banded DP with full-width rows for simplicity; cells
        // outside the band are masked to −∞. Memory is O(|b|).
        let mut h_prev = vec![neg; m + 1];
        let mut e = vec![neg; m + 1];
        let mut h_cur = vec![neg; m + 1];

        // Row 0: only columns near the band are startable (score 0).
        for (j, hp) in h_prev.iter_mut().enumerate() {
            let d = 0isize - j as isize;
            if (d - diag).abs() <= band {
                *hp = 0;
            }
        }

        let mut best = 0i32;
        for (i, &ra) in a.iter().enumerate() {
            let i = i + 1;
            let row = self.matrix.row(ra);
            let lo_i = (i as isize - diag - band).max(0);
            let hi_i = (i as isize - diag + band).min(m as isize);
            for c in h_cur.iter_mut() {
                *c = neg;
            }
            // Column 0 inside the band can restart at 0.
            if lo_i == 0 {
                h_cur[0] = 0;
            }
            if lo_i > hi_i {
                std::mem::swap(&mut h_prev, &mut h_cur);
                continue;
            }
            let (lo, hi) = (lo_i as usize, hi_i as usize);
            let mut f = neg;
            for j in lo.max(1)..=hi {
                let e_j = (e[j] - ge).max(h_prev[j] - go);
                f = (f - ge).max(h_cur[j - 1] - go);
                let diag_h = if h_prev[j - 1] > neg / 2 {
                    h_prev[j - 1] + row[b[j - 1] as usize] as i32
                } else {
                    neg
                };
                let h = diag_h.max(e_j).max(f).max(0);
                h_cur[j] = h;
                e[j] = e_j;
                if h > best {
                    best = h;
                }
            }
            std::mem::swap(&mut h_prev, &mut h_cur);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::SmithWaterman;
    use gpclust_seqsim::alphabet::encode;

    fn seq(s: &[u8]) -> Vec<u8> {
        encode(s).unwrap()
    }

    fn full() -> SmithWaterman {
        SmithWaterman::protein_default()
    }

    fn banded(band: usize) -> BandedSw {
        BandedSw::new(
            SubstitutionMatrix::blosum62(),
            GapPenalties::default(),
            band,
        )
    }

    #[test]
    fn wide_band_matches_full_sw() {
        let a = seq(b"MKVLAWGYACDEFGHIKL");
        let b = seq(b"MKVLWGYACPEFGHKL");
        let full_score = full().score(&a, &b);
        let banded_score = banded(32).score(&a, &b, 0);
        assert_eq!(banded_score, full_score);
    }

    #[test]
    fn band_never_exceeds_full_score() {
        let a = seq(b"MKVLAWGYACDEFGHIKLMNPQRSTVWY");
        let b = seq(b"ACDEFGHIKLMKVLAWGY");
        let full_score = full().score(&a, &b);
        for band in [1, 2, 4, 8, 16] {
            for diag in [-8isize, -2, 0, 2, 8] {
                let s = banded(band).score(&a, &b, diag);
                assert!(
                    s <= full_score,
                    "band {band} diag {diag}: {s} > {full_score}"
                );
            }
        }
    }

    #[test]
    fn identical_on_diagonal_zero() {
        let a = seq(b"MKVLAWGYMKVLAWGY");
        let s = banded(2).score(&a, &a, 0);
        assert_eq!(s, full().score(&a, &a));
    }

    #[test]
    fn offset_diagonal_found_with_matching_anchor() {
        // b is a with a 5-residue prefix removed: best diagonal is +5.
        let a = seq(b"ACDEFMKVLAWGYHIKLMNP");
        let b = seq(b"MKVLAWGYHIKLMNP");
        let full_score = full().score(&a, &b);
        let s = banded(2).score(&a, &b, 5);
        assert_eq!(s, full_score);
        // Diagonal 0 with a tight band misses the true alignment.
        let off = banded(1).score(&a, &b, 0);
        assert!(off < full_score);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(banded(4).score(&[], &seq(b"MK"), 0), 0);
        assert_eq!(banded(4).score(&seq(b"MK"), &[], 0), 0);
    }
}
