//! # gpclust-align — pairwise alignment substrate
//!
//! The pGraph phase of the paper's pipeline decides which sequence pairs are
//! homologous by (1) generating *promising pairs* with a maximal-match
//! heuristic and (2) running the optimality-guaranteeing Smith–Waterman
//! algorithm on those pairs. This crate provides both pieces:
//!
//! * [`matrix`] — substitution matrices (BLOSUM62 and parametric matrices).
//! * [`sw`] — Smith–Waterman local alignment with affine gap penalties:
//!   a linear-memory score-only kernel for the hot filter path and a full
//!   traceback variant that reports identity/coverage for acceptance rules.
//! * [`banded`] — banded Smith–Waterman for cheap re-scoring of long pairs.
//! * [`kmer`] — packed k-mer extraction (5 bits/residue).
//! * [`filter`] — the shared-k-mer candidate pair generator, the practical
//!   equivalent of pGraph's suffix-tree maximal-match filter (both enumerate
//!   exactly the pairs that share a long exact match).
//! * [`significance`] — the edge-acceptance rule (score, identity and
//!   coverage thresholds) that turns alignments into homology-graph edges.

pub mod banded;
pub mod evalue;
pub mod filter;
pub mod kmer;
pub mod matrix;
pub mod profile;
pub mod significance;
pub mod suffix;
pub mod sw;

pub use filter::{CandidatePairs, FilterConfig};
pub use matrix::SubstitutionMatrix;
pub use significance::{AcceptCriteria, PairVerdict};
pub use sw::{Alignment, GapPenalties, SmithWaterman};
