//! Karlin–Altschul statistics: λ, bit scores and E-values.
//!
//! The paper's edge criterion is "significant sequence similarity"; in
//! BLAST-world, significance means a Karlin–Altschul E-value. For an
//! ungapped local alignment scoring system (matrix `s`, background
//! residue frequencies `p`), the scale parameter λ is the unique positive
//! solution of
//!
//! ```text
//! Σ_ij  p_i · p_j · exp(λ · s_ij) = 1
//! ```
//!
//! and the expected number of alignments scoring ≥ S between sequences of
//! lengths m and n is `E = K·m·n·exp(−λS)`. This module solves λ by
//! bisection, converts raw scores to normalized bit scores, and offers an
//! E-value-based acceptance check as an alternative to the raw-score
//! thresholds in [`crate::significance`].

use crate::matrix::SubstitutionMatrix;
use gpclust_seqsim::alphabet::{ALPHABET_SIZE, BACKGROUND_FREQS};

/// Karlin–Altschul parameters for one scoring system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KarlinAltschul {
    /// Scale parameter λ (nats per score unit).
    pub lambda: f64,
    /// Search-space constant K.
    pub k: f64,
}

impl KarlinAltschul {
    /// Solve λ for `matrix` under `freqs`, pairing K with the classic
    /// ungapped BLOSUM62 value when the caller has no better calibration.
    ///
    /// # Panics
    /// Panics if the scoring system has a non-negative expected score
    /// (λ would not exist — the matrix is not usable for local alignment).
    pub fn for_matrix(matrix: &SubstitutionMatrix, freqs: &[f64; ALPHABET_SIZE]) -> Self {
        let expected: f64 = pairs(freqs)
            .map(|(i, j, pij)| pij * matrix.score(i, j) as f64)
            .sum();
        assert!(
            expected < 0.0,
            "expected score {expected:.4} must be negative for K-A statistics"
        );
        let lambda = solve_lambda(matrix, freqs);
        KarlinAltschul { lambda, k: 0.13 }
    }

    /// BLOSUM62 with Robinson–Robinson frequencies — the pipeline default.
    pub fn blosum62() -> Self {
        Self::for_matrix(&SubstitutionMatrix::blosum62(), &BACKGROUND_FREQS)
    }

    /// Normalized bit score: `(λ·S − ln K) / ln 2`.
    pub fn bit_score(&self, raw: i32) -> f64 {
        (self.lambda * raw as f64 - self.k.ln()) / std::f64::consts::LN_2
    }

    /// Expected alignments scoring ≥ `raw` in an `m × n` search space.
    pub fn evalue(&self, raw: i32, m: usize, n: usize) -> f64 {
        self.k * m as f64 * n as f64 * (-self.lambda * raw as f64).exp()
    }

    /// Significance check: is the E-value below `max_evalue`?
    pub fn significant(&self, raw: i32, m: usize, n: usize, max_evalue: f64) -> bool {
        self.evalue(raw, m, n) <= max_evalue
    }
}

fn pairs(freqs: &[f64; ALPHABET_SIZE]) -> impl Iterator<Item = (u8, u8, f64)> + '_ {
    (0..ALPHABET_SIZE as u8).flat_map(move |i| {
        (0..ALPHABET_SIZE as u8).map(move |j| (i, j, freqs[i as usize] * freqs[j as usize]))
    })
}

/// `f(λ) = Σ p_i p_j e^{λ s_ij} − 1`: negative at 0⁺ (expected score < 0),
/// grows without bound — bisection between brackets.
fn ka_f(matrix: &SubstitutionMatrix, freqs: &[f64; ALPHABET_SIZE], lambda: f64) -> f64 {
    pairs(freqs)
        .map(|(i, j, pij)| pij * (lambda * matrix.score(i, j) as f64).exp())
        .sum::<f64>()
        - 1.0
}

fn solve_lambda(matrix: &SubstitutionMatrix, freqs: &[f64; ALPHABET_SIZE]) -> f64 {
    // Bracket: f(ε) < 0; expand hi until f(hi) > 0.
    let mut lo = 1e-6;
    let mut hi = 0.5;
    while ka_f(matrix, freqs, hi) < 0.0 {
        hi *= 2.0;
        assert!(hi < 64.0, "failed to bracket lambda");
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if ka_f(matrix, freqs, mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpclust_seqsim::alphabet::BackgroundSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blosum62_lambda_matches_published_value() {
        // Ungapped BLOSUM62 λ ≈ 0.318 nats (NCBI's tabulated value is
        // 0.3176 with slightly different background frequencies).
        let ka = KarlinAltschul::blosum62();
        assert!((0.30..0.34).contains(&ka.lambda), "lambda = {}", ka.lambda);
        // Verify it actually solves the K-A identity.
        let f = ka_f(
            &SubstitutionMatrix::blosum62(),
            &BACKGROUND_FREQS,
            ka.lambda,
        );
        assert!(f.abs() < 1e-9, "identity residual {f}");
    }

    #[test]
    fn evalue_monotonicity() {
        let ka = KarlinAltschul::blosum62();
        // Higher scores → lower E-values; bigger search spaces → higher.
        assert!(ka.evalue(100, 100, 100) > ka.evalue(120, 100, 100));
        assert!(ka.evalue(100, 1000, 1000) > ka.evalue(100, 100, 100));
        assert!(ka.evalue(300, 200, 200) < 1e-20);
    }

    #[test]
    fn bit_scores_increase_linearly() {
        let ka = KarlinAltschul::blosum62();
        let b1 = ka.bit_score(50);
        let b2 = ka.bit_score(100);
        let b3 = ka.bit_score(150);
        assert!(((b3 - b2) - (b2 - b1)).abs() < 1e-9);
        assert!(b2 > b1);
    }

    #[test]
    fn random_pairs_are_insignificant_related_are_significant() {
        let mut rng = StdRng::seed_from_u64(3);
        let bg = BackgroundSampler::new();
        let sw = crate::sw::SmithWaterman::protein_default();
        let ka = KarlinAltschul::blosum62();
        let n = 150;
        // Unrelated: E-value at the observed score should be large-ish.
        let mut sig_random = 0;
        for _ in 0..20 {
            let a = bg.sample_seq(&mut rng, n);
            let b = bg.sample_seq(&mut rng, n);
            if ka.significant(sw.score(&a, &b), n, n, 1e-6) {
                sig_random += 1;
            }
        }
        assert_eq!(sig_random, 0, "random pairs at E<=1e-6");
        // Identical sequences: overwhelmingly significant.
        let a = bg.sample_seq(&mut rng, n);
        assert!(ka.significant(sw.score(&a, &a), n, n, 1e-6));
    }

    #[test]
    #[should_panic(expected = "must be negative")]
    fn rejects_positive_expected_score() {
        let m = SubstitutionMatrix::uniform(5, 1); // all-positive scores
        KarlinAltschul::for_matrix(&m, &BACKGROUND_FREQS);
    }

    #[test]
    fn uniform_matrix_lambda_solves_identity() {
        let m = SubstitutionMatrix::uniform(1, -1);
        let ka = KarlinAltschul::for_matrix(&m, &BACKGROUND_FREQS);
        assert!(ka.lambda > 0.0);
        assert!(ka_f(&m, &BACKGROUND_FREQS, ka.lambda).abs() < 1e-9);
    }
}
