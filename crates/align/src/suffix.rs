//! Suffix-array maximal-match filtering — pGraph's stated machinery.
//!
//! pGraph generates promising pairs "based on a maximal-matching heuristic
//! (suffix trees are used in our implementation to identify such pairs)".
//! The [`crate::filter`] module substitutes a k-mer index; this module
//! implements the suffix-structure route itself, over a **generalized
//! suffix array** (prefix-doubling construction + Kasai LCP):
//!
//! 1. concatenate all sequences with unique separators;
//! 2. build the suffix array and LCP array;
//! 3. every maximal interval of the SA with `LCP ≥ ψ` groups suffixes
//!    sharing a ψ-length exact match — emit the sequence pairs it covers.
//!
//! A pair of sequences shares a maximal match of length ≥ ψ **iff** it
//! shares any ψ-mer, so this filter and the k-mer filter produce exactly
//! the same candidate set (property-tested) — the classical argument for
//! the engineering substitution, demonstrated rather than assumed.

use crate::filter::CandidatePairs;
use serde::{Deserialize, Serialize};

/// Configuration of the suffix-array filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuffixFilterConfig {
    /// Minimum exact-match length ψ.
    pub min_match: usize,
    /// Skip SA intervals covering more than this many suffixes
    /// (low-complexity control, mirroring the k-mer bucket cap).
    pub max_interval: usize,
}

impl Default for SuffixFilterConfig {
    fn default() -> Self {
        SuffixFilterConfig {
            min_match: 5,
            max_interval: 10_000,
        }
    }
}

/// Build the suffix array of `text` by prefix doubling (O(n log² n)).
pub fn suffix_array(text: &[u32]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut rank: Vec<u64> = text.iter().map(|&c| c as u64).collect();
    let mut tmp: Vec<u64> = vec![0; n];
    let mut k = 1usize;
    loop {
        let key = |i: u32| -> (u64, u64) {
            let i = i as usize;
            let second = if i + k < n { rank[i + k] + 1 } else { 0 };
            (rank[i], second)
        };
        sa.sort_unstable_by_key(|&i| key(i));
        // Re-rank.
        tmp[sa[0] as usize] = 0;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            tmp[cur as usize] = tmp[prev as usize] + u64::from(key(prev) != key(cur));
        }
        rank.copy_from_slice(&tmp);
        if rank[sa[n - 1] as usize] == (n - 1) as u64 {
            break;
        }
        k *= 2;
    }
    sa
}

/// Kasai's LCP construction: `lcp[i]` = longest common prefix of
/// `sa[i-1]` and `sa[i]` (with `lcp[0] = 0`).
pub fn lcp_array(text: &[u32], sa: &[u32]) -> Vec<u32> {
    let n = text.len();
    let mut lcp = vec![0u32; n];
    if n == 0 {
        return lcp;
    }
    let mut rank = vec![0u32; n];
    for (i, &s) in sa.iter().enumerate() {
        rank[s as usize] = i as u32;
    }
    let mut h = 0usize;
    for i in 0..n {
        let r = rank[i] as usize;
        if r > 0 {
            let j = sa[r - 1] as usize;
            while i + h < n && j + h < n && text[i + h] == text[j + h] {
                h += 1;
            }
            lcp[r] = h as u32;
            h = h.saturating_sub(1);
        } else {
            h = 0;
        }
    }
    lcp
}

/// Generalized text: sequences separated by unique sentinels above the
/// residue alphabet, plus the suffix → sequence-id map.
fn generalized_text<S: AsRef<[u8]>>(seqs: &[S]) -> (Vec<u32>, Vec<u32>) {
    let total: usize = seqs.iter().map(|s| s.as_ref().len() + 1).sum();
    let mut text = Vec::with_capacity(total);
    let mut owner = Vec::with_capacity(total);
    for (id, s) in seqs.iter().enumerate() {
        for &r in s.as_ref() {
            debug_assert!(r < 32);
            text.push(r as u32);
            owner.push(id as u32);
        }
        // Unique separator per sequence: never matches anything else.
        text.push(1_000 + id as u32);
        owner.push(id as u32);
    }
    (text, owner)
}

/// Candidate pairs via the generalized suffix array: all pairs of distinct
/// sequences sharing an exact match of length ≥ ψ.
pub fn candidate_pairs_suffix<S: AsRef<[u8]>>(
    seqs: &[S],
    config: &SuffixFilterConfig,
) -> CandidatePairs {
    assert!(config.min_match >= 1);
    let (text, owner) = generalized_text(seqs);
    let sa = suffix_array(&text);
    let lcp = lcp_array(&text, &sa);

    // Maximal runs where consecutive-suffix LCP ≥ ψ: all suffixes in a run
    // (including the one before the first qualifying lcp entry) share a
    // ψ-prefix; emit the distinct owner pairs of each run.
    let psi = config.min_match as u32;
    let mut packed: Vec<u64> = Vec::new();
    let mut skipped = 0usize;
    let mut run: Vec<u32> = Vec::new(); // owner ids in the current run
    let n = text.len();
    let mut i = 1usize;
    while i <= n {
        if i < n && lcp[i] >= psi {
            if run.is_empty() {
                run.push(owner[sa[i - 1] as usize]);
            }
            run.push(owner[sa[i] as usize]);
        } else if !run.is_empty() {
            flush_run(&mut run, config.max_interval, &mut packed, &mut skipped);
        }
        i += 1;
    }
    flush_run(&mut run, config.max_interval, &mut packed, &mut skipped);

    packed.sort_unstable();
    packed.dedup();
    CandidatePairs::from_packed(packed, skipped)
}

fn flush_run(run: &mut Vec<u32>, cap: usize, packed: &mut Vec<u64>, skipped: &mut usize) {
    if run.is_empty() {
        return;
    }
    if run.len() > cap {
        *skipped += 1;
        run.clear();
        return;
    }
    run.sort_unstable();
    run.dedup();
    for x in 0..run.len() {
        for y in x + 1..run.len() {
            packed.push(((run[x] as u64) << 32) | run[y] as u64);
        }
    }
    run.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{candidate_pairs, FilterConfig};
    use gpclust_seqsim::alphabet::encode;

    #[test]
    fn suffix_array_matches_naive() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![3],
            vec![1, 1, 1, 1],
            vec![2, 1, 3, 1, 2, 1],
            b"banana".iter().map(|&b| b as u32).collect(),
        ];
        for text in cases {
            let sa = suffix_array(&text);
            let mut naive: Vec<u32> = (0..text.len() as u32).collect();
            naive.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
            assert_eq!(sa, naive, "text {text:?}");
        }
    }

    #[test]
    fn lcp_matches_naive() {
        let text: Vec<u32> = b"mississippi".iter().map(|&b| b as u32).collect();
        let sa = suffix_array(&text);
        let lcp = lcp_array(&text, &sa);
        for i in 1..sa.len() {
            let a = &text[sa[i - 1] as usize..];
            let b = &text[sa[i] as usize..];
            let naive = a.iter().zip(b).take_while(|(x, y)| x == y).count();
            assert_eq!(lcp[i] as usize, naive, "position {i}");
        }
        assert_eq!(lcp[0], 0);
    }

    #[test]
    fn finds_shared_match_pairs() {
        let seqs: Vec<Vec<u8>> = [b"MKVLAWGY".as_slice(), b"ACDMKVLA", b"WYTSRQPN"]
            .iter()
            .map(|s| encode(s).unwrap())
            .collect();
        let cp = candidate_pairs_suffix(
            &seqs,
            &SuffixFilterConfig {
                min_match: 5,
                max_interval: 1000,
            },
        );
        assert_eq!(cp.as_slice(), &[(0, 1)]);
    }

    #[test]
    fn equals_kmer_filter_on_random_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..5 {
            let seqs: Vec<Vec<u8>> = (0..30)
                .map(|_| {
                    (0..rng.gen_range(0..60))
                        .map(|_| rng.gen_range(0..20u8))
                        .collect()
                })
                .collect();
            for psi in [2usize, 3, 4] {
                let sa_pairs = candidate_pairs_suffix(
                    &seqs,
                    &SuffixFilterConfig {
                        min_match: psi,
                        max_interval: usize::MAX,
                    },
                );
                let kmer_pairs = candidate_pairs(
                    &seqs,
                    &FilterConfig {
                        k: psi,
                        max_bucket: usize::MAX,
                    },
                );
                assert_eq!(
                    sa_pairs.as_slice(),
                    kmer_pairs.as_slice(),
                    "trial {trial}, psi {psi}: maximal-match and k-mer filters \
                     must produce identical pair sets"
                );
            }
        }
    }

    #[test]
    fn separators_block_cross_sequence_matches() {
        // Two sequences that would chain through concatenation but share
        // nothing: "AAAB" + "BAAA" — the 4-mer "ABBA" must not arise.
        let seqs: Vec<Vec<u8>> = [b"AAACD".as_slice(), b"CDAAA"]
            .iter()
            .map(|s| encode(s).unwrap())
            .collect();
        let cp = candidate_pairs_suffix(
            &seqs,
            &SuffixFilterConfig {
                min_match: 4,
                max_interval: 1000,
            },
        );
        assert!(cp.is_empty(), "no shared 4-mer exists: {:?}", cp.as_slice());
    }

    #[test]
    fn interval_cap_skips_low_complexity() {
        let seqs: Vec<Vec<u8>> = (0..6).map(|_| vec![0u8; 30]).collect(); // poly-A
        let capped = candidate_pairs_suffix(
            &seqs,
            &SuffixFilterConfig {
                min_match: 4,
                max_interval: 5,
            },
        );
        assert!(capped.is_empty());
        assert!(capped.skipped_buckets > 0);
    }

    #[test]
    fn empty_input() {
        let cp = candidate_pairs_suffix::<Vec<u8>>(&[], &SuffixFilterConfig::default());
        assert!(cp.is_empty());
    }
}
