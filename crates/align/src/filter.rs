//! Candidate-pair generation via shared exact k-mers.
//!
//! pGraph identifies "promising pairs" with a suffix-tree maximal-match
//! heuristic: a pair is promising if the two sequences share an exact match
//! of length ≥ ψ. Enumerating pairs that share *any exact k-mer with k = ψ*
//! yields the identical pair set (every maximal match of length ≥ ψ contains
//! a ψ-mer, and every shared ψ-mer lies inside some maximal match of length
//! ≥ ψ), so a sorted k-mer index is the standard practical substitution.
//!
//! Two well-known guards keep the pair list near-linear in practice:
//!
//! * **bucket cap** — k-mers occurring in more than `max_bucket` sequences
//!   (low-complexity or repeat-derived) are skipped, exactly as seed-based
//!   aligners mask over-represented seeds;
//! * **per-sequence dedup** — each (k-mer, sequence) is indexed once, so a
//!   repeated k-mer inside one sequence cannot multiply pairs.

use crate::kmer::{KmerIter, PackedKmer};
use serde::{Deserialize, Serialize};

/// Configuration of the candidate filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterConfig {
    /// Exact-match length threshold ψ (the k of the k-mer index).
    pub k: usize,
    /// Skip k-mers present in more than this many sequences.
    pub max_bucket: usize,
}

impl Default for FilterConfig {
    fn default() -> Self {
        // ψ = 5 gives high sensitivity for ~40 % identity ORF pairs of
        // length ~100; buckets above 2·√n-ish sizes are low-complexity noise.
        FilterConfig {
            k: 5,
            max_bucket: 2_000,
        }
    }
}

/// Deduplicated candidate pairs `(i, j)` with `i < j`.
#[derive(Debug, Clone, Default)]
pub struct CandidatePairs {
    pairs: Vec<(u32, u32)>,
    /// Number of k-mer buckets skipped by the bucket cap.
    pub skipped_buckets: usize,
}

impl CandidatePairs {
    /// The pairs, sorted ascending, `i < j`, no duplicates.
    pub fn as_slice(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no candidates were found.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<(u32, u32)> {
        self.pairs
    }

    /// Build from packed `(a << 32 | b)` pairs, already sorted + deduped
    /// with `a < b` (used by the suffix-array filter).
    pub fn from_packed(packed: Vec<u64>, skipped_buckets: usize) -> Self {
        debug_assert!(packed.windows(2).all(|w| w[0] < w[1]));
        CandidatePairs {
            pairs: packed
                .into_iter()
                .map(|p| ((p >> 32) as u32, p as u32))
                .collect(),
            skipped_buckets,
        }
    }
}

/// Generate candidate pairs among `seqs` (residue-code slices).
///
/// Sequence ids are the indices into `seqs` (must fit `u32`).
pub fn candidate_pairs<S: AsRef<[u8]>>(seqs: &[S], config: &FilterConfig) -> CandidatePairs {
    assert!(seqs.len() <= u32::MAX as usize, "too many sequences");

    // (kmer, seq) postings, one per distinct k-mer per sequence.
    let mut postings: Vec<(PackedKmer, u32)> = Vec::new();
    let mut per_seq: Vec<PackedKmer> = Vec::new();
    for (id, s) in seqs.iter().enumerate() {
        per_seq.clear();
        per_seq.extend(KmerIter::new(s.as_ref(), config.k).map(|(_, v)| v));
        per_seq.sort_unstable();
        per_seq.dedup();
        postings.extend(per_seq.iter().map(|&v| (v, id as u32)));
    }
    postings.sort_unstable();

    // Emit all intra-bucket pairs, subject to the bucket cap.
    let mut packed_pairs: Vec<u64> = Vec::new();
    let mut skipped = 0usize;
    let mut start = 0;
    while start < postings.len() {
        let kv = postings[start].0;
        let mut end = start + 1;
        while end < postings.len() && postings[end].0 == kv {
            end += 1;
        }
        let bucket = &postings[start..end];
        if bucket.len() > config.max_bucket {
            skipped += 1;
        } else {
            for (x, &(_, a)) in bucket.iter().enumerate() {
                for &(_, b) in &bucket[x + 1..] {
                    // postings sorted by (kmer, id) → a < b within a bucket
                    packed_pairs.push(((a as u64) << 32) | b as u64);
                }
            }
        }
        start = end;
    }
    packed_pairs.sort_unstable();
    packed_pairs.dedup();

    let pairs = packed_pairs
        .into_iter()
        .map(|p| ((p >> 32) as u32, p as u32))
        .collect();
    CandidatePairs {
        pairs,
        skipped_buckets: skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpclust_seqsim::alphabet::encode;

    fn seqs(list: &[&[u8]]) -> Vec<Vec<u8>> {
        list.iter().map(|s| encode(s).unwrap()).collect()
    }

    #[test]
    fn shared_kmer_produces_pair() {
        let s = seqs(&[b"MKVLAWGY", b"ACDMKVLA", b"WYTSRQPN"]);
        let cfg = FilterConfig {
            k: 5,
            max_bucket: 100,
        };
        let cp = candidate_pairs(&s, &cfg);
        assert_eq!(cp.as_slice(), &[(0, 1)]);
    }

    #[test]
    fn no_shared_kmer_no_pairs() {
        let s = seqs(&[b"AAAAAA", b"CCCCCC", b"DDDDDD"]);
        let cp = candidate_pairs(
            &s,
            &FilterConfig {
                k: 4,
                max_bucket: 100,
            },
        );
        assert!(cp.is_empty());
    }

    #[test]
    fn pairs_are_canonical_and_deduped() {
        // Two sequences sharing many k-mers must still yield one pair.
        let s = seqs(&[b"MKVLAWGYMKVLAWGY", b"MKVLAWGYMKVLAWGY"]);
        let cp = candidate_pairs(
            &s,
            &FilterConfig {
                k: 4,
                max_bucket: 100,
            },
        );
        assert_eq!(cp.as_slice(), &[(0, 1)]);
    }

    #[test]
    fn bucket_cap_skips_hub_kmers() {
        // Five sequences all sharing one k-mer; cap of 4 suppresses it.
        let s = seqs(&[b"MKVLA", b"MKVLC", b"MKVLD", b"MKVLE", b"MKVLF"]);
        let capped = candidate_pairs(
            &s,
            &FilterConfig {
                k: 4,
                max_bucket: 4,
            },
        );
        assert!(capped.is_empty());
        assert_eq!(capped.skipped_buckets, 1);
        let uncapped = candidate_pairs(
            &s,
            &FilterConfig {
                k: 4,
                max_bucket: 5,
            },
        );
        assert_eq!(uncapped.len(), 10); // C(5,2)
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let seqs: Vec<Vec<u8>> = (0..40)
            .map(|_| (0..30).map(|_| rng.gen_range(0..20u8)).collect())
            .collect();
        let k = 3;
        let cp = candidate_pairs(
            &seqs,
            &FilterConfig {
                k,
                max_bucket: usize::MAX,
            },
        );
        // Brute force: pair iff k-mer sets intersect.
        let sets: Vec<std::collections::HashSet<u64>> = seqs
            .iter()
            .map(|s| crate::kmer::kmers(s, k).into_iter().collect())
            .collect();
        let mut expect = Vec::new();
        for i in 0..seqs.len() {
            for j in i + 1..seqs.len() {
                if !sets[i].is_disjoint(&sets[j]) {
                    expect.push((i as u32, j as u32));
                }
            }
        }
        assert_eq!(cp.as_slice(), expect.as_slice());
    }

    #[test]
    fn sequences_shorter_than_k_are_ignored() {
        let s = seqs(&[b"MK", b"MKVLAWGY", b"MKVLAWGY"]);
        let cp = candidate_pairs(
            &s,
            &FilterConfig {
                k: 5,
                max_bucket: 100,
            },
        );
        assert_eq!(cp.as_slice(), &[(1, 2)]);
    }

    #[test]
    fn empty_input() {
        let cp = candidate_pairs::<Vec<u8>>(&[], &FilterConfig::default());
        assert!(cp.is_empty());
    }
}
