//! Device global memory: capacity-enforced buffers.
//!
//! The Tesla K20's 5 GB device memory is the constraint that shapes
//! gpClust's design ("to process the large-scale input graph on the
//! relative small device memory, the input graph ... can be partitioned
//! into batches"). Buffers here live in host RAM, but every allocation is
//! charged against the configured capacity and fails with
//! [`DeviceError::OutOfMemory`] when it would not have fit on the card —
//! so the batching logic upstream is exercised exactly as on hardware.

use crate::simt::{Gpu, Shared};
use std::sync::Arc;

/// Element types storable in device buffers (plain old data).
pub trait Pod: Copy + Send + Sync + 'static {}
impl<T: Copy + Send + Sync + 'static> Pod for T {}

/// Errors raised by the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// An allocation exceeded the remaining device memory.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Bytes still available on the device.
        available: usize,
        /// Total device capacity.
        capacity: usize,
    },
    /// A kernel requested more per-block shared memory than the device has.
    SharedMemExceeded {
        /// Bytes requested per block.
        requested: usize,
        /// Per-block shared memory capacity.
        capacity: usize,
    },
    /// A host↔device copy failed (transient — retryable).
    TransferFailed {
        /// True for host→device, false for device→host.
        h2d: bool,
        /// Bytes the failed copy was moving.
        bytes: usize,
    },
    /// A kernel failed to launch (transient — retryable).
    LaunchFailed,
    /// An uncorrectable ECC memory event (transient — the operation can
    /// be retried on freshly written data).
    Ecc,
    /// The device fell off the bus; terminal for this device.
    DeviceLost {
        /// Index of the lost device.
        device: u32,
    },
    /// A host-side scratch-file operation failed (the out-of-core spill
    /// path). Not a device fault at all — surfaced through the same error
    /// channel because the drivers treat "the pass cannot finish" uniformly.
    HostIo {
        /// The underlying I/O error, rendered to text.
        detail: String,
    },
}

impl DeviceError {
    /// True for faults that a bounded retry of the same operation can
    /// plausibly clear (transfer, launch, ECC). `OutOfMemory` wants a
    /// smaller plan, not a retry; `DeviceLost` is terminal.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DeviceError::TransferFailed { .. } | DeviceError::LaunchFailed | DeviceError::Ecc
        )
    }
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::OutOfMemory {
                requested,
                available,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B, {available} B \
                 free of {capacity} B"
            ),
            DeviceError::SharedMemExceeded {
                requested,
                capacity,
            } => write!(
                f,
                "per-block shared memory exceeded: requested {requested} B of \
                 {capacity} B"
            ),
            DeviceError::TransferFailed { h2d, bytes } => write!(
                f,
                "{} transfer of {bytes} B failed",
                if *h2d {
                    "host-to-device"
                } else {
                    "device-to-host"
                }
            ),
            DeviceError::LaunchFailed => write!(f, "kernel launch failed"),
            DeviceError::Ecc => write!(f, "uncorrectable ECC memory error"),
            DeviceError::DeviceLost { device } => {
                write!(f, "device {device} lost (fell off the bus)")
            }
            DeviceError::HostIo { detail } => {
                write!(f, "host spill I/O failed: {detail}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// A typed allocation in simulated device global memory.
///
/// Host code cannot read it directly (use [`Gpu::dtoh`]); kernels access it
/// via the thrust primitives. Dropping the buffer frees its device bytes.
pub struct DeviceBuffer<T: Pod> {
    pub(crate) data: Vec<T>,
    bytes: usize,
    shared: Arc<Shared>,
}

impl<T: Pod> DeviceBuffer<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in device bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Kernel-side view of the data. Exposed for custom kernels; host logic
    /// should move data with [`Gpu::dtoh`] so transfer costs are accounted.
    pub fn device_slice(&self) -> &[T] {
        &self.data
    }

    /// Kernel-side mutable view of the data.
    pub fn device_slice_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Pod> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.shared.counters.free(self.bytes);
    }
}

impl<T: Pod> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("len", &self.data.len())
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl Gpu {
    /// Bytes currently free on the device.
    pub fn mem_available(&self) -> usize {
        self.shared
            .config
            .global_mem_bytes
            .saturating_sub(self.shared.counters.used())
    }

    /// Allocate an uninitialized-content buffer of `len` elements
    /// (zero-filled; real CUDA leaves garbage, but determinism wins here).
    pub fn alloc<T: Pod + Default>(&self, len: usize) -> Result<DeviceBuffer<T>, DeviceError> {
        let bytes = len * std::mem::size_of::<T>();
        self.try_reserve(bytes)?;
        Ok(DeviceBuffer {
            data: vec![T::default(); len],
            bytes,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Internal: check capacity and account the allocation.
    pub(crate) fn try_reserve(&self, bytes: usize) -> Result<(), DeviceError> {
        if let Some(e) = self.injected_fault(crate::fault::FaultSite::Alloc, bytes) {
            return Err(e);
        }
        let capacity = self.shared.config.global_mem_bytes;
        let used = self.shared.counters.used();
        let available = capacity.saturating_sub(used);
        if bytes > available {
            return Err(DeviceError::OutOfMemory {
                requested: bytes,
                available,
                capacity,
            });
        }
        self.shared.counters.alloc(bytes);
        Ok(())
    }

    /// Internal: wrap a host vector as a device buffer (used by transfers).
    pub(crate) fn adopt<T: Pod>(&self, data: Vec<T>) -> Result<DeviceBuffer<T>, DeviceError> {
        let bytes = data.len() * std::mem::size_of::<T>();
        self.try_reserve(bytes)?;
        Ok(DeviceBuffer {
            data,
            bytes,
            shared: Arc::clone(&self.shared),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn tiny_gpu() -> Gpu {
        Gpu::with_workers(DeviceConfig::tiny_test_device(), 1)
    }

    #[test]
    fn alloc_within_capacity() {
        let g = tiny_gpu();
        let buf = g.alloc::<u64>(1_000).unwrap(); // 8 KB of 64 KB
        assert_eq!(buf.len(), 1_000);
        assert_eq!(buf.bytes(), 8_000);
        assert_eq!(g.counters().mem_used, 8_000);
    }

    #[test]
    fn oom_when_capacity_exceeded() {
        let g = tiny_gpu();
        let err = g.alloc::<u64>(100_000).unwrap_err();
        match err {
            DeviceError::OutOfMemory {
                requested,
                capacity,
                ..
            } => {
                assert_eq!(requested, 800_000);
                assert_eq!(capacity, 64 * 1024);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn drop_frees_memory() {
        let g = tiny_gpu();
        {
            let _a = g.alloc::<u32>(4_000).unwrap(); // 16 KB
            let _b = g.alloc::<u32>(4_000).unwrap(); // 16 KB
            assert_eq!(g.counters().mem_used, 32_000);
            // A third 40 KB allocation must fail while both are live.
            assert!(g.alloc::<u32>(10_000).is_err());
        }
        assert_eq!(g.counters().mem_used, 0);
        // ... and succeed after both dropped.
        assert!(g.alloc::<u32>(10_000).is_ok());
    }

    #[test]
    fn peak_watermark_survives_frees() {
        let g = tiny_gpu();
        {
            let _a = g.alloc::<u8>(50_000).unwrap();
        }
        let _b = g.alloc::<u8>(100).unwrap();
        let snap = g.counters();
        assert_eq!(snap.mem_peak, 50_000);
        assert_eq!(snap.mem_used, 100);
    }

    #[test]
    fn error_display_readable() {
        let e = DeviceError::OutOfMemory {
            requested: 10,
            available: 5,
            capacity: 20,
        };
        let s = e.to_string();
        assert!(s.contains("out of memory"));
        assert!(s.contains("10"));
    }
}
