//! CUDA-style streams and events for the simulator.
//!
//! The paper's Thrust 1.5 pipeline serializes every copy against every
//! kernel; asynchronous CUDA copies are its named future work. A
//! [`Stream`] models the CUDA abstraction that unlocks them: an **ordered
//! queue** of device operations. Operations on one stream execute (in
//! simulated time) back to back; operations on *different* streams run
//! concurrently unless an explicit [`StreamEvent`] dependency orders them —
//! exactly the `cudaStreamWaitEvent` contract.
//!
//! Two things matter for correctness and accounting:
//!
//! * **Data moves eagerly.** `htod_async`/`dtoh_async`/`launch` perform the
//!   copy or kernel immediately on the host, so results are bit-identical
//!   to the synchronous API no matter how the schedule is modeled. Only the
//!   *time accounting* differs — asynchrony never becomes a correctness
//!   hazard in the simulator.
//! * **Time lands on the stream's cursor.** Each operation advances the
//!   stream's completion cursor by its modeled duration instead of (only)
//!   the blocking critical path. Transfer totals are still charged to the
//!   clock (Table I's *Data c→g* / *Data g→c* columns stay complete), and
//!   additionally to the overlap sub-accounts
//!   ([`crate::counters::CountersSnapshot::h2d_overlapped_seconds`] /
//!   `d2h_overlapped_seconds`). The **pipelined makespan** of a multi-stream
//!   pipeline is the max of the participating streams' cursors, the
//!   stream-level analogue of [`crate::timeline::pipelined_seconds`].
//!
//! All cursors of one device share a time axis that starts at 0 when the
//! first stream is created, so events recorded on one stream are directly
//! comparable on another.

use crate::memory::{DeviceBuffer, DeviceError, Pod};
use crate::simt::{Gpu, KernelCost};
use parking_lot::Mutex;

/// An in-order queue of simulated device operations.
///
/// Create with [`Gpu::stream`]. Cheap handles are not cloneable — a stream
/// is a linear timeline and should have one owner, mirroring how CUDA code
/// treats `cudaStream_t` per pipeline lane.
pub struct Stream {
    gpu: Gpu,
    label: &'static str,
    /// Simulated completion time of the last operation issued on this
    /// stream, in seconds on the device's shared stream time axis.
    cursor: Mutex<f64>,
}

/// A marker on a stream's timeline (like `cudaEventRecord`).
///
/// Carries the simulated instant at which every operation issued on the
/// source stream before the record completes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamEvent {
    completed_at: f64,
}

impl StreamEvent {
    /// Simulated completion instant this event marks.
    pub fn seconds(&self) -> f64 {
        self.completed_at
    }
}

impl Gpu {
    /// Create a stream on this device. The label shows up in debug output
    /// only; it carries no semantics.
    pub fn stream(&self, label: &'static str) -> Stream {
        Stream {
            gpu: self.clone(),
            label,
            cursor: Mutex::new(0.0),
        }
    }
}

impl Stream {
    /// The device this stream belongs to.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Simulated instant at which everything issued so far completes.
    pub fn completed_seconds(&self) -> f64 {
        *self.cursor.lock()
    }

    /// Record an event marking the completion of all work issued so far
    /// (like `cudaEventRecord`).
    pub fn record_event(&self) -> StreamEvent {
        StreamEvent {
            completed_at: *self.cursor.lock(),
        }
    }

    /// Block subsequent operations on this stream until `event` has
    /// completed (like `cudaStreamWaitEvent`). A no-op if the event is
    /// already in this stream's past.
    pub fn wait_event(&self, event: &StreamEvent) {
        let mut cursor = self.cursor.lock();
        if event.completed_at > *cursor {
            *cursor = event.completed_at;
        }
    }

    /// Advance the cursor by one operation's modeled duration.
    fn push(&self, seconds: f64) {
        *self.cursor.lock() += seconds;
    }

    /// Asynchronous host→device copy (like `cudaMemcpyAsync`): the data
    /// lands immediately, the modeled transfer time lands on this stream's
    /// cursor instead of the blocking critical path. Counted both in the
    /// h2d totals and in the overlapped sub-account.
    pub fn htod_async<T: Pod>(&self, src: &[T]) -> Result<DeviceBuffer<T>, DeviceError> {
        let bytes = std::mem::size_of_val(src);
        if let Some(e) = self.gpu.injected_fault(crate::fault::FaultSite::H2D, bytes) {
            return Err(e);
        }
        let buf = self.gpu.adopt(src.to_vec())?;
        let modeled = self.gpu.tally_h2d(buf.bytes(), true);
        self.push(modeled);
        Ok(buf)
    }

    /// Asynchronous device→host copy. Issue a [`Stream::wait_event`] on a
    /// compute-stream event first if the buffer is produced by a kernel.
    /// Infallible — not subject to fault injection; resilient callers use
    /// [`Stream::try_dtoh_async`].
    pub fn dtoh_async<T: Pod>(&self, buf: &DeviceBuffer<T>) -> Vec<T> {
        let modeled = self.gpu.tally_d2h(buf.bytes(), true);
        self.push(modeled);
        buf.device_slice().to_vec()
    }

    /// Fallible asynchronous device→host copy: surfaces any pending
    /// (sticky) kernel fault first, then draws at the D2H site. A failed
    /// copy charges nothing and does not advance the stream cursor.
    pub fn try_dtoh_async<T: Pod>(&self, buf: &DeviceBuffer<T>) -> Result<Vec<T>, DeviceError> {
        self.gpu.take_fault()?;
        if let Some(e) = self
            .gpu
            .injected_fault(crate::fault::FaultSite::D2H, buf.bytes())
        {
            return Err(e);
        }
        Ok(self.dtoh_async(buf))
    }

    /// Launch a kernel on this stream: tasks execute immediately on the SM
    /// pool (see [`Gpu::launch`]); the modeled kernel time queues behind the
    /// stream's earlier operations.
    pub fn launch<'env>(
        &self,
        n_elements: usize,
        cost: &KernelCost,
        tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
    ) {
        let modeled = self.gpu.execute_and_model(n_elements, cost, tasks);
        self.push(modeled);
    }
}

impl std::fmt::Debug for Stream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stream")
            .field("label", &self.label)
            .field("completed_seconds", &self.completed_seconds())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::timeline::pipelined_seconds;

    fn gpu() -> Gpu {
        Gpu::with_workers(DeviceConfig::tesla_k20(), 2)
    }

    #[test]
    fn stream_ops_advance_cursor_in_order() {
        let g = gpu();
        let s = g.stream("copy");
        let buf = s.htod_async(&vec![0u32; 1_000_000]).unwrap();
        let t_h2d = g.model_transfer_seconds(4_000_000);
        assert!((s.completed_seconds() - t_h2d).abs() < 1e-12);
        let _ = s.dtoh_async(&buf);
        let expect = t_h2d + g.model_transfer_seconds(4_000_000);
        assert!((s.completed_seconds() - expect).abs() < 1e-12);
    }

    #[test]
    fn async_transfers_feed_totals_and_overlap_subaccounts() {
        let g = gpu();
        let s = g.stream("copy");
        let buf = s.htod_async(&vec![0u64; 10_000]).unwrap();
        let _ = s.dtoh_async(&buf);
        let snap = g.counters();
        assert_eq!(snap.h2d_transfers, 1);
        assert_eq!(snap.d2h_transfers, 1);
        assert_eq!(snap.h2d_bytes, 80_000);
        assert!((snap.h2d_overlapped_seconds - snap.h2d_seconds).abs() < 1e-12);
        assert!((snap.d2h_overlapped_seconds - snap.d2h_seconds).abs() < 1e-12);
        assert_eq!(snap.blocking_transfer_seconds(), 0.0);
    }

    #[test]
    fn wait_event_orders_across_streams() {
        let g = gpu();
        let compute = g.stream("compute");
        let copy = g.stream("copy");
        compute.launch(10_000_000, &KernelCost::sort(), vec![]);
        let after_kernel = compute.record_event();
        // The copy stream is idle; waiting pulls it up to the kernel's end.
        copy.wait_event(&after_kernel);
        assert!((copy.completed_seconds() - compute.completed_seconds()).abs() < 1e-12);
        // Waiting on a past event is a no-op.
        copy.wait_event(&after_kernel);
        assert!((copy.completed_seconds() - after_kernel.seconds()).abs() < 1e-12);
    }

    #[test]
    fn makespan_matches_two_engine_timeline_replay() {
        // H2D, then N kernels each followed by an async D2H of its output:
        // the stream simulation must agree with the event-log replay in
        // `timeline::pipelined_seconds` for this dependency shape.
        let g = gpu();
        g.timeline().set_enabled(true);
        let compute = g.stream("compute");
        let copy = g.stream("copy");
        let input = copy.htod_async(&vec![0u64; 2_000_000]).unwrap();
        compute.wait_event(&copy.record_event());
        for _ in 0..8 {
            compute.launch(input.len(), &KernelCost::sort(), vec![]);
            copy.wait_event(&compute.record_event());
            let _ = copy.dtoh_async(&input);
        }
        let makespan = compute.completed_seconds().max(copy.completed_seconds());
        let replay = pipelined_seconds(&g.timeline().snapshot());
        assert!(
            (makespan - replay).abs() < 1e-9,
            "stream makespan {makespan} vs replay {replay}"
        );
        let snap = g.counters();
        assert!(makespan < snap.serialized_device_seconds());
    }

    #[test]
    fn overlapped_d2h_excluded_from_makespan_when_compute_bound() {
        // Kernels are long, copies short: the copy stream hides entirely
        // behind compute except for the final drain.
        let g = gpu();
        let compute = g.stream("compute");
        let copy = g.stream("copy");
        let buf = g.htod(&vec![0u64; 1_000]).unwrap();
        let mut last_d2h = 0.0;
        for _ in 0..4 {
            compute.launch(50_000_000, &KernelCost::sort(), vec![]);
            copy.wait_event(&compute.record_event());
            let _ = copy.dtoh_async(&buf);
            last_d2h = g.model_transfer_seconds(buf.bytes());
        }
        let snap = g.counters();
        let makespan = compute.completed_seconds().max(copy.completed_seconds());
        // All D2H traffic is accounted...
        assert!(snap.d2h_overlapped_seconds > 0.0);
        assert!((snap.d2h_overlapped_seconds - snap.d2h_seconds).abs() < 1e-12);
        // ...but only the final drain extends the critical path. (Tolerance
        // covers the clock's nanosecond rounding vs the exact f64 cursor.)
        let expect = snap.kernel_seconds + last_d2h;
        assert!(
            (makespan - expect).abs() < 1e-6,
            "makespan {makespan} vs kernels+last_d2h {expect}"
        );
        assert!(makespan < snap.serialized_device_seconds());
    }

    #[test]
    fn async_htod_respects_capacity() {
        let g = Gpu::with_workers(DeviceConfig::tiny_test_device(), 1);
        let s = g.stream("copy");
        assert!(s.htod_async(&vec![0u8; 100_000]).is_err());
        // A failed allocation charges nothing.
        assert_eq!(s.completed_seconds(), 0.0);
        assert_eq!(g.counters().h2d_transfers, 0);
    }
}
