//! Deterministic fault injection for the simulated device.
//!
//! Real CUDA deployments treat transfer errors, launch failures, ECC
//! events, allocation failure and whole-device loss as normal operating
//! conditions; production many-against-many pipelines schedule around
//! them. The simulator models that failure surface with a **seeded,
//! deterministic injector** so the recovery logic upstream (retries, OOM
//! backoff, host degradation, device-loss redistribution in
//! `gpclust-core`) is testable bit-for-bit.
//!
//! Faults are drawn at four **sites** — host→device copies, device→host
//! copies, allocations, and kernel launches — either with a per-site
//! probability (`FaultPlan::random`) or from an explicit schedule
//! ("fail the 3rd H2D on device 1": [`FaultPlan::with_fault`]). Draws
//! happen on the issuing host thread, in issue order, so a fixed plan
//! yields the same faults at the same operations on every run.
//!
//! Semantics mirror the hardware:
//!
//! * **Transfer/alloc faults fail the call** — the operation charges
//!   nothing and returns a typed [`DeviceError`].
//! * **Kernel faults are sticky**: a failed launch does not run its
//!   tasks; the error parks as a *pending* fault that surfaces at the
//!   next fallible synchronization point ([`Gpu::take_fault`],
//!   [`Gpu::try_dtoh`]) — the `cudaGetLastError` contract.
//! * **Device loss is terminal**: once a `DeviceLost` fault fires, every
//!   subsequent fallible operation on that device fails with
//!   `DeviceLost` until the process ends. Counters reset does not bring
//!   the card back.
//!
//! Random-rate draws only produce *transient* kinds (transfer, launch,
//! ECC); `OutOfMemory` and `DeviceLost` must be scheduled explicitly so
//! probabilistic runs exercise the retry/degrade paths without
//! spiralling capacity or killing devices nondeterministically.
//!
//! [`Gpu::take_fault`]: crate::simt::Gpu::take_fault
//! [`Gpu::try_dtoh`]: crate::simt::Gpu
//! [`DeviceError`]: crate::memory::DeviceError

use crate::memory::DeviceError;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Where in the device API a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Host→device copies (`htod`, `htod_async`).
    H2D,
    /// Device→host copies (`try_dtoh`, `try_dtoh_async`).
    D2H,
    /// Buffer allocations (`alloc`, and the adopt step of copies).
    Alloc,
    /// Kernel launches (`launch`, stream launches — every thrust
    /// primitive funnels through these).
    Kernel,
}

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::H2D => 0,
            FaultSite::D2H => 1,
            FaultSite::Alloc => 2,
            FaultSite::Kernel => 3,
        }
    }
}

/// What kind of fault to inject (maps onto a [`DeviceError`] variant with
/// call-site context filled in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A failed host↔device copy (transient).
    TransferFailed,
    /// A failed kernel launch (transient).
    LaunchFailed,
    /// An uncorrectable ECC memory event (transient for our purposes:
    /// the operation can be retried on freshly written data).
    Ecc,
    /// An allocation reported as out of memory even though capacity
    /// accounting would have admitted it (exercises the batch-capacity
    /// backoff path).
    OutOfMemory,
    /// The device falls off the bus; terminal.
    DeviceLost,
}

impl FaultKind {
    fn index(self) -> usize {
        match self {
            FaultKind::TransferFailed => 0,
            FaultKind::LaunchFailed => 1,
            FaultKind::Ecc => 2,
            FaultKind::OutOfMemory => 3,
            FaultKind::DeviceLost => 4,
        }
    }
}

/// One scheduled fault: fail the `occurrence`-th (1-based) operation at
/// `site` with `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// The injection site.
    pub site: FaultSite,
    /// 1-based operation index at that site (counted per device, from
    /// the last counter reset).
    pub occurrence: u64,
    /// The fault to inject.
    pub kind: FaultKind,
}

/// A complete injection configuration for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-device draw RNG.
    pub seed: u64,
    /// Per-operation probability of a random *transient* fault in
    /// `[0, 1]`. Random draws never produce `OutOfMemory` or
    /// `DeviceLost` — schedule those explicitly.
    pub rate: f64,
    /// Device index reported in `DeviceLost` errors.
    pub device: u32,
    /// Explicit faults, checked before the random draw.
    pub schedule: Vec<ScheduledFault>,
}

/// Environment variable [`FaultPlan::from_env`] reads (`<seed>:<rate>`).
pub const FAULT_ENV: &str = "GPCLUST_INJECT_FAULTS";

impl FaultPlan {
    /// Probabilistic plan: every site faults with `rate` per operation.
    pub fn random(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            rate,
            device: 0,
            schedule: Vec::new(),
        }
    }

    /// A plan with no random component (faults only where scheduled).
    pub fn scheduled() -> Self {
        FaultPlan::random(0, 0.0)
    }

    /// Add one scheduled fault (builder style): fail the `occurrence`-th
    /// operation at `site` with `kind`.
    pub fn with_fault(mut self, site: FaultSite, occurrence: u64, kind: FaultKind) -> Self {
        self.schedule.push(ScheduledFault {
            site,
            occurrence,
            kind,
        });
        self
    }

    /// Set the device index reported in `DeviceLost` errors.
    pub fn with_device(mut self, device: u32) -> Self {
        self.device = device;
        self
    }

    /// Parse `"<seed>:<rate>"` (e.g. `"7:0.01"`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (seed, rate) = spec
            .split_once(':')
            .ok_or_else(|| format!("expected `<seed>:<rate>`, got `{spec}`"))?;
        let seed: u64 = seed
            .trim()
            .parse()
            .map_err(|e| format!("bad fault seed `{seed}`: {e}"))?;
        let rate: f64 = rate
            .trim()
            .parse()
            .map_err(|e| format!("bad fault rate `{rate}`: {e}"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault rate {rate} outside [0, 1]"));
        }
        Ok(FaultPlan::random(seed, rate))
    }

    /// Plan from the `GPCLUST_INJECT_FAULTS=<seed>:<rate>` environment
    /// variable, if set (the hook the CI fault-injection matrix uses).
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var(FAULT_ENV).ok()?;
        match FaultPlan::parse(&spec) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("ignoring {FAULT_ENV}: {e}");
                None
            }
        }
    }
}

/// splitmix64 — tiny, seedable, and plenty for Bernoulli draws. Shared
/// injection plumbing: the core crate's crash-injection harness
/// (`CrashPlan`) seeds its kill draws from the same generator so both
/// fault models replay deterministically from one seed convention.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Default)]
struct InjectorState {
    rng: u64,
    rate: f64,
    schedule: Vec<ScheduledFault>,
}

/// Per-device fault state: the plan, the draw RNG, per-site occurrence
/// counters, per-kind injected counts, the sticky lost flag and the
/// pending (kernel) fault.
#[derive(Debug, Default)]
pub struct FaultInjector {
    /// Fast-path gate: false means `draw` returns `None` immediately.
    armed: AtomicBool,
    lost: AtomicBool,
    device: AtomicU32,
    seed: AtomicU64,
    state: Mutex<InjectorState>,
    pending: Mutex<Option<DeviceError>>,
    occurrences: [AtomicU64; 4],
    counts: [AtomicU64; 5],
}

impl FaultInjector {
    /// Install `plan`, resetting occurrence counters, injected counts and
    /// the RNG. The lost flag is *not* cleared — a dead card stays dead.
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut state = self.state.lock();
        state.rng = plan.seed;
        state.rate = plan.rate;
        state.schedule = plan.schedule;
        let armed = state.rate > 0.0 || !state.schedule.is_empty();
        drop(state);
        self.seed.store(plan.seed, Ordering::Relaxed);
        self.device.store(plan.device, Ordering::Relaxed);
        self.reset_counts();
        self.armed.store(armed, Ordering::Relaxed);
    }

    /// Zero occurrence counters and injected counts and rewind the RNG to
    /// the plan seed, so each run draws an identical fault sequence. Keeps
    /// the plan, the pending fault and the lost flag.
    pub fn reset_counts(&self) {
        for o in &self.occurrences {
            o.store(0, Ordering::Relaxed);
        }
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.state.lock().rng = self.seed.load(Ordering::Relaxed);
    }

    /// Whether the device has been lost to an injected `DeviceLost`.
    pub fn is_lost(&self) -> bool {
        self.lost.load(Ordering::Relaxed)
    }

    /// Device index reported in `DeviceLost` errors.
    pub fn device(&self) -> u32 {
        self.device.load(Ordering::Relaxed)
    }

    /// Total faults injected since the last counter reset (device loss
    /// echoes — the repeated failures after the card died — not counted).
    pub fn injected_total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Faults of `kind` injected since the last counter reset.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.counts[kind.index()].load(Ordering::Relaxed)
    }

    /// Park a kernel fault to surface at the next sync point.
    pub(crate) fn set_pending(&self, e: DeviceError) {
        let mut pending = self.pending.lock();
        if pending.is_none() {
            *pending = Some(e);
        }
    }

    /// Take the pending fault, if any.
    pub(crate) fn take_pending(&self) -> Option<DeviceError> {
        self.pending.lock().take()
    }

    /// Draw at `site`: the scheduled fault for this occurrence if one
    /// exists, else a random transient with probability `rate`. A lost
    /// device always returns `DeviceLost`.
    pub(crate) fn draw(&self, site: FaultSite) -> Option<FaultKind> {
        if self.is_lost() {
            return Some(FaultKind::DeviceLost);
        }
        if !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        let occurrence = self.occurrences[site.index()].fetch_add(1, Ordering::Relaxed) + 1;
        let mut state = self.state.lock();
        let scheduled = state
            .schedule
            .iter()
            .find(|f| f.site == site && f.occurrence == occurrence)
            .map(|f| f.kind);
        let kind = scheduled.or_else(|| {
            if state.rate <= 0.0 {
                return None;
            }
            let u = splitmix64(&mut state.rng);
            if (u >> 11) as f64 / (1u64 << 53) as f64 >= state.rate {
                return None;
            }
            // Random draws stay transient; OOM / DeviceLost are
            // schedule-only (see module docs).
            Some(match site {
                FaultSite::H2D | FaultSite::D2H => FaultKind::TransferFailed,
                FaultSite::Alloc => FaultKind::Ecc,
                FaultSite::Kernel => {
                    if u & 1 == 0 {
                        FaultKind::LaunchFailed
                    } else {
                        FaultKind::Ecc
                    }
                }
            })
        })?;
        drop(state);
        self.counts[kind.index()].fetch_add(1, Ordering::Relaxed);
        if kind == FaultKind::DeviceLost {
            self.lost.store(true, Ordering::Relaxed);
        }
        Some(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_injector_never_faults() {
        let inj = FaultInjector::default();
        for _ in 0..100 {
            assert_eq!(inj.draw(FaultSite::H2D), None);
            assert_eq!(inj.draw(FaultSite::Kernel), None);
        }
        assert_eq!(inj.injected_total(), 0);
    }

    #[test]
    fn scheduled_fault_hits_exact_occurrence() {
        let inj = FaultInjector::default();
        inj.set_plan(FaultPlan::scheduled().with_fault(
            FaultSite::H2D,
            3,
            FaultKind::TransferFailed,
        ));
        assert_eq!(inj.draw(FaultSite::H2D), None);
        assert_eq!(inj.draw(FaultSite::H2D), None);
        assert_eq!(inj.draw(FaultSite::H2D), Some(FaultKind::TransferFailed));
        assert_eq!(inj.draw(FaultSite::H2D), None);
        // The other sites are untouched.
        assert_eq!(inj.draw(FaultSite::Alloc), None);
        assert_eq!(inj.injected(FaultKind::TransferFailed), 1);
    }

    #[test]
    fn random_draws_are_deterministic_and_transient_only() {
        let seq = |seed| {
            let inj = FaultInjector::default();
            inj.set_plan(FaultPlan::random(seed, 0.3));
            (0..200)
                .map(|_| inj.draw(FaultSite::Kernel))
                .collect::<Vec<_>>()
        };
        let a = seq(9);
        assert_eq!(a, seq(9), "same seed, same faults");
        assert_ne!(a, seq(10), "different seed, different faults");
        let injected: Vec<_> = a.iter().flatten().collect();
        assert!(!injected.is_empty(), "rate 0.3 over 200 draws must fire");
        assert!(injected
            .iter()
            .all(|k| matches!(k, FaultKind::LaunchFailed | FaultKind::Ecc)));
    }

    #[test]
    fn reset_counts_replays_the_same_sequence() {
        let inj = FaultInjector::default();
        inj.set_plan(FaultPlan::random(4, 0.25));
        let a: Vec<_> = (0..50).map(|_| inj.draw(FaultSite::D2H)).collect();
        inj.reset_counts();
        let b: Vec<_> = (0..50).map(|_| inj.draw(FaultSite::D2H)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn device_loss_is_sticky() {
        let inj = FaultInjector::default();
        inj.set_plan(FaultPlan::scheduled().with_fault(
            FaultSite::Kernel,
            1,
            FaultKind::DeviceLost,
        ));
        assert_eq!(inj.draw(FaultSite::Kernel), Some(FaultKind::DeviceLost));
        assert!(inj.is_lost());
        // Every site now fails, but the echoes are not re-counted.
        assert_eq!(inj.draw(FaultSite::H2D), Some(FaultKind::DeviceLost));
        assert_eq!(inj.draw(FaultSite::Alloc), Some(FaultKind::DeviceLost));
        assert_eq!(inj.injected(FaultKind::DeviceLost), 1);
        // Counter reset does not resurrect the card.
        inj.reset_counts();
        assert!(inj.is_lost());
    }

    #[test]
    fn plan_parse_roundtrip_and_errors() {
        let p = FaultPlan::parse("7:0.01").unwrap();
        assert_eq!(p.seed, 7);
        assert!((p.rate - 0.01).abs() < 1e-12);
        assert!(FaultPlan::parse("7").is_err());
        assert!(FaultPlan::parse("x:0.5").is_err());
        assert!(FaultPlan::parse("1:1.5").is_err());
    }
}
