//! # gpclust-gpu — a software SIMT device simulator
//!
//! The paper runs its shingling kernels on an NVIDIA Tesla K20 through the
//! CUDA Thrust library. This environment has no GPU (and Rust's CUDA
//! ecosystem is immature for custom kernels), so this crate substitutes a
//! **software device simulator** that preserves everything the algorithm
//! actually interacts with:
//!
//! * **Limited device memory** ([`memory`]) — allocations are accounted
//!   against a configurable capacity (5 GB for the K20 preset) and fail with
//!   [`DeviceError::OutOfMemory`] when exceeded, which is what forces the
//!   batch-by-batch streaming of adjacency lists in gpClust's Algorithm 2.
//! * **Synchronous host↔device transfers** ([`transfer`]) — explicit
//!   `htod`/`dtoh` copies with byte accounting and a modeled transfer time
//!   (PCIe latency + bytes/bandwidth), mirroring Thrust 1.5's synchronous
//!   copy semantics that the paper calls out as its residual overhead.
//! * **Streams and events** ([`stream`]) — CUDA-style ordered async queues:
//!   `htod_async`/`dtoh_async` and stream launches charge modeled time to a
//!   per-stream cursor instead of the blocking critical path, with events
//!   for cross-stream dependencies — the asynchronous-copy "future work"
//!   the paper projects, made measurable.
//! * **Data-parallel execution** ([`simt`], [`pool`]) — kernels run for real
//!   on a work-stealing CPU thread pool (thread blocks = tasks, SMs =
//!   workers), while a cost model accounts *device time* per launch
//!   (compute-bound vs memory-bound roofline + launch overhead).
//! * **Thrust-like primitives** ([`thrust`]) — `transform`, `sort`,
//!   `segmented_sort`, `reduce_by_key`, `gather`, `sequence`: the two
//!   primitives the paper names (transform + sort) plus the helpers the
//!   aggregation steps need, and the composite device passes built from
//!   them ([`thrust::invert_sorted_runs`], [`thrust::connected_components`])
//!   that keep the shingle-graph inversion and Phase-III components
//!   device-resident.
//!
//! Device time ([`clock`], [`counters`]) is *simulated* — derived from the
//! cost model, not wall-clock — so the Table I columns (GPU seconds,
//! Data c→g, Data g→c) can be reported for a machine this host is not.
//! Wall-clock speedups from the real thread-pool execution are reported
//! separately by the benchmark harness.
//!
//! * **Fault injection** ([`fault`]) — a seeded, deterministic injector
//!   models transfer failures, launch failures, ECC events, allocation
//!   faults and whole-device loss ([`DeviceError::DeviceLost`]), so the
//!   resilience layer upstream (retries, OOM backoff, host degradation,
//!   device-loss redistribution) is testable bit-for-bit.

pub mod clock;
pub mod config;
pub mod counters;
pub mod fault;
pub mod memory;
pub mod pool;
pub mod simt;
pub mod stream;
pub mod thrust;
pub mod timeline;
pub mod transfer;

pub use config::DeviceConfig;
pub use counters::CountersSnapshot;
pub use fault::{splitmix64, FaultKind, FaultPlan, FaultSite, ScheduledFault};
pub use memory::{DeviceBuffer, DeviceError};
pub use simt::{Gpu, KernelCost};
pub use stream::{Stream, StreamEvent};
pub use timeline::{pipelined_seconds, serialized_seconds, Event, EventLog};
