//! Per-device telemetry counters.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Live counters updated by the memory, transfer and launch machinery.
#[derive(Debug, Default)]
pub struct Counters {
    pub(crate) kernel_launches: AtomicU64,
    pub(crate) h2d_transfers: AtomicU64,
    pub(crate) d2h_transfers: AtomicU64,
    pub(crate) h2d_bytes: AtomicU64,
    pub(crate) d2h_bytes: AtomicU64,
    pub(crate) allocations: AtomicU64,
    pub(crate) mem_used: AtomicUsize,
    pub(crate) mem_peak: AtomicUsize,
    /// Wall-clock nanoseconds the host actually spent inside kernel
    /// execution (pool work). This is *host* time, distinct from the
    /// simulated device seconds; the pipeline uses it to keep device work
    /// out of the CPU column of Table I.
    pub(crate) kernel_wall_ns: AtomicU64,
}

impl Counters {
    /// Record a new allocation of `bytes`, maintaining the peak watermark.
    pub(crate) fn alloc(&self, bytes: usize) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        let used = self.mem_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.mem_peak.fetch_max(used, Ordering::Relaxed);
    }

    /// Record freeing `bytes`.
    pub(crate) fn free(&self, bytes: usize) {
        self.mem_used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Current device memory in use.
    pub(crate) fn used(&self) -> usize {
        self.mem_used.load(Ordering::Relaxed)
    }

    /// Take an owned snapshot (paired with clock totals by the caller).
    pub(crate) fn snapshot(
        &self,
        kernel_seconds: f64,
        h2d_seconds: f64,
        d2h_seconds: f64,
        h2d_overlapped_seconds: f64,
        d2h_overlapped_seconds: f64,
        faults_injected: u64,
    ) -> CountersSnapshot {
        CountersSnapshot {
            kernel_launches: self.kernel_launches.load(Ordering::Relaxed),
            h2d_transfers: self.h2d_transfers.load(Ordering::Relaxed),
            d2h_transfers: self.d2h_transfers.load(Ordering::Relaxed),
            h2d_bytes: self.h2d_bytes.load(Ordering::Relaxed),
            d2h_bytes: self.d2h_bytes.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            mem_used: self.mem_used.load(Ordering::Relaxed),
            mem_peak: self.mem_peak.load(Ordering::Relaxed),
            kernel_seconds,
            h2d_seconds,
            d2h_seconds,
            h2d_overlapped_seconds,
            d2h_overlapped_seconds,
            kernel_wall_seconds: self.kernel_wall_ns.load(Ordering::Relaxed) as f64 / 1e9,
            faults_injected,
        }
    }

    /// Reset everything except current memory usage (live buffers remain).
    pub(crate) fn reset(&self) {
        self.kernel_launches.store(0, Ordering::Relaxed);
        self.h2d_transfers.store(0, Ordering::Relaxed);
        self.d2h_transfers.store(0, Ordering::Relaxed);
        self.h2d_bytes.store(0, Ordering::Relaxed);
        self.d2h_bytes.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
        self.kernel_wall_ns.store(0, Ordering::Relaxed);
        self.mem_peak
            .store(self.mem_used.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// A point-in-time copy of the device telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CountersSnapshot {
    /// Number of kernel launches.
    pub kernel_launches: u64,
    /// Number of host→device copies.
    pub h2d_transfers: u64,
    /// Number of device→host copies.
    pub d2h_transfers: u64,
    /// Bytes copied host→device.
    pub h2d_bytes: u64,
    /// Bytes copied device→host.
    pub d2h_bytes: u64,
    /// Buffer allocations performed.
    pub allocations: u64,
    /// Device memory currently allocated.
    pub mem_used: usize,
    /// Peak device memory.
    pub mem_peak: usize,
    /// Simulated kernel seconds (cost model).
    pub kernel_seconds: f64,
    /// Simulated host→device seconds (Data c→g in Table I).
    pub h2d_seconds: f64,
    /// Simulated device→host seconds (Data g→c in Table I).
    pub d2h_seconds: f64,
    /// Subset of `h2d_seconds` issued asynchronously on a stream (hidden
    /// behind compute in the pipelined critical path).
    pub h2d_overlapped_seconds: f64,
    /// Subset of `d2h_seconds` issued asynchronously on a stream.
    pub d2h_overlapped_seconds: f64,
    /// Wall-clock host seconds spent executing kernel work on the pool.
    pub kernel_wall_seconds: f64,
    /// Faults injected by the [`crate::fault::FaultInjector`] since the
    /// last counter reset (0 when injection is disabled).
    #[serde(default)]
    pub faults_injected: u64,
}

impl CountersSnapshot {
    /// The fully serialized device critical path: every kernel and every
    /// transfer back to back, exactly as the paper's Thrust 1.5 setup ran.
    pub fn serialized_device_seconds(&self) -> f64 {
        self.kernel_seconds + self.h2d_seconds + self.d2h_seconds
    }

    /// Transfer seconds still on the blocking critical path (totals minus
    /// the stream-issued overlap sub-accounts).
    pub fn blocking_transfer_seconds(&self) -> f64 {
        (self.h2d_seconds - self.h2d_overlapped_seconds).max(0.0)
            + (self.d2h_seconds - self.d2h_overlapped_seconds).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_tracks_peak() {
        let c = Counters::default();
        c.alloc(100);
        c.alloc(50);
        c.free(100);
        c.alloc(10);
        let s = c.snapshot(0.0, 0.0, 0.0, 0.0, 0.0, 0);
        assert_eq!(s.mem_used, 60);
        assert_eq!(s.mem_peak, 150);
        assert_eq!(s.allocations, 3);
    }

    #[test]
    fn reset_preserves_live_memory() {
        let c = Counters::default();
        c.alloc(77);
        c.kernel_launches.fetch_add(3, Ordering::Relaxed);
        c.reset();
        let s = c.snapshot(0.0, 0.0, 0.0, 0.0, 0.0, 0);
        assert_eq!(s.kernel_launches, 0);
        assert_eq!(s.mem_used, 77);
        assert_eq!(s.mem_peak, 77);
    }
}
