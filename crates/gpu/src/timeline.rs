//! Device event timeline and the asynchronous-transfer model.
//!
//! The paper's stated future work: "Better performance could be achieved
//! through asynchronous operations provided in CUDA C/C++" — overlapping
//! the per-trial device→host shingle transfers with the next trial's
//! kernels. To *quantify* that without hand-waving, the device records an
//! event log (kernel / H2D / D2H, each with its modeled duration, in
//! issue order), and [`pipelined_seconds`] replays it under a
//! double-buffered execution model:
//!
//! * the copy engine and the compute engine run concurrently (one stream
//!   each, as on a dual-DMA GPU);
//! * events issue in program order per engine;
//! * a transfer may overlap any *later-issued* kernel (double buffering),
//!   but the final result is only ready when both engines drain.
//!
//! [`serialized_seconds`] is the Thrust-1.5 baseline: every event in
//! sequence. The difference is exactly the transfer time that overlap can
//! hide.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One modeled device event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Kernel execution for the given simulated seconds.
    Kernel(f64),
    /// Host→device copy.
    H2D(f64),
    /// Device→host copy.
    D2H(f64),
}

impl Event {
    /// The event's modeled duration.
    pub fn seconds(self) -> f64 {
        match self {
            Event::Kernel(s) | Event::H2D(s) | Event::D2H(s) => s,
        }
    }

    /// True for either transfer direction.
    pub fn is_transfer(self) -> bool {
        matches!(self, Event::H2D(_) | Event::D2H(_))
    }
}

/// Thread-safe append-only event log.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<Event>>,
    enabled: std::sync::atomic::AtomicBool,
}

impl EventLog {
    /// A disabled log (no recording overhead until enabled).
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Start/stop recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Append an event if recording.
    pub fn record(&self, event: Event) {
        if self.enabled() {
            self.events.lock().push(event);
        }
    }

    /// Snapshot the events in issue order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Clear all recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

/// Total device time with every event serialized — the synchronous
/// Thrust 1.5 behavior the paper measured.
pub fn serialized_seconds(events: &[Event]) -> f64 {
    events.iter().map(|e| e.seconds()).sum()
}

/// Total device time under the double-buffered model: the compute engine
/// and the copy engine each process their events in order, and an event
/// may start as soon as (a) its engine is free and (b) all *earlier* events
/// of the other engine that it depends on have issued. Dependency model:
/// a kernel depends on the last H2D issued before it (its inputs); a D2H
/// depends on the last kernel issued before it (its results). This is the
/// classic two-stream software pipeline.
pub fn pipelined_seconds(events: &[Event]) -> f64 {
    let mut compute_free = 0.0f64; // when the compute engine is next free
    let mut copy_free = 0.0f64; // when the copy engine is next free
    let mut last_h2d_done = 0.0f64;
    let mut last_kernel_done = 0.0f64;
    for &e in events {
        match e {
            Event::Kernel(s) => {
                let start = compute_free.max(last_h2d_done);
                let done = start + s;
                compute_free = done;
                last_kernel_done = done;
            }
            Event::H2D(s) => {
                let start = copy_free;
                let done = start + s;
                copy_free = done;
                last_h2d_done = done;
            }
            Event::D2H(s) => {
                let start = copy_free.max(last_kernel_done);
                copy_free = start + s;
            }
        }
    }
    compute_free.max(copy_free)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialized_sums_everything() {
        let ev = [Event::H2D(1.0), Event::Kernel(2.0), Event::D2H(3.0)];
        assert!((serialized_seconds(&ev) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn pipelined_never_beats_critical_path_nor_loses_to_serial() {
        let ev = [
            Event::H2D(1.0),
            Event::Kernel(2.0),
            Event::D2H(0.5),
            Event::Kernel(2.0),
            Event::D2H(0.5),
        ];
        let p = pipelined_seconds(&ev);
        let s = serialized_seconds(&ev);
        let compute: f64 = ev
            .iter()
            .filter(|e| !e.is_transfer())
            .map(|e| e.seconds())
            .sum();
        assert!(p <= s + 1e-12, "pipelined {p} > serial {s}");
        assert!(
            p >= compute,
            "pipelined {p} < compute lower bound {compute}"
        );
    }

    #[test]
    fn transfers_hide_behind_kernels() {
        // Alternating kernel(1.0) / d2h(0.5): each copy overlaps the next
        // kernel, so the copies cost (almost) nothing extra.
        let mut ev = vec![Event::H2D(0.1)];
        for _ in 0..10 {
            ev.push(Event::Kernel(1.0));
            ev.push(Event::D2H(0.5));
        }
        let p = pipelined_seconds(&ev);
        // Serial: 0.1 + 10×1.5 = 15.1; pipelined: ≈ 0.1 + 10×1.0 + 0.5.
        assert!((p - 10.6).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn copy_bound_sequences_are_copy_limited() {
        let mut ev = Vec::new();
        for _ in 0..5 {
            ev.push(Event::Kernel(0.1));
            ev.push(Event::D2H(1.0));
        }
        let p = pipelined_seconds(&ev);
        // Copies dominate: ≈ first kernel + 5 copies.
        assert!((p - 5.1).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn log_records_only_when_enabled() {
        let log = EventLog::new();
        log.record(Event::Kernel(1.0));
        assert!(log.snapshot().is_empty());
        log.set_enabled(true);
        log.record(Event::Kernel(1.0));
        log.record(Event::D2H(0.5));
        assert_eq!(log.snapshot().len(), 2);
        log.clear();
        assert!(log.snapshot().is_empty());
    }
}
