//! Synchronous host↔device transfers.
//!
//! Thrust 1.5 (the version the paper used) only offered synchronous copies;
//! the paper repeatedly notes that "the data movement overhead between CPU
//! and GPU is unavoidable" in that setting and projects further speedup
//! from asynchronous CUDA copies. We model exactly that: every copy is
//! blocking, is charged `latency + bytes / bandwidth` of simulated time,
//! and is tallied in the counters that become the *Data c→g* and
//! *Data g→c* columns of Table I.
//!
//! An `overlap` escape hatch ([`Gpu::set_transfer_overlap`]) implements the
//! paper's "future work": when enabled, transfer time is still accounted
//! (so the ablation can report it) but flagged as overlapped, letting the
//! harness subtract it from the critical path.

use crate::memory::{DeviceBuffer, DeviceError, Pod};
use crate::simt::Gpu;
use std::sync::atomic::Ordering;

impl Gpu {
    /// Simulated seconds to move `bytes` across the host↔device link.
    pub fn model_transfer_seconds(&self, bytes: usize) -> f64 {
        let c = self.config();
        c.pcie_latency_us * 1e-6 + bytes as f64 / (c.pcie_bandwidth_gbps * 1e9)
    }

    /// Account one host→device copy of `bytes`: counters, timeline event,
    /// clock charge (plus the overlap sub-account for stream-issued copies).
    /// Returns the modeled transfer seconds.
    pub(crate) fn tally_h2d(&self, bytes: usize, overlapped: bool) -> f64 {
        self.shared
            .counters
            .h2d_transfers
            .fetch_add(1, Ordering::Relaxed);
        self.shared
            .counters
            .h2d_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        let modeled = self.model_transfer_seconds(bytes);
        self.shared
            .timeline
            .record(crate::timeline::Event::H2D(modeled));
        self.shared.clock.charge_h2d(modeled);
        if overlapped {
            self.shared.clock.charge_h2d_overlap(modeled);
        }
        modeled
    }

    /// Account one device→host copy of `bytes` (see [`Gpu::tally_h2d`]).
    pub(crate) fn tally_d2h(&self, bytes: usize, overlapped: bool) -> f64 {
        self.shared
            .counters
            .d2h_transfers
            .fetch_add(1, Ordering::Relaxed);
        self.shared
            .counters
            .d2h_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        let modeled = self.model_transfer_seconds(bytes);
        self.shared
            .timeline
            .record(crate::timeline::Event::D2H(modeled));
        self.shared.clock.charge_d2h(modeled);
        if overlapped {
            self.shared.clock.charge_d2h_overlap(modeled);
        }
        modeled
    }

    /// Copy a host slice to a new device buffer (synchronous). Subject to
    /// fault injection: an injected H2D fault fails the call before any
    /// bytes move or are accounted.
    pub fn htod<T: Pod>(&self, src: &[T]) -> Result<DeviceBuffer<T>, DeviceError> {
        let bytes = std::mem::size_of_val(src);
        if let Some(e) = self.injected_fault(crate::fault::FaultSite::H2D, bytes) {
            return Err(e);
        }
        let buf = self.adopt(src.to_vec())?;
        self.tally_h2d(buf.bytes(), false);
        Ok(buf)
    }

    /// Copy a device buffer back to a host vector (synchronous,
    /// infallible — not subject to fault injection; resilient callers use
    /// [`Gpu::try_dtoh`]).
    pub fn dtoh<T: Pod>(&self, buf: &DeviceBuffer<T>) -> Vec<T> {
        self.tally_d2h(buf.bytes(), false);
        buf.device_slice().to_vec()
    }

    /// Fallible device→host copy: surfaces any pending (sticky) kernel
    /// fault first — this is the synchronization point where an injected
    /// launch failure becomes visible — then draws at the D2H site. A
    /// failed copy charges nothing.
    pub fn try_dtoh<T: Pod>(&self, buf: &DeviceBuffer<T>) -> Result<Vec<T>, DeviceError> {
        self.take_fault()?;
        if let Some(e) = self.injected_fault(crate::fault::FaultSite::D2H, buf.bytes()) {
            return Err(e);
        }
        Ok(self.dtoh(buf))
    }

    /// Copy only `range` of a device buffer back to the host.
    pub fn dtoh_range<T: Pod>(
        &self,
        buf: &DeviceBuffer<T>,
        range: std::ops::Range<usize>,
    ) -> Vec<T> {
        let slice = &buf.device_slice()[range];
        self.tally_d2h(std::mem::size_of_val(slice), false);
        slice.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn gpu() -> Gpu {
        Gpu::with_workers(DeviceConfig::tesla_k20(), 1)
    }

    #[test]
    fn htod_dtoh_roundtrip() {
        let g = gpu();
        let data: Vec<u64> = (0..10_000).collect();
        let buf = g.htod(&data).unwrap();
        let back = g.dtoh(&buf);
        assert_eq!(back, data);
    }

    #[test]
    fn transfer_counters_accumulate() {
        let g = gpu();
        let data = vec![0u32; 1_000]; // 4 KB
        let buf = g.htod(&data).unwrap();
        let _ = g.dtoh(&buf);
        let _ = g.dtoh(&buf);
        let snap = g.counters();
        assert_eq!(snap.h2d_transfers, 1);
        assert_eq!(snap.d2h_transfers, 2);
        assert_eq!(snap.h2d_bytes, 4_000);
        assert_eq!(snap.d2h_bytes, 8_000);
        assert!(snap.h2d_seconds > 0.0);
        assert!(snap.d2h_seconds > snap.h2d_seconds);
    }

    #[test]
    fn synchronous_transfers_never_mark_overlap() {
        let g = gpu();
        let buf = g.htod(&vec![0u64; 10_000]).unwrap();
        let _ = g.dtoh(&buf);
        let snap = g.counters();
        assert_eq!(snap.h2d_overlapped_seconds, 0.0);
        assert_eq!(snap.d2h_overlapped_seconds, 0.0);
        assert!(
            (snap.blocking_transfer_seconds() - (snap.h2d_seconds + snap.d2h_seconds)).abs()
                < 1e-12
        );
    }

    #[test]
    fn transfer_time_model_linear_in_bytes() {
        let g = gpu();
        let t1 = g.model_transfer_seconds(1_000_000);
        let t2 = g.model_transfer_seconds(2_000_000);
        let lat = g.config().pcie_latency_us * 1e-6;
        assert!(((t2 - lat) / (t1 - lat) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn htod_respects_capacity() {
        let g = Gpu::with_workers(DeviceConfig::tiny_test_device(), 1);
        let big = vec![0u8; 100_000];
        assert!(g.htod(&big).is_err());
    }

    #[test]
    fn dtoh_range_partial() {
        let g = gpu();
        let data: Vec<u64> = (0..100).collect();
        let buf = g.htod(&data).unwrap();
        let part = g.dtoh_range(&buf, 10..20);
        assert_eq!(part, (10..20).collect::<Vec<u64>>());
        assert_eq!(g.counters().d2h_bytes, 80);
    }
}
