//! Simulated device-time accounting.
//!
//! Device time is *modeled*, not measured: each kernel launch and each
//! transfer charges a duration computed by the cost model. The clock
//! accumulates nanoseconds in atomics so concurrent charging (e.g. from
//! overlapping host threads) is safe. Wall-clock timing of the host-side
//! stages is the harness's job, not this module's.

use std::sync::atomic::{AtomicU64, Ordering};

/// Accumulates simulated durations, in nanoseconds, by category.
///
/// The `*_overlap` categories are sub-accounts of `h2d_ns`/`d2h_ns`: a
/// transfer issued on a [`crate::stream::Stream`] charges both its total
/// category (so Table I's transfer columns stay complete) and the overlap
/// sub-account (so the harness can report how much of that traffic left the
/// blocking critical path).
#[derive(Debug, Default)]
pub struct DeviceClock {
    kernel_ns: AtomicU64,
    h2d_ns: AtomicU64,
    d2h_ns: AtomicU64,
    h2d_overlap_ns: AtomicU64,
    d2h_overlap_ns: AtomicU64,
}

impl DeviceClock {
    /// A zeroed clock.
    pub fn new() -> Self {
        DeviceClock::default()
    }

    /// Charge kernel-execution time.
    pub fn charge_kernel(&self, seconds: f64) {
        self.kernel_ns.fetch_add(to_ns(seconds), Ordering::Relaxed);
    }

    /// Charge host→device transfer time.
    pub fn charge_h2d(&self, seconds: f64) {
        self.h2d_ns.fetch_add(to_ns(seconds), Ordering::Relaxed);
    }

    /// Charge device→host transfer time.
    pub fn charge_d2h(&self, seconds: f64) {
        self.d2h_ns.fetch_add(to_ns(seconds), Ordering::Relaxed);
    }

    /// Mark host→device seconds (already charged via [`Self::charge_h2d`])
    /// as issued asynchronously on a stream.
    pub fn charge_h2d_overlap(&self, seconds: f64) {
        self.h2d_overlap_ns
            .fetch_add(to_ns(seconds), Ordering::Relaxed);
    }

    /// Mark device→host seconds (already charged via [`Self::charge_d2h`])
    /// as issued asynchronously on a stream.
    pub fn charge_d2h_overlap(&self, seconds: f64) {
        self.d2h_overlap_ns
            .fetch_add(to_ns(seconds), Ordering::Relaxed);
    }

    /// Total simulated kernel seconds.
    pub fn kernel_seconds(&self) -> f64 {
        from_ns(self.kernel_ns.load(Ordering::Relaxed))
    }

    /// Total simulated host→device transfer seconds.
    pub fn h2d_seconds(&self) -> f64 {
        from_ns(self.h2d_ns.load(Ordering::Relaxed))
    }

    /// Total simulated device→host transfer seconds.
    pub fn d2h_seconds(&self) -> f64 {
        from_ns(self.d2h_ns.load(Ordering::Relaxed))
    }

    /// Host→device seconds issued asynchronously (subset of
    /// [`Self::h2d_seconds`]).
    pub fn h2d_overlap_seconds(&self) -> f64 {
        from_ns(self.h2d_overlap_ns.load(Ordering::Relaxed))
    }

    /// Device→host seconds issued asynchronously (subset of
    /// [`Self::d2h_seconds`]).
    pub fn d2h_overlap_seconds(&self) -> f64 {
        from_ns(self.d2h_overlap_ns.load(Ordering::Relaxed))
    }

    /// Reset all categories to zero.
    pub fn reset(&self) {
        self.kernel_ns.store(0, Ordering::Relaxed);
        self.h2d_ns.store(0, Ordering::Relaxed);
        self.d2h_ns.store(0, Ordering::Relaxed);
        self.h2d_overlap_ns.store(0, Ordering::Relaxed);
        self.d2h_overlap_ns.store(0, Ordering::Relaxed);
    }
}

fn to_ns(seconds: f64) -> u64 {
    debug_assert!(seconds >= 0.0, "negative duration");
    (seconds * 1e9).round() as u64
}

fn from_ns(ns: u64) -> f64 {
    ns as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_category() {
        let c = DeviceClock::new();
        c.charge_kernel(0.5);
        c.charge_kernel(0.25);
        c.charge_h2d(0.1);
        c.charge_d2h(0.2);
        assert!((c.kernel_seconds() - 0.75).abs() < 1e-9);
        assert!((c.h2d_seconds() - 0.1).abs() < 1e-9);
        assert!((c.d2h_seconds() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn overlap_subaccounts_are_separate() {
        let c = DeviceClock::new();
        c.charge_d2h(0.4);
        c.charge_d2h_overlap(0.3);
        c.charge_h2d(0.2);
        assert!((c.d2h_seconds() - 0.4).abs() < 1e-9);
        assert!((c.d2h_overlap_seconds() - 0.3).abs() < 1e-9);
        assert_eq!(c.h2d_overlap_seconds(), 0.0);
        c.reset();
        assert_eq!(c.d2h_overlap_seconds(), 0.0);
    }

    #[test]
    fn reset_zeroes() {
        let c = DeviceClock::new();
        c.charge_kernel(1.0);
        c.reset();
        assert_eq!(c.kernel_seconds(), 0.0);
    }

    #[test]
    fn concurrent_charging_sums() {
        let c = std::sync::Arc::new(DeviceClock::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        c.charge_kernel(1e-6);
                    }
                });
            }
        });
        assert!((c.kernel_seconds() - 8e-3).abs() < 1e-9);
    }
}
