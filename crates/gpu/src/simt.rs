//! The device handle and kernel-launch machinery.
//!
//! A [`Gpu`] bundles the device description, memory accounting, the
//! simulated clock and the SM worker pool. Kernel launches do two things:
//!
//! 1. **Execute for real**: the caller supplies one task per thread block
//!    (or block batch); tasks run concurrently on the pool.
//! 2. **Charge simulated time**: a roofline cost model converts the launch's
//!    element count into device seconds —
//!    `max(compute, memory) + launch overhead`, where compute time scales
//!    with per-element operations (× a divergence factor, modeling SIMT
//!    warps serializing divergent branches) and memory time scales with
//!    per-element bytes (× a coalescing factor, modeling scattered access
//!    wasting transaction width).

use crate::clock::DeviceClock;
use crate::config::DeviceConfig;
use crate::counters::{Counters, CountersSnapshot};
use crate::fault::{FaultInjector, FaultKind, FaultPlan, FaultSite};
use crate::memory::DeviceError;
use crate::pool::SmPool;
use crate::timeline::{Event, EventLog};
use std::sync::Arc;

/// Shared device state behind a [`Gpu`] handle.
pub(crate) struct Shared {
    pub(crate) config: DeviceConfig,
    pub(crate) counters: Counters,
    pub(crate) clock: DeviceClock,
    pub(crate) pool: SmPool,
    pub(crate) transfer_overlap: std::sync::atomic::AtomicBool,
    pub(crate) timeline: EventLog,
    pub(crate) fault: FaultInjector,
}

/// A handle to a simulated GPU. Cheap to clone.
#[derive(Clone)]
pub struct Gpu {
    pub(crate) shared: Arc<Shared>,
}

/// Per-element cost description of a kernel, consumed by the roofline model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Simple arithmetic/logic operations per element.
    pub ops_per_element: f64,
    /// Global-memory bytes touched per element.
    pub bytes_per_element: f64,
    /// ≥ 1: multiplier on compute time for intra-warp divergence.
    pub divergence_factor: f64,
    /// ≥ 1: multiplier on memory time for non-coalesced access.
    pub coalescing_factor: f64,
}

impl KernelCost {
    /// A streaming elementwise transform (`thrust::transform` over u64s):
    /// one hash computation per element, fully coalesced reads/writes.
    pub fn transform() -> Self {
        KernelCost {
            ops_per_element: 8.0,
            bytes_per_element: 16.0,
            divergence_factor: 1.0,
            coalescing_factor: 1.0,
        }
    }

    /// Radix sort over u64 keys. Merrill & Grimshaw-style GPU radix sort
    /// (the paper's ref \[15\]) makes several full passes over the keys; the
    /// constants below land at roughly 1 G keys/s on the K20 preset, in
    /// line with published sorting rates of that generation.
    pub fn sort() -> Self {
        KernelCost {
            ops_per_element: 64.0,
            bytes_per_element: 64.0,
            divergence_factor: 1.0,
            coalescing_factor: 2.0,
        }
    }

    /// Segmented sort: radix-like passes, plus divergence because warps
    /// straddle segment boundaries of uneven adjacency lists.
    pub fn segmented_sort() -> Self {
        KernelCost {
            ops_per_element: 64.0,
            bytes_per_element: 64.0,
            divergence_factor: 1.5,
            coalescing_factor: 2.0,
        }
    }

    /// Radix sort over 128-bit packed `(shingle-key, node, index)`
    /// aggregation records — `thrust::sort_pairs`/`sort_by_key` with the
    /// 64-bit key and 64-bit payload sorted as two chained u64 radix
    /// sweeps (low half first, then a stable pass over the high half).
    /// Exactly twice [`KernelCost::sort`] on both roofline axes: the same
    /// digit passes run twice and each moves 16-byte records instead of
    /// 8-byte keys, landing at ~0.5 G records/s on the K20 preset.
    pub fn pair_sort() -> Self {
        KernelCost {
            ops_per_element: 128.0,
            bytes_per_element: 128.0,
            divergence_factor: 1.0,
            coalescing_factor: 2.0,
        }
    }

    /// Gather/scatter with arbitrary indices: trivially cheap compute,
    /// heavily uncoalesced memory traffic.
    pub fn gather() -> Self {
        KernelCost {
            ops_per_element: 2.0,
            bytes_per_element: 20.0,
            divergence_factor: 1.0,
            coalescing_factor: 4.0,
        }
    }

    /// Fused hash-transform + per-segment top-k selection: one streaming
    /// read of the raw elements with an s-sized insertion buffer per
    /// segment held in registers/shared memory, and a dense O(s)-per-
    /// segment write — the select-don't-sort shape of min-wise sketching
    /// (Broder et al.). Compute is the hash (~8 ops) plus a short insertion
    /// probe (~4 ops amortized: most elements fail the `v < buf[k-1]` test
    /// after the buffer warms up); memory is the 4-byte coalesced input
    /// read plus the amortized dense output write. Divergence models warps
    /// straddling uneven segment boundaries, same as the segmented sort.
    /// Contrast with [`KernelCost::segmented_sort`]: no radix passes over
    /// an 8-byte packed workspace, so per element this kernel is roughly an
    /// order of magnitude cheaper on both roofline axes.
    pub fn segmented_select() -> Self {
        KernelCost {
            ops_per_element: 12.0,
            bytes_per_element: 10.0,
            divergence_factor: 1.5,
            coalescing_factor: 1.0,
        }
    }

    /// Key-grouped reduction over sorted input (one scan pass).
    pub fn reduce_by_key() -> Self {
        KernelCost {
            ops_per_element: 6.0,
            bytes_per_element: 24.0,
            divergence_factor: 1.2,
            coalescing_factor: 1.0,
        }
    }

    /// One hook + pointer-jump sweep of the Shiloach–Vishkin-style
    /// connected-components kernel: per edge, two label loads, a compare
    /// and an `atomicMin` hook; per vertex, a `label[label[v]]` jump.
    /// Compute is a handful of integer ops (~4, with mild divergence from
    /// edges whose endpoints already agree exiting early); memory is two
    /// 4-byte label reads plus the conditional 4-byte hook write — all
    /// data-dependent scatter/gather through the label array, so it pays
    /// the same ×4 transaction-width waste as [`KernelCost::gather`].
    /// The label array itself is iterated to fixpoint; the driving loop
    /// charges this cost once per sweep, and random graphs converge in
    /// O(log n) sweeps (Shiloach & Vishkin 1982).
    pub fn cc_iteration() -> Self {
        KernelCost {
            ops_per_element: 4.0,
            bytes_per_element: 12.0,
            divergence_factor: 1.2,
            coalescing_factor: 4.0,
        }
    }
}

impl Gpu {
    /// Create a device with the default worker count (host parallelism).
    pub fn new(config: DeviceConfig) -> Self {
        Gpu::with_workers(config, 0)
    }

    /// Create a device with an explicit worker count (for determinism
    /// studies and tests; results never depend on it, wall time does).
    pub fn with_workers(config: DeviceConfig, n_workers: usize) -> Self {
        Gpu {
            shared: Arc::new(Shared {
                config,
                counters: Counters::default(),
                clock: DeviceClock::new(),
                pool: SmPool::new(n_workers),
                transfer_overlap: std::sync::atomic::AtomicBool::new(false),
                timeline: EventLog::new(),
                fault: FaultInjector::default(),
            }),
        }
    }

    /// Install a fault-injection plan (see [`crate::fault`]). Resets the
    /// injector's occurrence counters and RNG so the plan replays
    /// identically from this point.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.shared.fault.set_plan(plan);
    }

    /// True once an injected `DeviceLost` has fired on this device; every
    /// fallible operation fails from then on.
    pub fn is_lost(&self) -> bool {
        self.shared.fault.is_lost()
    }

    /// Surface any pending (sticky) kernel fault, CUDA
    /// `cudaGetLastError`-style: an injected launch failure parks here and
    /// the first `take_fault`/`try_dtoh` after it reports the error.
    pub fn take_fault(&self) -> Result<(), DeviceError> {
        match self.shared.fault.take_pending() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Internal: draw at `site` and map the kind onto a concrete
    /// [`DeviceError`] with call-site context.
    pub(crate) fn injected_fault(&self, site: FaultSite, bytes: usize) -> Option<DeviceError> {
        let kind = self.shared.fault.draw(site)?;
        Some(match kind {
            FaultKind::TransferFailed => DeviceError::TransferFailed {
                h2d: site == FaultSite::H2D,
                bytes,
            },
            FaultKind::LaunchFailed => DeviceError::LaunchFailed,
            FaultKind::Ecc => DeviceError::Ecc,
            FaultKind::OutOfMemory => DeviceError::OutOfMemory {
                requested: bytes,
                available: self.mem_available(),
                capacity: self.shared.config.global_mem_bytes,
            },
            FaultKind::DeviceLost => DeviceError::DeviceLost {
                device: self.shared.fault.device(),
            },
        })
    }

    /// Enable/disable the "asynchronous transfer" ablation (the paper's
    /// stated future work). Transfers are still timed and tallied, but
    /// [`Gpu::transfer_overlap`] tells the harness to treat them as hidden
    /// behind computation when composing total runtime.
    pub fn set_transfer_overlap(&self, enabled: bool) {
        self.shared
            .transfer_overlap
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether transfers are modeled as overlapped with computation.
    pub fn transfer_overlap(&self) -> bool {
        self.shared
            .transfer_overlap
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The device description.
    pub fn config(&self) -> &DeviceConfig {
        &self.shared.config
    }

    /// Number of pool workers executing kernel tasks.
    pub fn n_workers(&self) -> usize {
        self.shared.pool.n_workers()
    }

    /// Simulated seconds a launch over `n_elements` with `cost` takes.
    pub fn model_kernel_seconds(&self, n_elements: usize, cost: &KernelCost) -> f64 {
        let c = &self.shared.config;
        let compute = n_elements as f64 * cost.ops_per_element * cost.divergence_factor
            / c.sustained_ops_per_sec();
        let memory = n_elements as f64 * cost.bytes_per_element * cost.coalescing_factor
            / (c.mem_bandwidth_gbps * 1e9);
        compute.max(memory) + c.launch_overhead_us * 1e-6
    }

    /// Simulated seconds for a *sequence* of kernel launches, each an
    /// `(element count, cost)` entry — the building block plan predictors
    /// use to price one batch round of a lowered schedule without touching
    /// device state. Each entry pays its own launch overhead, exactly as
    /// the per-launch model does.
    pub fn model_kernel_sequence_seconds(&self, launches: &[(usize, KernelCost)]) -> f64 {
        launches
            .iter()
            .map(|(n, cost)| self.model_kernel_seconds(*n, cost))
            .sum()
    }

    /// Launch a kernel: run `tasks` (one per thread block / block batch) on
    /// the SM pool, then charge the modeled device time for `n_elements`.
    ///
    /// Blocks until every task completes (kernel launches in the paper's
    /// Thrust 1.5 are implicitly synchronized by the following copy anyway).
    pub fn launch<'env>(
        &self,
        n_elements: usize,
        cost: &KernelCost,
        tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
    ) {
        let _ = self.execute_and_model(n_elements, cost, tasks);
    }

    /// Shared body of [`Gpu::launch`] and [`crate::stream::Stream::launch`]:
    /// run the tasks, tally the launch, charge modeled time, and return the
    /// modeled seconds so stream callers can advance their cursor.
    pub(crate) fn execute_and_model<'env>(
        &self,
        n_elements: usize,
        cost: &KernelCost,
        tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
    ) -> f64 {
        if let Some(e) = self.injected_fault(FaultSite::Kernel, 0) {
            // A failed launch runs nothing and charges nothing; the error
            // parks as a sticky pending fault that surfaces at the next
            // fallible sync point ([`Gpu::take_fault`], `try_dtoh`).
            self.shared.fault.set_pending(e);
            return 0.0;
        }
        let wall_start = std::time::Instant::now();
        self.shared.pool.execute_batch(tasks);
        self.shared.counters.kernel_wall_ns.fetch_add(
            wall_start.elapsed().as_nanos() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        self.shared
            .counters
            .kernel_launches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let modeled = self.model_kernel_seconds(n_elements, cost);
        self.shared.timeline.record(Event::Kernel(modeled));
        self.shared.clock.charge_kernel(modeled);
        modeled
    }

    /// The device's event timeline (disabled by default; enable to feed
    /// the asynchronous-transfer model in [`crate::timeline`]).
    pub fn timeline(&self) -> &EventLog {
        &self.shared.timeline
    }

    /// Run tasks on the SM pool, charging wall time but no launch/model
    /// time — used by multi-phase primitives whose cost is charged once at
    /// the end.
    pub(crate) fn run_tasks<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let wall_start = std::time::Instant::now();
        self.shared.pool.execute_batch(tasks);
        self.shared.counters.kernel_wall_ns.fetch_add(
            wall_start.elapsed().as_nanos() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
    }

    /// Snapshot of all telemetry (counters + simulated clock).
    pub fn counters(&self) -> CountersSnapshot {
        self.shared.counters.snapshot(
            self.shared.clock.kernel_seconds(),
            self.shared.clock.h2d_seconds(),
            self.shared.clock.d2h_seconds(),
            self.shared.clock.h2d_overlap_seconds(),
            self.shared.clock.d2h_overlap_seconds(),
            self.shared.fault.injected_total(),
        )
    }

    /// Reset telemetry and clock (live buffers keep their memory). Also
    /// rewinds the fault injector's occurrence counters and RNG so a fixed
    /// plan replays identically per run — a lost device stays lost, though.
    pub fn reset_counters(&self) {
        self.shared.counters.reset();
        self.shared.clock.reset();
        self.shared.fault.reset_counts();
    }
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("config", &self.shared.config.name)
            .field("workers", &self.shared.pool.n_workers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn gpu() -> Gpu {
        Gpu::with_workers(DeviceConfig::tesla_k20(), 2)
    }

    #[test]
    fn launch_runs_tasks_and_charges_time() {
        let g = gpu();
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..10)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        g.launch(1_000_000, &KernelCost::transform(), tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        let snap = g.counters();
        assert_eq!(snap.kernel_launches, 1);
        assert!(snap.kernel_seconds > 0.0);
    }

    #[test]
    fn roofline_compute_vs_memory_bound() {
        let g = gpu();
        let compute_heavy = KernelCost {
            ops_per_element: 10_000.0,
            bytes_per_element: 1.0,
            divergence_factor: 1.0,
            coalescing_factor: 1.0,
        };
        let memory_heavy = KernelCost {
            ops_per_element: 1.0,
            bytes_per_element: 10_000.0,
            divergence_factor: 1.0,
            coalescing_factor: 1.0,
        };
        let n = 1_000_000;
        let tc = g.model_kernel_seconds(n, &compute_heavy);
        let tm = g.model_kernel_seconds(n, &memory_heavy);
        let overhead = g.config().launch_overhead_us * 1e-6;
        let expect_c = n as f64 * 10_000.0 / g.config().sustained_ops_per_sec() + overhead;
        let expect_m = n as f64 * 10_000.0 / (g.config().mem_bandwidth_gbps * 1e9) + overhead;
        assert!((tc - expect_c).abs() / expect_c < 1e-9);
        assert!((tm - expect_m).abs() / expect_m < 1e-9);
    }

    #[test]
    fn divergence_scales_compute_time() {
        let g = gpu();
        let base = KernelCost {
            ops_per_element: 1_000.0,
            bytes_per_element: 0.0,
            divergence_factor: 1.0,
            coalescing_factor: 1.0,
        };
        let diverged = KernelCost {
            divergence_factor: 2.0,
            ..base
        };
        let n = 1 << 20;
        let overhead = g.config().launch_overhead_us * 1e-6;
        let t1 = g.model_kernel_seconds(n, &base) - overhead;
        let t2 = g.model_kernel_seconds(n, &diverged) - overhead;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sort_rate_near_published_k20_figures() {
        // The cost constants should land near ~1 G u64 keys/s on the K20.
        let g = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
        let n = 100_000_000usize;
        let t = g.model_kernel_seconds(n, &KernelCost::sort());
        let keys_per_sec = n as f64 / t;
        assert!(
            (5e8..5e9).contains(&keys_per_sec),
            "sort rate {keys_per_sec:.3e} keys/s out of plausible range"
        );
    }

    #[test]
    fn pair_sort_costs_twice_the_key_sort() {
        // Two u64 radix sweeps over 16-byte records: the 128-bit record
        // sort must model at exactly 2× the u64 key sort, i.e. ~0.5 G
        // records/s on the K20.
        let g = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
        let n = 100_000_000usize;
        let key = g.model_kernel_seconds(n, &KernelCost::sort());
        let pair = g.model_kernel_seconds(n, &KernelCost::pair_sort());
        assert!(pair > key, "pair sort cannot be cheaper than a key sort");
        let ratio = pair / key;
        assert!(
            (1.9..2.1).contains(&ratio),
            "pair/key sort ratio {ratio:.3} should be ~2 (launch overhead aside)"
        );
    }

    #[test]
    fn kernel_sequence_sums_per_launch_models() {
        let g = gpu();
        let seq = [
            (1_000_000usize, KernelCost::transform()),
            (1_000_000, KernelCost::segmented_sort()),
            (40_000, KernelCost::gather()),
        ];
        let summed: f64 = seq.iter().map(|(n, c)| g.model_kernel_seconds(*n, c)).sum();
        let got = g.model_kernel_sequence_seconds(&seq);
        assert!((got - summed).abs() < 1e-15);
        assert_eq!(g.model_kernel_sequence_seconds(&[]), 0.0);
    }

    #[test]
    fn reset_counters_clears_clock() {
        let g = gpu();
        g.launch(100, &KernelCost::transform(), vec![]);
        // An empty task list still charges model time for n elements.
        assert!(g.counters().kernel_seconds >= 0.0);
        g.reset_counters();
        let snap = g.counters();
        assert_eq!(snap.kernel_launches, 0);
        assert_eq!(snap.kernel_seconds, 0.0);
    }
}
