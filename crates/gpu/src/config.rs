//! Device descriptors for the simulator.

use serde::{Deserialize, Serialize};

/// Static description of a simulated GPU.
///
/// The cost model consumes these figures to convert work (elements, bytes)
/// into simulated device seconds; the memory manager enforces
/// `global_mem_bytes`; the pool sizes itself from the host, not from here
/// (thread blocks are *scheduled onto* however many workers exist, exactly
/// as more blocks than SMs are time-sliced on real silicon).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Marketing name, for reports.
    pub name: String,
    /// Streaming multiprocessor count.
    pub sm_count: usize,
    /// CUDA cores per SM.
    pub cores_per_sm: usize,
    /// Threads per warp (SIMT width).
    pub warp_size: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Device global memory capacity in bytes.
    pub global_mem_bytes: usize,
    /// Shared memory per thread block in bytes.
    pub shared_mem_per_block: usize,
    /// Device memory bandwidth in GB/s (for memory-bound kernels).
    pub mem_bandwidth_gbps: f64,
    /// Host↔device transfer bandwidth in GB/s (PCIe, effective).
    pub pcie_bandwidth_gbps: f64,
    /// Per-transfer fixed latency in microseconds.
    pub pcie_latency_us: f64,
    /// Per-kernel-launch fixed overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Fraction of peak arithmetic throughput a tuned kernel sustains.
    pub compute_efficiency: f64,
}

impl DeviceConfig {
    /// The NVIDIA Tesla K20 used in the paper's experiments: 2,496 CUDA
    /// cores (13 SMX × 192), 5 GB GDDR5, 208 GB/s, PCIe gen2 host link.
    ///
    /// `launch_overhead_us` is set to the effective per-primitive overhead
    /// of Thrust 1.5-era calls (kernel launch + temporary-buffer allocation
    /// inside `thrust::sort`), not the bare ~5 µs hardware launch latency.
    /// This fixed cost is what makes the GPU-part speedup *grow* with
    /// workload in Table I (45X on the 20K graph → 374X on 2M): small
    /// per-trial batches pay it in full, large ones amortize it.
    pub fn tesla_k20() -> Self {
        DeviceConfig {
            name: "Tesla K20 (simulated)".to_string(),
            sm_count: 13,
            cores_per_sm: 192,
            warp_size: 32,
            clock_ghz: 0.706,
            global_mem_bytes: 5 * 1024 * 1024 * 1024,
            shared_mem_per_block: 48 * 1024,
            mem_bandwidth_gbps: 208.0,
            pcie_bandwidth_gbps: 6.0,
            pcie_latency_us: 10.0,
            launch_overhead_us: 200.0,
            compute_efficiency: 0.25,
        }
    }

    /// A K20-class card on half the memory and bus bandwidth — the
    /// canonical *heterogeneous fleet* partner: same SM array and clock,
    /// so compute-bound kernels run at full rate, but memory-bound kernels
    /// and every transfer take twice as long. Pairing one of these with a
    /// [`DeviceConfig::tesla_k20`] is the fleet the autotuner's
    /// capability-proportional shares are sized against (round-robin
    /// dealing would gate the pair on this card).
    pub fn tesla_k20_half_bandwidth() -> Self {
        DeviceConfig {
            name: "Tesla K20 (half bandwidth, simulated)".to_string(),
            mem_bandwidth_gbps: 104.0,
            pcie_bandwidth_gbps: 3.0,
            ..Self::tesla_k20()
        }
    }

    /// This device with every throughput figure (compute clock, memory
    /// bandwidth, PCIe bandwidth) scaled by `factor` — a generic derated
    /// (or overclocked) variant for building heterogeneous test fleets.
    /// Memory capacity and fixed latencies are untouched: a slow card is
    /// not a small card.
    ///
    /// # Panics
    /// Panics unless `factor` is finite and positive.
    pub fn scaled(mut self, name: &str, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive, got {factor}"
        );
        self.name = name.to_string();
        self.clock_ghz *= factor;
        self.mem_bandwidth_gbps *= factor;
        self.pcie_bandwidth_gbps *= factor;
        self
    }

    /// A deliberately tiny device (64 KiB of "global memory") that forces
    /// the batching code paths in tests.
    pub fn tiny_test_device() -> Self {
        DeviceConfig {
            name: "tiny-test".to_string(),
            sm_count: 2,
            cores_per_sm: 32,
            warp_size: 32,
            clock_ghz: 1.0,
            global_mem_bytes: 64 * 1024,
            shared_mem_per_block: 4 * 1024,
            mem_bandwidth_gbps: 10.0,
            pcie_bandwidth_gbps: 1.0,
            pcie_latency_us: 10.0,
            launch_overhead_us: 5.0,
            compute_efficiency: 0.5,
        }
    }

    /// Peak arithmetic throughput in (simple) operations per second.
    pub fn peak_ops_per_sec(&self) -> f64 {
        self.sm_count as f64 * self.cores_per_sm as f64 * self.clock_ghz * 1e9
    }

    /// Sustained throughput after the efficiency factor.
    pub fn sustained_ops_per_sec(&self) -> f64 {
        self.peak_ops_per_sec() * self.compute_efficiency
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::tesla_k20()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20_core_count() {
        let c = DeviceConfig::tesla_k20();
        assert_eq!(c.sm_count * c.cores_per_sm, 2_496);
        assert_eq!(c.global_mem_bytes, 5 * 1024 * 1024 * 1024);
    }

    #[test]
    fn throughput_positive_and_ordered() {
        let c = DeviceConfig::tesla_k20();
        assert!(c.peak_ops_per_sec() > 1e12); // 2496 cores * 0.7 GHz ≈ 1.76 T
        assert!(c.sustained_ops_per_sec() < c.peak_ops_per_sec());
        assert!(c.sustained_ops_per_sec() > 0.0);
    }

    #[test]
    fn half_bandwidth_k20_halves_only_the_bandwidths() {
        let full = DeviceConfig::tesla_k20();
        let half = DeviceConfig::tesla_k20_half_bandwidth();
        assert_eq!(half.mem_bandwidth_gbps, full.mem_bandwidth_gbps / 2.0);
        assert_eq!(half.pcie_bandwidth_gbps, full.pcie_bandwidth_gbps / 2.0);
        assert_eq!(half.global_mem_bytes, full.global_mem_bytes);
        assert_eq!(half.sm_count, full.sm_count);
        assert_eq!(half.peak_ops_per_sec(), full.peak_ops_per_sec());
        assert_ne!(half.name, full.name);
    }

    #[test]
    fn scaled_derates_throughput_but_not_capacity() {
        let base = DeviceConfig::tesla_k20();
        let weak = base.clone().scaled("weak", 0.01);
        assert_eq!(weak.name, "weak");
        assert!((weak.peak_ops_per_sec() / base.peak_ops_per_sec() - 0.01).abs() < 1e-12);
        assert!((weak.mem_bandwidth_gbps / base.mem_bandwidth_gbps - 0.01).abs() < 1e-12);
        assert_eq!(weak.global_mem_bytes, base.global_mem_bytes);
        assert_eq!(weak.pcie_latency_us, base.pcie_latency_us);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_nonpositive_factors() {
        let _ = DeviceConfig::tesla_k20().scaled("bad", 0.0);
    }

    #[test]
    fn tiny_device_is_tiny() {
        let c = DeviceConfig::tiny_test_device();
        assert!(c.global_mem_bytes < 1024 * 1024);
    }
}
