//! Thrust-like data-parallel primitives.
//!
//! The paper implements its GPU shingling with the Thrust template library,
//! naming two workhorses: `thrust::transform` (the per-element min-wise
//! hash) and sorting (the segmented sort that orders each permuted
//! adjacency list). This module provides those primitives — plus
//! `sequence`, `gather` and `reduce_by_key` used around them — over
//! [`DeviceBuffer`]s, each launch executing in parallel on the SM pool and
//! charging modeled device time via its [`KernelCost`]. On top of those
//! sit two composite device passes: [`invert_sorted_runs`] (shingle-graph
//! inversion over sorted packed runs: boundary flag + scan + gather) and
//! [`connected_components`] (hook + pointer-jump label fixpoint over a
//! device edge list).
//!
//! All primitives are deterministic and independent of the worker count:
//! work is partitioned into disjoint output ranges, so any schedule
//! produces identical buffers.
//!
//! **Fault injection** (see [`crate::fault`]): every launch here funnels
//! through [`Gpu::launch`]/[`Stream::launch`], so an injected kernel fault
//! skips the launch's work and parks as a sticky pending error. The
//! `Result`-returning primitives ([`reduce_sum`], [`reduce_by_key_counts`])
//! surface it immediately; the infallible ones leave it for the caller's
//! next [`Gpu::take_fault`] / `try_dtoh` synchronization point — the CUDA
//! `cudaGetLastError` contract.

use crate::memory::{DeviceBuffer, DeviceError, Pod};
use crate::simt::{Gpu, KernelCost};
use crate::stream::Stream;

/// Elements per thread-block task; one task ≈ one block batch.
const BLOCK_ELEMS: usize = 64 * 1024;

/// Fill `buf` with `start, start+1, ...` (like `thrust::sequence`).
pub fn sequence(gpu: &Gpu, buf: &mut DeviceBuffer<u32>, start: u32) {
    let n = buf.len();
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = buf
        .device_slice_mut()
        .chunks_mut(BLOCK_ELEMS)
        .enumerate()
        .map(|(i, chunk)| {
            let base = start + (i * BLOCK_ELEMS) as u32;
            Box::new(move || {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x = base + k as u32;
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    gpu.launch(n, &KernelCost::transform(), tasks);
}

/// Build the per-block tasks of an elementwise map (shared by
/// [`transform`] and [`transform_on`]).
fn transform_tasks<'a, T: Pod, U: Pod, F>(
    input: &'a DeviceBuffer<T>,
    output: &'a mut DeviceBuffer<U>,
    f: &'a F,
) -> Vec<Box<dyn FnOnce() + Send + 'a>>
where
    F: Fn(T) -> U + Sync,
{
    assert_eq!(input.len(), output.len(), "transform length mismatch");
    input
        .device_slice()
        .chunks(BLOCK_ELEMS)
        .zip(output.device_slice_mut().chunks_mut(BLOCK_ELEMS))
        .map(|(src, dst)| {
            Box::new(move || {
                for (s, d) in src.iter().zip(dst.iter_mut()) {
                    *d = f(*s);
                }
            }) as Box<dyn FnOnce() + Send + 'a>
        })
        .collect()
}

/// Elementwise map `output[i] = f(input[i])` (like `thrust::transform`).
///
/// # Panics
/// Panics if the buffers differ in length.
pub fn transform<T: Pod, U: Pod, F>(
    gpu: &Gpu,
    input: &DeviceBuffer<T>,
    output: &mut DeviceBuffer<U>,
    f: F,
) where
    F: Fn(T) -> U + Sync,
{
    let n = input.len();
    let tasks = transform_tasks(input, output, &f);
    gpu.launch(n, &KernelCost::transform(), tasks);
}

/// [`transform`] issued on a stream: identical data effect, modeled time
/// charged to the stream's cursor.
pub fn transform_on<T: Pod, U: Pod, F>(
    stream: &Stream,
    input: &DeviceBuffer<T>,
    output: &mut DeviceBuffer<U>,
    f: F,
) where
    F: Fn(T) -> U + Sync,
{
    let n = input.len();
    let tasks = transform_tasks(input, output, &f);
    stream.launch(n, &KernelCost::transform(), tasks);
}

/// In-place elementwise map (like `thrust::transform` with one buffer as
/// both input and output).
pub fn transform_in_place<T: Pod, F>(gpu: &Gpu, buf: &mut DeviceBuffer<T>, f: F)
where
    F: Fn(T) -> T + Sync,
{
    let n = buf.len();
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = buf
        .device_slice_mut()
        .chunks_mut(BLOCK_ELEMS)
        .map(|chunk| {
            Box::new(move || {
                for x in chunk.iter_mut() {
                    *x = f(*x);
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    gpu.launch(n, &KernelCost::transform(), tasks);
}

/// Sort the whole buffer ascending (like `thrust::sort`): parallel chunk
/// sorts followed by parallel pairwise merge passes (a merge-sort shape,
/// costed as the radix sort of the paper's ref \[15\]).
pub fn sort<T: Pod + Ord>(gpu: &Gpu, buf: &mut DeviceBuffer<T>) {
    parallel_merge_sort(gpu, buf);
    gpu.launch(buf.len(), &KernelCost::sort(), vec![]);
}

/// Sort 128-bit packed `(key, payload)` records ascending (like
/// `thrust::sort_pairs`/`sort_by_key` with the key in the high 64 bits):
/// same execution shape as [`sort`], but costed as
/// [`KernelCost::pair_sort`] — two chained u64 radix sweeps moving
/// 16-byte records.
pub fn sort_pairs(gpu: &Gpu, buf: &mut DeviceBuffer<u128>) {
    parallel_merge_sort(gpu, buf);
    gpu.launch(buf.len(), &KernelCost::pair_sort(), vec![]);
}

/// [`sort_pairs`] charged to `stream`'s timeline instead of the blocking
/// one (the `*_on` idiom of the overlapped schedule).
pub fn sort_pairs_on(stream: &Stream, buf: &mut DeviceBuffer<u128>) {
    parallel_merge_sort(stream.gpu(), buf);
    stream.launch(buf.len(), &KernelCost::pair_sort(), vec![]);
}

/// The wall-clock execution shared by every whole-buffer sort: parallel
/// chunk sorts followed by parallel pairwise merge passes, run on the
/// worker pool with no modeled cost — the caller charges its own
/// [`KernelCost`] entry afterwards.
fn parallel_merge_sort<T: Pod + Ord>(gpu: &Gpu, buf: &mut DeviceBuffer<T>) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    // Phase 1: sort chunks in parallel.
    let chunk = BLOCK_ELEMS.max(n.div_ceil(4 * gpu.n_workers().max(1)));
    {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = buf
            .device_slice_mut()
            .chunks_mut(chunk)
            .map(|c| Box::new(move || c.sort_unstable()) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        gpu.run_tasks(tasks);
    }
    // Phase 2: merge runs pairwise until one run remains.
    let mut run = chunk;
    let mut scratch: Vec<T> = buf.device_slice().to_vec();
    let mut src_is_buf = true;
    while run < n {
        {
            let (src, dst): (&[T], &mut [T]) = if src_is_buf {
                (buf.device_slice(), &mut scratch[..])
            } else {
                (&scratch[..], buf.device_slice_mut())
            };
            // SAFETY of the parallel merge: each task writes a disjoint
            // 2*run-wide window of dst and reads the matching window of src.
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = dst
                .chunks_mut(2 * run)
                .enumerate()
                .map(|(i, out)| {
                    let lo = i * 2 * run;
                    let mid = (lo + run).min(n);
                    let hi = (lo + 2 * run).min(n);
                    let left = &src[lo..mid];
                    let right = &src[mid..hi];
                    Box::new(move || merge_into(left, right, out)) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            gpu.run_tasks(tasks);
        }
        src_is_buf = !src_is_buf;
        run *= 2;
    }
    if !src_is_buf {
        buf.device_slice_mut().copy_from_slice(&scratch);
    }
}

/// Build the per-block tasks of a segmented sort (shared by
/// [`segmented_sort`] and [`segmented_sort_on`]).
fn segmented_sort_tasks<'a, T: Pod + Ord>(
    buf: &'a mut DeviceBuffer<T>,
    seg_offsets: &'a [u64],
) -> Vec<Box<dyn FnOnce() + Send + 'a>> {
    assert!(!seg_offsets.is_empty(), "offsets must contain at least [0]");
    assert_eq!(
        *seg_offsets.last().unwrap() as usize,
        buf.len(),
        "offsets must cover the buffer"
    );
    // Partition segments into contiguous groups of ~BLOCK_ELEMS elements so
    // tasks are balanced even when segment sizes are heavily skewed. Tasks
    // borrow their offset windows — no per-task allocation (this runs once
    // per random trial, over millions of segments at scale).
    let mut tasks: Vec<Box<dyn FnOnce() + Send + 'a>> = Vec::new();
    let mut rest = buf.device_slice_mut();
    let mut consumed = 0usize;
    let mut seg_lo = 0usize;
    while seg_lo + 1 < seg_offsets.len() {
        let mut seg_hi = seg_lo + 1;
        while seg_hi + 1 < seg_offsets.len()
            && (seg_offsets[seg_hi] - seg_offsets[seg_lo]) < BLOCK_ELEMS as u64
        {
            seg_hi += 1;
        }
        let start = seg_offsets[seg_lo] as usize;
        let end = seg_offsets[seg_hi] as usize;
        let (head, tail) = rest.split_at_mut(end - consumed);
        rest = tail;
        let window = &seg_offsets[seg_lo..=seg_hi];
        debug_assert_eq!(consumed, start);
        consumed = end;
        tasks.push(Box::new(move || {
            for w in window.windows(2) {
                head[w[0] as usize - start..w[1] as usize - start].sort_unstable();
            }
        }));
        seg_lo = seg_hi;
    }
    tasks
}

/// Sort each segment of `buf` independently (the *segmented sorting* of
/// Figure 4). `seg_offsets` holds `k + 1` monotone offsets delimiting the
/// `k` segments (adjacency-list boundaries, the "auxiliary data structure
/// on the device").
pub fn segmented_sort<T: Pod + Ord>(gpu: &Gpu, buf: &mut DeviceBuffer<T>, seg_offsets: &[u64]) {
    let n = buf.len();
    let tasks = segmented_sort_tasks(buf, seg_offsets);
    gpu.launch(n, &KernelCost::segmented_sort(), tasks);
}

/// [`segmented_sort`] issued on a stream: identical data effect, modeled
/// time charged to the stream's cursor.
pub fn segmented_sort_on<T: Pod + Ord>(
    stream: &Stream,
    buf: &mut DeviceBuffer<T>,
    seg_offsets: &[u64],
) {
    let n = buf.len();
    let tasks = segmented_sort_tasks(buf, seg_offsets);
    stream.launch(n, &KernelCost::segmented_sort(), tasks);
}

/// Write the `w.len()` smallest mapped values of `seg`, ascending, into
/// `w`. An insertion-sorted k-buffer — the paper's own top-s approach
/// ("the small values of s expected to be used in practice, typically
/// under 10, justify a simple insertion sort-based approach"), here run
/// per segment inside the kernel instead of after a full sort. For values
/// that tie, the result is the same multiset the sort-then-truncate oracle
/// keeps, so outputs are bit-identical to sorting and taking the prefix.
fn select_smallest_into<T: Pod, U: Pod + Ord, F>(seg: &[T], w: &mut [U], f: &F)
where
    F: Fn(T) -> U,
{
    let k = w.len();
    if k == 0 {
        return;
    }
    let mut filled = 0usize;
    for &x in seg {
        let v = f(x);
        if filled < k {
            let mut i = filled;
            while i > 0 && w[i - 1] > v {
                w[i] = w[i - 1];
                i -= 1;
            }
            w[i] = v;
            filled += 1;
        } else if v < w[k - 1] {
            let mut i = k - 1;
            while i > 0 && w[i - 1] > v {
                w[i] = w[i - 1];
                i -= 1;
            }
            w[i] = v;
        }
    }
    debug_assert_eq!(filled, k, "selection count exceeds segment length");
}

/// Per-segment output offsets for a uniform top-`k` selection: segment `i`
/// contributes `min(k, |segment i|)` output slots. The returned vector has
/// the same length as `seg_offsets` and its last entry is the dense output
/// size.
pub fn select_out_offsets(seg_offsets: &[u64], k: usize) -> Vec<usize> {
    assert!(!seg_offsets.is_empty(), "offsets must contain at least [0]");
    let mut out = Vec::with_capacity(seg_offsets.len());
    out.push(0usize);
    for w in seg_offsets.windows(2) {
        let len = (w[1] - w[0]) as usize;
        out.push(out.last().unwrap() + len.min(k));
    }
    out
}

/// Build the per-block tasks of a fused transform + segmented top-k
/// selection (shared by the four select variants). Segments are grouped
/// into contiguous ~[`BLOCK_ELEMS`]-input-element tasks, exactly like
/// [`segmented_sort`], so skewed segment sizes stay balanced; each task
/// borrows a disjoint window of the dense output.
fn transform_select_tasks<'a, T: Pod, U: Pod + Ord, F>(
    input: &'a DeviceBuffer<T>,
    seg_offsets: &'a [u64],
    out_offsets: &'a [usize],
    out: &'a mut DeviceBuffer<U>,
    f: &'a F,
) -> Vec<Box<dyn FnOnce() + Send + 'a>>
where
    F: Fn(T) -> U + Sync,
{
    assert!(!seg_offsets.is_empty(), "offsets must contain at least [0]");
    assert_eq!(
        *seg_offsets.last().unwrap() as usize,
        input.len(),
        "offsets must cover the buffer"
    );
    assert_eq!(
        out_offsets.len(),
        seg_offsets.len(),
        "one output offset per segment boundary"
    );
    assert_eq!(
        *out_offsets.last().unwrap(),
        out.len(),
        "output offsets must cover the output buffer"
    );
    for (i, (s, o)) in seg_offsets
        .windows(2)
        .zip(out_offsets.windows(2))
        .enumerate()
    {
        let seg_len = (s[1] - s[0]) as usize;
        let k = o[1]
            .checked_sub(o[0])
            .expect("output offsets must be monotone");
        assert!(
            k <= seg_len,
            "segment {i}: selection count {k} exceeds segment length {seg_len}"
        );
    }
    let src = input.device_slice();
    let mut tasks: Vec<Box<dyn FnOnce() + Send + 'a>> = Vec::new();
    let mut rest = out.device_slice_mut();
    let mut consumed_out = 0usize;
    let mut seg_lo = 0usize;
    while seg_lo + 1 < seg_offsets.len() {
        let mut seg_hi = seg_lo + 1;
        while seg_hi + 1 < seg_offsets.len()
            && (seg_offsets[seg_hi] - seg_offsets[seg_lo]) < BLOCK_ELEMS as u64
        {
            seg_hi += 1;
        }
        let out_start = out_offsets[seg_lo];
        let (head, tail) = rest.split_at_mut(out_offsets[seg_hi] - consumed_out);
        rest = tail;
        debug_assert_eq!(consumed_out, out_start);
        consumed_out = out_offsets[seg_hi];
        let seg_window = &seg_offsets[seg_lo..=seg_hi];
        let out_window = &out_offsets[seg_lo..=seg_hi];
        tasks.push(Box::new(move || {
            for i in 0..seg_window.len() - 1 {
                let seg = &src[seg_window[i] as usize..seg_window[i + 1] as usize];
                let w = &mut head[out_window[i] - out_start..out_window[i + 1] - out_start];
                select_smallest_into(seg, w, f);
            }
        }));
        seg_lo = seg_hi;
    }
    tasks
}

/// Fused elementwise map + segmented top-k selection in **one kernel
/// pass**: for each segment `i` of `input` (delimited by `seg_offsets`),
/// write the `out_offsets[i+1] - out_offsets[i]` smallest values of
/// `f(element)`, ascending, into the dense `out`. Replaces the
/// transform → segmented-sort → compaction trio of the shingling hot path
/// with a single `O(d)`-per-segment launch, and never materializes the
/// mapped values of non-selected elements — there is no full-width packed
/// workspace.
///
/// Per-segment selection counts may be any value `≤` the segment length
/// (zero skips the segment entirely); use [`select_out_offsets`] for the
/// uniform `min(k, |segment|)` layout.
///
/// # Panics
/// Panics if the offsets don't cover the buffers or a selection count
/// exceeds its segment length.
pub fn transform_select<T: Pod, U: Pod + Ord, F>(
    gpu: &Gpu,
    input: &DeviceBuffer<T>,
    seg_offsets: &[u64],
    out_offsets: &[usize],
    out: &mut DeviceBuffer<U>,
    f: F,
) where
    F: Fn(T) -> U + Sync,
{
    let n = input.len();
    let tasks = transform_select_tasks(input, seg_offsets, out_offsets, out, &f);
    gpu.launch(n, &KernelCost::segmented_select(), tasks);
}

/// [`transform_select`] issued on a stream: identical data effect, modeled
/// time charged to the stream's cursor.
pub fn transform_select_on<T: Pod, U: Pod + Ord, F>(
    stream: &Stream,
    input: &DeviceBuffer<T>,
    seg_offsets: &[u64],
    out_offsets: &[usize],
    out: &mut DeviceBuffer<U>,
    f: F,
) where
    F: Fn(T) -> U + Sync,
{
    let n = input.len();
    let tasks = transform_select_tasks(input, seg_offsets, out_offsets, out, &f);
    stream.launch(n, &KernelCost::segmented_select(), tasks);
}

/// Segmented k-smallest selection: for each segment of `input`, write its
/// `out_offsets[i+1] - out_offsets[i]` smallest values, ascending, into
/// the dense `out` — identical output to sorting each segment and taking
/// its prefix, in `O(d·s)` per segment instead of `O(d log d)`.
///
/// # Panics
/// Panics if the offsets don't cover the buffers or a selection count
/// exceeds its segment length.
pub fn segmented_select_k<T: Pod + Ord>(
    gpu: &Gpu,
    input: &DeviceBuffer<T>,
    seg_offsets: &[u64],
    out_offsets: &[usize],
    out: &mut DeviceBuffer<T>,
) {
    transform_select(gpu, input, seg_offsets, out_offsets, out, |x| x);
}

/// [`segmented_select_k`] issued on a stream: identical data effect,
/// modeled time charged to the stream's cursor.
pub fn segmented_select_k_on<T: Pod + Ord>(
    stream: &Stream,
    input: &DeviceBuffer<T>,
    seg_offsets: &[u64],
    out_offsets: &[usize],
    out: &mut DeviceBuffer<T>,
) {
    transform_select_on(stream, input, seg_offsets, out_offsets, out, |x| x);
}

/// `out[i] = src[indices[i]]` (like `thrust::gather`).
pub fn gather<T: Pod>(
    gpu: &Gpu,
    src: &DeviceBuffer<T>,
    indices: &DeviceBuffer<u32>,
    out: &mut DeviceBuffer<T>,
) {
    assert_eq!(indices.len(), out.len(), "gather length mismatch");
    let n = indices.len();
    let src_slice = src.device_slice();
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = indices
        .device_slice()
        .chunks(BLOCK_ELEMS)
        .zip(out.device_slice_mut().chunks_mut(BLOCK_ELEMS))
        .map(|(idx, dst)| {
            Box::new(move || {
                for (i, d) in idx.iter().zip(dst.iter_mut()) {
                    *d = src_slice[*i as usize];
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    gpu.launch(n, &KernelCost::gather(), tasks);
}

/// Block-parallel sum reduction (like `thrust::reduce`): each thread block
/// reduces its tile **through per-block shared memory** (the classic
/// tree-reduction shape), then the host combines the block partials. The
/// shared-memory requirement of the tile is checked against the device's
/// `shared_mem_per_block` and the launch fails with
/// [`DeviceError::SharedMemExceeded`] when a tile would not fit — the same
/// occupancy constraint real kernels tune around.
pub fn reduce_sum(gpu: &Gpu, buf: &DeviceBuffer<u64>, tile: usize) -> Result<u64, DeviceError> {
    assert!(tile > 0, "tile must be positive");
    let shared_needed = tile * std::mem::size_of::<u64>();
    let capacity = gpu.config().shared_mem_per_block;
    if shared_needed > capacity {
        return Err(DeviceError::SharedMemExceeded {
            requested: shared_needed,
            capacity,
        });
    }
    let n = buf.len();
    let n_blocks = n.div_ceil(tile.max(1)).max(1);
    let mut partials = vec![0u64; n_blocks];
    {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = buf
            .device_slice()
            .chunks(tile)
            .zip(partials.iter_mut())
            .map(|(chunk, out)| {
                Box::new(move || {
                    // Simulated shared-memory tile + tree reduction.
                    let mut sm: Vec<u64> = chunk.to_vec();
                    let mut width = sm.len();
                    while width > 1 {
                        let half = width.div_ceil(2);
                        for i in 0..width / 2 {
                            sm[i] = sm[i].wrapping_add(sm[half + i]);
                        }
                        width = half;
                    }
                    *out = sm.first().copied().unwrap_or(0);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        gpu.launch(n, &KernelCost::reduce_by_key(), tasks);
    }
    // Surface an injected launch fault here rather than parking it for the
    // next copy — this primitive returns a host value, so it *is* the sync
    // point.
    gpu.take_fault()?;
    Ok(partials.into_iter().fold(0u64, u64::wrapping_add))
}

/// Exclusive prefix sum (like `thrust::exclusive_scan`): `out[0] = init`,
/// `out[i] = init + Σ buf[0..i]`. Two-phase block scan: per-block partial
/// sums in parallel, then a serial block-offset pass, then a parallel
/// fix-up — the standard GPU scan shape.
pub fn exclusive_scan(gpu: &Gpu, buf: &DeviceBuffer<u64>, out: &mut DeviceBuffer<u64>, init: u64) {
    assert_eq!(buf.len(), out.len(), "scan length mismatch");
    let n = buf.len();
    if n == 0 {
        gpu.launch(0, &KernelCost::reduce_by_key(), vec![]);
        return;
    }
    // Phase 1: local exclusive scans per block, collecting block sums.
    let n_blocks = n.div_ceil(BLOCK_ELEMS);
    let mut block_sums = vec![0u64; n_blocks];
    {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = buf
            .device_slice()
            .chunks(BLOCK_ELEMS)
            .zip(out.device_slice_mut().chunks_mut(BLOCK_ELEMS))
            .zip(block_sums.iter_mut())
            .map(|((src, dst), sum)| {
                Box::new(move || {
                    let mut acc = 0u64;
                    for (s, d) in src.iter().zip(dst.iter_mut()) {
                        *d = acc;
                        acc = acc.wrapping_add(*s);
                    }
                    *sum = acc;
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        gpu.run_tasks(tasks);
    }
    // Phase 2: scan the block sums (serial; n_blocks is tiny).
    let mut offset = init;
    let offsets: Vec<u64> = block_sums
        .iter()
        .map(|&s| {
            let o = offset;
            offset = offset.wrapping_add(s);
            o
        })
        .collect();
    // Phase 3: add each block's offset.
    {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
            .device_slice_mut()
            .chunks_mut(BLOCK_ELEMS)
            .zip(offsets)
            .map(|(dst, o)| {
                Box::new(move || {
                    for d in dst.iter_mut() {
                        *d = d.wrapping_add(o);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        gpu.run_tasks(tasks);
    }
    gpu.launch(n, &KernelCost::reduce_by_key(), vec![]);
}

/// Group a **sorted** key buffer into `(unique_keys, counts)` (like
/// `thrust::reduce_by_key` with a constant-1 value stream).
pub fn reduce_by_key_counts(
    gpu: &Gpu,
    keys: &DeviceBuffer<u64>,
) -> Result<(DeviceBuffer<u64>, DeviceBuffer<u32>), DeviceError> {
    let slice = keys.device_slice();
    debug_assert!(
        slice.windows(2).all(|w| w[0] <= w[1]),
        "keys must be sorted"
    );
    let mut uniques: Vec<u64> = Vec::new();
    let mut counts: Vec<u32> = Vec::new();
    // Single scan pass (a real GPU would run a prefix-scan; the cost model
    // charges it as one).
    for &k in slice {
        match uniques.last() {
            Some(&last) if last == k => *counts.last_mut().unwrap() += 1,
            _ => {
                uniques.push(k);
                counts.push(1);
            }
        }
    }
    gpu.launch(keys.len(), &KernelCost::reduce_by_key(), vec![]);
    gpu.take_fault()?;
    let u = gpu.adopt(uniques)?;
    let c = gpu.adopt(counts)?;
    Ok((u, c))
}

/// The raw CSR arrays of an inverted shingle stream, in exactly the shape
/// the graph layer's `ShingleGraph::from_parts` consumes — left as plain
/// arrays so this crate stays independent of the graph layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvertedRuns {
    /// Distinct shingle keys, ascending.
    pub keys: Vec<u64>,
    /// `s` element ids per key, from each key group's first record (the
    /// representative).
    pub elements: Vec<u32>,
    /// `keys.len() + 1` offsets delimiting each key's generator span.
    pub gen_offsets: Vec<u64>,
    /// Generator node ids per key group, consecutive duplicates removed.
    pub generators: Vec<u32>,
}

/// Invert sorted packed shingle runs into `(key, representative elements,
/// generator list)` CSR segments entirely on the device — the
/// segmented-boundary-flag + scan + gather pass that replaces the host's
/// streaming k-way heap merge.
///
/// Each run is a pair `(packed, elements)` where `packed[i]` is
/// `(key << 64) | (node << 32) | local-index`, ascending, and
/// `elements[local-index*s ..]` holds that record's `s` element ids (the
/// `SortedRun` layout the device aggregation downloads). The pass:
///
/// 1. re-ranks run-local indices to global record ids and radix-sorts the
///    concatenated u128s (skipped for a single run, which is already
///    globally sorted) — full-key order `(key, node, global-id)` is
///    exactly the `((key, node), run, position)` order of the host heap
///    merge, so every downstream tie-break matches it bit for bit;
/// 2. flags key boundaries and `(key, node)` boundaries in one sweep;
/// 3. exclusive-scans both flag streams into output positions;
/// 4. gathers keys, each group's representative element block, compacted
///    generators and the generator offsets into dense CSR arrays.
///
/// Injected launch faults park as usual and surface at the final
/// device→host copies; an allocation that does not fit returns
/// [`DeviceError::OutOfMemory`] — both feed the caller's retry /
/// degrade-to-host combinators.
///
/// # Panics
/// Panics if `s == 0` or a run's element array is not `s` per record.
pub fn invert_sorted_runs(
    gpu: &Gpu,
    s: usize,
    runs: &[(&[u128], &[u32])],
) -> Result<InvertedRuns, DeviceError> {
    assert!(s > 0, "shingle size must be positive");
    const LOW32: u128 = 0xFFFF_FFFF;
    let runs: Vec<&(&[u128], &[u32])> = runs.iter().filter(|(p, _)| !p.is_empty()).collect();
    for (packed, elements) in runs.iter() {
        assert_eq!(elements.len(), packed.len() * s, "run element shape");
        debug_assert!(
            packed.windows(2).all(|w| w[0] <= w[1]),
            "runs must be sorted"
        );
    }
    let n: usize = runs.iter().map(|(p, _)| p.len()).sum();
    assert!(n < (1 << 32), "too many shingle records");
    if n == 0 {
        return Ok(InvertedRuns {
            keys: Vec::new(),
            elements: Vec::new(),
            gen_offsets: vec![0],
            generators: Vec::new(),
        });
    }

    // Stage the concatenated runs and upload them once. Record `base + i`
    // of the concatenation keeps its elements at `(base + i) * s`, so the
    // global record id doubles as the element-block index.
    let mut packed_host: Vec<u128> = Vec::with_capacity(n);
    let mut elems_host: Vec<u32> = Vec::with_capacity(n * s);
    let mut run_lens: Vec<usize> = Vec::with_capacity(runs.len());
    for (p, e) in runs.iter() {
        run_lens.push(p.len());
        packed_host.extend_from_slice(p);
        elems_host.extend_from_slice(e);
    }
    let mut packed = gpu.htod(&packed_host)?;
    let elements = gpu.htod(&elems_host)?;

    if run_lens.len() > 1 {
        // Re-rank low 32 bits to global record ids (one transform sweep:
        // within a run the base is a constant), then merge the runs with
        // one full radix pair-sort.
        {
            let mut rest = packed.device_slice_mut();
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            let mut base = 0usize;
            for len in &run_lens {
                let (region, tail) = rest.split_at_mut(*len);
                rest = tail;
                let run_base = base as u128;
                for chunk in region.chunks_mut(BLOCK_ELEMS) {
                    tasks.push(Box::new(move || {
                        for x in chunk.iter_mut() {
                            *x = (*x & !LOW32) | (run_base + (*x & LOW32));
                        }
                    }));
                }
                base += len;
            }
            gpu.launch(n, &KernelCost::transform(), tasks);
        }
        sort_pairs(gpu, &mut packed);
    }

    // Flag key boundaries (a new shingle) and `(key, node)` boundaries (a
    // new generator after consecutive-duplicate removal) in one sweep.
    // `packed >> 32` is `(key << 32) | node`, so comparing it to the
    // previous record dedups nodes within a key group *and* always fires
    // on a key change — the stream inverter's sentinel-reset, flag-wise.
    let mut key_flags = gpu.alloc::<u64>(n)?;
    let mut gen_flags = gpu.alloc::<u64>(n)?;
    {
        let src = packed.device_slice();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = key_flags
            .device_slice_mut()
            .chunks_mut(BLOCK_ELEMS)
            .zip(gen_flags.device_slice_mut().chunks_mut(BLOCK_ELEMS))
            .enumerate()
            .map(|(ci, (kf, gf))| {
                let base = ci * BLOCK_ELEMS;
                Box::new(move || {
                    for k in 0..kf.len() {
                        let i = base + k;
                        if i == 0 {
                            kf[k] = 1;
                            gf[k] = 1;
                        } else {
                            kf[k] = ((src[i - 1] >> 64) != (src[i] >> 64)) as u64;
                            gf[k] = ((src[i - 1] >> 32) != (src[i] >> 32)) as u64;
                        }
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        gpu.launch(n, &KernelCost::transform(), tasks);
    }
    let mut key_pos = gpu.alloc::<u64>(n)?;
    exclusive_scan(gpu, &key_flags, &mut key_pos, 0);
    let mut gen_pos = gpu.alloc::<u64>(n)?;
    exclusive_scan(gpu, &gen_flags, &mut gen_pos, 0);
    let n_keys = (key_pos.device_slice()[n - 1] + key_flags.device_slice()[n - 1]) as usize;
    let n_gens = (gen_pos.device_slice()[n - 1] + gen_flags.device_slice()[n - 1]) as usize;

    // Gather the dense CSR arrays: every flagged record scatters to its
    // scanned position. Records are chunked on boundaries whose output
    // spans are disjoint (the scans are monotone), so tasks own disjoint
    // output windows.
    let mut out_keys = gpu.alloc::<u64>(n_keys)?;
    let mut out_elems = gpu.alloc::<u32>(n_keys * s)?;
    let mut out_goffs = gpu.alloc::<u64>(n_keys + 1)?;
    let mut out_gens = gpu.alloc::<u32>(n_gens)?;
    {
        let src = packed.device_slice();
        let elems_src = elements.device_slice();
        let kf = key_flags.device_slice();
        let kp = key_pos.device_slice();
        let gf = gen_flags.device_slice();
        let gp = gen_pos.device_slice();
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        let (mut goffs_rest, goffs_last) = out_goffs.device_slice_mut().split_at_mut(n_keys);
        tasks.push(Box::new(move || goffs_last[0] = n_gens as u64));
        let mut keys_rest = out_keys.device_slice_mut();
        let mut elems_rest = out_elems.device_slice_mut();
        let mut gens_rest = out_gens.device_slice_mut();
        let (mut k_done, mut g_done, mut lo) = (0usize, 0usize, 0usize);
        while lo < n {
            let hi = (lo + BLOCK_ELEMS).min(n);
            let k_hi = if hi < n { kp[hi] as usize } else { n_keys };
            let g_hi = if hi < n { gp[hi] as usize } else { n_gens };
            let (keys_c, kr) = keys_rest.split_at_mut(k_hi - k_done);
            keys_rest = kr;
            let (elems_c, er) = elems_rest.split_at_mut((k_hi - k_done) * s);
            elems_rest = er;
            let (goffs_c, or) = goffs_rest.split_at_mut(k_hi - k_done);
            goffs_rest = or;
            let (gens_c, gr) = gens_rest.split_at_mut(g_hi - g_done);
            gens_rest = gr;
            let (k_base, g_base) = (k_done, g_done);
            tasks.push(Box::new(move || {
                for i in lo..hi {
                    if kf[i] == 1 {
                        let kx = kp[i] as usize - k_base;
                        keys_c[kx] = (src[i] >> 64) as u64;
                        goffs_c[kx] = gp[i];
                        let g = (src[i] & LOW32) as usize;
                        elems_c[kx * s..(kx + 1) * s]
                            .copy_from_slice(&elems_src[g * s..(g + 1) * s]);
                    }
                    if gf[i] == 1 {
                        gens_c[gp[i] as usize - g_base] = ((src[i] >> 32) & LOW32) as u32;
                    }
                }
            }));
            k_done = k_hi;
            g_done = g_hi;
            lo = hi;
        }
        gpu.launch(n, &KernelCost::gather(), tasks);
    }
    Ok(InvertedRuns {
        keys: gpu.try_dtoh(&out_keys)?,
        elements: gpu.try_dtoh(&out_elems)?,
        gen_offsets: gpu.try_dtoh(&out_goffs)?,
        generators: gpu.try_dtoh(&out_gens)?,
    })
}

/// The fixpoint of [`connected_components`]: per-vertex labels (each the
/// minimum vertex id of its component) and the number of hook + jump
/// sweeps the fixpoint took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcResult {
    /// `labels[v]` = smallest vertex id in `v`'s component.
    pub labels: Vec<u32>,
    /// Hook + pointer-jump sweeps until no label changed.
    pub iterations: usize,
}

/// Sweeps the [`connected_components`] fixpoint is modeled to take on an
/// `n`-vertex graph: hooking halves the label depth and pointer jumping
/// halves it again, so random graphs converge in `O(log n)` sweeps
/// (Shiloach & Vishkin 1982) plus the final no-change detection pass.
pub fn cc_sweep_estimate(n: usize) -> usize {
    (usize::BITS - n.max(2).leading_zeros()) as usize + 1
}

/// Connected components over a device edge list by synchronous min-label
/// hooking + pointer jumping (Shiloach–Vishkin style).
///
/// `edges` holds `(a << 32) | b` endpoint pairs over vertices `0..n`
/// (self-loops and duplicates are harmless). Setup symmetrizes and sorts
/// the directed edge list into per-target spans — the device CSR build.
/// Each sweep then computes, double-buffered from the previous labels:
///
/// * **hook**: `next[v] = min(prev[v], min over edges (u, v) of prev[u])`;
/// * **jump**: `jumped[v] = next[next[v]]` (labels are vertex ids, so a
///   label's label contracts the pointer chain toward the minimum);
///
/// and stops when no label changed. Every phase is a pure function of the
/// previous sweep's labels over disjoint output chunks, so labels *and*
/// the iteration count are deterministic for any worker count. Each sweep
/// charges one [`KernelCost::cc_iteration`] launch over the `2m + n`
/// touched elements and polls [`Gpu::take_fault`] — the per-iteration
/// fault site the resilience layer retries.
///
/// The labels converge to the minimum vertex id of each component: hooks
/// only ever lower a label to another id inside the same component, and
/// the minimum id is a fixpoint of both phases.
///
/// # Panics
/// Panics (in debug builds) if an endpoint is `>= n`.
pub fn connected_components(
    gpu: &Gpu,
    n: usize,
    edges: &DeviceBuffer<u64>,
) -> Result<CcResult, DeviceError> {
    if n == 0 {
        assert!(edges.is_empty(), "edges over an empty vertex set");
        return Ok(CcResult {
            labels: Vec::new(),
            iterations: 0,
        });
    }
    let m = edges.len();

    // Symmetrize into (target << 32) | source and sort, so each vertex's
    // incoming sources form one contiguous span of the directed list.
    let mut dir = gpu.alloc::<u64>(2 * m)?;
    {
        let src = edges.device_slice();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = src
            .chunks(BLOCK_ELEMS)
            .zip(dir.device_slice_mut().chunks_mut(2 * BLOCK_ELEMS))
            .map(|(es, out)| {
                Box::new(move || {
                    for (k, &e) in es.iter().enumerate() {
                        let (a, b) = (e >> 32, e & 0xFFFF_FFFF);
                        debug_assert!(
                            (a as usize) < n && (b as usize) < n,
                            "edge endpoint out of range"
                        );
                        out[2 * k] = (b << 32) | a;
                        out[2 * k + 1] = (a << 32) | b;
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        gpu.launch(2 * m, &KernelCost::transform(), tasks);
    }
    sort(gpu, &mut dir);
    // Per-vertex spans of the sorted directed list (binary search per
    // vertex — the usual offsets-from-sorted-keys build).
    let mut offsets = gpu.alloc::<u64>(n + 1)?;
    {
        let sorted = dir.device_slice();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = offsets
            .device_slice_mut()
            .chunks_mut(BLOCK_ELEMS)
            .enumerate()
            .map(|(ci, out)| {
                let base = ci * BLOCK_ELEMS;
                Box::new(move || {
                    for (k, o) in out.iter_mut().enumerate() {
                        let v = (base + k) as u64;
                        *o = sorted.partition_point(|&e| (e >> 32) < v) as u64;
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        gpu.launch(n + 1, &KernelCost::transform(), tasks);
    }

    let mut prev = gpu.alloc::<u32>(n)?;
    sequence(gpu, &mut prev, 0);
    let mut next = gpu.alloc::<u32>(n)?;
    let mut jumped = gpu.alloc::<u32>(n)?;
    let n_chunks = n.div_ceil(BLOCK_ELEMS);
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        // Hook phase (wall-clock on the pool; the sweep's modeled cost is
        // charged once below, the multi-phase-primitive idiom).
        {
            let prev_s = prev.device_slice();
            let sorted = dir.device_slice();
            let offs = offsets.device_slice();
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = next
                .device_slice_mut()
                .chunks_mut(BLOCK_ELEMS)
                .enumerate()
                .map(|(ci, out)| {
                    let base = ci * BLOCK_ELEMS;
                    Box::new(move || {
                        for (k, slot) in out.iter_mut().enumerate() {
                            let v = base + k;
                            let mut label = prev_s[v];
                            for &e in &sorted[offs[v] as usize..offs[v + 1] as usize] {
                                label = label.min(prev_s[(e & 0xFFFF_FFFF) as usize]);
                            }
                            *slot = label;
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            gpu.run_tasks(tasks);
        }
        // Jump phase + per-chunk convergence flags.
        let mut chunk_changed = vec![false; n_chunks];
        {
            let prev_s = prev.device_slice();
            let next_s = next.device_slice();
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = jumped
                .device_slice_mut()
                .chunks_mut(BLOCK_ELEMS)
                .zip(chunk_changed.iter_mut())
                .enumerate()
                .map(|(ci, (out, changed))| {
                    let base = ci * BLOCK_ELEMS;
                    Box::new(move || {
                        let mut any = false;
                        for (k, slot) in out.iter_mut().enumerate() {
                            let j = next_s[next_s[base + k] as usize];
                            any |= j != prev_s[base + k];
                            *slot = j;
                        }
                        *changed = any;
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            gpu.run_tasks(tasks);
        }
        // One modeled sweep: the hook reads a label per directed edge, the
        // jump chases one pointer per vertex.
        gpu.launch(2 * m + n, &KernelCost::cc_iteration(), vec![]);
        gpu.take_fault()?;
        if !chunk_changed.iter().any(|&c| c) {
            break;
        }
        std::mem::swap(&mut prev, &mut jumped);
    }
    Ok(CcResult {
        labels: gpu.try_dtoh(&prev)?,
        iterations,
    })
}

/// Two-pointer merge of sorted `left` and `right` into `out`.
fn merge_into<T: Pod + Ord>(left: &[T], right: &[T], out: &mut [T]) {
    debug_assert_eq!(left.len() + right.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_left = match (left.get(i), right.get(j)) {
            (Some(l), Some(r)) => l <= r,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("out exhausted first"),
        };
        if take_left {
            *slot = left[i];
            i += 1;
        } else {
            *slot = right[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gpu() -> Gpu {
        Gpu::with_workers(DeviceConfig::tesla_k20(), 3)
    }

    #[test]
    fn sequence_fills() {
        let g = gpu();
        let mut buf = g.alloc::<u32>(100_000).unwrap();
        sequence(&g, &mut buf, 5);
        let host = g.dtoh(&buf);
        for (i, &x) in host.iter().enumerate() {
            assert_eq!(x, 5 + i as u32);
        }
    }

    #[test]
    fn transform_applies_function() {
        let g = gpu();
        let data: Vec<u64> = (0..200_000).collect();
        let input = g.htod(&data).unwrap();
        let mut output = g.alloc::<u64>(data.len()).unwrap();
        transform(&g, &input, &mut output, |x| x * 3 + 1);
        let host = g.dtoh(&output);
        assert!(host.iter().enumerate().all(|(i, &x)| x == i as u64 * 3 + 1));
        assert!(g.counters().kernel_launches >= 1);
    }

    #[test]
    fn transform_in_place_works() {
        let g = gpu();
        let mut buf = g.htod(&[1u64, 2, 3]).unwrap();
        transform_in_place(&g, &mut buf, |x| x + 10);
        assert_eq!(g.dtoh(&buf), vec![11, 12, 13]);
    }

    #[test]
    fn sort_matches_std() {
        let g = gpu();
        let mut rng = StdRng::seed_from_u64(3);
        let mut data: Vec<u64> = (0..300_000).map(|_| rng.gen()).collect();
        let mut buf = g.htod(&data).unwrap();
        sort(&g, &mut buf);
        data.sort_unstable();
        assert_eq!(g.dtoh(&buf), data);
    }

    #[test]
    fn sort_small_and_empty() {
        let g = gpu();
        let mut empty = g.htod::<u64>(&[]).unwrap();
        sort(&g, &mut empty);
        assert!(g.dtoh(&empty).is_empty());
        let mut one = g.htod(&[7u64]).unwrap();
        sort(&g, &mut one);
        assert_eq!(g.dtoh(&one), vec![7]);
        let mut two = g.htod(&[9u64, 1]).unwrap();
        sort(&g, &mut two);
        assert_eq!(g.dtoh(&two), vec![1, 9]);
    }

    #[test]
    fn sort_deterministic_across_worker_counts() {
        let mut rng = StdRng::seed_from_u64(4);
        let data: Vec<u64> = (0..100_000).map(|_| rng.gen_range(0..1000)).collect();
        let mut results = Vec::new();
        for workers in [1, 2, 7] {
            let g = Gpu::with_workers(DeviceConfig::tesla_k20(), workers);
            let mut buf = g.htod(&data).unwrap();
            sort(&g, &mut buf);
            results.push(g.dtoh(&buf));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn sort_pairs_matches_std_and_charges_pair_sort_cost() {
        let g = gpu();
        let mut rng = StdRng::seed_from_u64(11);
        let mut data: Vec<u128> = (0..200_000)
            .map(|_| ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128)
            .collect();
        let mut buf = g.htod(&data).unwrap();
        let before = g.counters().kernel_seconds;
        sort_pairs(&g, &mut buf);
        let charged = g.counters().kernel_seconds - before;
        data.sort_unstable();
        assert_eq!(g.dtoh(&buf), data);
        // The 128-bit record sort must cost the pair_sort roofline entry
        // (≈ 2× the u64 key sort), not the plain sort() one.
        let expected = g.model_kernel_seconds(200_000, &KernelCost::pair_sort());
        assert!((charged - expected).abs() < 1e-8, "{charged} vs {expected}");
    }

    #[test]
    fn sort_pairs_on_lands_on_stream_cursor() {
        let g = gpu();
        let mut rng = StdRng::seed_from_u64(12);
        let mut data: Vec<u128> = (0..50_000).map(|_| rng.gen::<u64>() as u128).collect();
        let stream = g.stream("pair-sort");
        let mut buf = g.htod(&data).unwrap();
        sort_pairs_on(&stream, &mut buf);
        data.sort_unstable();
        assert_eq!(g.dtoh(&buf), data);
        let expected = g.model_kernel_seconds(50_000, &KernelCost::pair_sort());
        assert!(stream.completed_seconds() >= expected - 1e-12);
    }

    #[test]
    fn segmented_sort_sorts_within_segments_only() {
        let g = gpu();
        let data = vec![5u64, 3, 9, /*|*/ 2, 1, /*|*/ 8, 7, 6, 0];
        let offsets = vec![0u64, 3, 5, 9];
        let mut buf = g.htod(&data).unwrap();
        segmented_sort(&g, &mut buf, &offsets);
        assert_eq!(g.dtoh(&buf), vec![3, 5, 9, 1, 2, 0, 6, 7, 8]);
    }

    #[test]
    fn segmented_sort_random_against_oracle() {
        let g = gpu();
        let mut rng = StdRng::seed_from_u64(5);
        // Random segment structure incl. empty segments.
        let mut offsets = vec![0u64];
        let mut data: Vec<u64> = Vec::new();
        for _ in 0..500 {
            let len = rng.gen_range(0..40);
            for _ in 0..len {
                data.push(rng.gen_range(0..10_000));
            }
            offsets.push(data.len() as u64);
        }
        let mut expected = data.clone();
        for w in offsets.windows(2) {
            expected[w[0] as usize..w[1] as usize].sort_unstable();
        }
        let mut buf = g.htod(&data).unwrap();
        segmented_sort(&g, &mut buf, &offsets);
        assert_eq!(g.dtoh(&buf), expected);
    }

    #[test]
    fn segmented_sort_single_huge_segment() {
        let g = gpu();
        let mut rng = StdRng::seed_from_u64(6);
        let mut data: Vec<u64> = (0..200_000).map(|_| rng.gen()).collect();
        let offsets = vec![0u64, data.len() as u64];
        let mut buf = g.htod(&data).unwrap();
        segmented_sort(&g, &mut buf, &offsets);
        data.sort_unstable();
        assert_eq!(g.dtoh(&buf), data);
    }

    #[test]
    #[should_panic(expected = "cover the buffer")]
    fn segmented_sort_rejects_bad_offsets() {
        let g = gpu();
        let mut buf = g.htod(&[1u64, 2, 3]).unwrap();
        segmented_sort(&g, &mut buf, &[0, 2]);
    }

    /// Sort-then-truncate oracle for the select primitives.
    fn select_oracle(data: &[u64], offsets: &[u64], k: usize) -> Vec<u64> {
        let mut expected = Vec::new();
        for w in offsets.windows(2) {
            let mut seg = data[w[0] as usize..w[1] as usize].to_vec();
            seg.sort_unstable();
            seg.truncate(k);
            expected.extend(seg);
        }
        expected
    }

    #[test]
    fn segmented_select_matches_sort_truncate_oracle() {
        let g = gpu();
        let mut rng = StdRng::seed_from_u64(21);
        // Random segment structure incl. empty segments and duplicates.
        let mut offsets = vec![0u64];
        let mut data: Vec<u64> = Vec::new();
        for _ in 0..500 {
            let len = rng.gen_range(0..40);
            for _ in 0..len {
                data.push(rng.gen_range(0..50)); // tight range → many duplicates
            }
            offsets.push(data.len() as u64);
        }
        for k in [1usize, 2, 3, 7] {
            let out_offsets = select_out_offsets(&offsets, k);
            let input = g.htod(&data).unwrap();
            let mut out = g.alloc::<u64>(*out_offsets.last().unwrap()).unwrap();
            segmented_select_k(&g, &input, &offsets, &out_offsets, &mut out);
            assert_eq!(g.dtoh(&out), select_oracle(&data, &offsets, k), "k={k}");
        }
    }

    #[test]
    fn segmented_select_k_larger_than_segment_yields_whole_segment_sorted() {
        let g = gpu();
        let data = vec![5u64, 3, 9, /*|*/ 2, 1, /*|*/ 8];
        let offsets = vec![0u64, 3, 5, 6];
        // k = 10 > every segment length: each segment comes back whole,
        // sorted — min(k, |segment|) slots per segment.
        let out_offsets = select_out_offsets(&offsets, 10);
        assert_eq!(out_offsets, vec![0, 3, 5, 6]);
        let input = g.htod(&data).unwrap();
        let mut out = g.alloc::<u64>(6).unwrap();
        segmented_select_k(&g, &input, &offsets, &out_offsets, &mut out);
        assert_eq!(g.dtoh(&out), vec![3, 5, 9, 1, 2, 8]);
    }

    #[test]
    fn segmented_select_empty_segments_and_empty_input() {
        let g = gpu();
        // All-empty segments.
        let input = g.htod::<u64>(&[]).unwrap();
        let offsets = vec![0u64, 0, 0, 0];
        let out_offsets = select_out_offsets(&offsets, 2);
        assert_eq!(out_offsets, vec![0, 0, 0, 0]);
        let mut out = g.alloc::<u64>(0).unwrap();
        segmented_select_k(&g, &input, &offsets, &out_offsets, &mut out);
        assert!(g.dtoh(&out).is_empty());
        // Empty segments interleaved with real ones.
        let data = vec![4u64, 2, 9];
        let offsets = vec![0u64, 0, 3, 3];
        let out_offsets = select_out_offsets(&offsets, 2);
        let input = g.htod(&data).unwrap();
        let mut out = g.alloc::<u64>(2).unwrap();
        segmented_select_k(&g, &input, &offsets, &out_offsets, &mut out);
        assert_eq!(g.dtoh(&out), vec![2, 4]);
    }

    #[test]
    fn segmented_select_single_huge_segment() {
        let g = gpu();
        let mut rng = StdRng::seed_from_u64(22);
        let data: Vec<u64> = (0..200_000).map(|_| rng.gen()).collect();
        let offsets = vec![0u64, data.len() as u64];
        let out_offsets = select_out_offsets(&offsets, 5);
        let input = g.htod(&data).unwrap();
        let mut out = g.alloc::<u64>(5).unwrap();
        segmented_select_k(&g, &input, &offsets, &out_offsets, &mut out);
        assert_eq!(g.dtoh(&out), select_oracle(&data, &offsets, 5));
    }

    #[test]
    fn segmented_select_deterministic_across_worker_counts() {
        let mut rng = StdRng::seed_from_u64(23);
        let data: Vec<u64> = (0..50_000).map(|_| rng.gen_range(0..100)).collect();
        let offsets: Vec<u64> = (0..=100).map(|i| i * 500).collect();
        let out_offsets = select_out_offsets(&offsets, 2);
        let mut results = Vec::new();
        for workers in [1usize, 2, 7] {
            let g = Gpu::with_workers(DeviceConfig::tesla_k20(), workers);
            let input = g.htod(&data).unwrap();
            let mut out = g.alloc::<u64>(*out_offsets.last().unwrap()).unwrap();
            segmented_select_k(&g, &input, &offsets, &out_offsets, &mut out);
            results.push(g.dtoh(&out));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn transform_select_fuses_map_and_selection() {
        let g = gpu();
        let mut rng = StdRng::seed_from_u64(24);
        let data: Vec<u32> = (0..30_000).map(|_| rng.gen()).collect();
        let offsets: Vec<u64> = (0..=60).map(|i| i * 500).collect();
        let f = |v: u32| ((v.wrapping_mul(2_654_435_761) as u64) << 32) | v as u64;
        // Oracle: transform into a full workspace, segmented sort, truncate.
        let mapped: Vec<u64> = data.iter().map(|&v| f(v)).collect();
        let expected = select_oracle(&mapped, &offsets, 2);
        let out_offsets = select_out_offsets(&offsets, 2);
        let input = g.htod(&data).unwrap();
        let mut out = g.alloc::<u64>(*out_offsets.last().unwrap()).unwrap();
        transform_select(&g, &input, &offsets, &out_offsets, &mut out, f);
        assert_eq!(g.dtoh(&out), expected);
    }

    #[test]
    fn transform_select_honors_per_segment_zero_counts() {
        let g = gpu();
        let data = vec![7u32, 1, 9, /*|*/ 4, 2, /*|*/ 8, 3];
        let offsets = vec![0u64, 3, 5, 7];
        // Middle segment skipped entirely (k = 0), as the shingling pass
        // does for interior segments shorter than s.
        let out_offsets = vec![0usize, 2, 2, 4];
        let input = g.htod(&data).unwrap();
        let mut out = g.alloc::<u64>(4).unwrap();
        transform_select(&g, &input, &offsets, &out_offsets, &mut out, |v| v as u64);
        assert_eq!(g.dtoh(&out), vec![1, 7, 3, 8]);
    }

    #[test]
    #[should_panic(expected = "cover the buffer")]
    fn segmented_select_rejects_bad_seg_offsets() {
        let g = gpu();
        let input = g.htod(&[1u64, 2, 3]).unwrap();
        let mut out = g.alloc::<u64>(2).unwrap();
        segmented_select_k(&g, &input, &[0, 2], &[0, 2], &mut out);
    }

    #[test]
    #[should_panic(expected = "exceeds segment length")]
    fn segmented_select_rejects_overlong_selection() {
        let g = gpu();
        let input = g.htod(&[1u64, 2, 3]).unwrap();
        let mut out = g.alloc::<u64>(5).unwrap();
        // Asks for 5 outputs from a 3-element segment.
        segmented_select_k(&g, &input, &[0, 3], &[0, 5], &mut out);
    }

    #[test]
    #[should_panic(expected = "cover the output buffer")]
    fn segmented_select_rejects_mismatched_output() {
        let g = gpu();
        let input = g.htod(&[1u64, 2, 3]).unwrap();
        let mut out = g.alloc::<u64>(3).unwrap();
        segmented_select_k(&g, &input, &[0, 3], &[0, 2], &mut out);
    }

    #[test]
    fn select_stream_variants_match_sync_variants() {
        let g = gpu();
        let s = g.stream("compute");
        let mut rng = StdRng::seed_from_u64(25);
        let data: Vec<u32> = (0..50_000).map(|_| rng.gen_range(0..1_000)).collect();
        let offsets: Vec<u64> = (0..=50).map(|i| i * 1_000).collect();
        let out_offsets = select_out_offsets(&offsets, 3);
        let f = |v: u32| (v as u64).rotate_left(7);
        let input = g.htod(&data).unwrap();
        let n_out = *out_offsets.last().unwrap();
        let mut out_sync = g.alloc::<u64>(n_out).unwrap();
        transform_select(&g, &input, &offsets, &out_offsets, &mut out_sync, f);
        let mut out_stream = g.alloc::<u64>(n_out).unwrap();
        transform_select_on(&s, &input, &offsets, &out_offsets, &mut out_stream, f);
        assert_eq!(g.dtoh(&out_sync), g.dtoh(&out_stream));
        assert!(s.completed_seconds() > 0.0);
    }

    #[test]
    fn select_cost_model_beats_sort_path() {
        // The whole point of the fused kernel: per element it must be
        // modeled far cheaper than transform + segmented sort + gather.
        let g = gpu();
        let n = 10_000_000usize;
        let sort_path = g.model_kernel_seconds(n, &KernelCost::transform())
            + g.model_kernel_seconds(n, &KernelCost::segmented_sort())
            + g.model_kernel_seconds(n / 10, &KernelCost::gather());
        let select_path = g.model_kernel_seconds(n, &KernelCost::segmented_select());
        assert!(
            select_path * 3.0 < sort_path,
            "fused select {select_path} not ≪ sort path {sort_path}"
        );
    }

    #[test]
    fn gather_permutes() {
        let g = gpu();
        let src = g.htod(&[10u64, 20, 30, 40]).unwrap();
        let idx = g.htod(&[3u32, 0, 2, 2]).unwrap();
        let mut out = g.alloc::<u64>(4).unwrap();
        gather(&g, &src, &idx, &mut out);
        assert_eq!(g.dtoh(&out), vec![40, 10, 30, 30]);
    }

    #[test]
    fn reduce_by_key_counts_groups() {
        let g = gpu();
        let keys = g.htod(&[1u64, 1, 2, 5, 5, 5]).unwrap();
        let (u, c) = reduce_by_key_counts(&g, &keys).unwrap();
        assert_eq!(g.dtoh(&u), vec![1, 2, 5]);
        assert_eq!(g.dtoh(&c), vec![2, 1, 3]);
    }

    #[test]
    fn reduce_by_key_empty() {
        let g = gpu();
        let keys = g.htod::<u64>(&[]).unwrap();
        let (u, c) = reduce_by_key_counts(&g, &keys).unwrap();
        assert!(g.dtoh(&u).is_empty());
        assert!(g.dtoh(&c).is_empty());
    }

    #[test]
    fn reduce_sum_matches_oracle() {
        let g = gpu();
        let mut rng = StdRng::seed_from_u64(12);
        for n in [0usize, 1, 7, 1000, 200_000] {
            let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
            let buf = g.htod(&data).unwrap();
            let got = reduce_sum(&g, &buf, 1024).unwrap();
            assert_eq!(got, data.iter().sum::<u64>(), "n={n}");
        }
    }

    #[test]
    fn reduce_sum_rejects_oversized_tile() {
        let g = Gpu::with_workers(DeviceConfig::tiny_test_device(), 1);
        let buf = g.htod(&[1u64, 2, 3]).unwrap();
        // tiny device: 4 KiB shared per block = 512 u64 slots.
        assert!(reduce_sum(&g, &buf, 512).is_ok());
        let err = reduce_sum(&g, &buf, 513).unwrap_err();
        assert!(matches!(
            err,
            crate::memory::DeviceError::SharedMemExceeded { .. }
        ));
    }

    #[test]
    fn exclusive_scan_matches_oracle() {
        let g = gpu();
        let mut rng = StdRng::seed_from_u64(8);
        for (n, init) in [(0usize, 0u64), (1, 5), (1000, 0), (200_000, 7)] {
            let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
            let buf = g.htod(&data).unwrap();
            let mut out = g.alloc::<u64>(n).unwrap();
            exclusive_scan(&g, &buf, &mut out, init);
            let mut acc = init;
            let expected: Vec<u64> = data
                .iter()
                .map(|&x| {
                    let o = acc;
                    acc += x;
                    o
                })
                .collect();
            assert_eq!(g.dtoh(&out), expected, "n={n}");
        }
    }

    #[test]
    fn exclusive_scan_deterministic_across_workers() {
        let data: Vec<u64> = (0..300_000).map(|i| i % 97).collect();
        let mut results = Vec::new();
        for workers in [1usize, 5] {
            let g = Gpu::with_workers(DeviceConfig::tesla_k20(), workers);
            let buf = g.htod(&data).unwrap();
            let mut out = g.alloc::<u64>(data.len()).unwrap();
            exclusive_scan(&g, &buf, &mut out, 3);
            results.push(g.dtoh(&out));
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn stream_variants_match_sync_variants() {
        let g = gpu();
        let s = g.stream("compute");
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<u64> = (0..50_000).map(|_| rng.gen_range(0..1_000)).collect();
        let offsets: Vec<u64> = (0..=50).map(|i| i * 1_000).collect();
        let input = g.htod(&data).unwrap();
        let mut out_sync = g.alloc::<u64>(data.len()).unwrap();
        transform(&g, &input, &mut out_sync, |x| x.rotate_left(7));
        segmented_sort(&g, &mut out_sync, &offsets);
        let mut out_stream = g.alloc::<u64>(data.len()).unwrap();
        transform_on(&s, &input, &mut out_stream, |x| x.rotate_left(7));
        segmented_sort_on(&s, &mut out_stream, &offsets);
        assert_eq!(g.dtoh(&out_sync), g.dtoh(&out_stream));
        assert!(s.completed_seconds() > 0.0);
    }

    #[test]
    fn primitives_charge_device_time() {
        let g = gpu();
        let mut buf = g.htod(&vec![1u64; 500_000]).unwrap();
        g.reset_counters();
        transform_in_place(&g, &mut buf, |x| x ^ 0xff);
        sort(&g, &mut buf);
        let snap = g.counters();
        assert!(snap.kernel_seconds > 0.0);
        assert!(snap.kernel_launches >= 2);
    }

    /// One sorted run of `(key, node)` records: random draws, sorted, with
    /// run-local indices in the low 32 bits and `s` random elements each.
    fn random_run(
        rng: &mut StdRng,
        s: usize,
        len: usize,
        key_range: u64,
        node_range: u32,
    ) -> (Vec<u128>, Vec<u32>) {
        let mut recs: Vec<(u64, u32)> = (0..len)
            .map(|_| (rng.gen_range(0..key_range), rng.gen_range(0..node_range)))
            .collect();
        recs.sort_unstable();
        let packed: Vec<u128> = recs
            .iter()
            .enumerate()
            .map(|(i, &(k, v))| ((k as u128) << 64) | ((v as u128) << 32) | i as u128)
            .collect();
        let elements: Vec<u32> = (0..len * s).map(|_| rng.gen_range(0..1_000)).collect();
        (packed, elements)
    }

    /// Host oracle for [`invert_sorted_runs`]: merge records in global
    /// `((key, node), run, position)` order and invert them streaming —
    /// open a group per distinct key, take the first record's elements as
    /// the representative, dedup consecutive generator nodes.
    fn invert_oracle(s: usize, runs: &[(Vec<u128>, Vec<u32>)]) -> InvertedRuns {
        let mut order: Vec<(u128, usize, usize)> = Vec::new();
        for (ri, (packed, _)) in runs.iter().enumerate() {
            for &p in packed {
                order.push((p >> 32, ri, (p & 0xFFFF_FFFF) as usize));
            }
        }
        order.sort_unstable();
        let mut out = InvertedRuns {
            keys: Vec::new(),
            elements: Vec::new(),
            gen_offsets: vec![0],
            generators: Vec::new(),
        };
        let (mut cur_key, mut last_node, mut open) = (0u64, u32::MAX, false);
        for (kn, ri, idx) in order {
            let key = (kn >> 32) as u64;
            let node = (kn & 0xFFFF_FFFF) as u32;
            if !open || key != cur_key {
                if open {
                    out.gen_offsets.push(out.generators.len() as u64);
                }
                out.keys.push(key);
                out.elements
                    .extend_from_slice(&runs[ri].1[idx * s..(idx + 1) * s]);
                cur_key = key;
                last_node = u32::MAX;
                open = true;
            }
            if node != last_node {
                out.generators.push(node);
                last_node = node;
            }
        }
        if open {
            out.gen_offsets.push(out.generators.len() as u64);
        }
        out
    }

    fn as_run_slices(runs: &[(Vec<u128>, Vec<u32>)]) -> Vec<(&[u128], &[u32])> {
        runs.iter()
            .map(|(p, e)| (p.as_slice(), e.as_slice()))
            .collect()
    }

    #[test]
    fn invert_sorted_runs_matches_stream_oracle() {
        let g = gpu();
        let mut rng = StdRng::seed_from_u64(31);
        for s in [1usize, 3] {
            // Tight key/node ranges force duplicate (key, node) records
            // both within and across runs — the tie-break cases.
            let runs: Vec<(Vec<u128>, Vec<u32>)> = (0..4)
                .map(|_| {
                    let len = rng.gen_range(0..400);
                    random_run(&mut rng, s, len, 60, 20)
                })
                .collect();
            let got = invert_sorted_runs(&g, s, &as_run_slices(&runs)).unwrap();
            assert_eq!(got, invert_oracle(s, &runs), "s={s}");
        }
    }

    #[test]
    fn invert_single_run_skips_the_merge_sort() {
        const LOW: u128 = 0xFFFF_FFFF;
        let s = 2usize;
        let g = gpu();
        let mut rng = StdRng::seed_from_u64(32);
        let (packed, elements) = random_run(&mut rng, s, 5_000, 100, 30);
        // The same records split into two runs, each re-ranked run-local.
        let half = packed.len() / 2;
        let run_a = (packed[..half].to_vec(), elements[..half * s].to_vec());
        let run_b = (
            packed[half..]
                .iter()
                .map(|&p| (p & !LOW) | ((p & LOW) - half as u128))
                .collect::<Vec<u128>>(),
            elements[half * s..].to_vec(),
        );
        let single = vec![(packed, elements)];
        g.reset_counters();
        let got_single = invert_sorted_runs(&g, s, &as_run_slices(&single)).unwrap();
        let single_launches = g.counters().kernel_launches;
        g.reset_counters();
        let split = vec![run_a, run_b];
        let got_split = invert_sorted_runs(&g, s, &as_run_slices(&split)).unwrap();
        let split_launches = g.counters().kernel_launches;
        // Bit-identical inversions, but the single run skips the re-rank
        // transform and the merging pair-sort.
        assert_eq!(got_single, invert_oracle(s, &single));
        assert_eq!(got_single, got_split);
        assert_eq!(split_launches, single_launches + 2);
    }

    #[test]
    fn invert_empty_and_all_empty_runs() {
        let g = gpu();
        let expect = InvertedRuns {
            keys: vec![],
            elements: vec![],
            gen_offsets: vec![0],
            generators: vec![],
        };
        assert_eq!(invert_sorted_runs(&g, 3, &[]).unwrap(), expect);
        let empty: Vec<(Vec<u128>, Vec<u32>)> = vec![(vec![], vec![]), (vec![], vec![])];
        assert_eq!(
            invert_sorted_runs(&g, 3, &as_run_slices(&empty)).unwrap(),
            expect
        );
    }

    #[test]
    fn invert_deterministic_across_worker_counts() {
        let mut rng = StdRng::seed_from_u64(33);
        let runs: Vec<(Vec<u128>, Vec<u32>)> = (0..3)
            .map(|_| random_run(&mut rng, 2, 2_000, 40, 15))
            .collect();
        let mut results = Vec::new();
        for workers in [1usize, 2, 7] {
            let g = Gpu::with_workers(DeviceConfig::tesla_k20(), workers);
            results.push(invert_sorted_runs(&g, 2, &as_run_slices(&runs)).unwrap());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    /// Union–find oracle whose roots are component minima (unions attach
    /// the larger root under the smaller, so the root of every tree is its
    /// minimum vertex id — the same labels the device kernel converges to).
    fn min_label_oracle(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
        fn find(parent: &mut [u32], mut v: u32) -> u32 {
            while parent[v as usize] != v {
                let g = parent[parent[v as usize] as usize];
                parent[v as usize] = g;
                v = g;
            }
            v
        }
        let mut parent: Vec<u32> = (0..n as u32).collect();
        for &(a, b) in edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra.max(rb) as usize] = ra.min(rb);
            }
        }
        (0..n as u32).map(|v| find(&mut parent, v)).collect()
    }

    fn pack_edges(edges: &[(u32, u32)]) -> Vec<u64> {
        edges
            .iter()
            .map(|&(a, b)| ((a as u64) << 32) | b as u64)
            .collect()
    }

    #[test]
    fn cc_matches_min_label_oracle_on_random_graphs() {
        let g = gpu();
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..12 {
            let n = rng.gen_range(1..80usize);
            let m = rng.gen_range(0..200usize);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
                .collect();
            let dev = g.htod(&pack_edges(&edges)).unwrap();
            let got = connected_components(&g, n, &dev).unwrap();
            assert_eq!(got.labels, min_label_oracle(n, &edges), "n={n} m={m}");
            assert!(got.iterations >= 1);
        }
    }

    #[test]
    fn cc_empty_edgeless_and_self_loops() {
        let g = gpu();
        // Empty vertex set: nothing to label, zero sweeps.
        let none = g.htod::<u64>(&[]).unwrap();
        let got = connected_components(&g, 0, &none).unwrap();
        assert!(got.labels.is_empty());
        assert_eq!(got.iterations, 0);
        // Edgeless: every vertex its own component, one detection sweep.
        let got = connected_components(&g, 5, &none).unwrap();
        assert_eq!(got.labels, vec![0, 1, 2, 3, 4]);
        assert_eq!(got.iterations, 1);
        // Self-loops and duplicate edges change nothing.
        let edges = pack_edges(&[(2, 2), (1, 3), (3, 1), (1, 3)]);
        let dev = g.htod(&edges).unwrap();
        let got = connected_components(&g, 4, &dev).unwrap();
        assert_eq!(got.labels, vec![0, 1, 2, 1]);
    }

    #[test]
    fn cc_single_giant_component_within_sweep_estimate() {
        let g = gpu();
        let n = 300usize;
        // A ring: diameter n/2, the hostile case for plain label
        // propagation — pointer jumping must close it in O(log n).
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect();
        let dev = g.htod(&pack_edges(&edges)).unwrap();
        let got = connected_components(&g, n, &dev).unwrap();
        assert!(got.labels.iter().all(|&l| l == 0));
        assert!(
            got.iterations <= cc_sweep_estimate(n),
            "{} sweeps > estimate {}",
            got.iterations,
            cc_sweep_estimate(n)
        );
    }

    #[test]
    fn cc_deterministic_across_worker_counts() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 500usize;
        let edges: Vec<(u32, u32)> = (0..800)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        let packed = pack_edges(&edges);
        let mut results = Vec::new();
        for workers in [1usize, 3, 8] {
            let g = Gpu::with_workers(DeviceConfig::tesla_k20(), workers);
            let dev = g.htod(&packed).unwrap();
            results.push(connected_components(&g, n, &dev).unwrap());
        }
        // Labels *and* sweep counts must agree — the modeled time depends
        // on the iteration count, so it must not vary with the schedule.
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn cc_charges_cc_iteration_per_sweep() {
        let g = gpu();
        let n = 4_000usize;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
        let dev = g.htod(&pack_edges(&edges)).unwrap();
        g.reset_counters();
        let got = connected_components(&g, n, &dev).unwrap();
        // Every launch is deterministic, so the charged device time is the
        // setup (symmetrize + sort + offsets + label init) plus exactly
        // one cc_iteration sweep over 2m + n elements per iteration.
        let m2 = 2 * edges.len();
        let expected = g.model_kernel_seconds(m2, &KernelCost::transform())
            + g.model_kernel_seconds(m2, &KernelCost::sort())
            + g.model_kernel_seconds(n + 1, &KernelCost::transform())
            + g.model_kernel_seconds(n, &KernelCost::transform())
            + got.iterations as f64 * g.model_kernel_seconds(m2 + n, &KernelCost::cc_iteration());
        let charged = g.counters().kernel_seconds;
        assert!((charged - expected).abs() < 1e-8, "{charged} vs {expected}");
    }

    #[test]
    fn cc_surfaces_injected_kernel_faults() {
        use crate::fault::{FaultKind, FaultPlan, FaultSite};
        let g = gpu();
        let edges: Vec<(u32, u32)> = (0..99).map(|v| (v, v + 1)).collect();
        let dev = g.htod(&pack_edges(&edges)).unwrap();
        g.set_fault_plan(FaultPlan::scheduled().with_fault(
            FaultSite::Kernel,
            4,
            FaultKind::LaunchFailed,
        ));
        let err = connected_components(&g, 100, &dev).unwrap_err();
        assert!(err.is_transient(), "{err}");
        // The plan is exhausted; a clean retry on the same device succeeds.
        let got = connected_components(&g, 100, &dev).unwrap();
        assert!(got.labels.iter().all(|&l| l == 0));
    }
}
