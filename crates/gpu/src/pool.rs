//! The SM array: a work-stealing CPU thread pool.
//!
//! Thread blocks on a real GPU are scheduled independently onto whichever
//! SM has capacity; here, kernel *tasks* (one per thread block, or per
//! block-batch) are pushed to a global injector and pulled by worker
//! threads through classic work stealing (local deque → injector →
//! steal from siblings). The pool is deliberately hand-built on
//! `crossbeam-deque` so the scheduling structure mirrors the machine being
//! simulated rather than hiding inside a generic parallel-iterator layer.
//!
//! [`SmPool::execute_batch`] blocks until every submitted task has run,
//! which is what makes lending non-`'static` borrows to tasks sound (the
//! borrow outlives the whole batch — the same argument as
//! `std::thread::scope`).

use crossbeam_deque::{Injector, Stealer, Worker};
use crossbeam_utils::sync::WaitGroup;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    shutdown: AtomicBool,
    panicked: AtomicBool,
}

/// A fixed-size work-stealing pool standing in for the SM array.
pub struct SmPool {
    shared: Arc<PoolShared>,
    threads: Vec<thread::Thread>,
    handles: Vec<JoinHandle<()>>,
    n_workers: usize,
}

impl SmPool {
    /// Create a pool with `n_workers` threads (0 → host parallelism).
    pub fn new(n_workers: usize) -> Self {
        let n_workers = if n_workers == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            n_workers
        };
        let locals: Vec<Worker<Job>> = (0..n_workers).map(|_| Worker::new_fifo()).collect();
        let stealers = locals.iter().map(Worker::stealer).collect();
        let shared = Arc::new(PoolShared {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
        });

        let mut handles = Vec::with_capacity(n_workers);
        for (idx, local) in locals.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let handle = thread::Builder::new()
                .name(format!("gpu-sm-{idx}"))
                .spawn(move || worker_loop(idx, local, shared))
                .expect("spawn pool worker");
            handles.push(handle);
        }
        let threads = handles.iter().map(|h| h.thread().clone()).collect();
        SmPool {
            shared,
            threads,
            handles,
            n_workers,
        }
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Run all `tasks` to completion on the pool; blocks until done.
    ///
    /// Tasks may borrow from the caller's stack: the bound is `'env`, and
    /// soundness follows from this function not returning until every task
    /// has finished (the `WaitGroup` join), exactly like a scoped thread.
    ///
    /// # Panics
    /// Panics if any task panicked.
    pub fn execute_batch<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if tasks.is_empty() {
            return;
        }
        let wg = WaitGroup::new();
        for task in tasks {
            // SAFETY: the task's borrows live for 'env, and we block on
            // `wg.wait()` below until the task has completed, so the
            // reference never outlives its referent.
            let task: Job = unsafe {
                std::mem::transmute::<
                    Box<dyn FnOnce() + Send + 'env>,
                    Box<dyn FnOnce() + Send + 'static>,
                >(task)
            };
            let wg = wg.clone();
            let shared = Arc::clone(&self.shared);
            self.shared.injector.push(Box::new(move || {
                // The panic flag must be raised before the wait-group clone
                // drops: unwinding out of `task` would release `wg` first,
                // letting `wg.wait()` below return and read the flag before
                // the worker's own catch_unwind records the panic.
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    shared.panicked.store(true, Ordering::SeqCst);
                }
                drop(wg);
            }));
        }
        for t in &self.threads {
            t.unpark();
        }
        wg.wait();
        if self.shared.panicked.swap(false, Ordering::SeqCst) {
            panic!("a kernel task panicked on the device pool");
        }
    }
}

impl Drop for SmPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for t in &self.threads {
            t.unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for SmPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmPool")
            .field("n_workers", &self.n_workers)
            .finish()
    }
}

fn worker_loop(idx: usize, local: Worker<Job>, shared: Arc<PoolShared>) {
    loop {
        if let Some(job) = find_job(idx, &local, &shared) {
            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                shared.panicked.store(true, Ordering::SeqCst);
            }
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Nothing to do: park until new work or shutdown. An unpark that
        // raced ahead of this park leaves a token, so we cannot deadlock.
        thread::park_timeout(std::time::Duration::from_millis(50));
    }
}

fn find_job(idx: usize, local: &Worker<Job>, shared: &PoolShared) -> Option<Job> {
    if let Some(job) = local.pop() {
        return Some(job);
    }
    loop {
        // Global queue first (batch-steal amortizes contention), then peers.
        match shared.injector.steal_batch_and_pop(local) {
            crossbeam_deque::Steal::Success(job) => return Some(job),
            crossbeam_deque::Steal::Retry => continue,
            crossbeam_deque::Steal::Empty => {}
        }
        let mut retry = false;
        for (i, stealer) in shared.stealers.iter().enumerate() {
            if i == idx {
                continue;
            }
            match stealer.steal() {
                crossbeam_deque::Steal::Success(job) => return Some(job),
                crossbeam_deque::Steal::Retry => retry = true,
                crossbeam_deque::Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_all_tasks() {
        let pool = SmPool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..100)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.execute_batch(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn borrows_caller_data_mutably_disjoint() {
        let pool = SmPool::new(3);
        let mut data = vec![0u64; 1_000];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(100).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
            .into_iter()
            .enumerate()
            .map(|(i, chunk)| {
                Box::new(move || {
                    for (k, x) in chunk.iter_mut().enumerate() {
                        *x = (i * 100 + k) as u64;
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.execute_batch(tasks);
        for (k, &x) in data.iter().enumerate() {
            assert_eq!(x, k as u64);
        }
    }

    #[test]
    fn sequential_batches_reuse_pool() {
        let pool = SmPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..10 {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
                .map(|_| {
                    Box::new(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.execute_batch(tasks);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn empty_batch_is_noop() {
        let pool = SmPool::new(1);
        pool.execute_batch(Vec::new());
    }

    #[test]
    fn panicking_task_propagates() {
        let pool = SmPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.execute_batch(vec![Box::new(|| panic!("boom")) as Box<dyn FnOnce() + Send>]);
        }));
        assert!(result.is_err());
        // Pool remains usable after a panic.
        let counter = AtomicUsize::new(0);
        pool.execute_batch(vec![Box::new(|| {
            counter.fetch_add(1, Ordering::Relaxed);
        }) as Box<dyn FnOnce() + Send + '_>]);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn zero_workers_defaults_to_host_parallelism() {
        let pool = SmPool::new(0);
        assert!(pool.n_workers() >= 1);
    }
}
