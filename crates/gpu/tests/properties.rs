//! Property tests for the device primitives: every primitive must agree
//! with its host-side oracle for arbitrary inputs, worker counts, and
//! segment structures.

use gpclust_gpu::{thrust, DeviceConfig, Gpu};
use proptest::prelude::*;

fn gpu(workers: usize) -> Gpu {
    Gpu::with_workers(DeviceConfig::tesla_k20(), workers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sort_matches_std(data in proptest::collection::vec(any::<u64>(), 0..5000),
                        workers in 1usize..5) {
        let g = gpu(workers);
        let mut buf = g.htod(&data).unwrap();
        thrust::sort(&g, &mut buf);
        let mut expected = data.clone();
        expected.sort_unstable();
        prop_assert_eq!(g.dtoh(&buf), expected);
    }

    #[test]
    fn segmented_sort_matches_per_segment_std(
        seg_lens in proptest::collection::vec(0usize..60, 0..80),
        workers in 1usize..4,
        seed in any::<u64>(),
    ) {
        let g = gpu(workers);
        let mut offsets = vec![0u64];
        let mut data: Vec<u64> = Vec::new();
        let mut x = seed | 1;
        for &len in &seg_lens {
            for _ in 0..len {
                // xorshift64 fill
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                data.push(x);
            }
            offsets.push(data.len() as u64);
        }
        let mut expected = data.clone();
        for w in offsets.windows(2) {
            expected[w[0] as usize..w[1] as usize].sort_unstable();
        }
        let mut buf = g.htod(&data).unwrap();
        thrust::segmented_sort(&g, &mut buf, &offsets);
        prop_assert_eq!(g.dtoh(&buf), expected);
    }

    #[test]
    fn transform_matches_map(data in proptest::collection::vec(any::<u64>(), 0..3000),
                             mul in any::<u64>()) {
        let g = gpu(2);
        let input = g.htod(&data).unwrap();
        let mut out = g.alloc::<u64>(data.len()).unwrap();
        thrust::transform(&g, &input, &mut out, |x| x.wrapping_mul(mul));
        let expected: Vec<u64> = data.iter().map(|x| x.wrapping_mul(mul)).collect();
        prop_assert_eq!(g.dtoh(&out), expected);
    }

    #[test]
    fn scan_matches_prefix_sums(data in proptest::collection::vec(0u64..1_000_000, 0..3000),
                                init in 0u64..1000) {
        let g = gpu(3);
        let buf = g.htod(&data).unwrap();
        let mut out = g.alloc::<u64>(data.len()).unwrap();
        thrust::exclusive_scan(&g, &buf, &mut out, init);
        let mut acc = init;
        let expected: Vec<u64> = data.iter().map(|&x| { let o = acc; acc += x; o }).collect();
        prop_assert_eq!(g.dtoh(&out), expected);
    }

    #[test]
    fn reduce_by_key_matches_group_counts(
        mut keys in proptest::collection::vec(0u64..50, 0..2000),
    ) {
        keys.sort_unstable();
        let g = gpu(2);
        let buf = g.htod(&keys).unwrap();
        let (u, c) = thrust::reduce_by_key_counts(&g, &buf).unwrap();
        let uniques = g.dtoh(&u);
        let counts = g.dtoh(&c);
        // Oracle via simple grouping.
        let mut expected_u = Vec::new();
        let mut expected_c: Vec<u32> = Vec::new();
        for &k in &keys {
            if expected_u.last() == Some(&k) {
                *expected_c.last_mut().unwrap() += 1;
            } else {
                expected_u.push(k);
                expected_c.push(1);
            }
        }
        prop_assert_eq!(uniques, expected_u);
        prop_assert_eq!(counts, expected_c);
    }

    #[test]
    fn timeline_models_are_ordered(
        kinds in proptest::collection::vec(0u8..3, 0..40),
        durs in proptest::collection::vec(1u32..1000, 0..40),
    ) {
        use gpclust_gpu::{pipelined_seconds, serialized_seconds, Event};
        let events: Vec<Event> = kinds
            .iter()
            .zip(&durs)
            .map(|(&k, &d)| {
                let s = d as f64 / 1000.0;
                match k { 0 => Event::Kernel(s), 1 => Event::H2D(s), _ => Event::D2H(s) }
            })
            .collect();
        let serial = serialized_seconds(&events);
        let pipe = pipelined_seconds(&events);
        // Pipelined never exceeds serial, never beats either engine's
        // total work (its lower bound).
        prop_assert!(pipe <= serial + 1e-9);
        let compute: f64 = events.iter()
            .filter(|e| !e.is_transfer()).map(|e| e.seconds()).sum();
        let copies: f64 = events.iter()
            .filter(|e| e.is_transfer()).map(|e| e.seconds()).sum();
        prop_assert!(pipe + 1e-9 >= compute.max(copies));
    }
}
