//! Phase-level profiler: wall time of each serial pClust stage on a
//! 2M-like planted graph — the measurement behind the paper's "roughly
//! 80% of the runtime is consumed by the hashing and sorting operations"
//! claim, and the tool that guided this reproduction's own optimization
//! of the aggregation stage.
//!
//! Usage: `profile_phases [--n <vertices>] [--seed <u64>]
//!                        [--overlap] [--kernel sort|select]
//!                        [--aggregate host|device] [--plan auto|manual]
//!                        [--par-sort-min N]
//!                [--mem-budget BYTES] [--shards N]`
//!
//! `--par-sort-min` feeds the host aggregation's parallel-sort threshold
//! directly into the timed `agg1`/`agg2` phases. `--aggregate device`
//! additionally runs the GPU pipeline with on-device aggregation and
//! reports the modeled device seconds that replace the measured host
//! sort time.

use gpclust_bench::Args;
use gpclust_core::aggregate::aggregate_with;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let n = args.get("n", 20_000usize);
    let seed = args.get("seed", 7u64);
    let pg = gpclust_bench::datasets::planted_2m_like(n, seed);
    let g = pg.graph;
    let sched = args.schedule();
    let params = sched.apply(gpclust_core::ShinglingParams::paper_default(seed));
    println!("graph: {} vertices, {} edges", g.n(), g.m());

    let t = Instant::now();
    let raw1 = gpclust_core::serial::shingle_pass(&g, params.s1, &params.family_pass1());
    let t_pass1 = t.elapsed().as_secs_f64();
    println!("pass1:  {t_pass1:7.2}s  ({} records)", raw1.len());

    let t = Instant::now();
    let first = aggregate_with(&raw1, params.par_sort_min);
    let t_agg1 = t.elapsed().as_secs_f64();
    println!(
        "agg1:   {t_agg1:7.2}s  ({} shingles, {} edges)",
        first.len(),
        first.n_edges()
    );
    drop(raw1);

    let t = Instant::now();
    let raw2 = gpclust_core::serial::shingle_pass(&first, params.s2, &params.family_pass2());
    let t_pass2 = t.elapsed().as_secs_f64();
    println!("pass2:  {t_pass2:7.2}s  ({} records)", raw2.len());

    let t = Instant::now();
    let second = aggregate_with(&raw2, params.par_sort_min);
    let t_agg2 = t.elapsed().as_secs_f64();
    println!("agg2:   {t_agg2:7.2}s  ({} shingles)", second.len());
    drop(raw2);

    let t = Instant::now();
    let p = gpclust_core::report::partition_clusters(g.n(), &first, &second);
    let t_report = t.elapsed().as_secs_f64();
    println!("report: {t_report:7.2}s  ({} groups)", p.n_groups());

    let total = t_pass1 + t_agg1 + t_pass2 + t_agg2 + t_report;
    let shingling = t_pass1 + t_pass2;
    println!(
        "\nshingling (hash+sort) share: {:.1}% of {total:.2}s total \
         (paper profiles ~80%)",
        100.0 * shingling / total
    );

    if params.aggregation == gpclust_core::AggregationMode::Device {
        let gpu = sched.harness_gpu(0);
        let report = gpclust_core::GpClust::new(params, gpu)
            .unwrap()
            .cluster(&g)
            .expect("device-aggregation run");
        println!(
            "device aggregation: {:7.2}s modeled K20 kernel time replaces the \
             {:.2}s measured host sort (remaining host share: k-way merge + invert)",
            report.times.device_aggregation,
            t_agg1 + t_agg2
        );
    }
}
