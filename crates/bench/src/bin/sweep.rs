//! Scalability sweep — the growth trends behind Table I as a series.
//!
//! The paper's two Table I rows show both speedups growing from the 20K
//! graph to the 2M graph. This harness regenerates that trend as a proper
//! sweep over graph sizes: serial runtime, gpClust component breakdown,
//! and both speedups per size, plus the asynchronous-transfer projection.
//!
//! Usage: `sweep [--sizes 20000,50000,100000,200000] [--seed <u64>]
//!               [--overlap] [--kernel sort|select]
//!               [--aggregate host|device] [--plan auto|manual]
//!               [--par-sort-min N]
//!                [--mem-budget BYTES] [--shards N]`
//!
//! The schedule knobs select the device configuration being swept
//! (results stay bit-identical to the serial oracle across all of them).

use gpclust_bench::datasets;
use gpclust_bench::reports::{render_table, secs, Experiment};
use gpclust_bench::Args;
use gpclust_core::serial::shingle_pass_foreach;
use gpclust_core::{GpClust, SerialShingling, ShinglingParams};
use gpclust_gpu::pipelined_seconds;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct Point {
    n_vertices: usize,
    n_edges: usize,
    serial_s: f64,
    serial_shingling_s: f64,
    gpclust_total_s: f64,
    gpu_s: f64,
    /// Seconds of `gpu_s` spent in on-device aggregation kernels
    /// (0 under `--aggregate host`).
    device_agg_s: f64,
    transfers_s: f64,
    pipelined_device_s: f64,
    total_speedup: f64,
    gpu_part_speedup: f64,
}

fn main() {
    let args = Args::parse();
    let seed = args.get("seed", 7u64);
    let sizes_arg = args.get("sizes", String::from("20000,50000,100000,200000"));
    let sizes: Vec<usize> = sizes_arg
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();

    let sched = args.schedule();
    let params = sched.apply(ShinglingParams::paper_default(seed));
    let mut points = Vec::new();
    for &n in &sizes {
        eprintln!("--- n = {n} ---");
        let pg = datasets::planted_2m_like(n, seed);
        let g = pg.graph;

        let serial_alg = SerialShingling::new(params).unwrap();
        let t0 = Instant::now();
        let serial_partition = serial_alg.cluster(&g);
        let serial_s = t0.elapsed().as_secs_f64();

        // Accelerated part alone (pure sinks; see table1 for rationale).
        let mut sink = 0u64;
        let t0 = Instant::now();
        shingle_pass_foreach(&g, params.s1, &params.family_pass1(), |_, _, p| {
            sink ^= p[0]
        });
        let p1 = t0.elapsed().as_secs_f64();
        let mut agg = gpclust_core::aggregate::StreamAggregator::new(params.s1);
        shingle_pass_foreach(&g, params.s1, &params.family_pass1(), |t, nn, p| {
            agg.push(t, nn, p);
        });
        let first = agg.finish();
        let t0 = Instant::now();
        shingle_pass_foreach(&first, params.s2, &params.family_pass2(), |_, _, p| {
            sink ^= p[0];
        });
        std::hint::black_box(sink);
        let serial_shingling_s = p1 + t0.elapsed().as_secs_f64();
        drop(first);

        let gpu = sched.harness_gpu(0);
        gpu.timeline().set_enabled(true);
        let pipeline = GpClust::new(params, gpu).unwrap();
        let report = pipeline.cluster(&g).expect("gpClust");
        assert_eq!(report.partition, serial_partition);
        let events = pipeline.gpu().timeline().snapshot();

        points.push(Point {
            n_vertices: g.n(),
            n_edges: g.m(),
            serial_s,
            serial_shingling_s,
            gpclust_total_s: report.times.total(),
            gpu_s: report.times.gpu,
            device_agg_s: report.times.device_aggregation,
            transfers_s: report.times.h2d + report.times.d2h,
            pipelined_device_s: pipelined_seconds(&events),
            total_speedup: serial_s / report.times.total(),
            gpu_part_speedup: serial_shingling_s / report.times.gpu,
        });
    }

    println!("\nScalability sweep (2M-like planted graphs)\n");
    let header = [
        "n",
        "edges",
        "serial",
        "gpClust",
        "GPU",
        "xfer",
        "pipelined",
        "speedup",
        "GPUspd",
    ];
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.n_vertices.to_string(),
                p.n_edges.to_string(),
                secs(p.serial_s),
                secs(p.gpclust_total_s),
                secs(p.gpu_s),
                secs(p.transfers_s),
                secs(p.pipelined_device_s),
                format!("{:.2}", p.total_speedup),
                format!("{:.2}", p.gpu_part_speedup),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &cells));
    if points.len() >= 2 {
        let first = &points[0];
        let last = &points[points.len() - 1];
        println!(
            "GPU-part speedup {} with scale: {:.2}x -> {:.2}x (paper: 44.9x -> 373.7x)",
            if last.gpu_part_speedup > first.gpu_part_speedup {
                "grows"
            } else {
                "does not grow"
            },
            first.gpu_part_speedup,
            last.gpu_part_speedup
        );
    }

    let path = Experiment::new("sweep", "Scalability sweep (Table I as a series)", &points)
        .save()
        .expect("save report");
    eprintln!("report written to {path:?}");
}
