//! Quality-vs-parameters sweep — the paper's sensitivity claim, tested.
//!
//! §IV-D attributes gpClust's sensitivity win to its parameters: "this
//! higher sensitivity is contributed by the high configurable s and c
//! parameters used in our approach". This harness regenerates that claim
//! as a curve: PPV and SE against the benchmark as the trial count `c1`
//! (and optionally the shingle size `s1`) varies, on the same graph.
//!
//! Expected shape: SE rises with `c1` (more trials → more chances for
//! related vertices to share a shingle) and falls as `s1` grows (stricter
//! shingles), with PPV moving the other way — the knob trades precision
//! for recall exactly as the paper describes.
//!
//! Usage: `qsweep [--n <seqs>] [--seed <u64>] [--min-size <20>]
//!                [--c1-list 25,50,100,200,400] [--s1-list 1,2,3]
//!                [--overlap] [--kernel sort|select]
//!                [--aggregate host|device] [--plan auto|manual]
//!                [--par-sort-min N]
//!                [--mem-budget BYTES] [--shards N]`
//!
//! The schedule knobs never change scores (results are bit-identical
//! across them); they exist so the sweep can exercise any device
//! configuration's timing model.

use gpclust_bench::datasets;
use gpclust_bench::reports::{pct, render_table, Experiment};
use gpclust_bench::Args;
use gpclust_core::quality::ConfusionCounts;
use gpclust_core::{GpClust, ShinglingParams};
use gpclust_graph::Partition;
use gpclust_homology::HomologyConfig;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    s1: usize,
    c1: usize,
    c2: usize,
    ppv: f64,
    se: f64,
    n_groups: usize,
    n_assigned: usize,
}

fn main() {
    let args = Args::parse();
    let sched = args.schedule();
    let n = args.get("n", 20_000usize);
    let seed = args.get("seed", 7u64);
    let min_size = args.get("min-size", 20usize);
    let c1_list: Vec<usize> = args
        .get("c1-list", String::from("25,50,100,200,400"))
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let s1_list: Vec<usize> = args
        .get("s1-list", String::from("2"))
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();

    eprintln!("preparing dataset (n={n}) ...");
    let mg = if n == 20_000 {
        datasets::metagenome_20k(seed)
    } else {
        datasets::metagenome_2m_like(n, seed)
    };
    let tag = if n == 20_000 {
        format!("sim20k-seed{seed}")
    } else {
        format!("sim{n}-seed{seed}")
    };
    let graph = datasets::similarity_graph_cached(&tag, &mg, &HomologyConfig::default());
    let benchmark = Partition::from_membership(mg.truth.clone());

    let mut points = Vec::new();
    for &s1 in &s1_list {
        for &c1 in &c1_list {
            let params = sched.apply(ShinglingParams {
                s1,
                c1,
                s2: s1.min(2),
                c2: (c1 / 2).max(1),
                seed,
                ..ShinglingParams::light(seed)
            });
            eprintln!("clustering with s1={s1}, c1={c1} ...");
            let gpu = sched.harness_gpu(0);
            let partition = GpClust::new(params, gpu)
                .unwrap()
                .cluster(&graph)
                .expect("cluster")
                .partition
                .filter_min_size(min_size);
            let scores = ConfusionCounts::count(&partition, &benchmark).scores();
            let stats = partition.size_stats();
            points.push(Point {
                s1,
                c1,
                c2: params.c2,
                ppv: scores.ppv,
                se: scores.se,
                n_groups: stats.n_groups,
                n_assigned: stats.n_assigned,
            });
        }
    }

    println!("\nQuality vs Shingling parameters (n={n}, min cluster size {min_size})\n");
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.s1.to_string(),
                format!("{}/{}", p.c1, p.c2),
                pct(p.ppv),
                pct(p.se),
                p.n_groups.to_string(),
                p.n_assigned.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["s1", "c1/c2", "PPV", "SE", "#groups", "#seqs"], &cells)
    );
    // Shape check on the paper's claim: SE grows with c1 (per s1 slice).
    for &s1 in &s1_list {
        let slice: Vec<&Point> = points.iter().filter(|p| p.s1 == s1).collect();
        if slice.len() >= 2 {
            let first = slice.first().unwrap();
            let last = slice.last().unwrap();
            println!(
                "s1={s1}: SE {} with c1 ({} at c1={} -> {} at c1={}) — paper: \
                 sensitivity is \"contributed by the high configurable s and c\"",
                if last.se >= first.se {
                    "grows"
                } else {
                    "shrinks"
                },
                pct(first.se),
                first.c1,
                pct(last.se),
                last.c1
            );
        }
    }

    let path = Experiment::new("qsweep", "Quality vs s/c parameters", &points)
        .save()
        .expect("save report");
    eprintln!("report written to {path:?}");
}
