//! Table II — input graph statistics for the 2M-sequence similarity graph.
//!
//! Paper reference (2M GOS graph): 1,562,984 non-singleton vertices,
//! 56,919,738 edges, average degree 73 ± 153, largest CC 10,707.
//!
//! Usage: `table2 [--n <vertices>] [--full] [--seed <u64>] [--with-20k]`
//!
//! * default: a 2M-like planted graph scaled to 200,000 vertices;
//! * `--full`: the unscaled 1,562,984-vertex graph (several GB of RAM);
//! * `--with-20k`: additionally build the 20K-sequence graph through the
//!   full alignment pipeline and report its statistics too.

use gpclust_bench::datasets;
use gpclust_bench::reports::{render_table, Experiment};
use gpclust_bench::Args;
use gpclust_graph::stats::GraphStats;
use gpclust_homology::HomologyConfig;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    dataset: String,
    n_non_singleton: usize,
    n_total: usize,
    n_edges: usize,
    degree_mean: f64,
    degree_sd: f64,
    largest_cc: usize,
}

impl Row {
    fn from_stats(dataset: &str, st: &GraphStats) -> Self {
        Row {
            dataset: dataset.to_string(),
            n_non_singleton: st.n_non_singleton,
            n_total: st.n_total,
            n_edges: st.n_edges,
            degree_mean: st.degree.mean,
            degree_sd: st.degree.sd,
            largest_cc: st.largest_cc,
        }
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.dataset.clone(),
            self.n_non_singleton.to_string(),
            self.n_edges.to_string(),
            format!("{:.0} ± {:.0}", self.degree_mean, self.degree_sd),
            self.largest_cc.to_string(),
        ]
    }
}

fn main() {
    let args = Args::parse();
    let seed = args.get("seed", 7u64);
    let n = if args.flag("full") {
        1_562_984
    } else {
        args.get("n", 200_000usize)
    };

    let mut rows: Vec<Row> = Vec::new();

    eprintln!("generating 2M-like planted graph with {n} vertices ...");
    let pg = datasets::planted_2m_like(n, seed);
    let st = GraphStats::of(&pg.graph);
    rows.push(Row::from_stats(&format!("2M-like (n={n})"), &st));

    if args.flag("with-20k") {
        eprintln!("building 20K similarity graph through alignment ...");
        let mg = datasets::metagenome_20k(seed);
        let g = datasets::similarity_graph_cached(
            &format!("sim20k-seed{seed}"),
            &mg,
            &HomologyConfig::default(),
        );
        rows.push(Row::from_stats("20K (alignment)", &GraphStats::of(&g)));
    }

    let paper = vec![
        "paper 2M (reference)".to_string(),
        "1,562,984".to_string(),
        "56,919,738".to_string(),
        "73 ± 153".to_string(),
        "10,707".to_string(),
    ];
    let mut cells: Vec<Vec<String>> = rows.iter().map(Row::cells).collect();
    cells.push(paper);

    println!("\nTable II — input graph statistics\n");
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "# Vertices",
                "# Edges",
                "Avg. degree",
                "Largest CC"
            ],
            &cells
        )
    );

    let path = Experiment::new("table2", "Input graph statistics (Table II)", &rows)
        .save()
        .expect("save report");
    eprintln!("report written to {path:?}");
}
