//! Table III — qualitative comparison of the gpClust and GOS partitions
//! against the benchmark.
//!
//! Paper reference (2M sequences):
//!
//! | approach | PPV | NPV | SP | SE |
//! |---|---|---|---|---|
//! | gpClust vs Benchmark | 97.17% | 92.43% | 99.88% | 17.85% |
//! | GOS vs Benchmark     | 100.00% | 90.62% | 100.00% | 13.92% |
//!
//! Expected shape: near-perfect PPV/SP for both (reported clusters are
//! *core sets* of families), low SE for both (sequence–sequence matching
//! misses fringe members a profile method would recruit), and gpClust SE
//! above GOS SE.
//!
//! Usage: `table3 [--n <seqs>] [--seed <u64>] [--min-size <20>] [--k <10>]`

use gpclust_bench::quality::quality_run;
use gpclust_bench::reports::{pct, render_table, Experiment};
use gpclust_bench::Args;
use gpclust_core::quality::ConfusionCounts;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    approach: String,
    ppv: f64,
    npv: f64,
    sp: f64,
    se: f64,
    tp: u64,
    fp: u64,
    fn_: u64,
    tn: u64,
}

fn main() {
    let args = Args::parse();
    let run = quality_run(&args);

    let mut rows = Vec::new();
    let mut methods: Vec<(&str, &gpclust_graph::Partition)> = vec![
        ("gpClust vs Benchmark", &run.gpclust),
        ("GOS vs Benchmark", &run.gos),
    ];
    if let Some(mcl) = &run.mcl {
        methods.push(("MCL vs Benchmark", mcl));
    }
    for (name, partition) in methods {
        let counts = ConfusionCounts::count(partition, &run.benchmark);
        let s = counts.scores();
        rows.push(Row {
            approach: name.to_string(),
            ppv: s.ppv,
            npv: s.npv,
            sp: s.sp,
            se: s.se,
            tp: counts.tp,
            fp: counts.fp,
            fn_: counts.fn_,
            tn: counts.tn,
        });
    }

    println!(
        "\nTable III — qualitative comparison against the benchmark \
         (n={}, min cluster size {}, k={})\n",
        run.n, run.min_size, run.k
    );
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.approach.clone(),
                pct(r.ppv),
                pct(r.npv),
                pct(r.sp),
                pct(r.se),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Approach", "PPV", "NPV", "SP", "SE"], &cells)
    );
    println!(
        "paper reference: gpClust 97.17 / 92.43 / 99.88 / 17.85; \
         GOS 100.00 / 90.62 / 100.00 / 13.92 (percent)"
    );

    let gp_se = rows[0].se;
    let gos_se = rows[1].se;
    println!(
        "\nshape check: gpClust SE {} GOS SE ({} vs {}) — paper expects '>'",
        if gp_se > gos_se { ">" } else { "<=" },
        pct(gp_se),
        pct(gos_se)
    );

    let path = Experiment::new("table3", "Quality comparison (Table III)", &rows)
        .save()
        .expect("save report");
    eprintln!("report written to {path:?}");
}
