//! Figure 5 — distribution of dense subgraphs by size.
//!
//! * (a) number of groups per size bin, gpClust vs GOS;
//! * (b) number of sequences per size bin, gpClust vs GOS;
//!
//! over the paper's bins {20–49, 50–99, 100–199, 200–499, 500–999,
//! 1000–2000, >2000}. The paper's observation: both partitions show
//! roughly the same heavy-tailed distribution.
//!
//! Prints ASCII histograms and writes gnuplot-ready TSV files under the
//! report directory.
//!
//! Usage: `fig5 [--n <seqs>] [--seed <u64>] [--min-size <20>] [--k <10>]`

use gpclust_bench::quality::quality_run;
use gpclust_bench::reports::{ascii_histogram, Experiment};
use gpclust_bench::Args;
use gpclust_graph::partition::SIZE_BIN_LABELS;
use serde::Serialize;
use std::io::Write;

#[derive(Debug, Serialize)]
struct Histograms {
    bins: Vec<String>,
    gpclust_groups: Vec<usize>,
    gos_groups: Vec<usize>,
    gpclust_seqs: Vec<usize>,
    gos_seqs: Vec<usize>,
}

fn write_tsv(
    name: &str,
    labels: &[&str],
    gp: &[usize],
    gos: &[usize],
) -> std::io::Result<std::path::PathBuf> {
    let path = gpclust_bench::report_dir().join(name);
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "# bin\tgpClust\tGOS")?;
    for ((label, a), b) in labels.iter().zip(gp).zip(gos) {
        writeln!(f, "{label}\t{a}\t{b}")?;
    }
    Ok(path)
}

fn main() {
    let args = Args::parse();
    let run = quality_run(&args);

    let (gp_groups, gp_seqs) = run.gpclust.size_histogram();
    let (gos_groups, gos_seqs) = run.gos.size_histogram();

    println!(
        "\nFigure 5(a) — number of groups per size bin (n={}, k={})\n",
        run.n, run.k
    );
    println!(
        "{}",
        ascii_histogram(
            &SIZE_BIN_LABELS,
            &[
                ("gpClust approach", gp_groups.to_vec()),
                ("GOS approach", gos_groups.to_vec()),
            ]
        )
    );

    println!("\nFigure 5(b) — number of sequences per size bin\n");
    println!(
        "{}",
        ascii_histogram(
            &SIZE_BIN_LABELS,
            &[
                ("gpClust approach", gp_seqs.to_vec()),
                ("GOS approach", gos_seqs.to_vec()),
            ]
        )
    );

    let a = write_tsv("fig5a.tsv", &SIZE_BIN_LABELS, &gp_groups, &gos_groups).unwrap();
    let b = write_tsv("fig5b.tsv", &SIZE_BIN_LABELS, &gp_seqs, &gos_seqs).unwrap();
    eprintln!("TSV series written to {a:?} and {b:?}");

    let hist = Histograms {
        bins: SIZE_BIN_LABELS.iter().map(|s| s.to_string()).collect(),
        gpclust_groups: gp_groups.to_vec(),
        gos_groups: gos_groups.to_vec(),
        gpclust_seqs: gp_seqs.to_vec(),
        gos_seqs: gos_seqs.to_vec(),
    };
    let path = Experiment::new(
        "fig5",
        "Group/sequence size distributions (Figure 5)",
        &hist,
    )
    .save()
    .expect("save report");
    eprintln!("report written to {path:?}");

    println!(
        "paper shape: both approaches show roughly the same distribution, \
         heavy-tailed toward small bins."
    );
}
