//! Table I — serial runtime and the per-component runtime of gpClust.
//!
//! Paper reference:
//!
//! | graph | CPU | GPU | Data c→g | Data g→c | Disk I/O | Total | Serial | speedup | GPU speedup |
//! |---|---|---|---|---|---|---|---|---|---|
//! | 20K | 52.70 | 7.57 | 1.26 | 4.82 | 0.40 | 66.75 | 392.32 | 5.88 | 44.86 |
//! | 2M | 2685.06 | 447.97 | 5.99 | 108.19 | 28.77 | 3275.98 | 23,537.80 | 7.18 | 373.71 |
//!
//! In this reproduction, CPU and Disk I/O are measured wall-clock seconds;
//! GPU and the two transfer columns are *simulated* Tesla-K20 seconds from
//! the device cost model (see gpclust-gpu). The serial runtime is the
//! measured wall time of the serial pClust implementation, and "GPU
//! speedup" compares the serial wall time of the accelerated part (the two
//! shingling passes) against the simulated device time, as the paper does.
//!
//! Usage: `table1 [--n <vertices>] [--full] [--seed <u64>] [--skip-20k]
//!                [--skip-2m] [--overlap] [--kernel sort|select]
//!                [--aggregate host|device] [--plan auto|manual]
//!                [--par-sort-min N]
//!                [--mem-budget BYTES] [--shards N]`
//!
//! `--plan auto` hands the unforced schedule axes to the cost-model
//! argmin; each row's `plan:` line names the axes the autotuner chose
//! and its predicted makespan, followed by the measured relative error.
//!
//! `--overlap` additionally reports the async-transfer ablation (the
//! paper's stated future work): the timeline-replay bound, plus a real
//! re-run under `PipelineMode::Overlapped` whose stream makespan is the
//! scheduled pipelined device time (clusters asserted bit-identical).
//!
//! `--kernel select` swaps the segmented sort + compaction for the fused
//! hash + top-s selection kernel (`ShingleKernel::FusedSelect`): the
//! device columns drop while the clusters stay bit-identical to the
//! serial oracle.
//!
//! `--aggregate device` moves the shingle-record sort onto the GPU
//! (`AggregationMode::Device`): the CPU column shrinks to the k-way run
//! merge + stream inversion while the GPU column absorbs the pack + radix
//! sort kernels — again bit-identical clusters.

use gpclust_bench::datasets;
use gpclust_bench::reports::{render_table, secs, Experiment};
use gpclust_bench::{Args, ScheduleArgs};
use gpclust_core::serial::shingle_pass_foreach;
use gpclust_core::{
    AggregationMode, GpClust, PipelineMode, SerialShingling, ShingleKernel, ShinglingParams,
};
use gpclust_graph::{io as graph_io, Csr};
use gpclust_homology::HomologyConfig;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct Row {
    graph: String,
    /// Top-s extraction kernel the device passes ran (`sort` | `select`).
    kernel: String,
    /// Where the shingle-record sort ran (`host` | `device`).
    aggregate: String,
    /// One-line summary of the lowered execution plan
    /// ([`gpclust_core::Plan::describe`]).
    plan: String,
    n_non_singleton: usize,
    n_edges: usize,
    cpu_s: f64,
    gpu_s: f64,
    /// Seconds of `gpu_s` spent in on-device aggregation kernels
    /// (0 under `--aggregate host`).
    device_agg_s: f64,
    h2d_s: f64,
    d2h_s: f64,
    disk_s: f64,
    total_s: f64,
    total_overlapped_s: f64,
    device_serialized_s: f64,
    device_pipelined_s: f64,
    /// Stream makespan of a real run under `PipelineMode::Overlapped`
    /// (only measured with `--overlap`; `None` otherwise).
    device_stream_pipelined_s: Option<f64>,
    serial_s: f64,
    serial_shingling_s: f64,
    serial_shingling_frac: f64,
    total_speedup: f64,
    gpu_part_speedup: f64,
    n_clusters: usize,
    /// Batches each device pass split into (`[pass I, pass II]`).
    n_batches: [u64; 2],
    /// Per-element device footprint of the active kernel (bytes).
    elem_footprint_bytes: u64,
    /// Autotuner-predicted device seconds (`--plan auto` only).
    predicted_device_s: Option<f64>,
    /// The measured device path the prediction is scored against
    /// ([`gpclust_core::StageTimes::device_pipelined`]).
    measured_device_s: Option<f64>,
    /// Signed relative error of that prediction vs the measured device
    /// path, percent (`--plan auto` only).
    prediction_error_pct: Option<f64>,
}

fn measure(args: &Args, sched: &ScheduleArgs, graph: &Csr, label: &str, seed: u64) -> Row {
    let overlap = args.flag("overlap");
    let params = sched.apply(ShinglingParams::paper_default(seed));

    // Serial reference: total, and the accelerated part (two passes) alone.
    eprintln!("[{label}] running serial pClust ...");
    let serial_alg = SerialShingling::new(params).unwrap();
    let t0 = Instant::now();
    let serial_partition = serial_alg.cluster(graph);
    let serial_s = t0.elapsed().as_secs_f64();

    // Time the accelerated part (the two shingling passes) alone, with
    // pure sinks so no aggregation work pollutes the measurement. Pass II
    // needs G′ as input, so it is built (untimed) between the two.
    let mut sink = 0u64;
    let t0 = Instant::now();
    shingle_pass_foreach(graph, params.s1, &params.family_pass1(), |_, _, p| {
        sink ^= p[0];
    });
    let shingling1 = t0.elapsed().as_secs_f64();
    let mut agg1 = gpclust_core::aggregate::StreamAggregator::new(params.s1);
    shingle_pass_foreach(graph, params.s1, &params.family_pass1(), |t, n, p| {
        agg1.push(t, n, p);
    });
    let first = agg1.finish();
    let t0 = Instant::now();
    shingle_pass_foreach(&first, params.s2, &params.family_pass2(), |_, _, p| {
        sink ^= p[0];
    });
    std::hint::black_box(sink);
    let serial_shingling_s = shingling1 + t0.elapsed().as_secs_f64();
    drop(first);

    // gpClust through a disk round-trip so the Disk I/O column is real.
    eprintln!("[{label}] running gpClust on the simulated Tesla K20 ...");
    let tmp = gpclust_bench::data_dir().join(format!("table1-{label}.graph.bin"));
    graph_io::write_file(&tmp, graph).expect("write graph");
    let gpu = sched.harness_gpu(0);
    let plan_line = sched.describe_plan_on(
        &params,
        std::slice::from_ref(&gpu),
        graph.offsets(),
        graph.n(),
    );
    gpu.timeline().set_enabled(true);
    let pipeline = GpClust::new(params, gpu).unwrap();
    let report = pipeline.cluster_from_file(&tmp).expect("gpClust run");
    std::fs::remove_file(&tmp).ok();
    let events = pipeline.gpu().timeline().snapshot();
    let device_serialized_s = gpclust_gpu::serialized_seconds(&events);
    let device_pipelined_s = gpclust_gpu::pipelined_seconds(&events);

    assert_eq!(
        report.partition, serial_partition,
        "GPU path must match the serial oracle"
    );

    // The same pipeline under the overlapped stream schedule: the clusters
    // must stay bit-identical, and the measured stream makespan gives the
    // *scheduled* (not just replayed) pipelined device column.
    let device_stream_pipelined_s = overlap.then(|| {
        eprintln!("[{label}] re-running under PipelineMode::Overlapped ...");
        let gpu = sched.harness_gpu(0);
        let ovl = GpClust::new(params.with_mode(PipelineMode::Overlapped), gpu)
            .unwrap()
            .cluster(graph)
            .expect("overlapped gpClust run");
        assert_eq!(
            ovl.partition, serial_partition,
            "overlapped schedule must be bit-identical"
        );
        ovl.times.device_pipelined
    });

    let t = report.times;
    let n_non_singleton = graph.non_singleton_count();
    Row {
        graph: label.to_string(),
        kernel: match params.kernel {
            ShingleKernel::SortCompact => "sort".into(),
            ShingleKernel::FusedSelect => "select".into(),
        },
        aggregate: match params.aggregation {
            AggregationMode::Host => "host".into(),
            AggregationMode::Device => "device".into(),
        },
        plan: plan_line,
        n_non_singleton,
        n_edges: graph.m(),
        cpu_s: t.cpu,
        gpu_s: t.gpu,
        device_agg_s: t.device_aggregation,
        h2d_s: t.h2d,
        d2h_s: t.d2h,
        disk_s: t.disk_io,
        total_s: t.total(),
        total_overlapped_s: t.total_with_overlapped_transfers(),
        device_serialized_s,
        device_pipelined_s,
        device_stream_pipelined_s,
        serial_s,
        serial_shingling_s,
        serial_shingling_frac: serial_shingling_s / serial_s,
        total_speedup: serial_s / t.total(),
        gpu_part_speedup: serial_shingling_s / t.gpu,
        n_clusters: report.partition.n_groups(),
        n_batches: [
            report.batch_stats[0].n_batches,
            report.batch_stats[1].n_batches,
        ],
        elem_footprint_bytes: t.elem_footprint_bytes,
        predicted_device_s: (t.predicted_device_seconds > 0.0)
            .then_some(t.predicted_device_seconds),
        measured_device_s: t.prediction_error_pct().map(|_| t.device_pipelined),
        prediction_error_pct: t.prediction_error_pct(),
    }
}

fn main() {
    let args = Args::parse();
    let sched = args.schedule();
    let seed = args.get("seed", 7u64);
    let mut rows = Vec::new();

    if !args.flag("skip-20k") {
        eprintln!("preparing 20K similarity graph (alignment pipeline, cached) ...");
        let mg = datasets::metagenome_20k(seed);
        let g = datasets::similarity_graph_cached(
            &format!("sim20k-seed{seed}"),
            &mg,
            &HomologyConfig::default(),
        );
        rows.push(measure(&args, &sched, &g, "20K", seed));
    }

    if !args.flag("skip-2m") {
        let n = if args.flag("full") {
            1_562_984
        } else {
            args.get("n", 200_000usize)
        };
        eprintln!("preparing 2M-like planted graph with {n} vertices ...");
        let pg = datasets::planted_2m_like(n, seed);
        rows.push(measure(
            &args,
            &sched,
            &pg.graph,
            &format!("2M-like(n={n})"),
            seed,
        ));
    }

    println!("\nTable I — runtime of each component in gpClust (seconds)\n");
    let header = [
        "graph", "kernel", "#vert", "#edges", "CPU", "GPU", "c->g", "g->c", "Disk", "Total",
        "Serial", "speedup", "GPUspd",
    ];
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.graph.clone(),
                r.kernel.clone(),
                r.n_non_singleton.to_string(),
                r.n_edges.to_string(),
                secs(r.cpu_s),
                secs(r.gpu_s),
                secs(r.h2d_s),
                secs(r.d2h_s),
                secs(r.disk_s),
                secs(r.total_s),
                secs(r.serial_s),
                format!("{:.2}", r.total_speedup),
                format!("{:.2}", r.gpu_part_speedup),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &cells));

    for r in &rows {
        println!(
            "[{}] serial shingling = {:.1}% of serial runtime (paper: ~80%)",
            r.graph,
            r.serial_shingling_frac * 100.0
        );
        println!(
            "[{}] plan: {} | pass I {} batch(es), pass II {} batch(es)",
            r.graph, r.plan, r.n_batches[0], r.n_batches[1]
        );
        if let (Some(pred), Some(measured), Some(err)) = (
            r.predicted_device_s,
            r.measured_device_s,
            r.prediction_error_pct,
        ) {
            println!(
                "[{}] autotune: predicted device path {} s vs measured {} s \
                 ({:+.1}% relative error)",
                r.graph,
                secs(pred),
                secs(measured),
                err
            );
        }
        if r.device_agg_s > 0.0 {
            println!(
                "[{}] on-device aggregation: {} s of the GPU column (pack + radix sort); \
                 CPU column is the k-way run merge + stream inversion",
                r.graph,
                secs(r.device_agg_s)
            );
        }
        if args.flag("overlap") {
            println!(
                "[{}] async-transfer ablation (two-stream timeline model): \
                 device {} s serialized -> {} s pipelined; total {} -> {} s",
                r.graph,
                secs(r.device_serialized_s),
                secs(r.device_pipelined_s),
                secs(r.total_s),
                secs(r.cpu_s + r.device_pipelined_s + r.disk_s)
            );
            if let Some(p) = r.device_stream_pipelined_s {
                println!(
                    "[{}] PipelineMode::Overlapped (scheduled streams, bit-identical \
                     clusters): device critical path {} s",
                    r.graph,
                    secs(p)
                );
            }
        }
    }
    println!(
        "\npaper reference: 20K row total 66.75s (serial 392.32, 5.88X, GPU part 44.86X); \
         2M row total 3275.98s (serial 23537.80, 7.18X, GPU part 373.71X)"
    );
    println!(
        "note: GPU/transfer columns are simulated Tesla-K20 seconds; CPU/Disk/Serial are \
         measured wall-clock on this host (see EXPERIMENTS.md)."
    );

    let path = Experiment::new("table1", "Runtime breakdown and speedups (Table I)", &rows)
        .save()
        .expect("save report");
    eprintln!("report written to {path:?}");
}
