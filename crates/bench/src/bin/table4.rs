//! Table IV — statistics of the three partitions, plus cluster density.
//!
//! Paper reference (2M sequences):
//!
//! | partition | #groups | #seqs | largest | avg size | density |
//! |---|---|---|---|---|---|
//! | Benchmark | 813 | 2,004,241 | 56,266 | 2,465 ± 4,372 | 0.09 ± 0.12 |
//! | GOS | 6,152 | 1,236,712 | 20,027 | 201 ± 650 | 0.40 ± 0.27 |
//! | gpClust | 6,646 | 1,414,952 | 19,066 | 213 ± 721 | 0.75 ± 0.28 |
//!
//! Expected shape: gpClust reports more and tighter (denser) clusters than
//! GOS, recruits more sequences, and both report far more, far smaller
//! groups than the loosely-defined benchmark families.
//!
//! Usage: `table4 [--n <seqs>] [--seed <u64>] [--min-size <20>] [--k <10>]`

use gpclust_bench::quality::quality_run;
use gpclust_bench::reports::{render_table, Experiment};
use gpclust_bench::Args;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    partition: String,
    n_groups: usize,
    n_seqs: usize,
    largest: usize,
    avg_size: f64,
    sd_size: f64,
    density_mean: f64,
    density_sd: f64,
}

fn main() {
    let args = Args::parse();
    let run = quality_run(&args);

    let mut rows = Vec::new();
    let mut methods: Vec<(&str, &gpclust_graph::Partition)> = vec![
        ("Benchmark", &run.benchmark),
        ("GOS", &run.gos),
        ("gpClust", &run.gpclust),
    ];
    if let Some(mcl) = &run.mcl {
        methods.push(("MCL", mcl));
    }
    for (name, partition) in methods {
        let st = partition.size_stats();
        let density = partition.density_stats(&run.graph);
        rows.push(Row {
            partition: name.to_string(),
            n_groups: st.n_groups,
            n_seqs: st.n_assigned,
            largest: st.largest,
            avg_size: st.size.mean,
            sd_size: st.size.sd,
            density_mean: density.mean,
            density_sd: density.sd,
        });
    }

    println!(
        "\nTable IV — partition statistics (n={}, min cluster size {} on test \
         partitions, k={})\n",
        run.n, run.min_size, run.k
    );
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.partition.clone(),
                r.n_groups.to_string(),
                r.n_seqs.to_string(),
                r.largest.to_string(),
                format!("{:.0} ± {:.0}", r.avg_size, r.sd_size),
                format!("{:.2} ± {:.2}", r.density_mean, r.density_sd),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Partition",
                "# Groups",
                "# Seqs",
                "Largest",
                "Avg size",
                "Density"
            ],
            &cells
        )
    );
    println!(
        "paper reference: Benchmark 813 groups, density 0.09 ± 0.12; \
         GOS 6,152 groups, density 0.40 ± 0.27; gpClust 6,646 groups, density 0.75 ± 0.28"
    );
    println!(
        "\nshape checks: gpClust density {} GOS density (paper '>'); \
         gpClust recruits {} sequences vs GOS {} (paper: gpClust more)",
        if rows[2].density_mean > rows[1].density_mean {
            ">"
        } else {
            "<="
        },
        rows[2].n_seqs,
        rows[1].n_seqs
    );

    let path = Experiment::new("table4", "Partition statistics (Table IV)", &rows)
        .save()
        .expect("save report");
    eprintln!("report written to {path:?}");
}
