//! §IV-C / Conclusions — the large-scale demonstration run.
//!
//! Paper: "we were able to cluster a real world homology graph, containing
//! 11M vertices and 640M edges, ... in about 94 minutes."
//!
//! This binary synthesizes a homology-graph-shaped planted graph at a
//! configurable scale (default 1M vertices, ~58 edges/vertex like the
//! paper's ratio) and runs the full gpClust pipeline on it, reporting the
//! Table-I-style component breakdown, wall-clock time, and the clusters
//! found.
//!
//! Usage: `largescale [--vertices <n>] [--seed <u64>] [--paper-scale]
//!                    [--overlap] [--kernel sort|select]
//!                    [--aggregate host|device] [--plan auto|manual]
//!                    [--par-sort-min N]
//!                [--mem-budget BYTES] [--shards N]`
//!
//! `--paper-scale` uses 11M vertices (~640M edges — needs ~16 GB RAM and
//! a long run; the default is the scaled demonstration). The schedule
//! knobs select the device configuration (clusters are bit-identical
//! across all of them).

use gpclust_bench::datasets;
use gpclust_bench::reports::{secs, Experiment};
use gpclust_bench::Args;
use gpclust_core::{GpClust, ShinglingParams};
use gpclust_graph::stats::GraphStats;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct LargeRun {
    n_vertices: usize,
    n_edges: usize,
    wall_seconds: f64,
    cpu_s: f64,
    gpu_s: f64,
    /// Seconds of `gpu_s` spent in on-device aggregation kernels
    /// (0 under `--aggregate host`).
    device_agg_s: f64,
    h2d_s: f64,
    d2h_s: f64,
    modeled_total_s: f64,
    n_clusters: usize,
    largest_cluster: usize,
    first_level_shingles: usize,
    second_level_records: u64,
}

fn main() {
    let args = Args::parse();
    let seed = args.get("seed", 11u64);
    let n = if args.flag("paper-scale") {
        11_000_000
    } else {
        args.get("vertices", 1_000_000usize)
    };

    eprintln!("synthesizing large homology-shaped graph ({n} vertices) ...");
    let t0 = Instant::now();
    let pg = datasets::planted_largescale(n, seed);
    eprintln!(
        "generated {} vertices / {} edges in {:.1}s",
        pg.graph.n(),
        pg.graph.m(),
        t0.elapsed().as_secs_f64()
    );
    let stats = GraphStats::of(&pg.graph);
    println!("{stats}");

    eprintln!("running gpClust (paper default parameters) ...");
    let sched = args.schedule();
    let gpu = sched.harness_gpu(0);
    let params = sched.apply(ShinglingParams::paper_default(seed));
    let pipeline = GpClust::new(params, gpu).unwrap();
    eprintln!(
        "plan: {}",
        sched.describe_plan_on(
            &params,
            std::slice::from_ref(pipeline.gpu()),
            pg.graph.offsets(),
            pg.graph.n(),
        )
    );
    let t0 = Instant::now();
    let report = pipeline.cluster(&pg.graph).expect("gpClust run");
    let wall = t0.elapsed().as_secs_f64();
    if let Some(err) = report.times.prediction_error_pct() {
        eprintln!(
            "autotune: predicted device path {:.4}s vs measured {:.4}s ({err:+.1}%)",
            report.times.predicted_device_seconds, report.times.device_pipelined
        );
    }

    let sizes = report.partition.sizes();
    let largest = sizes.iter().copied().max().unwrap_or(0);
    let non_trivial = sizes.iter().filter(|&&s| s >= 2).count();

    let run = LargeRun {
        n_vertices: pg.graph.n(),
        n_edges: pg.graph.m(),
        wall_seconds: wall,
        cpu_s: report.times.cpu,
        gpu_s: report.times.gpu,
        device_agg_s: report.times.device_aggregation,
        h2d_s: report.times.h2d,
        d2h_s: report.times.d2h,
        modeled_total_s: report.times.total(),
        n_clusters: non_trivial,
        largest_cluster: largest,
        first_level_shingles: report.first_level_shingles,
        second_level_records: report.second_level_records,
    };

    println!("\nLarge-scale run (scaled from the paper's 11M x 640M / 94 min):");
    println!(
        "  vertices / edges:    {} / {}",
        run.n_vertices, run.n_edges
    );
    println!("  wall-clock:          {} s", secs(run.wall_seconds));
    println!(
        "  modeled breakdown:   CPU {} | GPU {} (agg {}) | c->g {} | g->c {} | total {}",
        secs(run.cpu_s),
        secs(run.gpu_s),
        secs(run.device_agg_s),
        secs(run.h2d_s),
        secs(run.d2h_s),
        secs(run.modeled_total_s)
    );
    println!(
        "  clusters (size>=2):  {}   largest: {}",
        run.n_clusters, run.largest_cluster
    );
    println!(
        "  shingles:            {} first-level, {} second-level records",
        run.first_level_shingles, run.second_level_records
    );

    let path = Experiment::new("largescale", "Large-scale demonstration (SIV-C)", &run)
        .save()
        .expect("save report");
    eprintln!("report written to {path:?}");
}
