//! # gpclust-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I — runtime breakdown and speedups |
//! | `table2` | Table II — input graph statistics |
//! | `table3` | Table III — PPV/NPV/SP/SE vs the GOS baseline |
//! | `table4` | Table IV — partition statistics + densities |
//! | `fig5`   | Figure 5(a)/(b) — group/sequence size histograms |
//! | `largescale` | §IV-C large-run demonstration |
//!
//! Criterion microbenches live under `benches/`.
//!
//! Expensive artifacts (alignment-built similarity graphs) are cached on
//! disk under [`data_dir`], keyed by their generating parameters, so the
//! table binaries can share them.

pub mod datasets;
pub mod quality;
pub mod reports;

use gpclust_core::{
    AggregationMode, ComponentsMode, ForcedAxes, PipelineMode, PlanMode, ShingleKernel,
    ShinglingParams,
};
use std::path::PathBuf;

/// Directory for cached datasets (override with `GPCLUST_DATA_DIR`).
pub fn data_dir() -> PathBuf {
    let dir = std::env::var_os("GPCLUST_DATA_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/gpclust-data"));
    std::fs::create_dir_all(&dir).expect("create data dir");
    dir
}

/// Directory for generated experiment reports (override with
/// `GPCLUST_REPORT_DIR`). Anchored to this crate's `reports/` directory —
/// not the invoker's working directory — so `cargo bench` and the table
/// binaries write the same place no matter where they are launched from.
pub fn report_dir() -> PathBuf {
    let dir = std::env::var_os("GPCLUST_REPORT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("reports"));
    std::fs::create_dir_all(&dir).expect("create report dir");
    dir
}

/// Write a headline `BENCH_*.json` report: the canonical copy goes to
/// [`report_dir`], and — unless `GPCLUST_REPORT_DIR` redirects output —
/// a byte-identical mirror goes to the workspace root, where the
/// checked-in copies live. Returns the canonical path.
///
/// Every modeled-report writer goes through here so the two locations can
/// never drift (previously each bench picked one ad hoc: some reports
/// existed only at the root, others only under `reports/`).
pub fn write_report(name: &str, json: &str) -> PathBuf {
    let path = report_dir().join(name);
    std::fs::write(&path, json).expect("write report");
    if std::env::var_os("GPCLUST_REPORT_DIR").is_none() {
        let mirror = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(name);
        std::fs::write(&mirror, json).expect("mirror report to workspace root");
    }
    path
}

/// Minimal CLI flag parsing: `--key value` pairs and bare `--flag`s.
#[derive(Debug, Default, Clone)]
pub struct Args {
    pairs: std::collections::HashMap<String, String>,
    flags: std::collections::HashSet<String>,
}

impl Args {
    /// Parse from `std::env::args` (skipping the binary name).
    pub fn parse() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parse from an explicit token sequence (for tests).
    pub fn from_tokens(iter: impl IntoIterator<Item = String>) -> Self {
        let mut args = Args::default();
        let mut it = iter.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        args.pairs.insert(key.to_string(), it.next().unwrap());
                    }
                    _ => {
                        args.flags.insert(key.to_string());
                    }
                }
            } else {
                eprintln!("ignoring stray argument: {tok}");
            }
        }
        args
    }

    /// Value of `--key`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether bare `--flag` was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.contains(key)
    }

    /// Resolve the schedule/fault flags shared by every harness into a
    /// [`ScheduleArgs`]. Unknown values panic with a usage hint rather
    /// than silently benchmarking the wrong configuration.
    pub fn schedule(&self) -> ScheduleArgs {
        ScheduleArgs::resolve(self)
    }
}

/// The schedule and resilience knobs shared by every bench harness,
/// resolved once from the raw [`Args`]:
///
/// - `--overlap` — double-buffered streams ([`PipelineMode::Overlapped`])
/// - `--kernel sort|select` — top-s extraction kernel
/// - `--aggregate host|device` — where the shingle sort runs
/// - `--components host|device` — where Phase III labels clusters
/// - `--plan auto|manual` — `auto` lets the cost-model argmin pick every
///   schedule axis not explicitly forced by one of the flags above
/// - `--par-sort-min N` — host parallel-sort threshold
/// - `--mem-budget BYTES` (K/M/G binary suffixes; env fallback
///   `GPCLUST_MEM_BUDGET`) — out-of-core resident-byte budget; Pass I
///   shards to the bound and spills sorted runs to disk
/// - `--shards N` — pin the out-of-core shard count explicitly
/// - `--max-retries N`, `--oom-backoff true|false`, `--no-degrade` —
///   fault policy overrides
/// - `--inject-faults seed:rate` (or env `GPCLUST_INJECT_FAULTS`) —
///   deterministic device fault plan
///
/// Every knob is an *override*: flags that were not passed leave the base
/// [`ShinglingParams`] untouched, so defaults have exactly one source of
/// truth (the params constructors). [`ScheduleArgs::apply`] yields the
/// run's params — i.e. the configuration [`gpclust_core::Plan::lower`]
/// turns into an execution plan — and [`ScheduleArgs::harness_gpu`] the
/// simulated fleet to lower it against.
#[derive(Debug, Clone, Default)]
pub struct ScheduleArgs {
    overlap: bool,
    kernel: Option<ShingleKernel>,
    aggregation: Option<AggregationMode>,
    components: Option<ComponentsMode>,
    plan_auto: bool,
    par_sort_min: Option<usize>,
    mem_budget: Option<u64>,
    shards: Option<u32>,
    max_retries: Option<u32>,
    oom_backoff: Option<bool>,
    no_degrade: bool,
    fault_plan: Option<gpclust_gpu::FaultPlan>,
}

impl ScheduleArgs {
    /// Resolve from parsed flags. Panics on malformed values.
    pub fn resolve(args: &Args) -> Self {
        ScheduleArgs {
            overlap: args.flag("overlap"),
            kernel: match args.pairs.get("kernel").map(String::as_str) {
                None => None,
                Some("sort") => Some(ShingleKernel::SortCompact),
                Some("select") => Some(ShingleKernel::FusedSelect),
                Some(other) => panic!("--kernel must be `sort` or `select`, got `{other}`"),
            },
            aggregation: match args.pairs.get("aggregate").map(String::as_str) {
                None => None,
                Some("host") => Some(AggregationMode::Host),
                Some("device") => Some(AggregationMode::Device),
                Some(other) => panic!("--aggregate must be `host` or `device`, got `{other}`"),
            },
            components: match args.pairs.get("components").map(String::as_str) {
                None => None,
                Some("host") => Some(ComponentsMode::Host),
                Some("device") => Some(ComponentsMode::Device),
                Some(other) => panic!("--components must be `host` or `device`, got `{other}`"),
            },
            plan_auto: match args.pairs.get("plan").map(String::as_str) {
                None | Some("manual") => false,
                Some("auto") => true,
                Some(other) => panic!("--plan must be `auto` or `manual`, got `{other}`"),
            },
            par_sort_min: args.pairs.get("par-sort-min").map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--par-sort-min must be an integer, got `{v}`"))
            }),
            mem_budget: args.pairs.get("mem-budget").map(|v| {
                gpclust_core::parse_bytes(v).unwrap_or_else(|| {
                    panic!("--mem-budget must be bytes with an optional K/M/G suffix, got `{v}`")
                })
            }),
            shards: args.pairs.get("shards").map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--shards must be an integer, got `{v}`"))
            }),
            max_retries: args.pairs.get("max-retries").map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--max-retries must be an integer, got `{v}`"))
            }),
            oom_backoff: args.pairs.get("oom-backoff").map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--oom-backoff must be true|false, got `{v}`"))
            }),
            no_degrade: args.flag("no-degrade"),
            fault_plan: match args.pairs.get("inject-faults") {
                Some(spec) => Some(
                    gpclust_gpu::FaultPlan::parse(spec)
                        .unwrap_or_else(|e| panic!("--inject-faults: {e}")),
                ),
                None => gpclust_gpu::FaultPlan::from_env(),
            },
        }
    }

    /// Apply the resolved overrides to `base`; knobs that were not passed
    /// keep the base value.
    pub fn apply(&self, base: ShinglingParams) -> ShinglingParams {
        let mut params = base;
        if self.overlap {
            params = params.with_mode(PipelineMode::Overlapped);
        }
        if let Some(kernel) = self.kernel {
            params = params.with_kernel(kernel);
        }
        if let Some(aggregation) = self.aggregation {
            params = params.with_aggregation(aggregation);
        }
        if let Some(components) = self.components {
            params = params.with_components(components);
        }
        if let Some(par_sort_min) = self.par_sort_min {
            params = params.with_par_sort_min(par_sort_min);
        }
        if let Some(bytes) = self.mem_budget {
            params = params.with_mem_budget(bytes);
        }
        if let Some(shards) = self.shards {
            params = params.with_shards(shards);
        }
        if self.plan_auto {
            // Explicitly passed axis flags stay forced; the autotuner
            // fills in only the axes left unspecified.
            params = params.with_plan(PlanMode::Auto(ForcedAxes {
                kernel: self.kernel.is_some(),
                mode: self.overlap,
                aggregation: self.aggregation.is_some(),
                components: self.components.is_some(),
            }));
        }
        params.with_fault_policy(gpclust_core::FaultPolicy {
            max_retries: self.max_retries.unwrap_or(base.fault.max_retries),
            oom_backoff: self.oom_backoff.unwrap_or(base.fault.oom_backoff),
            degrade_to_host: base.fault.degrade_to_host && !self.no_degrade,
        })
    }

    /// The standard simulated Tesla K20 every harness runs on, with any
    /// requested deterministic fault plan installed for `device`.
    pub fn harness_gpu(&self, device: u32) -> gpclust_gpu::Gpu {
        let gpu = gpclust_gpu::Gpu::new(gpclust_gpu::DeviceConfig::tesla_k20());
        if let Some(plan) = &self.fault_plan {
            gpu.set_fault_plan(plan.clone().with_device(device));
        }
        gpu
    }

    /// One-line summary of the execution plan `params` lowers to on
    /// `gpus` (see [`gpclust_core::Plan::describe`]). Under `--plan auto`
    /// the summary names the axes the autotuner picked for a *nominal*
    /// workload; [`ScheduleArgs::describe_plan_on`] resolves them against
    /// the actual input.
    pub fn describe_plan(&self, params: &ShinglingParams, gpus: &[gpclust_gpu::Gpu]) -> String {
        gpclust_core::Plan::lower(params, gpus)
            .expect("lower execution plan")
            .describe()
    }

    /// [`ScheduleArgs::describe_plan`] with the input in hand: under
    /// `--plan auto` the autotuner's argmin runs over this exact
    /// workload, so the line shows the axes (and predicted makespan) the
    /// run will actually use.
    pub fn describe_plan_on(
        &self,
        params: &ShinglingParams,
        gpus: &[gpclust_gpu::Gpu],
        offsets: &[u64],
        n_vertices: usize,
    ) -> String {
        gpclust_core::Plan::lower_auto(params, gpus, offsets, n_vertices)
            .expect("lower execution plan")
            .0
            .describe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_pairs_and_flags() {
        let a = Args::from_tokens(["--n", "500", "--full", "--seed", "7"].map(String::from));
        assert_eq!(a.get("n", 0usize), 500);
        assert_eq!(a.get("seed", 0u64), 7);
        assert_eq!(a.get("missing", 3usize), 3);
        assert!(a.flag("full"));
        assert!(!a.flag("absent"));
    }

    #[test]
    fn trailing_flag_without_value() {
        let a = Args::from_tokens(["--quick"].map(String::from));
        assert!(a.flag("quick"));
    }

    #[test]
    fn schedule_flags_apply_to_params() {
        let base = ShinglingParams::light(1);
        let a = Args::from_tokens(
            [
                "--overlap",
                "--kernel",
                "select",
                "--aggregate",
                "device",
                "--components",
                "device",
                "--par-sort-min",
                "0",
                "--mem-budget",
                "64M",
                "--shards",
                "4",
                "--max-retries",
                "5",
                "--no-degrade",
            ]
            .map(String::from),
        );
        let p = a.schedule().apply(base);
        assert_eq!(p.mode, PipelineMode::Overlapped);
        assert_eq!(p.kernel, ShingleKernel::FusedSelect);
        assert_eq!(p.aggregation, AggregationMode::Device);
        assert_eq!(p.components, ComponentsMode::Device);
        assert_eq!(p.par_sort_min, 0);
        assert_eq!(p.mem_budget.bytes, Some(64 << 20));
        assert_eq!(p.mem_budget.shards, Some(4));
        assert_eq!(p.fault.max_retries, 5);
        assert!(!p.fault.degrade_to_host);
        // Knobs that were not passed keep the base params' values — the
        // params constructors stay the single source of defaults.
        let p = Args::from_tokens(Vec::<String>::new())
            .schedule()
            .apply(base);
        assert_eq!(p, base);
    }

    #[test]
    fn plan_flag_resolves_to_auto_with_passed_axes_forced() {
        let base = ShinglingParams::light(1);
        let a = Args::from_tokens(["--plan", "auto", "--kernel", "select"].map(String::from));
        let p = a.schedule().apply(base);
        match p.plan {
            PlanMode::Auto(forced) => {
                assert!(forced.kernel, "--kernel was passed, so it stays forced");
                assert!(!forced.mode && !forced.aggregation && !forced.components);
            }
            PlanMode::Manual => panic!("--plan auto must resolve to PlanMode::Auto"),
        }
        assert_eq!(p.kernel, ShingleKernel::FusedSelect);
        // `--plan manual` (and no flag at all) leave the base untouched.
        let p = Args::from_tokens(["--plan", "manual"].map(String::from))
            .schedule()
            .apply(base);
        assert_eq!(p, base);
    }

    #[test]
    fn describe_plan_on_names_the_autotuned_axes() {
        let sched = Args::from_tokens(["--plan", "auto"].map(String::from)).schedule();
        let params = sched.apply(ShinglingParams::light(1));
        let gpus = [sched.harness_gpu(0)];
        // A small CSR-like offsets array: 4 lists of a few elements.
        let offsets = [0u64, 3, 8, 10, 14];
        let line = sched.describe_plan_on(&params, &gpus, &offsets, 4);
        assert!(line.starts_with("plan auto"), "{line}");
        assert!(line.contains("predicted"), "{line}");
    }

    #[test]
    fn schedule_describe_names_the_lowered_plan() {
        let sched = Args::from_tokens(["--kernel", "select"].map(String::from)).schedule();
        let params = sched.apply(ShinglingParams::light(1));
        let gpus = [sched.harness_gpu(0)];
        let line = sched.describe_plan(&params, &gpus);
        assert!(line.contains("fused-select"), "{line}");
        assert!(line.contains("1 device(s)"), "{line}");
    }
}
