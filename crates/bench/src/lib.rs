//! # gpclust-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I — runtime breakdown and speedups |
//! | `table2` | Table II — input graph statistics |
//! | `table3` | Table III — PPV/NPV/SP/SE vs the GOS baseline |
//! | `table4` | Table IV — partition statistics + densities |
//! | `fig5`   | Figure 5(a)/(b) — group/sequence size histograms |
//! | `largescale` | §IV-C large-run demonstration |
//!
//! Criterion microbenches live under `benches/`.
//!
//! Expensive artifacts (alignment-built similarity graphs) are cached on
//! disk under [`data_dir`], keyed by their generating parameters, so the
//! table binaries can share them.

pub mod datasets;
pub mod quality;
pub mod reports;

use std::path::PathBuf;

/// Directory for cached datasets (override with `GPCLUST_DATA_DIR`).
pub fn data_dir() -> PathBuf {
    let dir = std::env::var_os("GPCLUST_DATA_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/gpclust-data"));
    std::fs::create_dir_all(&dir).expect("create data dir");
    dir
}

/// Directory for generated experiment reports (override with
/// `GPCLUST_REPORT_DIR`).
pub fn report_dir() -> PathBuf {
    let dir = std::env::var_os("GPCLUST_REPORT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("reports"));
    std::fs::create_dir_all(&dir).expect("create report dir");
    dir
}

/// Minimal CLI flag parsing: `--key value` pairs and bare `--flag`s.
#[derive(Debug, Default, Clone)]
pub struct Args {
    pairs: std::collections::HashMap<String, String>,
    flags: std::collections::HashSet<String>,
}

impl Args {
    /// Parse from `std::env::args` (skipping the binary name).
    pub fn parse() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parse from an explicit token sequence (for tests).
    pub fn from_tokens(iter: impl IntoIterator<Item = String>) -> Self {
        let mut args = Args::default();
        let mut it = iter.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        args.pairs.insert(key.to_string(), it.next().unwrap());
                    }
                    _ => {
                        args.flags.insert(key.to_string());
                    }
                }
            } else {
                eprintln!("ignoring stray argument: {tok}");
            }
        }
        args
    }

    /// Value of `--key`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether bare `--flag` was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.contains(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_pairs_and_flags() {
        let a = Args::from_tokens(["--n", "500", "--full", "--seed", "7"].map(String::from));
        assert_eq!(a.get("n", 0usize), 500);
        assert_eq!(a.get("seed", 0u64), 7);
        assert_eq!(a.get("missing", 3usize), 3);
        assert!(a.flag("full"));
        assert!(!a.flag("absent"));
    }

    #[test]
    fn trailing_flag_without_value() {
        let a = Args::from_tokens(["--quick"].map(String::from));
        assert!(a.flag("quick"));
    }
}
