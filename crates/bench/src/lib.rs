//! # gpclust-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I — runtime breakdown and speedups |
//! | `table2` | Table II — input graph statistics |
//! | `table3` | Table III — PPV/NPV/SP/SE vs the GOS baseline |
//! | `table4` | Table IV — partition statistics + densities |
//! | `fig5`   | Figure 5(a)/(b) — group/sequence size histograms |
//! | `largescale` | §IV-C large-run demonstration |
//!
//! Criterion microbenches live under `benches/`.
//!
//! Expensive artifacts (alignment-built similarity graphs) are cached on
//! disk under [`data_dir`], keyed by their generating parameters, so the
//! table binaries can share them.

pub mod datasets;
pub mod quality;
pub mod reports;

use std::path::PathBuf;

/// Directory for cached datasets (override with `GPCLUST_DATA_DIR`).
pub fn data_dir() -> PathBuf {
    let dir = std::env::var_os("GPCLUST_DATA_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/gpclust-data"));
    std::fs::create_dir_all(&dir).expect("create data dir");
    dir
}

/// Directory for generated experiment reports (override with
/// `GPCLUST_REPORT_DIR`).
pub fn report_dir() -> PathBuf {
    let dir = std::env::var_os("GPCLUST_REPORT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("reports"));
    std::fs::create_dir_all(&dir).expect("create report dir");
    dir
}

/// Minimal CLI flag parsing: `--key value` pairs and bare `--flag`s.
#[derive(Debug, Default, Clone)]
pub struct Args {
    pairs: std::collections::HashMap<String, String>,
    flags: std::collections::HashSet<String>,
}

impl Args {
    /// Parse from `std::env::args` (skipping the binary name).
    pub fn parse() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parse from an explicit token sequence (for tests).
    pub fn from_tokens(iter: impl IntoIterator<Item = String>) -> Self {
        let mut args = Args::default();
        let mut it = iter.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        args.pairs.insert(key.to_string(), it.next().unwrap());
                    }
                    _ => {
                        args.flags.insert(key.to_string());
                    }
                }
            } else {
                eprintln!("ignoring stray argument: {tok}");
            }
        }
        args
    }

    /// Value of `--key`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether bare `--flag` was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.contains(key)
    }

    /// Apply the schedule knobs shared by every harness to `params`:
    /// `--overlap` (double-buffered streams), `--kernel sort|select`
    /// (top-s extraction kernel), `--aggregate host|device` (where the
    /// shingle sort runs), and `--par-sort-min N` (host parallel-sort
    /// threshold). Unknown values panic with a usage hint rather than
    /// silently benchmarking the wrong configuration.
    pub fn apply_schedule_flags(
        &self,
        params: gpclust_core::ShinglingParams,
    ) -> gpclust_core::ShinglingParams {
        use gpclust_core::{AggregationMode, PipelineMode, ShingleKernel};
        let mut params = params;
        if self.flag("overlap") {
            params = params.with_mode(PipelineMode::Overlapped);
        }
        params = match self.pairs.get("kernel").map(String::as_str) {
            None | Some("sort") => params.with_kernel(ShingleKernel::SortCompact),
            Some("select") => params.with_kernel(ShingleKernel::FusedSelect),
            Some(other) => panic!("--kernel must be `sort` or `select`, got `{other}`"),
        };
        params = match self.pairs.get("aggregate").map(String::as_str) {
            None | Some("host") => params.with_aggregation(AggregationMode::Host),
            Some("device") => params.with_aggregation(AggregationMode::Device),
            Some(other) => panic!("--aggregate must be `host` or `device`, got `{other}`"),
        };
        params = params.with_par_sort_min(self.get("par-sort-min", params.par_sort_min));
        params.with_fault_policy(self.fault_policy())
    }

    /// The resilience knobs shared by every harness: `--max-retries N`,
    /// `--oom-backoff true|false`, and `--no-degrade` (forbid the
    /// per-batch host fallback).
    pub fn fault_policy(&self) -> gpclust_core::FaultPolicy {
        gpclust_core::FaultPolicy {
            max_retries: self.get("max-retries", gpclust_core::params::MAX_RETRIES),
            oom_backoff: self.get("oom-backoff", true),
            degrade_to_host: !self.flag("no-degrade"),
        }
    }

    /// Deterministic fault-injection plan from `--inject-faults seed:rate`,
    /// falling back to the `GPCLUST_INJECT_FAULTS` environment variable.
    /// Panics on a malformed spec rather than silently benchmarking a
    /// fault-free device.
    pub fn fault_plan(&self) -> Option<gpclust_gpu::FaultPlan> {
        match self.pairs.get("inject-faults") {
            Some(spec) => Some(
                gpclust_gpu::FaultPlan::parse(spec)
                    .unwrap_or_else(|e| panic!("--inject-faults: {e}")),
            ),
            None => gpclust_gpu::FaultPlan::from_env(),
        }
    }

    /// The standard simulated Tesla K20 every harness runs on, with any
    /// requested deterministic fault plan installed for `device`.
    pub fn harness_gpu(&self, device: u32) -> gpclust_gpu::Gpu {
        let gpu = gpclust_gpu::Gpu::new(gpclust_gpu::DeviceConfig::tesla_k20());
        if let Some(plan) = self.fault_plan() {
            gpu.set_fault_plan(plan.with_device(device));
        }
        gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_pairs_and_flags() {
        let a = Args::from_tokens(["--n", "500", "--full", "--seed", "7"].map(String::from));
        assert_eq!(a.get("n", 0usize), 500);
        assert_eq!(a.get("seed", 0u64), 7);
        assert_eq!(a.get("missing", 3usize), 3);
        assert!(a.flag("full"));
        assert!(!a.flag("absent"));
    }

    #[test]
    fn trailing_flag_without_value() {
        let a = Args::from_tokens(["--quick"].map(String::from));
        assert!(a.flag("quick"));
    }

    #[test]
    fn schedule_flags_apply_to_params() {
        use gpclust_core::{AggregationMode, PipelineMode, ShingleKernel, ShinglingParams};
        let base = ShinglingParams::light(1);
        let a = Args::from_tokens(
            [
                "--overlap",
                "--kernel",
                "select",
                "--aggregate",
                "device",
                "--par-sort-min",
                "0",
            ]
            .map(String::from),
        );
        let p = a.apply_schedule_flags(base);
        assert_eq!(p.mode, PipelineMode::Overlapped);
        assert_eq!(p.kernel, ShingleKernel::FusedSelect);
        assert_eq!(p.aggregation, AggregationMode::Device);
        assert_eq!(p.par_sort_min, 0);
        // Defaults pass through untouched.
        let p = Args::from_tokens(Vec::<String>::new()).apply_schedule_flags(base);
        assert_eq!(p, base);
    }
}
