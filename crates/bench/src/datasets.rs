//! Benchmark datasets — the reproduction's stand-ins for the paper's GOS
//! sequence sets and homology graphs, at configurable scale.
//!
//! Two construction routes, matching how the paper's two studies use data:
//!
//! * **Sequence route** (quality studies, Tables III/IV, Fig. 5): generate
//!   a family-structured synthetic metagenome, build its similarity graph
//!   through the full pGraph-like alignment pipeline. Exact but
//!   alignment-bound, so graphs are cached on disk.
//! * **Direct-graph route** (performance studies, Tables I/II at scale,
//!   §IV-C): synthesize a planted-partition graph matching the *graph*
//!   statistics of Table II (heavy-tailed dense groups, capped expected
//!   degree ≈ 73, sparse inter-group noise) without paying for alignment —
//!   the paper, too, received its input graph from a separate pGraph run.

use gpclust_graph::generate::{planted_partition, PlantedConfig, PlantedGraph};
use gpclust_graph::{io as graph_io, Csr};
use gpclust_homology::HomologyConfig;
use gpclust_seqsim::metagenome::{Metagenome, MetagenomeConfig};
use std::path::PathBuf;

/// The 20K-sequence dataset (paper §IV-C "20K sequence graph").
pub fn metagenome_20k(seed: u64) -> Metagenome {
    Metagenome::generate(&MetagenomeConfig::gos_20k(seed))
}

/// The 2M-like dataset scaled to `n` sequences (paper's "2M sequence
/// graph"; pass `n = 2_000_000` for unscaled).
pub fn metagenome_2m_like(n: usize, seed: u64) -> Metagenome {
    Metagenome::generate(&MetagenomeConfig::gos_2m_scaled(n, seed))
}

/// Build (or load from cache) the similarity graph of `mg`.
///
/// The cache key must uniquely describe the generating parameters; callers
/// pass e.g. `"sim20k-seed7"`.
pub fn similarity_graph_cached(tag: &str, mg: &Metagenome, config: &HomologyConfig) -> Csr {
    let path = cache_path(tag);
    if let Ok(g) = graph_io::read_file(&path) {
        if g.n() == mg.len() {
            return g;
        }
        eprintln!("cache {path:?} is stale (wrong size); rebuilding");
    }
    let (g, stats) = gpclust_homology::build_graph(&mg.proteins, config);
    eprintln!(
        "built similarity graph {tag}: {} vertices, {} edges \
         ({} candidates, {} rejected); caching to {path:?}",
        g.n(),
        g.m(),
        stats.pairs.n_pairs,
        stats.n_rejected
    );
    graph_io::write_file(&path, &g).expect("write graph cache");
    g
}

fn cache_path(tag: &str) -> PathBuf {
    crate::data_dir().join(format!("{tag}.graph.bin"))
}

/// A planted-partition graph shaped like the paper's 2M similarity graph
/// (Table II: 1.56M non-singleton vertices, 57M edges, degree 73 ± 153,
/// largest CC ~10.7K), scaled to `n_vertices`.
pub fn planted_2m_like(n_vertices: usize, seed: u64) -> PlantedGraph {
    // ~78 % of vertices belong to dense groups (the rest are singletons /
    // noise), group sizes heavy-tailed up to ~0.7 % of n — keeping the
    // largest connected component well below n like the paper's graph.
    // No inter-group edges at all: the paper's graph is a sea of
    // disconnected dense islands (largest CC 10,707 — smaller than its
    // largest benchmark family), and random noise edges attach to groups
    // mass-proportionally, chaining the big ones into a giant component at
    // any non-trivial budget.
    let n_grouped = (n_vertices as f64 * 0.78) as usize;
    let max_group = ((n_vertices as f64) * 0.007).max(50.0) as usize;
    let group_sizes = PlantedConfig::zipf_groups(n_grouped, 4, max_group, 1.35, seed);
    planted_partition(&PlantedConfig {
        group_sizes,
        n_noise_vertices: n_vertices - n_grouped,
        p_intra: 0.8,
        max_intra_degree: 80.0,
        inter_edges_per_vertex: 0.0,
        seed,
    })
}

/// The §IV-C large-scale demonstration graph (paper: 11M vertices, 640M
/// edges), scaled to `n_vertices` with the same ~58 edges/vertex ratio.
pub fn planted_largescale(n_vertices: usize, seed: u64) -> PlantedGraph {
    // Pure intra-group edges (like the 2M-like generator): random uniform
    // top-up edges percolate the whole graph into one component and one
    // mega-cluster, which makes the demonstration meaningless. With the
    // degree cap at 130 the edges/vertex ratio lands near the paper's 58
    // (640M / 11M) at large scales, lower at small ones.
    let n_grouped = (n_vertices as f64 * 0.85) as usize;
    let max_group = ((n_vertices as f64) * 0.005).max(50.0) as usize;
    let group_sizes = PlantedConfig::zipf_groups(n_grouped, 4, max_group, 1.3, seed);
    planted_partition(&PlantedConfig {
        group_sizes,
        n_noise_vertices: n_vertices - n_grouped,
        p_intra: 0.9,
        max_intra_degree: 130.0,
        inter_edges_per_vertex: 0.0,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpclust_graph::stats::GraphStats;

    #[test]
    fn planted_2m_like_matches_table_ii_shape() {
        let pg = planted_2m_like(20_000, 3);
        let st = GraphStats::of(&pg.graph);
        // Heavy-tailed groups, average degree in the tens, largest CC a
        // small fraction of the graph — the Table II shape.
        assert!(
            st.degree.mean > 20.0 && st.degree.mean < 120.0,
            "{}",
            st.degree.mean
        );
        assert!(st.degree.sd > st.degree.mean * 0.5);
        assert!(st.largest_cc < pg.graph.n() / 2);
        assert!(st.n_non_singleton > pg.graph.n() / 2);
    }

    #[test]
    fn cache_roundtrip() {
        let mg = metagenome_20k(99);
        let small =
            Metagenome::generate(&gpclust_seqsim::metagenome::MetagenomeConfig::tiny(80, 99));
        let cfg = HomologyConfig::default();
        let tag = "test-cache-tiny-99";
        let _ = std::fs::remove_file(cache_path(tag));
        let g1 = similarity_graph_cached(tag, &small, &cfg);
        let g2 = similarity_graph_cached(tag, &small, &cfg);
        assert_eq!(g1, g2);
        let _ = std::fs::remove_file(cache_path(tag));
        drop(mg);
    }

    #[test]
    fn largescale_density_grows_toward_paper_ratio() {
        // The edges/vertex ratio is tail-driven, so it grows with scale
        // toward the paper's 58 (640M / 11M); at demo scales it is lower.
        let r10k = {
            let pg = planted_largescale(10_000, 5);
            pg.graph.m() as f64 / pg.graph.n() as f64
        };
        let r60k = {
            let pg = planted_largescale(60_000, 5);
            pg.graph.m() as f64 / pg.graph.n() as f64
        };
        assert!((2.0..30.0).contains(&r10k), "edges/vertex@10k = {r10k}");
        assert!(r60k > r10k, "{r60k} !> {r10k}");
    }
}
