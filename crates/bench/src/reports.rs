//! Experiment report output: aligned console tables plus JSON artifacts.
//!
//! Every table binary prints a human-readable table mirroring the paper's
//! layout *and* writes a JSON record under [`crate::report_dir`] so
//! EXPERIMENTS.md's paper-vs-measured entries are regenerable.

use serde::Serialize;
use std::io::Write;

/// A named experiment result, serialized to `reports/<id>.json`.
#[derive(Debug, Clone, Serialize)]
pub struct Experiment<T: Serialize> {
    /// Artifact id, e.g. `"table1"`.
    pub id: String,
    /// Human description.
    pub description: String,
    /// Result payload.
    pub data: T,
}

impl<T: Serialize> Experiment<T> {
    /// Create a report.
    pub fn new(id: &str, description: &str, data: T) -> Self {
        Experiment {
            id: id.to_string(),
            description: description.to_string(),
            data,
        }
    }

    /// Write to `reports/<id>.json`, returning the path.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        let path = crate::report_dir().join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(&path)?;
        let json = serde_json::to_string_pretty(self).expect("serializable");
        f.write_all(json.as_bytes())?;
        f.write_all(b"\n")?;
        Ok(path)
    }
}

/// Render rows as an aligned text table. `header` and every row must have
/// the same number of columns.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            for _ in cell.chars().count()..*w {
                line.push(' ');
            }
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Format a fraction as a percentage with two decimals (Table III style).
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Format seconds with appropriate precision.
pub fn secs(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.1}")
    } else if x >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Simple ASCII bar chart for the Figure 5 histograms.
pub fn ascii_histogram(labels: &[&str], series: &[(&str, Vec<usize>)]) -> String {
    let max = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .max()
        .unwrap_or(1)
        .max(1);
    let mut out = String::new();
    for (si, (name, values)) in series.iter().enumerate() {
        if si > 0 {
            out.push('\n');
        }
        out.push_str(name);
        out.push('\n');
        for (label, &v) in labels.iter().zip(values) {
            let bar_len = (v * 50).div_ceil(max);
            out.push_str(&format!(
                "  {label:>10} | {}{} {v}\n",
                "#".repeat(bar_len),
                if v > 0 && bar_len == 0 { "." } else { "" }
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
        // The value column starts at the same offset in every row.
        let col = lines[3].find("22").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn pct_and_secs_formats() {
        assert_eq!(pct(0.9717), "97.17%");
        assert_eq!(secs(392.318), "392.3");
        assert_eq!(secs(7.5), "7.50");
        assert_eq!(secs(0.01234), "0.0123");
    }

    #[test]
    fn experiment_saves_json() {
        let e = Experiment::new("test-report", "a test", vec![1, 2, 3]);
        let path = e.save().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"test-report\""));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn histogram_renders_all_bins() {
        let h = ascii_histogram(
            &["20-49", "50-99"],
            &[("gpClust", vec![10, 3]), ("GOS", vec![8, 0])],
        );
        assert!(h.contains("gpClust"));
        assert!(h.contains("GOS"));
        assert!(h.contains("20-49"));
        assert!(h.matches('|').count() == 4);
    }
}
