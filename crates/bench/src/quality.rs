//! Shared setup for the qualitative studies (Tables III/IV, Figure 5).
//!
//! One dataset, three partitions — exactly the paper's protocol:
//!
//! * **benchmark** — the planted protein families (stand-in for the GOS
//!   project's predicted families);
//! * **gpClust** — the Shingling pipeline with the paper's defaults;
//! * **GOS** — the k-neighbor linkage baseline (k = 10).
//!
//! The paper evaluates only clusters of size ≥ 20 ("in the GOS study, only
//! clusters of size ≥ 20 are reported, therefore we only use clusters of
//! size ≥ 20 from our gpClust approach").
//!
//! **Evidence graphs.** In the paper, the GOS partition is the GOS team's
//! own clustering, built on their BLAST all-vs-all homology evidence, while
//! gpClust clusters the stricter pGraph-built graph. We mirror that: the
//! k-neighbor baseline runs on a *loose* (BLAST-like: no coverage gate,
//! lower score-density threshold) similarity graph, gpClust on the strict
//! pGraph-like graph, and cluster density (Table IV) is evaluated for both
//! on the common strict reference graph. Pass `--same-graph` to run both
//! methods on the strict graph instead.

use crate::datasets;
use crate::Args;
use gpclust_core::mcl::{mcl_clusters, MclParams};
use gpclust_core::{kneighbor_clusters, GpClust, ShinglingParams};
use gpclust_gpu::{DeviceConfig, Gpu};
use gpclust_graph::{Csr, Partition};
use gpclust_homology::HomologyConfig;
use gpclust_seqsim::Metagenome;

/// Everything the quality binaries need.
pub struct QualityRun {
    /// The synthetic metagenome.
    pub mg: Metagenome,
    /// Its similarity graph.
    pub graph: Csr,
    /// Planted families (unfiltered benchmark).
    pub benchmark: Partition,
    /// gpClust partition, size-filtered.
    pub gpclust: Partition,
    /// GOS k-neighbor partition, size-filtered.
    pub gos: Partition,
    /// MCL partition (inflation 2.0), size-filtered — present only with
    /// `--with-mcl`. MCL (TribeMCL/OrthoMCL) is what the metagenomics
    /// field standardized on after this paper's era; including it lets the
    /// harness triangulate all three methods.
    pub mcl: Option<Partition>,
    /// The size cut applied to the two test partitions.
    pub min_size: usize,
    /// The k of the baseline.
    pub k: usize,
    /// Number of sequences.
    pub n: usize,
    /// Seed used throughout.
    pub seed: u64,
}

/// Build the three partitions from CLI arguments
/// (`--n`, `--seed`, `--min-size`, `--k`).
pub fn quality_run(args: &Args) -> QualityRun {
    let n = args.get("n", 20_000usize);
    let seed = args.get("seed", 7u64);
    let min_size = args.get("min-size", 20usize);
    let k = args.get("k", 10usize);

    eprintln!("generating metagenome (n={n}, seed={seed}) ...");
    let mg = if n == 20_000 {
        datasets::metagenome_20k(seed)
    } else {
        datasets::metagenome_2m_like(n, seed)
    };
    let tag = if n == 20_000 {
        format!("sim20k-seed{seed}")
    } else {
        format!("sim{n}-seed{seed}")
    };
    eprintln!("building similarity graph (cached as {tag}) ...");
    let graph = datasets::similarity_graph_cached(&tag, &mg, &HomologyConfig::default());

    // BLAST-like loose evidence for the GOS baseline: no coverage/identity
    // gate, permissive score density — domain-only and partial matches
    // produce edges, as in an all-vs-all BLAST graph.
    let gos_graph = if args.flag("same-graph") {
        None
    } else {
        let loose = HomologyConfig {
            criteria: gpclust_align::AcceptCriteria {
                min_score: 50,
                min_score_density: 0.65,
                min_identity: 0.0,
                min_coverage: 0.0,
                strict: false,
            },
            ..HomologyConfig::default()
        };
        eprintln!("building loose (BLAST-like) graph for the GOS baseline ...");
        Some(datasets::similarity_graph_cached(
            &format!("{tag}-loose"),
            &mg,
            &loose,
        ))
    };

    let benchmark = Partition::from_membership(mg.truth.clone());

    eprintln!("clustering with gpClust (paper defaults) ...");
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let pipeline = GpClust::new(ShinglingParams::paper_default(seed), gpu).unwrap();
    let gpclust = pipeline
        .cluster(&graph)
        .expect("gpClust run")
        .partition
        .filter_min_size(min_size);

    eprintln!("clustering with the GOS k-neighbor baseline (k={k}) ...");
    let gos = kneighbor_clusters(gos_graph.as_ref().unwrap_or(&graph), k).filter_min_size(min_size);

    let mcl = args.flag("with-mcl").then(|| {
        eprintln!("clustering with MCL (inflation 2.0) ...");
        mcl_clusters(&graph, &MclParams::default()).filter_min_size(min_size)
    });

    QualityRun {
        mg,
        graph,
        benchmark,
        gpclust,
        gos,
        mcl,
        min_size,
        k,
        n,
        seed,
    }
}
