//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * trial count `c1` (quality/cost knob the paper credits for its
//!   sensitivity win: "higher sensitivity is contributed by the high
//!   configurable s and c parameters");
//! * shingle size `s1` (aggressive s=1 vs the paper's s=2 vs conservative);
//! * device batch capacity (how much splitting costs);
//! * synchronous vs overlapped transfers (the paper's stated future work);
//! * reporting mode (union–find partition vs overlapping components).

use criterion::{criterion_group, criterion_main, Criterion};
use gpclust_core::{GpClust, SerialShingling, ShinglingParams};
use gpclust_gpu::{DeviceConfig, Gpu};
use gpclust_graph::generate::{planted_partition, PlantedConfig};
use gpclust_graph::Csr;

fn graph() -> Csr {
    planted_partition(&PlantedConfig {
        group_sizes: PlantedConfig::zipf_groups(4_000, 4, 200, 1.4, 11),
        n_noise_vertices: 1_000,
        p_intra: 0.8,
        max_intra_degree: 50.0,
        inter_edges_per_vertex: 0.1,
        seed: 11,
    })
    .graph
}

fn bench_c1_sweep(c: &mut Criterion) {
    let g = graph();
    let mut grp = c.benchmark_group("ablation_c1");
    grp.sample_size(10);
    for c1 in [25usize, 50, 100, 200] {
        let params = ShinglingParams {
            s1: 2,
            c1,
            s2: 2,
            c2: c1 / 2,
            seed: 7,
            ..ShinglingParams::light(7)
        };
        grp.bench_function(format!("serial_c1_{c1}"), |b| {
            let alg = SerialShingling::new(params).unwrap();
            b.iter(|| alg.cluster(&g))
        });
    }
    grp.finish();
}

fn bench_s1_sweep(c: &mut Criterion) {
    let g = graph();
    let mut grp = c.benchmark_group("ablation_s1");
    grp.sample_size(10);
    for s in [1usize, 2, 4] {
        let params = ShinglingParams {
            s1: s,
            c1: 50,
            s2: s.min(2),
            c2: 25,
            seed: 7,
            ..ShinglingParams::light(7)
        };
        grp.bench_function(format!("serial_s1_{s}"), |b| {
            let alg = SerialShingling::new(params).unwrap();
            b.iter(|| alg.cluster(&g))
        });
    }
    grp.finish();
}

fn bench_batch_capacity(c: &mut Criterion) {
    let g = graph();
    let params = ShinglingParams::light(7);
    let mut grp = c.benchmark_group("ablation_batch_capacity");
    grp.sample_size(10);
    for (name, config) in [
        ("k20_single_batch", DeviceConfig::tesla_k20()),
        ("tiny_many_batches", DeviceConfig::tiny_test_device()),
    ] {
        grp.bench_function(name, |b| {
            let gpu = Gpu::new(config.clone());
            let pipeline = GpClust::new(params, gpu).unwrap();
            b.iter(|| pipeline.cluster(&g).unwrap())
        });
    }
    grp.finish();
}

fn bench_method_comparison(c: &mut Criterion) {
    // Clustering-method runtimes on the same graph: serial Shingling,
    // GOS k-neighbor (both variants), and MCL — the comparator the
    // metagenomics field later standardized on.
    let g = graph();
    let mut grp = c.benchmark_group("method_comparison");
    grp.sample_size(10);
    grp.bench_function("shingling_serial", |b| {
        let alg = SerialShingling::new(ShinglingParams::light(7)).unwrap();
        b.iter(|| alg.cluster(&g))
    });
    grp.bench_function("gos_snn_k10", |b| {
        b.iter(|| gpclust_core::kneighbor_clusters(&g, 10))
    });
    grp.bench_function("mcl_inflation2", |b| {
        b.iter(|| gpclust_core::mcl::mcl_clusters(&g, &gpclust_core::mcl::MclParams::default()))
    });
    grp.finish();
}

fn bench_reporting_mode(c: &mut Criterion) {
    let g = graph();
    let params = ShinglingParams::light(7);
    let alg = SerialShingling::new(params).unwrap();
    let mut grp = c.benchmark_group("ablation_reporting");
    grp.sample_size(10);
    grp.bench_function("partition_union_find", |b| b.iter(|| alg.cluster(&g)));
    grp.bench_function("overlapping_components", |b| {
        b.iter(|| alg.cluster_overlapping(&g))
    });
    grp.finish();
}

criterion_group!(
    benches,
    bench_c1_sweep,
    bench_s1_sweep,
    bench_batch_capacity,
    bench_method_comparison,
    bench_reporting_mode
);
criterion_main!(benches);
