//! Synchronous vs overlapped pipeline schedule — the ablation behind the
//! paper's stated future work ("asynchronous memory transfers").
//!
//! Two measurements:
//!
//! 1. **Criterion wall-clock** of `GpClust::cluster` under both
//!    `PipelineMode`s on the same graph (host cost of driving the
//!    double-buffered schedule; results are bit-identical by contract).
//! 2. **Modeled device critical path** on the Tesla K20 preset for a
//!    Table-I-shaped workload, computed in closed form from the
//!    simulator's own cost model (`model_kernel_seconds` /
//!    `model_transfer_seconds`) and written to
//!    `<report_dir>/BENCH_overlap.json`. The checked-in copy at the repo
//!    root was produced with exactly this arithmetic.

use criterion::{criterion_group, Criterion};
use gpclust_core::{GpClust, PipelineMode, ShinglingParams};
use gpclust_gpu::{DeviceConfig, Gpu, KernelCost};
use gpclust_graph::generate::{planted_partition, PlantedConfig};
use gpclust_graph::Csr;
use serde::Serialize;

fn graph() -> Csr {
    planted_partition(&PlantedConfig {
        group_sizes: PlantedConfig::zipf_groups(4_000, 4, 200, 1.4, 11),
        n_noise_vertices: 1_000,
        p_intra: 0.8,
        max_intra_degree: 50.0,
        inter_edges_per_vertex: 0.1,
        seed: 11,
    })
    .graph
}

fn bench_schedules(c: &mut Criterion) {
    let g = graph();
    let params = ShinglingParams::light(7);
    let mut grp = c.benchmark_group("pipeline_schedule");
    grp.sample_size(10);
    grp.bench_function("synchronous", |b| {
        let pipeline = GpClust::new(params, Gpu::new(DeviceConfig::tesla_k20())).unwrap();
        b.iter(|| pipeline.cluster(&g).unwrap())
    });
    grp.bench_function("overlapped", |b| {
        let pipeline = GpClust::new(
            params.with_mode(PipelineMode::Overlapped),
            Gpu::new(DeviceConfig::tesla_k20()),
        )
        .unwrap();
        b.iter(|| pipeline.cluster(&g).unwrap())
    });
    grp.finish();
}

#[derive(Debug, Serialize)]
struct PassModel {
    n_elements: usize,
    trials: usize,
    out_elements: usize,
    h2d_s: f64,
    kernels_s: f64,
    d2h_s: f64,
    serialized_s: f64,
    pipelined_s: f64,
}

/// Closed-form schedule model of one shingling pass on `gpu`: one batch
/// upload, `trials` × (transform + segmented sort + gather compaction)
/// kernels, one top-s download per trial.
///
/// * serialized (Thrust 1.5): `h2d + trials·(kernels + d2h)`
/// * pipelined (streams): `h2d + trials·kernels + d2h_last` — every D2H
///   except the final trial's hides behind the next trial's kernels, and
///   the copy stream is never the bottleneck at these shapes.
fn model_pass(gpu: &Gpu, n_elements: usize, trials: usize, out_elements: usize) -> PassModel {
    let h2d = gpu.model_transfer_seconds(n_elements * 4);
    let kernel = gpu.model_kernel_seconds(n_elements, &KernelCost::transform())
        + gpu.model_kernel_seconds(n_elements, &KernelCost::segmented_sort())
        + gpu.model_kernel_seconds(out_elements, &KernelCost::gather());
    let d2h = gpu.model_transfer_seconds(out_elements * 8);
    PassModel {
        n_elements,
        trials,
        out_elements,
        h2d_s: h2d,
        kernels_s: kernel * trials as f64,
        d2h_s: d2h * trials as f64,
        serialized_s: h2d + trials as f64 * (kernel + d2h),
        pipelined_s: h2d + trials as f64 * kernel + d2h,
    }
}

#[derive(Debug, Serialize)]
struct OverlapReport {
    device: String,
    note: String,
    pass1: PassModel,
    pass2: PassModel,
    serialized_total_s: f64,
    pipelined_total_s: f64,
    improvement_pct: f64,
}

/// Model the paper's 20K workload shape (s = 2, c1 = 200, c2 = 100) on the
/// K20 preset and write the serialized-vs-pipelined comparison.
fn write_modeled_report() {
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    // Pass I: ~600K adjacency elements over ~20K lists, top-2 kept per
    // list; pass II: the shingle graph is smaller but wider-keyed.
    let pass1 = model_pass(&gpu, 600_000, 200, 40_000);
    let pass2 = model_pass(&gpu, 150_000, 100, 60_000);
    let serialized = pass1.serialized_s + pass2.serialized_s;
    let pipelined = pass1.pipelined_s + pass2.pipelined_s;
    let report = OverlapReport {
        device: gpu.config().name.clone(),
        note: "closed-form schedule model; BENCH_overlap.json at the repo root \
               is generated from the same arithmetic"
            .to_string(),
        pass1,
        pass2,
        serialized_total_s: serialized,
        pipelined_total_s: pipelined,
        improvement_pct: (1.0 - pipelined / serialized) * 100.0,
    };
    assert!(
        report.pipelined_total_s < report.serialized_total_s,
        "overlap must shorten the modeled critical path"
    );
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = gpclust_bench::write_report("BENCH_overlap.json", &json);
    eprintln!(
        "modeled K20 device path: {:.4}s serialized -> {:.4}s pipelined \
         ({:.1}% shorter); written to {:?}",
        report.serialized_total_s, report.pipelined_total_s, report.improvement_pct, path
    );
}

criterion_group!(benches, bench_schedules);

fn main() {
    write_modeled_report();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
