//! Benchmarks of one shingling pass — serial vs device — and of the CPU
//! aggregation stage, on a homology-shaped planted graph.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpclust_core::aggregate::{aggregate, StreamAggregator};
use gpclust_core::minwise::HashFamily;
use gpclust_core::serial::{shingle_pass, shingle_pass_foreach};
use gpclust_core::{
    Executor, PassInput, Plan, RecoveryReport, ShingleKernel, ShinglingParams, Sink,
};
use gpclust_gpu::{DeviceConfig, Gpu};
use gpclust_graph::generate::{planted_partition, PlantedConfig};
use gpclust_graph::Csr;

/// One gathered device pass through the plan/executor layer.
fn device_pass(gpu: &Gpu, g: &Csr, family: &HashFamily, kernel: ShingleKernel) {
    let params = ShinglingParams::light(0).with_kernel(kernel);
    let plan = Plan::lower(&params, std::slice::from_ref(gpu)).unwrap();
    let pass = plan.pass(2, plan.aggregation, plan.capacity, g.offsets());
    let mut rec = RecoveryReport::default();
    Executor::new(gpu)
        .run(&pass, PassInput::of(g), family, &mut rec, Sink::Gather)
        .unwrap();
}

fn graph() -> Csr {
    let sizes = PlantedConfig::zipf_groups(8_000, 4, 400, 1.4, 3);
    planted_partition(&PlantedConfig {
        group_sizes: sizes,
        n_noise_vertices: 2_000,
        p_intra: 0.8,
        max_intra_degree: 60.0,
        inter_edges_per_vertex: 0.1,
        seed: 3,
    })
    .graph
}

fn bench_pass(c: &mut Criterion) {
    let g = graph();
    let family = HashFamily::new(20, 7);
    let elements = 2 * g.m() * family.len();
    let mut grp = c.benchmark_group("shingle_pass_c20_s2");
    grp.throughput(Throughput::Elements(elements as u64));
    grp.sample_size(10);
    grp.bench_function("serial", |b| b.iter(|| shingle_pass(&g, 2, &family)));
    grp.bench_function("serial_streaming", |b| {
        b.iter(|| {
            let mut sink = 0u64;
            shingle_pass_foreach(&g, 2, &family, |_, _, p| sink ^= p[0]);
            sink
        })
    });
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    grp.bench_function("device", |b| {
        b.iter(|| device_pass(&gpu, &g, &family, ShingleKernel::SortCompact))
    });
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    grp.bench_function("device_fused_select", |b| {
        b.iter(|| device_pass(&gpu, &g, &family, ShingleKernel::FusedSelect))
    });
    grp.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let g = graph();
    let family = HashFamily::new(20, 7);
    let raw = shingle_pass(&g, 2, &family);
    let mut grp = c.benchmark_group("aggregation");
    grp.throughput(Throughput::Elements(raw.len() as u64));
    grp.sample_size(10);
    grp.bench_function("grouped_fast_path", |b| b.iter(|| aggregate(&raw)));
    // Ungrouped (generic) path for comparison: same records, merge sort on.
    let mut ungrouped = gpclust_core::shingle::RawShingles::new(2);
    ungrouped.append(&raw);
    grp.bench_function("generic_path", |b| b.iter(|| aggregate(&ungrouped)));
    grp.bench_function("stream_aggregator", |b| {
        b.iter(|| {
            let mut agg = StreamAggregator::new(2);
            shingle_pass_foreach(&g, 2, &family, |t, n, p| agg.push(t, n, p));
            agg.finish()
        })
    });
    grp.finish();
}

criterion_group!(benches, bench_pass, bench_aggregation);
criterion_main!(benches);
