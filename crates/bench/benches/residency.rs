//! Device-resident passes — the components-residency axis
//! (`ComponentsMode::Device`): on top of the device-aggregation offload
//! (`aggregate_offload.rs`), the host k-way merge of the device-sorted
//! runs is replaced by the on-card shingle-graph *inversion* kernel, and
//! Phase III's streamed union–find by the GPU hooking + pointer-jumping
//! connected-components kernel. Records never round-trip through a
//! host-side sort or a host-side cluster merge; the only CPU work left on
//! the critical path is packing the Phase-III union edges as the pass-II
//! records stream off the card.
//!
//! Two measurements:
//!
//! 1. **Criterion wall-clock** of `GpClust::cluster` under both
//!    `ComponentsMode`s on the same graph (results are bit-identical by
//!    contract; see `crates/core/tests/plan_properties.rs`).
//! 2. **Modeled end-to-end seconds** on the Tesla K20 preset for the
//!    Table-I-shaped 20K workload and a batch-splitting 2M-like one —
//!    both passes plus Phase III, computed in closed form from the
//!    simulator's own cost model plus documented host-throughput
//!    constants — written via [`gpclust_bench::write_report`] to
//!    `crates/bench/reports/BENCH_residency.json` and mirrored to the
//!    repo root. `BENCH_aggregate.json`'s ~2.3–2.7% pipelined CPU share
//!    covered pass-I aggregation only; once Phase III's union–find is on
//!    the clock the host share is several times larger, and full device
//!    residency pushes it **below 1%** at the 2M scale.

use criterion::{criterion_group, Criterion};
use gpclust_core::batch::batch_capacity;
use gpclust_core::{AggregationMode, ComponentsMode, GpClust, ShingleKernel, ShinglingParams};
use gpclust_gpu::thrust::cc_sweep_estimate;
use gpclust_gpu::{DeviceConfig, Gpu, KernelCost};
use gpclust_graph::generate::{planted_partition, PlantedConfig};
use gpclust_graph::Csr;
use serde::Serialize;

/// Shingle size of both modeled passes (the paper's default `s1 = s2`).
const S: usize = 2;

/// Streaming k-way merge throughput, records/second (see
/// `aggregate_offload.rs` — the CPU work the inversion kernel removes).
const HOST_MERGE_REC_PER_S: f64 = 2.5e8;

/// Union–find fold throughput, edges/second.
///
/// Path-halving find + union is a pointer chase per edge — random access
/// into an n-vertex parent array that misses LLC at the 2M scale — at
/// roughly 10 ns/edge on the 2013-era host. This is the Phase-III CPU
/// work the pointer-jumping kernel removes.
const HOST_UNION_EDGES_PER_S: f64 = 1.0e8;

/// Union-edge packing throughput, edges/second.
///
/// The residual host work under full device residency: a tight loop
/// pushing one packed `(anchor << 32) | v` u64 per record pair — a
/// sequential ~5 GB/s append, no random access.
const HOST_EDGE_EMIT_PER_S: f64 = 6.0e8;

fn graph() -> Csr {
    planted_partition(&PlantedConfig {
        group_sizes: PlantedConfig::zipf_groups(4_000, 4, 200, 1.4, 19),
        n_noise_vertices: 1_000,
        p_intra: 0.8,
        max_intra_degree: 50.0,
        inter_edges_per_vertex: 0.1,
        seed: 19,
    })
    .graph
}

fn bench_components(c: &mut Criterion) {
    let g = graph();
    let mut grp = c.benchmark_group("phase3_components");
    grp.sample_size(10);
    for (name, components) in [
        ("host_union_find", ComponentsMode::Host),
        ("device_pointer_jumping", ComponentsMode::Device),
    ] {
        grp.bench_function(name, |b| {
            let pipeline = GpClust::new(
                ShinglingParams::light(19)
                    .with_aggregation(AggregationMode::Device)
                    .with_components(components),
                Gpu::new(DeviceConfig::tesla_k20()),
            )
            .unwrap();
            b.iter(|| pipeline.cluster(&g).unwrap())
        });
    }
    grp.finish();
}

/// One modeled shingling pass: `n_elements` adjacency elements over
/// `n_segments` lists, `trials` hash rounds, one s-pair record per
/// (trial, segment).
struct PassShape {
    n_elements: usize,
    trials: usize,
    n_segments: usize,
}

impl PassShape {
    fn n_records(&self) -> usize {
        self.trials * self.n_segments
    }
}

/// A full pipeline workload: pass I over the input graph, pass II over
/// the first-level shingle graph, Phase III over the pass-II records.
struct Workload {
    label: &'static str,
    /// Input-graph vertices (the Phase-III union–find / CC vertex range).
    n_vertices: usize,
    pass1: PassShape,
    pass2: PassShape,
}

impl Workload {
    /// Phase-III union edges: each pass-II record chains its `s` second-
    /// level elements and the `s` elements of its generator through one
    /// anchor — `2s - 1` packed edges per record.
    fn n_union_edges(&self) -> usize {
        self.pass2.n_records() * (2 * S - 1)
    }
}

/// Closed-form schedule of one shingling pass (SortCompact kernel, same
/// shape as `aggregate_offload.rs`): per batch one upload, `trials`
/// kernel rounds each downloading its top-s pairs.
#[derive(Debug, Serialize)]
struct BasePass {
    n_batches: usize,
    serialized_s: f64,
    pipelined_s: f64,
}

fn model_base(gpu: &Gpu, aggregation: AggregationMode, shape: &PassShape) -> BasePass {
    let capacity = batch_capacity(gpu.mem_available(), ShingleKernel::SortCompact, aggregation);
    let n_batches = shape.n_elements.div_ceil(capacity);
    let batch_elems = shape.n_elements.div_ceil(n_batches);
    let out_per_batch = (shape.n_segments * S).div_ceil(n_batches);
    let h2d = gpu.model_transfer_seconds(batch_elems * 4);
    let kernels = gpu.model_kernel_seconds(batch_elems, &KernelCost::transform())
        + gpu.model_kernel_seconds(batch_elems, &KernelCost::segmented_sort())
        + gpu.model_kernel_seconds(out_per_batch, &KernelCost::gather());
    let d2h = gpu.model_transfer_seconds(out_per_batch * 8);
    let (b, t) = (n_batches as f64, shape.trials as f64);
    BasePass {
        n_batches,
        serialized_s: b * (h2d + t * (kernels + d2h)),
        pipelined_s: b * (h2d + t * kernels + d2h),
    }
}

/// The pass-I device-aggregation extras (pack + pair radix sort kernels,
/// staged column up + sorted runs down) — identical arithmetic to
/// `aggregate_offload.rs`.
fn model_device_agg(gpu: &Gpu, r: usize) -> (f64, f64) {
    let kernels = gpu.model_kernel_seconds(r, &KernelCost::transform())
        + gpu.model_kernel_seconds(r, &KernelCost::pair_sort());
    let transfers =
        gpu.model_transfer_seconds(r * 4 * (S + 2)) + gpu.model_transfer_seconds(r * (16 + 4 * S));
    (kernels, transfers)
}

/// The device inversion of `r` sorted records into the CSR shingle graph:
/// boundary flags, two exclusive scans, and the gather of keys/elements/
/// generator ids (`thrust::invert_sorted_runs`'s single-run shape).
fn model_inversion(gpu: &Gpu, r: usize) -> f64 {
    3.0 * gpu.model_kernel_seconds(r, &KernelCost::transform())
        + gpu.model_kernel_seconds(r, &KernelCost::gather())
}

/// The hooking + pointer-jumping components kernel over `n` vertices and
/// `m` directed edges: symmetrize + edge radix sort + offsets + label
/// sequence, then `cc_sweep_estimate(n)` sweeps over `2m + n` touched
/// elements (`thrust::connected_components`'s schedule).
fn model_cc(gpu: &Gpu, n: usize, m: usize) -> f64 {
    let setup = gpu.model_kernel_seconds(2 * m, &KernelCost::transform())
        + gpu.model_kernel_seconds(2 * m, &KernelCost::pair_sort())
        + gpu.model_kernel_seconds(2 * m, &KernelCost::transform())
        + gpu.model_kernel_seconds(n, &KernelCost::transform());
    let sweeps = cc_sweep_estimate(n) as f64
        * gpu.model_kernel_seconds(2 * m + n, &KernelCost::cc_iteration());
    setup + sweeps
}

#[derive(Debug, Serialize)]
struct ResidencyModel {
    components: String,
    /// Host CPU seconds on the critical path (k-way merge + union–find
    /// fold under host components; union-edge packing under device).
    cpu_s: f64,
    /// Device seconds added beyond the shared base + aggregation kernels
    /// (inversion + components kernels; 0 under host components).
    residency_kernels_s: f64,
    /// Bus seconds added by the Phase-III edge upload + label download
    /// (0 under host components).
    residency_transfer_s: f64,
    end_to_end_serialized_s: f64,
    end_to_end_pipelined_s: f64,
    cpu_share_serialized_pct: f64,
    cpu_share_pipelined_pct: f64,
}

fn model_residency(gpu: &Gpu, components: ComponentsMode, w: &Workload) -> ResidencyModel {
    // Shared schedule: pass I under device aggregation (the
    // `aggregate_offload.rs` winner), pass II streaming host-mode records
    // (its output feeds Phase III, not a sort).
    let base1 = model_base(gpu, AggregationMode::Device, &w.pass1);
    let base2 = model_base(gpu, AggregationMode::Host, &w.pass2);
    let (agg_kernels, agg_transfers) = model_device_agg(gpu, w.pass1.n_records());
    let serialized = base1.serialized_s + base2.serialized_s + agg_kernels + agg_transfers;
    let pipelined = base1.pipelined_s + base2.pipelined_s + agg_kernels;

    let m = w.n_union_edges();
    let (cpu_s, residency_kernels_s, residency_transfer_s) = match components {
        // Status quo: host k-way merge of the pass-I runs, host union–find
        // fold of the pass-II record stream.
        ComponentsMode::Host => (
            w.pass1.n_records() as f64 / HOST_MERGE_REC_PER_S + m as f64 / HOST_UNION_EDGES_PER_S,
            0.0,
            0.0,
        ),
        // Device-resident: the merge becomes the inversion kernel, the
        // union–find becomes the CC kernel; the host only packs edges.
        // Phase III runs at finish time, after the last batch — nothing
        // left to hide it behind, so its kernels and transfers extend
        // both schedules.
        ComponentsMode::Device => (
            m as f64 / HOST_EDGE_EMIT_PER_S,
            model_inversion(gpu, w.pass1.n_records()) + model_cc(gpu, w.n_vertices, m),
            gpu.model_transfer_seconds(m * 8) + gpu.model_transfer_seconds(w.n_vertices * 4),
        ),
    };
    let end_to_end_serialized_s = serialized + residency_kernels_s + residency_transfer_s + cpu_s;
    let end_to_end_pipelined_s = pipelined + residency_kernels_s + residency_transfer_s + cpu_s;
    ResidencyModel {
        components: format!("{components:?}"),
        cpu_s,
        residency_kernels_s,
        residency_transfer_s,
        cpu_share_serialized_pct: 100.0 * cpu_s / end_to_end_serialized_s,
        cpu_share_pipelined_pct: 100.0 * cpu_s / end_to_end_pipelined_s,
        end_to_end_serialized_s,
        end_to_end_pipelined_s,
    }
}

#[derive(Debug, Serialize)]
struct ScaleReport {
    label: String,
    n_vertices: usize,
    n_union_edges: usize,
    cc_sweeps: usize,
    host: ResidencyModel,
    device: ResidencyModel,
    /// Positive = device-resident shortens the pipelined end-to-end. The
    /// offload's target is the CPU column, not the makespan — the
    /// finish-time CC kernels run after the last batch with nothing to
    /// hide behind, so a small negative delta is the accepted price for
    /// freeing the host.
    pipelined_delta_pct: f64,
    cpu_share_drop_pts: f64,
}

fn model_scale(gpu: &Gpu, w: &Workload) -> ScaleReport {
    let host = model_residency(gpu, ComponentsMode::Host, w);
    let device = model_residency(gpu, ComponentsMode::Device, w);
    let report = ScaleReport {
        label: w.label.to_string(),
        n_vertices: w.n_vertices,
        n_union_edges: w.n_union_edges(),
        cc_sweeps: cc_sweep_estimate(w.n_vertices),
        pipelined_delta_pct: (1.0 - device.end_to_end_pipelined_s / host.end_to_end_pipelined_s)
            * 100.0,
        cpu_share_drop_pts: host.cpu_share_pipelined_pct - device.cpu_share_pipelined_pct,
        host,
        device,
    };
    assert!(
        report.device.cpu_s < report.host.cpu_s,
        "[{}] edge packing must undercut the merge + union-find",
        report.label
    );
    assert!(
        report.device.cpu_share_pipelined_pct < report.host.cpu_share_pipelined_pct,
        "[{}] the CPU column's share must drop",
        report.label
    );
    report
}

#[derive(Debug, Serialize)]
struct ResidencyReport {
    device: String,
    note: String,
    host_merge_rec_per_s: f64,
    host_union_edges_per_s: f64,
    host_edge_emit_per_s: f64,
    scale_20k: ScaleReport,
    scale_2m_like: ScaleReport,
}

/// Model the two Table I scales with Phase III on the clock and write the
/// host-vs-device components comparison.
fn write_modeled_report() {
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let report = ResidencyReport {
        device: gpu.config().name.clone(),
        note: "closed-form schedule model; generated by the arithmetic in \
               crates/bench/benches/residency.rs (write_modeled_report)"
            .to_string(),
        host_merge_rec_per_s: HOST_MERGE_REC_PER_S,
        host_union_edges_per_s: HOST_UNION_EDGES_PER_S,
        host_edge_emit_per_s: HOST_EDGE_EMIT_PER_S,
        scale_20k: model_scale(
            &gpu,
            &Workload {
                label: "20K",
                n_vertices: 20_000,
                pass1: PassShape {
                    n_elements: 4_000_000,
                    trials: 200,
                    n_segments: 20_000,
                },
                pass2: PassShape {
                    n_elements: 1_000_000,
                    trials: 100,
                    n_segments: 40_000,
                },
            },
        ),
        scale_2m_like: model_scale(
            &gpu,
            &Workload {
                label: "2M-like",
                n_vertices: 2_000_000,
                pass1: PassShape {
                    n_elements: 400_000_000,
                    trials: 200,
                    n_segments: 2_000_000,
                },
                pass2: PassShape {
                    n_elements: 100_000_000,
                    trials: 100,
                    n_segments: 1_000_000,
                },
            },
        ),
    };
    assert!(
        report.scale_2m_like.device.cpu_share_pipelined_pct < 1.0,
        "full device residency must push the 2M pipelined CPU share below 1% \
         (got {:.2}%)",
        report.scale_2m_like.device.cpu_share_pipelined_pct
    );
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = gpclust_bench::write_report("BENCH_residency.json", &json);
    for s in [&report.scale_20k, &report.scale_2m_like] {
        eprintln!(
            "[{}] modeled K20 end-to-end pipelined: host-components {:.4}s \
             (CPU share {:.2}%) -> device-resident {:.4}s (CPU share {:.2}%, \
             {:.1} pts down, {} CC sweeps)",
            s.label,
            s.host.end_to_end_pipelined_s,
            s.host.cpu_share_pipelined_pct,
            s.device.end_to_end_pipelined_s,
            s.device.cpu_share_pipelined_pct,
            s.cpu_share_drop_pts,
            s.cc_sweeps
        );
    }
    eprintln!("written to {path:?}");
}

criterion_group!(benches, bench_components);

fn main() {
    write_modeled_report();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
