//! Benchmarks of the graph substrate: CSR construction, connected
//! components (both algorithms), union–find, and the GOS baseline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gpclust_core::{kneighbor_clusters, kneighbor_clusters_adjacent};
use gpclust_graph::components::{bfs_components, union_components};
use gpclust_graph::generate::{planted_partition, random_graph, PlantedConfig};
use gpclust_graph::{Csr, EdgeList, UnionFind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_csr_build(c: &mut Criterion) {
    let n = 50_000;
    let m = 500_000;
    let mut rng = StdRng::seed_from_u64(1);
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
        .collect();
    let mut g = c.benchmark_group("csr_build");
    g.throughput(Throughput::Elements(m as u64));
    g.sample_size(10);
    g.bench_function("from_500k_edges", |b| {
        b.iter_batched(
            || edges.iter().copied().collect::<EdgeList>(),
            |mut el| Csr::from_edges(n, &mut el),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_components(c: &mut Criterion) {
    let g = random_graph(50_000, 200_000, 2);
    let edges: Vec<(u32, u32)> = (0..g.n() as u32)
        .flat_map(|v| {
            g.neighbors(v)
                .iter()
                .filter(move |&&u| u > v)
                .map(move |&u| (v, u))
        })
        .collect();
    let mut grp = c.benchmark_group("connected_components");
    grp.throughput(Throughput::Elements(g.m() as u64));
    grp.sample_size(10);
    grp.bench_function("bfs", |b| b.iter(|| bfs_components(&g)));
    grp.bench_function("union_find_stream", |b| {
        b.iter(|| union_components(g.n(), edges.iter().copied()))
    });
    grp.finish();
}

fn bench_union_find(c: &mut Criterion) {
    let n = 1_000_000usize;
    let mut rng = StdRng::seed_from_u64(3);
    let ops: Vec<(u32, u32)> = (0..n)
        .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
        .collect();
    let mut g = c.benchmark_group("union_find");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.bench_function("1M_random_unions", |b| {
        b.iter_batched(
            || UnionFind::new(n),
            |mut uf| {
                for &(a, x) in &ops {
                    uf.union(a, x);
                }
                uf.n_sets()
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_gos_baseline(c: &mut Criterion) {
    let pg = planted_partition(&PlantedConfig {
        group_sizes: PlantedConfig::zipf_groups(8_000, 4, 300, 1.4, 4),
        n_noise_vertices: 2_000,
        p_intra: 0.7,
        max_intra_degree: 50.0,
        inter_edges_per_vertex: 0.2,
        seed: 4,
    });
    let mut grp = c.benchmark_group("gos_baseline_k10");
    grp.throughput(Throughput::Elements(pg.graph.m() as u64));
    grp.sample_size(10);
    grp.bench_function("snn_pairs", |b| {
        b.iter(|| kneighbor_clusters(&pg.graph, 10))
    });
    grp.bench_function("edge_restricted", |b| {
        b.iter(|| kneighbor_clusters_adjacent(&pg.graph, 10))
    });
    grp.finish();
}

criterion_group!(
    benches,
    bench_csr_build,
    bench_components,
    bench_union_find,
    bench_gos_baseline
);
criterion_main!(benches);
