//! Microbenchmarks of the min-wise machinery — the inner loop the paper
//! profiles at ~80 % of serial runtime ("hashing and sorting operations").

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gpclust_core::minwise::{hash_with, HashFamily, TopS};
use gpclust_core::shingle::shingle_key;

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("minwise_hash");
    let family = HashFamily::new(1, 7);
    let (a, b) = family.coeffs(0);
    let values: Vec<u32> = (0..4096u32).map(|i| i.wrapping_mul(2654435761)).collect();
    g.throughput(Throughput::Elements(values.len() as u64));
    g.bench_function("hash_4096_elements", |bench| {
        bench.iter(|| {
            let mut acc = 0u64;
            for &v in &values {
                acc ^= hash_with(a, b, black_box(v)) as u64;
            }
            acc
        })
    });
    g.finish();
}

fn bench_top_s(c: &mut Criterion) {
    let mut g = c.benchmark_group("top_s_selection");
    let values: Vec<u64> = (0..4096u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
        .collect();
    for s in [2usize, 4, 8] {
        g.throughput(Throughput::Elements(values.len() as u64));
        g.bench_function(format!("insertion_buffer_s{s}"), |bench| {
            let mut top = TopS::new(s);
            bench.iter(|| {
                top.clear();
                for &v in &values {
                    top.push(black_box(v));
                }
                top.as_slice()[0]
            })
        });
        // The paper's design choice: s-sized insertion buffer instead of a
        // full sort + truncate. This is the comparison that justifies it.
        g.bench_function(format!("full_sort_truncate_s{s}"), |bench| {
            bench.iter(|| {
                let mut v = values.clone();
                v.sort_unstable();
                v.truncate(s);
                v[0]
            })
        });
    }
    g.finish();
}

fn bench_shingle_key(c: &mut Criterion) {
    c.bench_function("shingle_key_s2", |bench| {
        bench.iter(|| shingle_key(black_box(3), [black_box(123), black_box(456)]))
    });
}

criterion_group!(benches, bench_hash, bench_top_s, bench_shingle_key);
criterion_main!(benches);
