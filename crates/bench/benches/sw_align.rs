//! Benchmarks of the alignment substrate: Smith–Waterman cell rate (the
//! figure of merit for alignment kernels), banded variant, traceback, and
//! the k-mer candidate filter.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpclust_align::banded::BandedSw;
use gpclust_align::filter::{candidate_pairs, FilterConfig};
use gpclust_align::matrix::SubstitutionMatrix;
use gpclust_align::sw::{GapPenalties, SmithWaterman, Workspace};
use gpclust_seqsim::alphabet::BackgroundSampler;
use gpclust_seqsim::metagenome::{Metagenome, MetagenomeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn seqs(len: usize, n: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(9);
    let bg = BackgroundSampler::new();
    (0..n).map(|_| bg.sample_seq(&mut rng, len)).collect()
}

fn bench_sw_score(c: &mut Criterion) {
    let pairs = seqs(150, 20);
    let sw = SmithWaterman::protein_default();
    let cells = 150u64 * 150 * 10;
    let mut g = c.benchmark_group("smith_waterman");
    g.throughput(Throughput::Elements(cells));
    g.bench_function("score_only_150x150_x10", |b| {
        let mut ws = Workspace::new();
        b.iter(|| {
            let mut acc = 0i32;
            for i in 0..10 {
                acc += sw.score_with(&mut ws, &pairs[i], &pairs[i + 10]);
            }
            acc
        })
    });
    g.bench_function("full_traceback_150x150_x10", |b| {
        b.iter(|| {
            let mut acc = 0i32;
            for i in 0..10 {
                acc += sw.align(&pairs[i], &pairs[i + 10]).score;
            }
            acc
        })
    });
    g.finish();
}

fn bench_banded(c: &mut Criterion) {
    let pairs = seqs(400, 2);
    let banded = BandedSw::new(SubstitutionMatrix::blosum62(), GapPenalties::default(), 16);
    let full = SmithWaterman::protein_default();
    let mut g = c.benchmark_group("banded_vs_full_400aa");
    g.sample_size(30);
    g.bench_function("banded_w16", |b| {
        b.iter(|| banded.score(&pairs[0], &pairs[1], 0))
    });
    g.bench_function("full", |b| b.iter(|| full.score(&pairs[0], &pairs[1])));
    g.finish();
}

fn bench_kmer_filter(c: &mut Criterion) {
    let mg = Metagenome::generate(&MetagenomeConfig::tiny(2_000, 5));
    let views: Vec<&[u8]> = mg.proteins.iter().map(|p| p.residues.as_slice()).collect();
    let total: usize = views.iter().map(|v| v.len()).sum();
    let mut g = c.benchmark_group("kmer_filter");
    g.throughput(Throughput::Elements(total as u64));
    g.sample_size(10);
    g.bench_function("candidate_pairs_2k_seqs", |b| {
        b.iter(|| candidate_pairs(&views, &FilterConfig::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_sw_score, bench_banded, bench_kmer_filter);
criterion_main!(benches);
