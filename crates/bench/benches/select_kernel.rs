//! SortCompact vs FusedSelect shingle kernels — the selection-not-sorting
//! optimisation (only the s smallest hashes per list survive, so the full
//! segmented sort does ~an order of magnitude more roofline work than a
//! per-segment top-s selection needs).
//!
//! Two measurements:
//!
//! 1. **Criterion wall-clock** of `GpClust::cluster` under both
//!    `ShingleKernel`s on the same graph (results are bit-identical by
//!    contract; see `tests/select_properties.rs`).
//! 2. **Modeled device seconds** on the Tesla K20 preset for a
//!    Table-I-shaped workload and a batch-splitting 400M-element one,
//!    computed in closed form from the simulator's own cost model and
//!    written to `<report_dir>/BENCH_select.json`. The checked-in copy at
//!    the repo root was produced with exactly this arithmetic. The fused
//!    kernel wins twice: each element is cheaper, and the 8 B/elem
//!    footprint (vs 16 B/elem with the packed sort workspace) doubles
//!    `batch_capacity`, halving the batch count on oversized inputs.

use criterion::{criterion_group, Criterion};
use gpclust_core::batch::{batch_capacity, bytes_per_elem};
use gpclust_core::{AggregationMode, GpClust, ShingleKernel, ShinglingParams};
use gpclust_gpu::{DeviceConfig, Gpu, KernelCost};
use gpclust_graph::generate::{planted_partition, PlantedConfig};
use gpclust_graph::Csr;
use serde::Serialize;

fn graph() -> Csr {
    planted_partition(&PlantedConfig {
        group_sizes: PlantedConfig::zipf_groups(4_000, 4, 200, 1.4, 13),
        n_noise_vertices: 1_000,
        p_intra: 0.8,
        max_intra_degree: 50.0,
        inter_edges_per_vertex: 0.1,
        seed: 13,
    })
    .graph
}

fn bench_kernels(c: &mut Criterion) {
    let g = graph();
    let mut grp = c.benchmark_group("shingle_kernel");
    grp.sample_size(10);
    for (name, kernel) in [
        ("sort_compact", ShingleKernel::SortCompact),
        ("fused_select", ShingleKernel::FusedSelect),
    ] {
        grp.bench_function(name, |b| {
            let pipeline = GpClust::new(
                ShinglingParams::light(13).with_kernel(kernel),
                Gpu::new(DeviceConfig::tesla_k20()),
            )
            .unwrap();
            b.iter(|| pipeline.cluster(&g).unwrap())
        });
    }
    grp.finish();
}

#[derive(Debug, Serialize)]
struct PassModel {
    kernel: String,
    n_elements: usize,
    trials: usize,
    out_elements: usize,
    capacity_elems: usize,
    elem_footprint_bytes: usize,
    n_batches: usize,
    h2d_s: f64,
    kernels_s: f64,
    d2h_s: f64,
    serialized_s: f64,
    pipelined_s: f64,
}

/// Closed-form schedule model of one shingling pass on `gpu` under
/// `kernel`. The input is split into `ceil(n / batch_capacity)` equal
/// batches; each batch is one upload, `trials` kernel rounds, and one
/// top-s download per trial (same shape as `overlap.rs`, batched):
///
/// * per-batch kernels — SortCompact: transform + segmented sort over the
///   batch plus a gather over its share of the output; FusedSelect: a
///   single fused `segmented_select` launch over the batch.
/// * serialized (Thrust 1.5): `Σ_b h2d_b + trials·(kernels_b + d2h_b)`
/// * pipelined (streams): `Σ_b h2d_b + trials·kernels_b + d2h_b` — every
///   D2H except a batch's last hides behind the next round's kernels.
fn model_pass(
    gpu: &Gpu,
    kernel: ShingleKernel,
    n_elements: usize,
    trials: usize,
    out_elements: usize,
) -> PassModel {
    let capacity = batch_capacity(gpu.mem_available(), kernel, AggregationMode::Host);
    let n_batches = n_elements.div_ceil(capacity);
    let batch_elems = n_elements.div_ceil(n_batches);
    let out_per_batch = out_elements.div_ceil(n_batches);
    let h2d = gpu.model_transfer_seconds(batch_elems * 4);
    let kernels = match kernel {
        ShingleKernel::SortCompact => {
            gpu.model_kernel_seconds(batch_elems, &KernelCost::transform())
                + gpu.model_kernel_seconds(batch_elems, &KernelCost::segmented_sort())
                + gpu.model_kernel_seconds(out_per_batch, &KernelCost::gather())
        }
        ShingleKernel::FusedSelect => {
            gpu.model_kernel_seconds(batch_elems, &KernelCost::segmented_select())
        }
    };
    let d2h = gpu.model_transfer_seconds(out_per_batch * 8);
    let b = n_batches as f64;
    let t = trials as f64;
    PassModel {
        kernel: format!("{kernel:?}"),
        n_elements,
        trials,
        out_elements,
        capacity_elems: capacity,
        elem_footprint_bytes: bytes_per_elem(kernel, AggregationMode::Host),
        n_batches,
        h2d_s: b * h2d,
        kernels_s: b * t * kernels,
        d2h_s: b * t * d2h,
        serialized_s: b * (h2d + t * (kernels + d2h)),
        pipelined_s: b * (h2d + t * kernels + d2h),
    }
}

#[derive(Debug, Serialize)]
struct KernelTotals {
    kernel: String,
    n_batches: usize,
    device_serialized_s: f64,
    device_pipelined_s: f64,
}

fn totals(passes: &[&PassModel]) -> KernelTotals {
    KernelTotals {
        kernel: passes[0].kernel.clone(),
        n_batches: passes.iter().map(|p| p.n_batches).sum(),
        device_serialized_s: passes.iter().map(|p| p.serialized_s).sum(),
        device_pipelined_s: passes.iter().map(|p| p.pipelined_s).sum(),
    }
}

#[derive(Debug, Serialize)]
struct SelectReport {
    device: String,
    note: String,
    sort_pass1: PassModel,
    sort_pass2: PassModel,
    select_pass1: PassModel,
    select_pass2: PassModel,
    sort: KernelTotals,
    select: KernelTotals,
    serialized_improvement_pct: f64,
    pipelined_improvement_pct: f64,
}

/// Model a 400M-element pass I (the only shape that exceeds the K20's
/// sort-path `batch_capacity` of 268,435,456 elems at 5 GiB — the select
/// path's 536,870,912-elem capacity holds it in one batch) plus a paper's
/// 20K-workload-scaled pass II, and write the per-kernel comparison.
fn write_modeled_report() {
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let sort_pass1 = model_pass(
        &gpu,
        ShingleKernel::SortCompact,
        400_000_000,
        200,
        4_000_000,
    );
    let sort_pass2 = model_pass(
        &gpu,
        ShingleKernel::SortCompact,
        100_000_000,
        100,
        6_000_000,
    );
    let select_pass1 = model_pass(
        &gpu,
        ShingleKernel::FusedSelect,
        400_000_000,
        200,
        4_000_000,
    );
    let select_pass2 = model_pass(
        &gpu,
        ShingleKernel::FusedSelect,
        100_000_000,
        100,
        6_000_000,
    );
    let sort = totals(&[&sort_pass1, &sort_pass2]);
    let select = totals(&[&select_pass1, &select_pass2]);
    let report = SelectReport {
        device: gpu.config().name.clone(),
        note: "closed-form schedule model; BENCH_select.json at the repo root \
               is generated from the same arithmetic"
            .to_string(),
        serialized_improvement_pct: (1.0 - select.device_serialized_s / sort.device_serialized_s)
            * 100.0,
        pipelined_improvement_pct: (1.0 - select.device_pipelined_s / sort.device_pipelined_s)
            * 100.0,
        sort_pass1,
        sort_pass2,
        select_pass1,
        select_pass2,
        sort,
        select,
    };
    assert!(
        report.select.device_serialized_s < report.sort.device_serialized_s,
        "fused select must shorten the modeled serialized device path"
    );
    assert!(
        report.select.device_pipelined_s < report.sort.device_pipelined_s,
        "fused select must shorten the modeled stream makespan"
    );
    assert!(
        report.select.n_batches < report.sort.n_batches,
        "the halved footprint must reduce the batch count at equal capacity"
    );
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = gpclust_bench::write_report("BENCH_select.json", &json);
    eprintln!(
        "modeled K20 device path: sort {:.4}s / {} batches -> select {:.4}s / {} batches \
         ({:.1}% shorter serialized, {:.1}% shorter makespan); written to {:?}",
        report.sort.device_serialized_s,
        report.sort.n_batches,
        report.select.device_serialized_s,
        report.select.n_batches,
        report.serialized_improvement_pct,
        report.pipelined_improvement_pct,
        path
    );
}

criterion_group!(benches, bench_kernels);

fn main() {
    write_modeled_report();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
