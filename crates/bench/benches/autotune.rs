//! Plan autotuning and heterogeneous work partitioning — the cost-model
//! argmin behind `--plan auto` (`gpclust_core::autotune`), priced over
//! full fleets instead of re-deriving per-bench arithmetic like
//! `aggregate_offload.rs`/`residency.rs` did.
//!
//! Two measurements:
//!
//! 1. **Criterion wall-clock** of `GpClust::cluster` under a manual plan
//!    and under `--plan auto` on the same graph: the argmin runs once per
//!    `cluster` call, so the selection overhead must vanish into the run
//!    (clusters are bit-identical by contract; see
//!    `crates/core/tests/plan_properties.rs`).
//! 2. **Modeled makespans** from the autotuner's own predictor for every
//!    point of the 16-way axis cross-product, on two fleets × two
//!    Table-I-shaped scales, written via [`gpclust_bench::write_report`]
//!    to `crates/bench/reports/BENCH_autotune.json` (mirrored at the repo
//!    root). Device memory is capped at 256 MiB so the passes split into
//!    enough batches for the dealing policy to matter — a 5 GB card
//!    swallows a whole pass in one batch, where every policy deals alike.
//!
//! The report asserts the two headline claims: the argmin's pick matches
//! the best manual combination exactly (it *is* the argmin over the same
//! predictor), and on the heterogeneous fleet capability-proportional
//! dealing beats uniform round-robin by a margin, because round-robin
//! gates every round on the half-bandwidth card.

use criterion::{criterion_group, Criterion};
use gpclust_core::autotune::{self, PassShape, PlanAxes, Sharing, WorkloadShape};
use gpclust_core::{ForcedAxes, GpClust, ShinglingParams};
use gpclust_gpu::{DeviceConfig, Gpu};
use gpclust_graph::generate::{planted_partition, PlantedConfig};
use gpclust_graph::Csr;

/// Shingle size of both modeled passes (the paper's default `s1 = s2`).
const S: usize = 2;

fn graph() -> Csr {
    planted_partition(&PlantedConfig {
        group_sizes: PlantedConfig::zipf_groups(4_000, 4, 200, 1.4, 23),
        n_noise_vertices: 1_000,
        p_intra: 0.8,
        max_intra_degree: 50.0,
        inter_edges_per_vertex: 0.1,
        seed: 23,
    })
    .graph
}

fn bench_autotune(c: &mut Criterion) {
    let g = graph();
    let mut grp = c.benchmark_group("plan_autotune");
    grp.sample_size(10);
    for (name, params) in [
        ("manual_default", ShinglingParams::light(23)),
        ("auto_argmin", ShinglingParams::light(23).with_plan_auto()),
    ] {
        grp.bench_function(name, |b| {
            let pipeline = GpClust::new(params, Gpu::new(DeviceConfig::tesla_k20())).unwrap();
            b.iter(|| pipeline.cluster(&g).unwrap())
        });
    }
    grp.finish();
}

/// A K20-class card with its memory capped to 256 MiB (see module docs).
fn capped(cfg: DeviceConfig) -> Gpu {
    Gpu::new(DeviceConfig {
        global_mem_bytes: 256 << 20,
        ..cfg
    })
}

/// One pass shape: `n_elements` adjacency elements over `n_segments`
/// lists, `trials` hash rounds.
fn pass(n_elements: usize, n_segments: usize, trials: usize) -> PassShape {
    PassShape {
        n_elements,
        n_segments,
        out_elements: (n_segments * S).min(n_elements),
        trials,
        s: S,
    }
}

/// A Table-I-shaped workload with both pass shapes given explicitly (the
/// residency bench's numbers). The in-pipeline autotuner estimates pass
/// II from pass I instead ([`WorkloadShape::from_input`]) — a deliberate
/// over-estimate that ranks the candidates the same way; this report
/// prices the realistic shapes so the absolute seconds mean something.
fn scale(n_vertices: usize, pass1: PassShape, pass2: PassShape) -> WorkloadShape {
    WorkloadShape {
        n_vertices,
        pass1,
        pass2,
        spilled_run_bytes: 0,
    }
}

#[derive(Debug)]
struct ComboRow {
    axes: String,
    predicted_s: f64,
    predicted_device_s: f64,
    n_batches: u64,
}

#[derive(Debug)]
struct FleetScaleReport {
    fleet: String,
    scale: String,
    combos: Vec<ComboRow>,
    /// The argmin's pick (always equals the best manual combination —
    /// asserted).
    auto_axes: String,
    auto_predicted_s: f64,
    best_manual_s: f64,
    worst_manual_s: f64,
    /// Modeled speedup of the argmin's pick over the worst manual
    /// combination — what `--plan auto` saves a user who guesses badly.
    auto_vs_worst_speedup: f64,
    /// Best-axes makespan under uniform round-robin dealing.
    round_robin_s: f64,
    /// … and under capability-proportional dealing.
    weighted_s: f64,
    /// Positive = weighted dealing wins (0 on uniform fleets, where the
    /// two policies deal identically).
    weighted_vs_round_robin_margin_pct: f64,
}

fn model_fleet_scale(
    fleet_label: &str,
    gpus: &[Gpu],
    scale_label: &str,
    w: &WorkloadShape,
) -> FleetScaleReport {
    let priced: Vec<(PlanAxes, autotune::Prediction)> = PlanAxes::all()
        .into_iter()
        .map(|axes| {
            let p = autotune::predict(axes, w, gpus, Sharing::Weighted)
                .expect("no device lost, prediction exists");
            (axes, p)
        })
        .collect();
    let best = priced
        .iter()
        .min_by(|a, b| a.1.seconds.total_cmp(&b.1.seconds))
        .unwrap();
    let worst = priced
        .iter()
        .max_by(|a, b| a.1.seconds.total_cmp(&b.1.seconds))
        .unwrap();

    // The argmin must land on the best manual combination — it ranks the
    // same 16 predictions.
    let params = ShinglingParams::paper_default(7);
    let selection = autotune::select(&params, ForcedAxes::default(), w, gpus)
        .expect("selection exists on a healthy fleet");
    assert_eq!(
        selection.axes, best.0,
        "[{fleet_label}/{scale_label}] auto must pick the best manual combo"
    );
    assert!(
        (selection.prediction.seconds - best.1.seconds).abs() <= 1e-12 * best.1.seconds.max(1.0),
        "[{fleet_label}/{scale_label}] auto's predicted makespan must equal the best manual's"
    );

    // Dealing policy at the winning axes: capability-proportional vs
    // uniform round-robin.
    let weighted = selection.prediction.seconds;
    let round_robin = autotune::predict(best.0, w, gpus, Sharing::RoundRobin)
        .expect("round-robin prediction exists")
        .seconds;

    FleetScaleReport {
        fleet: fleet_label.to_string(),
        scale: scale_label.to_string(),
        combos: priced
            .iter()
            .map(|(axes, p)| ComboRow {
                axes: axes.describe(),
                predicted_s: p.seconds,
                predicted_device_s: p.device_seconds,
                n_batches: p.n_batches,
            })
            .collect(),
        auto_axes: selection.axes.describe(),
        auto_predicted_s: weighted,
        best_manual_s: best.1.seconds,
        worst_manual_s: worst.1.seconds,
        auto_vs_worst_speedup: worst.1.seconds / best.1.seconds,
        round_robin_s: round_robin,
        weighted_s: weighted,
        weighted_vs_round_robin_margin_pct: (round_robin / weighted - 1.0) * 100.0,
    }
}

/// Render the report as literal JSON (every label is a fixed string,
/// every value a finite number), so the checked-in artifact regenerates
/// byte-for-byte regardless of which serializer the build links.
fn render_json(note: &str, runs: &[FleetScaleReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"note\": \"{note}\",\n"));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"fleet\": \"{}\",\n", r.fleet));
        out.push_str(&format!("      \"scale\": \"{}\",\n", r.scale));
        out.push_str("      \"combos\": [\n");
        for (j, c) in r.combos.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"axes\": \"{}\", \"predicted_s\": {:.6}, \
                 \"predicted_device_s\": {:.6}, \"n_batches\": {} }}{}\n",
                c.axes,
                c.predicted_s,
                c.predicted_device_s,
                c.n_batches,
                if j + 1 < r.combos.len() { "," } else { "" }
            ));
        }
        out.push_str("      ],\n");
        out.push_str(&format!("      \"auto_axes\": \"{}\",\n", r.auto_axes));
        out.push_str(&format!(
            "      \"auto_predicted_s\": {:.6},\n",
            r.auto_predicted_s
        ));
        out.push_str(&format!(
            "      \"best_manual_s\": {:.6},\n",
            r.best_manual_s
        ));
        out.push_str(&format!(
            "      \"worst_manual_s\": {:.6},\n",
            r.worst_manual_s
        ));
        out.push_str(&format!(
            "      \"auto_vs_worst_speedup\": {:.4},\n",
            r.auto_vs_worst_speedup
        ));
        out.push_str(&format!(
            "      \"round_robin_s\": {:.6},\n",
            r.round_robin_s
        ));
        out.push_str(&format!("      \"weighted_s\": {:.6},\n", r.weighted_s));
        out.push_str(&format!(
            "      \"weighted_vs_round_robin_margin_pct\": {:.4}\n",
            r.weighted_vs_round_robin_margin_pct
        ));
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn write_modeled_report() {
    let uniform = vec![
        capped(DeviceConfig::tesla_k20()),
        capped(DeviceConfig::tesla_k20()),
    ];
    let hetero = vec![
        capped(DeviceConfig::tesla_k20()),
        capped(DeviceConfig::tesla_k20_half_bandwidth()),
    ];
    // The residency bench's Table-I shapes: the 20K alignment graph and
    // the 2M-like planted graph at the paper's default trial counts.
    let w20k = scale(
        20_000,
        pass(4_000_000, 20_000, 200),
        pass(1_000_000, 40_000, 100),
    );
    let w2m = scale(
        2_000_000,
        pass(400_000_000, 2_000_000, 200),
        pass(100_000_000, 1_000_000, 100),
    );

    let mut runs = Vec::new();
    for (fleet_label, gpus) in [
        ("2x K20 (256 MiB)", &uniform),
        ("K20 + half-bandwidth K20 (256 MiB)", &hetero),
    ] {
        for (scale_label, w) in [("20K", &w20k), ("2M-like", &w2m)] {
            runs.push(model_fleet_scale(fleet_label, gpus, scale_label, w));
        }
    }

    // Headline claims. On the uniform fleet the two dealing policies are
    // one and the same; on the heterogeneous fleet proportional shares
    // must beat round-robin with a real margin at the batch-rich 2M
    // scale (round-robin gates every round on the half-bandwidth card).
    for r in &runs {
        if r.fleet.starts_with("2x") {
            assert!(
                r.weighted_vs_round_robin_margin_pct.abs() < 1e-9,
                "[{}/{}] uniform fleets deal identically either way",
                r.fleet,
                r.scale
            );
        } else {
            // Weighted dealing must never lose to round-robin; at the
            // 20K scale the capped cards still fit each pass in a batch
            // or two, so the deals can coincide — the decisive win is
            // asserted below at the batch-rich 2M-like scale.
            assert!(
                r.weighted_vs_round_robin_margin_pct >= -1e-9,
                "[{}/{}] weighted dealing must never lose to round-robin",
                r.fleet,
                r.scale
            );
        }
        assert!(r.auto_vs_worst_speedup >= 1.0);
    }
    let margin_2m = runs
        .iter()
        .find(|r| !r.fleet.starts_with("2x") && r.scale == "2M-like")
        .unwrap()
        .weighted_vs_round_robin_margin_pct;
    assert!(
        margin_2m >= 5.0,
        "heterogeneous 2M-like margin must be substantial, got {margin_2m:.2}%"
    );

    let json = render_json(
        "autotuner-predicted makespans (gpclust_core::autotune::predict) for all 16 \
         schedule-axis combinations on two fleets x two Table-I scales; generated by \
         crates/bench/benches/autotune.rs (write_modeled_report)",
        &runs,
    );
    let path = gpclust_bench::write_report("BENCH_autotune.json", &json);
    for r in &runs {
        eprintln!(
            "[{} / {}] auto -> {} @ {:.4}s (worst manual {:.4}s, {:.2}x saved); \
             round-robin {:.4}s vs weighted {:.4}s ({:+.1}%)",
            r.fleet,
            r.scale,
            r.auto_axes,
            r.auto_predicted_s,
            r.worst_manual_s,
            r.auto_vs_worst_speedup,
            r.round_robin_s,
            r.weighted_s,
            r.weighted_vs_round_robin_margin_pct
        );
    }
    eprintln!("written to {path:?}");
}

criterion_group!(benches, bench_autotune);

#[allow(clippy::default_constructed_unit_structs)] // unit only in the criterion stub
fn main() {
    write_modeled_report();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
