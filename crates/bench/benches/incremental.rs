//! Incremental clustering — delta passes against full reclusters
//! (`gpclust_core::incremental`), the refresh decision `gpclust serve`'s
//! `--refresh auto` makes on every flush.
//!
//! Two measurements:
//!
//! 1. **Criterion wall-clock** of one engine refresh cycle (bootstrap a
//!    base graph, stream in a delta, flush) with the refresh path pinned
//!    to `Delta` and to `Full` on the same base/delta split. The
//!    bootstrap is identical in both, so the gap between the pair is the
//!    delta-pass saving at that delta fraction; the partitions are
//!    bit-identical by contract (`tests/incremental_properties.rs`).
//! 2. **Modeled makespans** from the autotuner's own delta predictor
//!    ([`autotune::predict_delta`] vs [`autotune::predict`]) at 1%, 5%
//!    and 20% delta fractions on the two Table-I-shaped scales the
//!    autotune bench prices (20K alignment graph, 2M-like planted
//!    graph), plus the autotuned crossover fraction
//!    ([`autotune::delta_crossover_fraction`]) above which a full
//!    recluster is the cheaper refresh. Written via
//!    [`gpclust_bench::write_report`] to
//!    `crates/bench/reports/BENCH_incremental.json` (mirrored at the
//!    repo root).
//!
//! The report asserts the headline claim: every priced fraction below
//! the crossover has the delta pass strictly beating the full recluster,
//! and the crossover itself is interior — small deltas are cheap because
//! they skip re-sorting the (1-f) untouched share of pass I at host-sort
//! rates, but the fixed index upkeep (retraction scan + k-way merge +
//! posting-list inversion) eventually outweighs that saving.

use criterion::{criterion_group, Criterion};
use gpclust_core::autotune::{self, PassShape, Sharing, WorkloadShape};
use gpclust_core::{IncrementalEngine, RefreshMode, ShinglingParams};
use gpclust_gpu::{DeviceConfig, Gpu};
use gpclust_graph::generate::{planted_partition, PlantedConfig};
use gpclust_graph::{Csr, EdgeList, VertexId};

/// Shingle size of both modeled passes (the paper's default `s1 = s2`).
const S: usize = 2;

fn graph() -> Csr {
    planted_partition(&PlantedConfig {
        group_sizes: PlantedConfig::zipf_groups(1_600, 4, 120, 1.4, 31),
        n_noise_vertices: 400,
        p_intra: 0.8,
        max_intra_degree: 30.0,
        inter_edges_per_vertex: 0.1,
        seed: 31,
    })
    .graph
}

/// Split `g` into a base CSR holding the first `(1-f)` share of its
/// canonical edge list and an edge tail to stream as the delta.
fn split(g: &Csr, fraction: f64) -> (Csr, Vec<(VertexId, VertexId)>) {
    let all: Vec<(VertexId, VertexId)> = g
        .iter()
        .flat_map(|(v, ns)| {
            ns.iter()
                .filter(move |&&u| v < u)
                .map(move |&u| (v, u))
                .collect::<Vec<_>>()
        })
        .collect();
    let cut = ((all.len() as f64) * (1.0 - fraction)).round() as usize;
    let cut = cut.min(all.len());
    let mut base_edges: EdgeList = all[..cut].iter().copied().collect();
    (Csr::from_edges(g.n(), &mut base_edges), all[cut..].to_vec())
}

/// Bootstrap on `base`, stream `delta`, flush with the pinned refresh
/// path — one full refresh cycle, the unit of work `serve` repeats.
fn refresh_cycle(
    params: &ShinglingParams,
    base: &Csr,
    delta: &[(VertexId, VertexId)],
    refresh: RefreshMode,
) -> u64 {
    let mut engine = IncrementalEngine::bootstrap(
        params,
        vec![Gpu::new(DeviceConfig::tesla_k20())],
        base.clone(),
    )
    .unwrap()
    .with_refresh(refresh);
    for &(a, b) in delta {
        engine.add_edge(a, b);
    }
    engine.flush().unwrap();
    engine.generation()
}

fn bench_incremental(c: &mut Criterion) {
    let g = graph();
    let params = ShinglingParams::light(31);
    let mut grp = c.benchmark_group("incremental_refresh");
    grp.sample_size(10);
    for pct in [1usize, 5, 20] {
        let (base, delta) = split(&g, pct as f64 / 100.0);
        for (path, refresh) in [("delta", RefreshMode::Delta), ("full", RefreshMode::Full)] {
            grp.bench_function(format!("{path}_{pct}pct"), |b| {
                b.iter(|| refresh_cycle(&params, &base, &delta, refresh))
            });
        }
    }
    grp.finish();
}

/// A K20-class card with its memory capped to 256 MiB so the modeled
/// passes split into several batches (mirrors the autotune bench).
fn capped() -> Gpu {
    Gpu::new(DeviceConfig {
        global_mem_bytes: 256 << 20,
        ..DeviceConfig::tesla_k20()
    })
}

/// One pass shape: `n_elements` adjacency elements over `n_segments`
/// lists, `trials` hash rounds.
fn pass(n_elements: usize, n_segments: usize, trials: usize) -> PassShape {
    PassShape {
        n_elements,
        n_segments,
        out_elements: (n_segments * S).min(n_elements),
        trials,
        s: S,
    }
}

/// `pass1` scaled down to the `f` share of the union its delta touches.
fn delta_pass(pass1: PassShape, f: f64) -> PassShape {
    PassShape {
        n_elements: ((pass1.n_elements as f64) * f).round() as usize,
        n_segments: (((pass1.n_segments as f64) * f).round() as usize).max(1),
        out_elements: ((pass1.out_elements as f64) * f).round() as usize,
        ..pass1
    }
}

#[derive(Debug)]
struct FractionRow {
    fraction: f64,
    delta_s: f64,
    full_s: f64,
    /// `full_s / delta_s` — above 1, the delta pass wins.
    delta_speedup: f64,
}

#[derive(Debug)]
struct ScaleReport {
    scale: String,
    index_records: usize,
    fractions: Vec<FractionRow>,
    /// Delta fraction above which `--refresh auto` flips to a full
    /// recluster (1.0 if the delta path wins everywhere).
    crossover_fraction: f64,
}

fn model_scale(label: &str, w: &WorkloadShape, gpus: &[Gpu]) -> ScaleReport {
    let params = ShinglingParams::paper_default(7);
    // One stored record per (trial, non-empty list): the index holds
    // pass I's full output.
    let index_records = w.pass1.n_records();
    let full = autotune::predict(autotune::PlanAxes::of(&params), w, gpus, Sharing::Weighted)
        .expect("healthy fleet predicts");
    let fractions = [0.01, 0.05, 0.20]
        .into_iter()
        .map(|f| {
            let d =
                autotune::predict_delta(&params, w, delta_pass(w.pass1, f), index_records, gpus)
                    .expect("healthy fleet predicts");
            FractionRow {
                fraction: f,
                delta_s: d.seconds,
                full_s: full.seconds,
                delta_speedup: full.seconds / d.seconds,
            }
        })
        .collect();
    let crossover = autotune::delta_crossover_fraction(&params, w, index_records, gpus)
        .expect("healthy fleet predicts");
    ScaleReport {
        scale: label.to_string(),
        index_records,
        fractions,
        crossover_fraction: crossover,
    }
}

/// Render the report as literal JSON (fixed labels, finite numbers), so
/// the checked-in artifact regenerates byte-for-byte regardless of which
/// serializer the build links.
fn render_json(note: &str, runs: &[ScaleReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"note\": \"{note}\",\n"));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"scale\": \"{}\",\n", r.scale));
        out.push_str(&format!("      \"index_records\": {},\n", r.index_records));
        out.push_str("      \"fractions\": [\n");
        for (j, f) in r.fractions.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"fraction\": {:.2}, \"delta_s\": {:.6}, \"full_s\": {:.6}, \
                 \"delta_speedup\": {:.4} }}{}\n",
                f.fraction,
                f.delta_s,
                f.full_s,
                f.delta_speedup,
                if j + 1 < r.fractions.len() { "," } else { "" }
            ));
        }
        out.push_str("      ],\n");
        out.push_str(&format!(
            "      \"crossover_fraction\": {:.4}\n",
            r.crossover_fraction
        ));
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn write_modeled_report() {
    let gpus = vec![capped(), capped()];
    // The autotune bench's Table-I shapes: the 20K alignment graph and
    // the 2M-like planted graph at the paper's default trial counts.
    let w20k = WorkloadShape {
        n_vertices: 20_000,
        pass1: pass(4_000_000, 20_000, 200),
        pass2: pass(1_000_000, 40_000, 100),
        spilled_run_bytes: 0,
    };
    let w2m = WorkloadShape {
        n_vertices: 2_000_000,
        pass1: pass(400_000_000, 2_000_000, 200),
        pass2: pass(100_000_000, 1_000_000, 100),
        spilled_run_bytes: 0,
    };

    let runs = vec![
        model_scale("20K", &w20k, &gpus),
        model_scale("2M-like", &w2m, &gpus),
    ];

    // Headline claims: the crossover is a real decision boundary, and
    // every priced fraction below it has the delta pass strictly winning.
    for r in &runs {
        assert!(
            r.crossover_fraction > 0.0 && r.crossover_fraction <= 1.0,
            "[{}] crossover must be a valid fraction, got {}",
            r.scale,
            r.crossover_fraction
        );
        for f in &r.fractions {
            if f.fraction < r.crossover_fraction {
                assert!(
                    f.delta_speedup > 1.0,
                    "[{}] delta must beat full below the crossover: f={} speedup={:.4}",
                    r.scale,
                    f.fraction,
                    f.delta_speedup
                );
            } else {
                assert!(
                    f.delta_speedup <= 1.0 + 1e-9,
                    "[{}] full must win at or above the crossover: f={} speedup={:.4}",
                    r.scale,
                    f.fraction,
                    f.delta_speedup
                );
            }
        }
        let small = &r.fractions[0];
        assert!(
            small.delta_speedup > 1.0,
            "[{}] a 1% delta must be cheaper than a full recluster",
            r.scale
        );
    }

    let json = render_json(
        "delta-pass vs full-recluster makespans (gpclust_core::autotune::predict_delta vs \
         predict) at 1%/5%/20% delta fractions on two Table-I scales, with the autotuned \
         crossover fraction; generated by crates/bench/benches/incremental.rs \
         (write_modeled_report)",
        &runs,
    );
    let path = gpclust_bench::write_report("BENCH_incremental.json", &json);
    for r in &runs {
        for f in &r.fractions {
            eprintln!(
                "[{}] f={:.2}: delta {:.4}s vs full {:.4}s ({:.2}x)",
                r.scale, f.fraction, f.delta_s, f.full_s, f.delta_speedup
            );
        }
        eprintln!("[{}] crossover at f={:.4}", r.scale, r.crossover_fraction);
    }
    eprintln!("written to {path:?}");
}

criterion_group!(benches, bench_incremental);

#[allow(clippy::default_constructed_unit_structs)] // unit only in the criterion stub
fn main() {
    write_modeled_report();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
