//! Out-of-core sharded clustering — the bounded-memory path
//! (`ShinglingParams::with_mem_budget` / `with_shards`): pass I is carved
//! into vertex-range shards, each shard's sorted record runs spill to
//! disk as packed `(key, node, index)` triples, and one external k-way
//! merge reconstructs the shingle graph. The partition is bit-identical
//! to the fully resident run by contract (`tests/oocore_properties.rs`);
//! what this bench prices is the *premium*: the spill write/replay
//! traffic and the deeper merge heap, against the resident-footprint
//! reduction that is the whole point.
//!
//! Two measurements:
//!
//! 1. **Criterion wall-clock** of `GpClust::cluster` on the same planted
//!    graph fully resident and at 2/4/8 forced shards.
//! 2. **Modeled end-to-end seconds** on the Tesla K20 preset for the
//!    Table-I-shaped 20K workload and the batch-splitting 2M-like one —
//!    the `BENCH_residency.json` host-components schedule (device
//!    aggregation, host merge + union–find) plus the out-of-core terms:
//!    run spill at [`SPILL_BYTES_PER_S`] (writes hide behind the next
//!    shard's device work in the pipelined schedule; the merge-time
//!    replay cannot) and a `log2(k+1)` merge-heap factor. Written via
//!    [`gpclust_bench::write_report`] to
//!    `crates/bench/reports/BENCH_oocore.json` and mirrored to the repo
//!    root. Headline: at 4 shards the modeled peak resident bytes drop
//!    to ~25% of the in-memory footprint for a pipelined makespan
//!    premium **under 15%** at both scales.

use criterion::{criterion_group, Criterion};
use gpclust_core::batch::batch_capacity;
use gpclust_core::{AggregationMode, GpClust, ShingleKernel, ShinglingParams};
use gpclust_gpu::{DeviceConfig, Gpu, KernelCost};
use gpclust_graph::generate::{planted_partition, PlantedConfig};
use gpclust_graph::Csr;
use serde::Serialize;

/// Shingle size of both modeled passes (the paper's default `s1 = s2`).
const S: usize = 2;

/// Streaming k-way merge throughput, records/second at fan-in 2 (see
/// `aggregate_offload.rs`); deeper heaps pay a `log2(k+1)` factor.
const HOST_MERGE_REC_PER_S: f64 = 2.5e8;

/// Union–find fold throughput, edges/second (see `residency.rs`).
const HOST_UNION_EDGES_PER_S: f64 = 1.0e8;

/// Spill-scratch streaming throughput, bytes/second — sequential buffered
/// writes and chunked replays of packed runs through page-cache-backed
/// temp files (the same constant `autotune.rs` prices the spill term
/// with).
const SPILL_BYTES_PER_S: f64 = 2.0e9;

/// The external merge's replay frontier: one [`gpclust_core`] spill
/// replay buffer per run, 16 KiB records of 16 B each.
const REPLAY_CHUNK_BYTES: u64 = (1 << 14) * 16;

fn graph() -> Csr {
    planted_partition(&PlantedConfig {
        group_sizes: PlantedConfig::zipf_groups(4_000, 4, 200, 1.4, 23),
        n_noise_vertices: 1_000,
        p_intra: 0.8,
        max_intra_degree: 50.0,
        inter_edges_per_vertex: 0.1,
        seed: 23,
    })
    .graph
}

fn bench_sharded(c: &mut Criterion) {
    let g = graph();
    let mut grp = c.benchmark_group("oocore_shards");
    grp.sample_size(10);
    for shards in [1u32, 2, 4, 8] {
        let name = if shards == 1 {
            "resident".to_string()
        } else {
            format!("shards_{shards}")
        };
        grp.bench_function(&name, |b| {
            let params = if shards == 1 {
                ShinglingParams::light(23)
            } else {
                ShinglingParams::light(23).with_shards(shards)
            };
            let pipeline = GpClust::new(params, Gpu::new(DeviceConfig::tesla_k20())).unwrap();
            b.iter(|| pipeline.cluster(&g).unwrap())
        });
    }
    grp.finish();
}

/// One modeled shingling pass (same shape as `residency.rs`).
struct PassShape {
    n_elements: usize,
    trials: usize,
    n_segments: usize,
}

impl PassShape {
    fn n_records(&self) -> usize {
        self.trials * self.n_segments
    }
}

struct Workload {
    label: &'static str,
    n_vertices: usize,
    pass1: PassShape,
    pass2: PassShape,
}

impl Workload {
    fn n_union_edges(&self) -> usize {
        self.pass2.n_records() * (2 * S - 1)
    }

    /// Pass I's resident working set when nothing spills: the element
    /// window plus every record held twice over (gathered raw buffer +
    /// routed copy) — the same arithmetic as
    /// `Plan::estimate_pass_resident_bytes`.
    fn resident_footprint_bytes(&self) -> u64 {
        4 * self.pass1.n_elements as u64 + self.pass1.n_records() as u64 * (32 + 16 * S as u64)
    }

    /// Bytes of packed complete-record runs the bounded path spills:
    /// 16 B of key/node/index plus 4 B per element.
    fn spilled_run_bytes(&self) -> u64 {
        self.pass1.n_records() as u64 * (16 + 4 * S as u64)
    }
}

/// Closed-form schedule of one pass (SortCompact kernel; identical
/// arithmetic to `residency.rs` / `aggregate_offload.rs`).
struct BasePass {
    serialized_s: f64,
    pipelined_s: f64,
}

fn model_base(gpu: &Gpu, aggregation: AggregationMode, shape: &PassShape) -> BasePass {
    let capacity = batch_capacity(gpu.mem_available(), ShingleKernel::SortCompact, aggregation);
    let n_batches = shape.n_elements.div_ceil(capacity);
    let batch_elems = shape.n_elements.div_ceil(n_batches);
    let out_per_batch = (shape.n_segments * S).div_ceil(n_batches);
    let h2d = gpu.model_transfer_seconds(batch_elems * 4);
    let kernels = gpu.model_kernel_seconds(batch_elems, &KernelCost::transform())
        + gpu.model_kernel_seconds(batch_elems, &KernelCost::segmented_sort())
        + gpu.model_kernel_seconds(out_per_batch, &KernelCost::gather());
    let d2h = gpu.model_transfer_seconds(out_per_batch * 8);
    let (b, t) = (n_batches as f64, shape.trials as f64);
    BasePass {
        serialized_s: b * (h2d + t * (kernels + d2h)),
        pipelined_s: b * (h2d + t * kernels + d2h),
    }
}

/// The pass-I device-aggregation extras (pack + pair radix sort, staged
/// column up + sorted runs down) — `aggregate_offload.rs`'s arithmetic.
fn model_device_agg(gpu: &Gpu, r: usize) -> f64 {
    gpu.model_kernel_seconds(r, &KernelCost::transform())
        + gpu.model_kernel_seconds(r, &KernelCost::pair_sort())
        + gpu.model_transfer_seconds(r * 4 * (S + 2))
        + gpu.model_transfer_seconds(r * (16 + 4 * S))
}

#[derive(Debug, Serialize)]
struct ShardModel {
    shards: u32,
    /// Bytes of packed runs written to (and replayed from) scratch.
    spilled_bytes: u64,
    /// Modeled peak resident bytes: one shard's slice of the footprint
    /// plus the merge's replay frontier (0 extra shards = the full
    /// resident footprint).
    peak_resident_bytes: u64,
    peak_resident_pct_of_resident: f64,
    /// Disk seconds on the serialized path (write + replay) and on the
    /// pipelined path (replay only; writes hide behind the next shard's
    /// device work).
    spill_serialized_s: f64,
    spill_pipelined_s: f64,
    /// Host merge + union–find fold seconds (the merge pays a
    /// `log2(k+1)` heap factor over the resident 2-way baseline).
    cpu_s: f64,
    end_to_end_serialized_s: f64,
    end_to_end_pipelined_s: f64,
    cpu_share_pipelined_pct: f64,
    /// Pipelined makespan premium over the fully resident run.
    makespan_premium_pct: f64,
}

fn model_shards(gpu: &Gpu, w: &Workload, shards: u32) -> ShardModel {
    let base1 = model_base(gpu, AggregationMode::Device, &w.pass1);
    let base2 = model_base(gpu, AggregationMode::Host, &w.pass2);
    let agg = model_device_agg(gpu, w.pass1.n_records());
    let records1 = w.pass1.n_records() as f64;
    let union_s = w.n_union_edges() as f64 / HOST_UNION_EDGES_PER_S;
    let footprint = w.resident_footprint_bytes();

    let (spilled_bytes, heap_factor, peak_resident_bytes) = if shards <= 1 {
        (0, 1.0, footprint)
    } else {
        (
            w.spilled_run_bytes(),
            ((shards + 1) as f64).log2(),
            footprint / shards as u64 + (shards as u64 + 1) * REPLAY_CHUNK_BYTES,
        )
    };
    let merge_s = records1 / HOST_MERGE_REC_PER_S * heap_factor;
    let cpu_s = merge_s + union_s;
    let spill_once = spilled_bytes as f64 / SPILL_BYTES_PER_S;
    let spill_serialized_s = 2.0 * spill_once;
    let spill_pipelined_s = spill_once;

    let end_to_end_serialized_s =
        base1.serialized_s + base2.serialized_s + agg + cpu_s + spill_serialized_s;
    let end_to_end_pipelined_s =
        base1.pipelined_s + base2.pipelined_s + agg + cpu_s + spill_pipelined_s;
    ShardModel {
        shards: shards.max(1),
        spilled_bytes,
        peak_resident_bytes,
        peak_resident_pct_of_resident: 100.0 * peak_resident_bytes as f64 / footprint as f64,
        spill_serialized_s,
        spill_pipelined_s,
        cpu_s,
        cpu_share_pipelined_pct: 100.0 * cpu_s / end_to_end_pipelined_s,
        end_to_end_serialized_s,
        end_to_end_pipelined_s,
        makespan_premium_pct: 0.0, // filled against the resident row
    }
}

#[derive(Debug, Serialize)]
struct ScaleReport {
    label: String,
    n_vertices: usize,
    resident_footprint_bytes: u64,
    rows: Vec<ShardModel>,
}

fn model_scale(gpu: &Gpu, w: &Workload) -> ScaleReport {
    let mut rows: Vec<ShardModel> = [1u32, 2, 4, 8]
        .iter()
        .map(|&k| model_shards(gpu, w, k))
        .collect();
    let baseline = rows[0].end_to_end_pipelined_s;
    for row in &mut rows {
        row.makespan_premium_pct = (row.end_to_end_pipelined_s / baseline - 1.0) * 100.0;
    }
    let four = &rows[2];
    assert_eq!(four.shards, 4);
    assert!(
        four.makespan_premium_pct <= 15.0,
        "[{}] 4-shard pipelined premium must stay under 15% (got {:.1}%)",
        w.label,
        four.makespan_premium_pct
    );
    assert!(
        four.peak_resident_pct_of_resident <= 26.0,
        "[{}] 4 shards must cut peak residency to ~25% (got {:.1}%)",
        w.label,
        four.peak_resident_pct_of_resident
    );
    ScaleReport {
        label: w.label.to_string(),
        n_vertices: w.n_vertices,
        resident_footprint_bytes: w.resident_footprint_bytes(),
        rows,
    }
}

#[derive(Debug, Serialize)]
struct OocoreReport {
    device: String,
    note: String,
    spill_bytes_per_s: f64,
    host_merge_rec_per_s: f64,
    host_union_edges_per_s: f64,
    scale_20k: ScaleReport,
    scale_2m_like: ScaleReport,
}

/// Model the two Table I scales at 1/2/4/8 shards and write the
/// out-of-core premium/residency comparison.
fn write_modeled_report() {
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let report = OocoreReport {
        device: gpu.config().name.clone(),
        note: "closed-form schedule model; generated by the arithmetic in \
               crates/bench/benches/oocore.rs (write_modeled_report)"
            .to_string(),
        spill_bytes_per_s: SPILL_BYTES_PER_S,
        host_merge_rec_per_s: HOST_MERGE_REC_PER_S,
        host_union_edges_per_s: HOST_UNION_EDGES_PER_S,
        scale_20k: model_scale(
            &gpu,
            &Workload {
                label: "20K",
                n_vertices: 20_000,
                pass1: PassShape {
                    n_elements: 4_000_000,
                    trials: 200,
                    n_segments: 20_000,
                },
                pass2: PassShape {
                    n_elements: 1_000_000,
                    trials: 100,
                    n_segments: 40_000,
                },
            },
        ),
        scale_2m_like: model_scale(
            &gpu,
            &Workload {
                label: "2M-like",
                n_vertices: 2_000_000,
                pass1: PassShape {
                    n_elements: 400_000_000,
                    trials: 200,
                    n_segments: 2_000_000,
                },
                pass2: PassShape {
                    n_elements: 100_000_000,
                    trials: 100,
                    n_segments: 1_000_000,
                },
            },
        ),
    };
    if std::env::var_os("GPCLUST_DEBUG_REPORT").is_some() {
        eprintln!("{report:#?}");
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = gpclust_bench::write_report("BENCH_oocore.json", &json);
    for scale in [&report.scale_20k, &report.scale_2m_like] {
        for row in &scale.rows {
            eprintln!(
                "[{}] {} shard(s): modeled K20 pipelined {:.4}s ({:+.1}% premium, \
                 resident {:.1}% of footprint, CPU share {:.2}%, spilled {} B)",
                scale.label,
                row.shards,
                row.end_to_end_pipelined_s,
                row.makespan_premium_pct,
                row.peak_resident_pct_of_resident,
                row.cpu_share_pipelined_pct,
                row.spilled_bytes
            );
        }
    }
    eprintln!("written to {path:?}");
}

criterion_group!(benches, bench_sharded);

fn main() {
    write_modeled_report();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
