//! Host vs device shingle aggregation — the sort-offload optimisation
//! (`AggregationMode::Device`): instead of shipping raw records to a
//! global host sort (PR 2's pipeline, the paper's "roughly 80% of the
//! runtime is consumed by the hashing and sorting operations" hot spot),
//! each batch packs and radix-sorts its records on the GPU and the host
//! only k-way-merges the pre-sorted runs into the stream inverter.
//!
//! Two measurements:
//!
//! 1. **Criterion wall-clock** of `GpClust::cluster` under both
//!    `AggregationMode`s on the same graph (results are bit-identical by
//!    contract; see `crates/core/tests/aggregate_properties.rs`).
//! 2. **Modeled end-to-end seconds** on the Tesla K20 preset for a
//!    Table-I-shaped 20K workload and a batch-splitting 2M-like one,
//!    computed in closed form from the simulator's own cost model plus
//!    two documented host-throughput constants, and written to
//!    `<report_dir>/BENCH_aggregate.json`. The checked-in copy at the
//!    repo root was produced with exactly this arithmetic. Device
//!    aggregation wins twice: the K20's radix sort orders records faster
//!    than the host's parallel sort, and under the overlapped schedule
//!    the column upload and run download hide behind the next batch's
//!    kernels, so only the (much cheaper) k-way merge stays on the CPU
//!    column.

use criterion::{criterion_group, Criterion};
use gpclust_core::batch::batch_capacity;
use gpclust_core::{AggregationMode, GpClust, ShingleKernel, ShinglingParams};
use gpclust_gpu::{DeviceConfig, Gpu, KernelCost};
use gpclust_graph::generate::{planted_partition, PlantedConfig};
use gpclust_graph::Csr;
use serde::Serialize;

/// Shingle size of the modeled pass (the paper's default `s1`).
const S: usize = 2;

/// Host ordering throughput for 16-byte packed records, records/second.
///
/// `slice::par_sort_unstable` over `(u128)` keys on a 2013-era dual-socket
/// Xeon moves roughly this many records per second once the working set
/// falls out of LLC — the measured constant behind PR 2's CPU column.
const HOST_SORT_REC_PER_S: f64 = 5.0e7;

/// Streaming k-way merge throughput, records/second.
///
/// The binary-heap merge of r pre-sorted runs is a sequential scan with an
/// O(log r) heap update per record — no random access, no allocation — and
/// sustains several times the throughput of the global sort it replaces.
const HOST_MERGE_REC_PER_S: f64 = 2.5e8;

fn graph() -> Csr {
    planted_partition(&PlantedConfig {
        group_sizes: PlantedConfig::zipf_groups(4_000, 4, 200, 1.4, 17),
        n_noise_vertices: 1_000,
        p_intra: 0.8,
        max_intra_degree: 50.0,
        inter_edges_per_vertex: 0.1,
        seed: 17,
    })
    .graph
}

fn bench_aggregation(c: &mut Criterion) {
    let g = graph();
    let mut grp = c.benchmark_group("shingle_aggregation");
    grp.sample_size(10);
    for (name, aggregation) in [
        ("host_sort", AggregationMode::Host),
        ("device_runs", AggregationMode::Device),
    ] {
        grp.bench_function(name, |b| {
            let pipeline = GpClust::new(
                ShinglingParams::light(17).with_aggregation(aggregation),
                Gpu::new(DeviceConfig::tesla_k20()),
            )
            .unwrap();
            b.iter(|| pipeline.cluster(&g).unwrap())
        });
    }
    grp.finish();
}

/// A modeled pass-I workload: `n_elements` adjacency elements shingled
/// over `trials` hash trials across `n_segments` vertex lists, emitting
/// one s-pair record per (trial, segment).
struct Workload {
    label: &'static str,
    n_elements: usize,
    trials: usize,
    n_segments: usize,
}

impl Workload {
    fn n_records(&self) -> usize {
        self.trials * self.n_segments
    }
}

#[derive(Debug, Serialize)]
struct BasePass {
    capacity_elems: usize,
    n_batches: usize,
    serialized_s: f64,
    pipelined_s: f64,
}

/// Closed-form schedule of the shingling pass itself (SortCompact kernel,
/// same shape as `select_kernel.rs`): per batch one upload, `trials`
/// kernel rounds each downloading its top-s pairs. Only `batch_capacity`
/// differs between the aggregation modes — the device-mode pack + sort
/// workspace (32 B/elem vs 16) can split the pass into more batches.
fn model_base(gpu: &Gpu, aggregation: AggregationMode, w: &Workload) -> BasePass {
    let capacity = batch_capacity(gpu.mem_available(), ShingleKernel::SortCompact, aggregation);
    let n_batches = w.n_elements.div_ceil(capacity);
    let batch_elems = w.n_elements.div_ceil(n_batches);
    let out_per_batch = (w.n_segments * S).div_ceil(n_batches);
    let h2d = gpu.model_transfer_seconds(batch_elems * 4);
    let kernels = gpu.model_kernel_seconds(batch_elems, &KernelCost::transform())
        + gpu.model_kernel_seconds(batch_elems, &KernelCost::segmented_sort())
        + gpu.model_kernel_seconds(out_per_batch, &KernelCost::gather());
    let d2h = gpu.model_transfer_seconds(out_per_batch * 8);
    let (b, t) = (n_batches as f64, w.trials as f64);
    BasePass {
        capacity_elems: capacity,
        n_batches,
        serialized_s: b * (h2d + t * (kernels + d2h)),
        pipelined_s: b * (h2d + t * kernels + d2h),
    }
}

#[derive(Debug, Serialize)]
struct AggregationModel {
    aggregation: String,
    n_records: usize,
    /// Host CPU seconds ordering the records (global sort, or k-way merge
    /// of the device-sorted runs).
    cpu_order_s: f64,
    /// Device seconds added by the pack + pair-radix-sort kernels.
    agg_kernels_s: f64,
    /// Bus seconds added by the column upload + sorted-run download.
    agg_transfer_s: f64,
    base: BasePass,
    end_to_end_serialized_s: f64,
    end_to_end_pipelined_s: f64,
    cpu_share_serialized_pct: f64,
    cpu_share_pipelined_pct: f64,
}

fn model_aggregation(gpu: &Gpu, aggregation: AggregationMode, w: &Workload) -> AggregationModel {
    let base = model_base(gpu, aggregation, w);
    let r = w.n_records();
    let (cpu_order_s, agg_kernels_s, agg_transfer_s) = match aggregation {
        AggregationMode::Host => (r as f64 / HOST_SORT_REC_PER_S, 0.0, 0.0),
        AggregationMode::Device => {
            // Staged column up (4·(s+2) B/record), packed runs + unpacked
            // elements down (16 + 4·s B/record).
            let kernels = gpu.model_kernel_seconds(r, &KernelCost::transform())
                + gpu.model_kernel_seconds(r, &KernelCost::pair_sort());
            let transfers = gpu.model_transfer_seconds(r * 4 * (S + 2))
                + gpu.model_transfer_seconds(r * (16 + 4 * S));
            (r as f64 / HOST_MERGE_REC_PER_S, kernels, transfers)
        }
    };
    // Serialized (Thrust 1.5 blocking copies): every aggregation kernel
    // and transfer extends the device path. Overlapped: the flush
    // transfers ride the copy stream behind the next batch's compute, so
    // only the aggregation kernels stay on the critical path.
    let end_to_end_serialized_s = base.serialized_s + agg_kernels_s + agg_transfer_s + cpu_order_s;
    let end_to_end_pipelined_s = base.pipelined_s + agg_kernels_s + cpu_order_s;
    AggregationModel {
        aggregation: format!("{aggregation:?}"),
        n_records: r,
        cpu_order_s,
        agg_kernels_s,
        agg_transfer_s,
        cpu_share_serialized_pct: 100.0 * cpu_order_s / end_to_end_serialized_s,
        cpu_share_pipelined_pct: 100.0 * cpu_order_s / end_to_end_pipelined_s,
        base,
        end_to_end_serialized_s,
        end_to_end_pipelined_s,
    }
}

#[derive(Debug, Serialize)]
struct ScaleReport {
    label: String,
    host: AggregationModel,
    device: AggregationModel,
    serialized_improvement_pct: f64,
    pipelined_improvement_pct: f64,
    /// Percentage points the CPU column's share of the pipelined makespan
    /// drops when the sort moves on-device.
    cpu_share_drop_pts: f64,
}

fn model_scale(gpu: &Gpu, w: &Workload) -> ScaleReport {
    let host = model_aggregation(gpu, AggregationMode::Host, w);
    let device = model_aggregation(gpu, AggregationMode::Device, w);
    let report = ScaleReport {
        label: w.label.to_string(),
        serialized_improvement_pct: (1.0
            - device.end_to_end_serialized_s / host.end_to_end_serialized_s)
            * 100.0,
        pipelined_improvement_pct: (1.0
            - device.end_to_end_pipelined_s / host.end_to_end_pipelined_s)
            * 100.0,
        cpu_share_drop_pts: host.cpu_share_pipelined_pct - device.cpu_share_pipelined_pct,
        host,
        device,
    };
    assert!(
        report.device.end_to_end_pipelined_s < report.host.end_to_end_pipelined_s,
        "[{}] device aggregation must shorten the modeled pipelined makespan",
        report.label
    );
    assert!(
        report.device.cpu_order_s < report.host.cpu_order_s,
        "[{}] the k-way merge must undercut the global sort",
        report.label
    );
    assert!(
        report.device.cpu_share_pipelined_pct < report.host.cpu_share_pipelined_pct,
        "[{}] the CPU column's share must drop",
        report.label
    );
    report
}

#[derive(Debug, Serialize)]
struct AggregateReport {
    device: String,
    note: String,
    host_sort_rec_per_s: f64,
    host_merge_rec_per_s: f64,
    scale_20k: ScaleReport,
    scale_2m_like: ScaleReport,
}

/// Model the paper's two Table I scales: the 20K graph (4M elements, one
/// record per vertex per trial) and a 2M-like pass whose 400M elements
/// exceed the device-mode `batch_capacity`, and write the host-vs-device
/// comparison.
fn write_modeled_report() {
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let report = AggregateReport {
        device: gpu.config().name.clone(),
        note: "closed-form schedule model; generated by the arithmetic in \
               crates/bench/benches/aggregate_offload.rs (write_modeled_report)"
            .to_string(),
        host_sort_rec_per_s: HOST_SORT_REC_PER_S,
        host_merge_rec_per_s: HOST_MERGE_REC_PER_S,
        scale_20k: model_scale(
            &gpu,
            &Workload {
                label: "20K",
                n_elements: 4_000_000,
                trials: 200,
                n_segments: 20_000,
            },
        ),
        scale_2m_like: model_scale(
            &gpu,
            &Workload {
                label: "2M-like",
                n_elements: 400_000_000,
                trials: 200,
                n_segments: 2_000_000,
            },
        ),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = gpclust_bench::write_report("BENCH_aggregate.json", &json);
    for s in [&report.scale_20k, &report.scale_2m_like] {
        eprintln!(
            "[{}] modeled K20 end-to-end: host {:.4}s -> device {:.4}s pipelined \
             ({:.1}% shorter); CPU column share {:.1}% -> {:.1}% ({:.1} pts)",
            s.label,
            s.host.end_to_end_pipelined_s,
            s.device.end_to_end_pipelined_s,
            s.pipelined_improvement_pct,
            s.host.cpu_share_pipelined_pct,
            s.device.cpu_share_pipelined_pct,
            s.cpu_share_drop_pts
        );
    }
    eprintln!("written to {path:?}");
}

criterion_group!(benches, bench_aggregation);

fn main() {
    write_modeled_report();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
