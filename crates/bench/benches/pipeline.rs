//! End-to-end pipeline benchmark: serial pClust vs gpClust on a
//! homology-shaped graph, plus the metagenome → graph construction stage.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpclust_core::{GpClust, SerialShingling, ShinglingParams};
use gpclust_gpu::{DeviceConfig, Gpu};
use gpclust_graph::generate::{planted_partition, PlantedConfig};
use gpclust_graph::Csr;
use gpclust_homology::{graph_from_metagenome, HomologyConfig};
use gpclust_seqsim::metagenome::{Metagenome, MetagenomeConfig};

fn graph() -> Csr {
    planted_partition(&PlantedConfig {
        group_sizes: PlantedConfig::zipf_groups(6_000, 4, 250, 1.4, 13),
        n_noise_vertices: 1_500,
        p_intra: 0.8,
        max_intra_degree: 50.0,
        inter_edges_per_vertex: 0.1,
        seed: 13,
    })
    .graph
}

fn bench_clustering(c: &mut Criterion) {
    let g = graph();
    let params = ShinglingParams::paper_default(7);
    let mut grp = c.benchmark_group("end_to_end_clustering");
    grp.throughput(Throughput::Elements(g.m() as u64));
    grp.sample_size(10);
    grp.bench_function("serial_pclust", |b| {
        let alg = SerialShingling::new(params).unwrap();
        b.iter(|| alg.cluster(&g))
    });
    grp.bench_function("gpclust_k20", |b| {
        let gpu = Gpu::new(DeviceConfig::tesla_k20());
        let pipeline = GpClust::new(params, gpu).unwrap();
        b.iter(|| pipeline.cluster(&g).unwrap())
    });
    grp.finish();
}

fn bench_graph_construction(c: &mut Criterion) {
    let mg = Metagenome::generate(&MetagenomeConfig::tiny(800, 17));
    let residues: usize = mg.proteins.iter().map(|p| p.len()).sum();
    let mut grp = c.benchmark_group("graph_construction");
    grp.throughput(Throughput::Elements(residues as u64));
    grp.sample_size(10);
    grp.bench_function("align_800_seqs", |b| {
        b.iter(|| graph_from_metagenome(&mg, &HomologyConfig::default()))
    });
    grp.finish();
}

criterion_group!(benches, bench_clustering, bench_graph_construction);
criterion_main!(benches);
