//! Microbenchmarks of the Thrust-like device primitives — the two
//! workhorses the paper names (transform + sort [15]) plus the helpers.
//! Wall times here reflect the host pool; the simulated device seconds are
//! the cost model's business, not Criterion's.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gpclust_gpu::{thrust, DeviceConfig, Gpu};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 1 << 20;

fn data(seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..N).map(|_| rng.gen()).collect()
}

fn bench_transform(c: &mut Criterion) {
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let input = gpu.htod(&data(1)).unwrap();
    let mut g = c.benchmark_group("device_transform");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    g.bench_function("transform_1M_u64", |b| {
        let mut out = gpu.alloc::<u64>(N).unwrap();
        b.iter(|| thrust::transform(&gpu, &input, &mut out, |x| x.wrapping_mul(0x9E37_79B9)))
    });
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let host = data(2);
    let mut g = c.benchmark_group("device_sort");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    g.bench_function("device_sort_1M_u64", |b| {
        b.iter_batched(
            || gpu.htod(&host).unwrap(),
            |mut buf| thrust::sort(&gpu, &mut buf),
            BatchSize::LargeInput,
        )
    });
    // Host-side comparison point.
    g.bench_function("std_sort_1M_u64", |b| {
        b.iter_batched(
            || host.clone(),
            |mut v| v.sort_unstable(),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_segmented_sort(c: &mut Criterion) {
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let host = data(3);
    // Adjacency-list-like segmentation: mean segment ~64 elements.
    let mut offsets = vec![0u64];
    let mut rng = StdRng::seed_from_u64(4);
    while (*offsets.last().unwrap() as usize) < N {
        let next = (*offsets.last().unwrap() + rng.gen_range(1..128u64)).min(N as u64);
        offsets.push(next);
    }
    let mut g = c.benchmark_group("device_segmented_sort");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    g.bench_function("segmented_sort_1M_u64_seg64", |b| {
        b.iter_batched(
            || gpu.htod(&host).unwrap(),
            |mut buf| thrust::segmented_sort(&gpu, &mut buf, &offsets),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_transfers(c: &mut Criterion) {
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let host = data(5);
    let mut g = c.benchmark_group("transfers");
    g.throughput(Throughput::Bytes((N * 8) as u64));
    g.sample_size(20);
    g.bench_function("htod_8MB", |b| b.iter(|| gpu.htod(&host).unwrap()));
    let buf = gpu.htod(&host).unwrap();
    g.bench_function("dtoh_8MB", |b| b.iter(|| gpu.dtoh(&buf)));
    g.finish();
}

criterion_group!(
    benches,
    bench_transform,
    bench_sort,
    bench_segmented_sort,
    bench_transfers
);
criterion_main!(benches);
