//! # gpclust-homology — pGraph-like homology graph construction
//!
//! The paper's pipeline builds its input graph with pGraph \[25\]: generate
//! *promising pairs* via a maximal-match heuristic, then verify each pair
//! with an optimal Smith–Waterman alignment, in parallel. This crate is
//! that substrate:
//!
//! * [`pairs`] — candidate generation through the shared-k-mer filter of
//!   `gpclust-align` (the practical equivalent of suffix-tree maximal
//!   matching).
//! * [`builder`] — parallel Smith–Waterman verification of candidates and
//!   edge assembly into a CSR similarity graph.
//! * [`pipeline`] — end-to-end conveniences: synthetic metagenome → graph,
//!   and FASTA file → graph.
//!
//! Verification parallelizes over candidate pairs with rayon; the result is
//! a pure function of (sequences, config) regardless of thread count.

pub mod builder;
pub mod pairs;
pub mod pipeline;

pub use builder::{build_graph, BuildStats, FilterBackend, HomologyConfig};
pub use pipeline::{graph_from_fasta, graph_from_metagenome};
