//! Candidate (promising) pair generation.
//!
//! pGraph's first phase finds pairs worth aligning: sequences sharing an
//! exact match of length ≥ ψ. The shared-k-mer index in `gpclust-align`
//! enumerates exactly that pair set; this module adapts it to [`Protein`]
//! datasets and reports filter statistics.

use gpclust_align::filter::{candidate_pairs, CandidatePairs, FilterConfig};
use gpclust_align::suffix::{candidate_pairs_suffix, SuffixFilterConfig};
use gpclust_seqsim::Protein;
use serde::{Deserialize, Serialize};

/// Statistics of one candidate-generation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairStats {
    /// Number of candidate pairs emitted.
    pub n_pairs: usize,
    /// Over-represented k-mer buckets skipped.
    pub skipped_buckets: usize,
}

/// Generate candidate pairs over a protein dataset.
///
/// Sequence ids must be dense (`proteins[i].id == i`), which the
/// `gpclust-seqsim` generators guarantee.
pub fn promising_pairs(proteins: &[Protein], config: &FilterConfig) -> (CandidatePairs, PairStats) {
    debug_assert!(proteins.iter().enumerate().all(|(i, p)| p.id as usize == i));
    let views: Vec<&[u8]> = proteins.iter().map(|p| p.residues.as_slice()).collect();
    let pairs = candidate_pairs(&views, config);
    let stats = PairStats {
        n_pairs: pairs.len(),
        skipped_buckets: pairs.skipped_buckets,
    };
    (pairs, stats)
}

/// Generate candidate pairs through the suffix-array maximal-match route
/// (same ψ / cap semantics as the k-mer filter; identical results).
pub fn promising_pairs_suffix(
    proteins: &[Protein],
    config: &FilterConfig,
) -> (CandidatePairs, PairStats) {
    debug_assert!(proteins.iter().enumerate().all(|(i, p)| p.id as usize == i));
    let views: Vec<&[u8]> = proteins.iter().map(|p| p.residues.as_slice()).collect();
    let pairs = candidate_pairs_suffix(
        &views,
        &SuffixFilterConfig {
            min_match: config.k,
            max_interval: config.max_bucket,
        },
    );
    let stats = PairStats {
        n_pairs: pairs.len(),
        skipped_buckets: pairs.skipped_buckets,
    };
    (pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpclust_seqsim::metagenome::{Metagenome, MetagenomeConfig};

    #[test]
    fn family_members_become_candidates() {
        let mg = Metagenome::generate(&MetagenomeConfig::tiny(120, 3));
        let cfg = FilterConfig {
            k: 5,
            max_bucket: 500,
        };
        let (pairs, stats) = promising_pairs(&mg.proteins, &cfg);
        assert_eq!(stats.n_pairs, pairs.len());
        assert!(!pairs.is_empty(), "families must share 5-mers");
        // A decent share of candidates should be true intra-family pairs.
        let intra = pairs
            .as_slice()
            .iter()
            .filter(|&&(a, b)| {
                mg.truth[a as usize].is_some() && mg.truth[a as usize] == mg.truth[b as usize]
            })
            .count();
        assert!(
            intra * 2 > pairs.len(),
            "intra-family {intra} of {}",
            pairs.len()
        );
    }

    #[test]
    fn empty_dataset() {
        let (pairs, stats) = promising_pairs(&[], &FilterConfig::default());
        assert!(pairs.is_empty());
        assert_eq!(stats.n_pairs, 0);
    }
}
