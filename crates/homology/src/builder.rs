//! Parallel Smith–Waterman verification and graph assembly.
//!
//! Each candidate pair gets an exact local alignment; pairs passing the
//! acceptance criteria become edges of the similarity graph ("(vi, vj) ∈ E
//! if and only if si and sj have a significant sequence similarity").
//! Verification fans out over rayon with one scoring [`Workspace`] per
//! worker — the alignment kernel itself never allocates.

use crate::pairs::{promising_pairs, promising_pairs_suffix, PairStats};
use gpclust_align::filter::FilterConfig;
use gpclust_align::significance::{evaluate_pair, AcceptCriteria};
use gpclust_align::sw::{GapPenalties, SmithWaterman, Workspace};
use gpclust_graph::{Csr, EdgeList};
use gpclust_seqsim::Protein;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Which maximal-match machinery generates candidate pairs. Both produce
/// the identical pair set (property-tested in `gpclust-align`); the k-mer
/// index is the fast default, the suffix array is pGraph's stated method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FilterBackend {
    /// Sorted k-mer index (default).
    #[default]
    Kmer,
    /// Generalized suffix array + LCP intervals.
    SuffixArray,
}

/// Configuration of homology graph construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HomologyConfig {
    /// Candidate filter (exact-match length ψ, bucket cap).
    pub filter: FilterConfig,
    /// Candidate-generation machinery.
    #[serde(default)]
    pub backend: FilterBackend,
    /// Edge acceptance thresholds.
    pub criteria: AcceptCriteria,
    /// Affine gap penalties for the Smith–Waterman verification.
    pub gap_open: i32,
    /// Gap extension penalty.
    pub gap_extend: i32,
}

impl Default for HomologyConfig {
    fn default() -> Self {
        let gaps = GapPenalties::default();
        HomologyConfig {
            filter: FilterConfig::default(),
            backend: FilterBackend::default(),
            criteria: AcceptCriteria::homology_default(),
            gap_open: gaps.open,
            gap_extend: gaps.extend,
        }
    }
}

/// Statistics of one graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildStats {
    /// Candidate-filter statistics.
    pub pairs: PairStats,
    /// Candidates accepted as edges.
    pub n_edges: usize,
    /// Candidates rejected by the alignment criteria.
    pub n_rejected: usize,
}

/// Build the similarity graph over `proteins` (dense ids).
pub fn build_graph(proteins: &[Protein], config: &HomologyConfig) -> (Csr, BuildStats) {
    let (candidates, pair_stats) = match config.backend {
        FilterBackend::Kmer => promising_pairs(proteins, &config.filter),
        FilterBackend::SuffixArray => promising_pairs_suffix(proteins, &config.filter),
    };
    let sw = SmithWaterman::new(
        gpclust_align::SubstitutionMatrix::blosum62(),
        GapPenalties {
            open: config.gap_open,
            extend: config.gap_extend,
        },
    );

    thread_local! {
        static WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::new());
    }

    let accepted: Vec<(u32, u32)> = candidates
        .as_slice()
        .par_iter()
        .filter(|&&(a, b)| {
            WORKSPACE.with(|ws| {
                evaluate_pair(
                    &sw,
                    &mut ws.borrow_mut(),
                    &proteins[a as usize].residues,
                    &proteins[b as usize].residues,
                    &config.criteria,
                )
                .accepted()
            })
        })
        .copied()
        .collect();

    let n_edges = accepted.len();
    let mut edges: EdgeList = accepted.into_iter().collect();
    let graph = Csr::from_edges(proteins.len(), &mut edges);
    let stats = BuildStats {
        pairs: pair_stats,
        n_edges,
        n_rejected: pair_stats.n_pairs - n_edges,
    };
    (graph, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpclust_seqsim::metagenome::{Metagenome, MetagenomeConfig};

    fn dataset(n: usize, seed: u64) -> Metagenome {
        Metagenome::generate(&MetagenomeConfig::tiny(n, seed))
    }

    #[test]
    fn intra_family_edges_dominate() {
        let mg = dataset(200, 5);
        let (g, stats) = build_graph(&mg.proteins, &HomologyConfig::default());
        assert!(g.m() > 0, "no edges built");
        assert_eq!(stats.n_edges + stats.n_rejected, stats.pairs.n_pairs);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for v in 0..g.n() as u32 {
            for &u in g.neighbors(v) {
                if u > v {
                    if mg.truth[v as usize].is_some()
                        && mg.truth[v as usize] == mg.truth[u as usize]
                    {
                        intra += 1;
                    } else {
                        inter += 1;
                    }
                }
            }
        }
        assert!(
            intra > 20 * inter.max(1) || inter == 0,
            "edge precision too low: intra {intra}, inter {inter}"
        );
    }

    #[test]
    fn noise_orfs_stay_mostly_isolated() {
        let mg = dataset(300, 6);
        let (g, _) = build_graph(&mg.proteins, &HomologyConfig::default());
        let noisy_with_edges = (0..g.n() as u32)
            .filter(|&v| mg.truth[v as usize].is_none() && g.degree(v) > 0)
            .count();
        let n_noise = mg.n_noise();
        assert!(
            noisy_with_edges * 10 <= n_noise.max(10),
            "{noisy_with_edges} of {n_noise} noise ORFs gained edges"
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mg = dataset(150, 7);
        let cfg = HomologyConfig::default();
        let pool1 = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let pool4 = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let g1 = pool1.install(|| build_graph(&mg.proteins, &cfg).0);
        let g4 = pool4.install(|| build_graph(&mg.proteins, &cfg).0);
        assert_eq!(g1, g4);
    }

    #[test]
    fn stricter_criteria_yield_fewer_edges() {
        let mg = dataset(200, 8);
        let loose = HomologyConfig::default();
        let mut strict = HomologyConfig::default();
        strict.criteria.min_score = loose.criteria.min_score * 3;
        let (gl, _) = build_graph(&mg.proteins, &loose);
        let (gs, _) = build_graph(&mg.proteins, &strict);
        assert!(gs.m() < gl.m(), "strict {} !< loose {}", gs.m(), gl.m());
    }

    #[test]
    fn suffix_backend_builds_identical_graph() {
        let mg = dataset(120, 9);
        let kmer_cfg = HomologyConfig::default();
        let sa_cfg = HomologyConfig {
            backend: FilterBackend::SuffixArray,
            ..HomologyConfig::default()
        };
        let (gk, _) = build_graph(&mg.proteins, &kmer_cfg);
        let (gs, _) = build_graph(&mg.proteins, &sa_cfg);
        assert_eq!(gk, gs, "the two maximal-match backends must agree");
    }

    #[test]
    fn empty_input() {
        let (g, stats) = build_graph(&[], &HomologyConfig::default());
        assert_eq!(g.n(), 0);
        assert_eq!(stats.n_edges, 0);
    }
}
