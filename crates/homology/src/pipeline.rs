//! End-to-end graph construction conveniences.

use crate::builder::{build_graph, BuildStats, HomologyConfig};
use gpclust_graph::Csr;
use gpclust_seqsim::fasta;
use gpclust_seqsim::metagenome::Metagenome;
use std::path::Path;

/// Build the similarity graph of a generated metagenome.
pub fn graph_from_metagenome(mg: &Metagenome, config: &HomologyConfig) -> (Csr, BuildStats) {
    build_graph(&mg.proteins, config)
}

/// Errors from the FASTA → graph pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// FASTA parsing failed.
    Fasta(fasta::FastaError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Fasta(e) => write!(f, "FASTA error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Load proteins from a FASTA file and build their similarity graph.
pub fn graph_from_fasta<P: AsRef<Path>>(
    path: P,
    config: &HomologyConfig,
) -> Result<(Csr, BuildStats), PipelineError> {
    let proteins = fasta::read_file(path).map_err(PipelineError::Fasta)?;
    Ok(build_graph(&proteins, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpclust_seqsim::metagenome::MetagenomeConfig;

    #[test]
    fn fasta_roundtrip_builds_same_graph() {
        let mg = Metagenome::generate(&MetagenomeConfig::tiny(120, 9));
        let cfg = HomologyConfig::default();
        let (direct, _) = graph_from_metagenome(&mg, &cfg);

        let dir = std::env::temp_dir().join("gpclust_homology_pipeline");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mg.faa");
        fasta::write_file(&path, &mg.proteins).unwrap();
        let (from_file, _) = graph_from_fasta(&path, &cfg).unwrap();
        assert_eq!(direct, from_file);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        let err = graph_from_fasta("/nonexistent/nope.faa", &HomologyConfig::default());
        assert!(err.is_err());
    }
}
