//! Partitioning adjacency lists into device-memory-sized batches.
//!
//! "In order to process the large-scale input graph on the relative small
//! device memory, the input graph for the first and second level shingling
//! can be partitioned into batches of adjacency lists, and subsequently
//! moved to the device memory batch by batch." A batch is a contiguous
//! *element* range of the concatenated adjacency array; a list that spans a
//! batch boundary is split, and the CPU aggregation later merges its
//! fragments (see [`crate::aggregate`]).

use serde::{Deserialize, Serialize};

use crate::params::{AggregationMode, ShingleKernel};

/// One batch: an element range of the flat adjacency array plus the range
/// of node (list) indices that intersect it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    /// First node whose list intersects the element range.
    pub node_lo: usize,
    /// One past the last intersecting node.
    pub node_hi: usize,
    /// First element (inclusive) in the flat array.
    pub elem_lo: u64,
    /// Last element (exclusive).
    pub elem_hi: u64,
}

impl Batch {
    /// Elements in this batch.
    pub fn n_elements(&self) -> usize {
        (self.elem_hi - self.elem_lo) as usize
    }

    /// Whether the first list in the batch is a continuation of a list
    /// started in an earlier batch.
    pub fn first_is_fragment(&self, offsets: &[u64]) -> bool {
        offsets[self.node_lo] < self.elem_lo
    }

    /// Whether the last list in the batch continues into the next batch.
    pub fn last_is_fragment(&self, offsets: &[u64]) -> bool {
        offsets[self.node_hi] > self.elem_hi
    }

    /// Per-segment local offsets (into the batch's element range) and the
    /// node index of each segment. Empty lists inside the range are skipped.
    pub fn segments(&self, offsets: &[u64]) -> (Vec<u64>, Vec<u32>) {
        let mut local = vec![0u64];
        let mut nodes = Vec::new();
        for node in self.node_lo..self.node_hi {
            let lo = offsets[node].max(self.elem_lo);
            let hi = offsets[node + 1].min(self.elem_hi);
            if hi > lo {
                nodes.push(node as u32);
                local.push(hi - self.elem_lo);
            }
        }
        (local, nodes)
    }
}

/// Plan batches of at most `max_elems` elements each over lists delimited
/// by `offsets` (`n + 1` monotone values).
///
/// # Panics
/// Panics if `max_elems == 0`.
pub fn plan_batches(offsets: &[u64], max_elems: usize) -> Vec<Batch> {
    assert!(max_elems > 0, "batch capacity must be positive");
    let total = *offsets.last().expect("offsets non-empty");
    let n = offsets.len() - 1;
    if total == 0 {
        return Vec::new();
    }
    let mut batches = Vec::new();
    let mut elem_lo = 0u64;
    let mut node_cursor = 0usize;
    while elem_lo < total {
        let elem_hi = (elem_lo + max_elems as u64).min(total);
        // Advance to the first list intersecting [elem_lo, ..).
        while node_cursor < n && offsets[node_cursor + 1] <= elem_lo {
            node_cursor += 1;
        }
        let node_lo = node_cursor;
        let mut node_hi = node_lo;
        while node_hi < n && offsets[node_hi] < elem_hi {
            node_hi += 1;
        }
        batches.push(Batch {
            node_lo,
            node_hi,
            elem_lo,
            elem_hi,
        });
        elem_lo = elem_hi;
    }
    batches
}

/// Plan batches of at most `max_elems` elements over the element range
/// `[elem_lo, elem_hi)` only — the mid-pass re-planning primitive: when a
/// device loss changes the fleet's capacity, the remaining (contiguous)
/// element range is re-batched at the survivors' budget while completed
/// batches stay committed. Fragment reconciliation is insensitive to
/// batch boundaries, so the re-cut range composes with the old batches.
///
/// # Panics
/// Panics if `max_elems == 0`, the range is inverted, or `elem_hi`
/// exceeds the total element count.
pub fn plan_batches_range(
    offsets: &[u64],
    elem_lo: u64,
    elem_hi: u64,
    max_elems: usize,
) -> Vec<Batch> {
    assert!(max_elems > 0, "batch capacity must be positive");
    let total = *offsets.last().expect("offsets non-empty");
    assert!(
        elem_lo <= elem_hi && elem_hi <= total,
        "invalid element range [{elem_lo}, {elem_hi}) of {total}"
    );
    let n = offsets.len() - 1;
    let mut batches = Vec::new();
    let mut lo = elem_lo;
    // First list intersecting [elem_lo, ..).
    let mut node_cursor = offsets.partition_point(|&o| o <= elem_lo).saturating_sub(1);
    while lo < elem_hi {
        let hi = (lo + max_elems as u64).min(elem_hi);
        while node_cursor < n && offsets[node_cursor + 1] <= lo {
            node_cursor += 1;
        }
        let node_lo = node_cursor;
        let mut node_hi = node_lo;
        while node_hi < n && offsets[node_hi] < hi {
            node_hi += 1;
        }
        batches.push(Batch {
            node_lo,
            node_hi,
            elem_lo: lo,
            elem_hi: hi,
        });
        lo = hi;
    }
    batches
}

/// Device-memory footprint of one batch element under the given kernel
/// and aggregation mode.
///
/// * [`ShingleKernel::SortCompact`] — each element needs a `u32` input
///   slot, a `u64` packed `(hash, vertex)` workspace slot for the
///   segmented sort, and a second `u32` staging slot so the overlapped
///   pipeline can upload the *next* batch while the current one computes
///   (double buffering): `4 + 8 + 4 = 16` bytes.
/// * [`ShingleKernel::FusedSelect`] — the fused kernel hashes on the fly
///   and keeps only an s-sized insertion buffer per segment (O(s) per
///   segment, not per element), so the 8-byte packed workspace disappears
///   and only the input + staging slots remain: `4 + 4 = 8` bytes.
/// * [`AggregationMode::Device`] adds a 16-byte reserve per element for
///   the on-device record sort: the `u128` packed `(key, node, index)`
///   workspace the batch's records are radix-sorted in before streaming
///   back as a sorted run. Records are bounded per *run*, not per
///   element; the run builder sizes its flush threshold so each run's
///   staging column + packed buffer fit in this reserve (see the
///   `DeviceRunBuilder` sink behind [`crate::exec::Executor`]).
pub const fn bytes_per_elem(kernel: ShingleKernel, aggregation: AggregationMode) -> usize {
    let kernel_bytes = match kernel {
        ShingleKernel::SortCompact => 4 + 8 + 4, // input + packed workspace + staged next input
        ShingleKernel::FusedSelect => 4 + 4,     // input + staged next input
    };
    match aggregation {
        AggregationMode::Host => kernel_bytes,
        AggregationMode::Device => kernel_bytes + 16, // + packed record sort workspace
    }
}

/// Fraction of the available bytes the per-element planner may claim.
///
/// The remainder covers the per-segment top-s output buffers (a few bytes
/// per *list*, not per element — `2·s·4` bytes each — so their worst case
/// is bounded and small) plus stream events and allocator slack. If an
/// adversarial graph of near-empty lists blows past the reserve anyway,
/// the device pass's OOM-retry (drop the staged buffer and re-plan) is
/// the backstop; the headroom just keeps that path cold.
pub const HEADROOM: f64 = 0.8;

/// Batch capacity (elements) for a device with `available_bytes` free
/// under the given kernel's and aggregation mode's per-element footprint
/// (see [`bytes_per_elem`]). FusedSelect's footprint is half of
/// SortCompact's, so it plans ~2× larger batches from the same memory —
/// fewer batches, fewer transfers, fewer kernel launches. Device
/// aggregation's record-sort reserve shrinks batches in exchange for
/// moving the dominant host sort onto the device.
///
/// The same capacity is used by both pipeline modes so the two schedules
/// share one batch plan — the precondition for bit-identical output.
pub fn batch_capacity(
    available_bytes: usize,
    kernel: ShingleKernel,
    aggregation: AggregationMode,
) -> usize {
    (((available_bytes as f64) * HEADROOM) as usize / bytes_per_elem(kernel, aggregation)).max(1)
}

/// Visibility record for a device pass's batch plan: how the capacity
/// model split the work, so memory-driven splits are never silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Number of batches the pass was split into.
    pub n_batches: u64,
    /// Elements in the largest batch.
    pub max_batch_elems: u64,
    /// Planned per-batch element capacity ([`batch_capacity`]).
    pub capacity_elems: u64,
    /// Device bytes per element charged by the active kernel
    /// ([`bytes_per_elem`]).
    pub elem_footprint_bytes: u64,
}

impl BatchStats {
    /// Stats for a plan produced with the given capacity, kernel and
    /// aggregation mode.
    pub fn from_plan(
        batches: &[Batch],
        capacity: usize,
        kernel: ShingleKernel,
        aggregation: AggregationMode,
    ) -> Self {
        BatchStats {
            n_batches: batches.len() as u64,
            max_batch_elems: batches
                .iter()
                .map(|b| b.n_elements() as u64)
                .max()
                .unwrap_or(0),
            capacity_elems: capacity as u64,
            elem_footprint_bytes: bytes_per_elem(kernel, aggregation) as u64,
        }
    }

    /// Worst-case device bytes the plan's largest batch occupies in
    /// per-element buffers.
    pub fn max_batch_footprint_bytes(&self) -> u64 {
        self.max_batch_elems * self.elem_footprint_bytes
    }

    /// Merge stats from another pass run with the same plan parameters
    /// (used by multi-GPU, where devices each run a subset of batches).
    pub fn merge(&mut self, other: &BatchStats) {
        self.n_batches += other.n_batches;
        self.max_batch_elems = self.max_batch_elems.max(other.max_batch_elems);
        self.capacity_elems = self.capacity_elems.max(other.capacity_elems);
        self.elem_footprint_bytes = self.elem_footprint_bytes.max(other.elem_footprint_bytes);
    }
}

impl std::fmt::Display for BatchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} batch(es), max {} elems (cap {} elems @ {} B/elem, peak {} B)",
            self.n_batches,
            self.max_batch_elems,
            self.capacity_elems,
            self.elem_footprint_bytes,
            self.max_batch_footprint_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Lists: [0..3), [3..3) empty, [3..8), [8..10)
    const OFFSETS: [u64; 5] = [0, 3, 3, 8, 10];

    #[test]
    fn single_batch_when_capacity_suffices() {
        let b = plan_batches(&OFFSETS, 100);
        assert_eq!(b.len(), 1);
        assert_eq!(
            b[0],
            Batch {
                node_lo: 0,
                node_hi: 4,
                elem_lo: 0,
                elem_hi: 10
            }
        );
        assert!(!b[0].first_is_fragment(&OFFSETS));
        assert!(!b[0].last_is_fragment(&OFFSETS));
    }

    #[test]
    fn batches_cover_all_elements_disjointly() {
        for cap in [1usize, 2, 3, 4, 7, 10, 50] {
            let bs = plan_batches(&OFFSETS, cap);
            let mut cursor = 0u64;
            for b in &bs {
                assert_eq!(b.elem_lo, cursor, "cap {cap}");
                assert!(b.n_elements() <= cap);
                assert!(b.n_elements() > 0);
                cursor = b.elem_hi;
            }
            assert_eq!(cursor, 10);
        }
    }

    #[test]
    fn split_list_flagged_as_fragment() {
        // Capacity 4: batch0 = [0,4) → splits list 2 ([3..8)).
        let bs = plan_batches(&OFFSETS, 4);
        assert!(bs[0].last_is_fragment(&OFFSETS));
        assert!(bs[1].first_is_fragment(&OFFSETS));
    }

    #[test]
    fn segments_are_clamped_intersections() {
        let bs = plan_batches(&OFFSETS, 4);
        // Batch 0: elements [0,4): list 0 fully (0..3), list 2 partially (3..4).
        let (local, nodes) = bs[0].segments(&OFFSETS);
        assert_eq!(nodes, vec![0, 2]); // empty list 1 skipped
        assert_eq!(local, vec![0, 3, 4]);
        // Batch 1: elements [4,8): remainder of list 2.
        let (local, nodes) = bs[1].segments(&OFFSETS);
        assert_eq!(nodes, vec![2]);
        assert_eq!(local, vec![0, 4]);
        // Batch 2: elements [8,10): list 3.
        let (local, nodes) = bs[2].segments(&OFFSETS);
        assert_eq!(nodes, vec![3]);
        assert_eq!(local, vec![0, 2]);
    }

    #[test]
    fn list_longer_than_capacity_spans_many_batches() {
        let offsets = [0u64, 25];
        let bs = plan_batches(&offsets, 10);
        assert_eq!(bs.len(), 3);
        for b in &bs {
            let (_, nodes) = b.segments(&offsets);
            assert_eq!(nodes, vec![0]);
        }
        assert!(bs[0].last_is_fragment(&offsets));
        assert!(bs[1].first_is_fragment(&offsets));
        assert!(bs[1].last_is_fragment(&offsets));
        assert!(bs[2].first_is_fragment(&offsets));
    }

    #[test]
    fn empty_graph_no_batches() {
        assert!(plan_batches(&[0, 0, 0], 8).is_empty());
    }

    #[test]
    fn range_replan_matches_full_plan_from_the_cut() {
        // Re-batching the tail of a plan from any batch boundary must
        // reproduce exactly what planning the suffix range would give.
        for cap in [1usize, 2, 3, 4, 7, 10] {
            let full = plan_batches(&OFFSETS, cap);
            for start in &full {
                let tail = plan_batches_range(&OFFSETS, start.elem_lo, 10, cap);
                let expect: Vec<Batch> = full
                    .iter()
                    .filter(|b| b.elem_lo >= start.elem_lo)
                    .copied()
                    .collect();
                assert_eq!(tail, expect, "cap {cap}, from {}", start.elem_lo);
            }
        }
        // A *different* capacity re-cuts the same element range.
        let tail = plan_batches_range(&OFFSETS, 4, 10, 2);
        let mut cursor = 4u64;
        for b in &tail {
            assert_eq!(b.elem_lo, cursor);
            assert!(b.n_elements() <= 2 && b.n_elements() > 0);
            cursor = b.elem_hi;
        }
        assert_eq!(cursor, 10);
        // Mid-list start is flagged as a fragment continuation.
        assert!(tail[0].first_is_fragment(&OFFSETS));
        assert!(plan_batches_range(&OFFSETS, 5, 5, 3).is_empty());
    }

    #[test]
    fn capacity_model_positive_and_monotone() {
        for kernel in [ShingleKernel::SortCompact, ShingleKernel::FusedSelect] {
            for aggregation in [AggregationMode::Host, AggregationMode::Device] {
                let small = batch_capacity(64 * 1024, kernel, aggregation);
                let large = batch_capacity(5 * 1024 * 1024 * 1024, kernel, aggregation);
                assert!(small >= 1);
                assert!(large > small);
                // 5 GB device → batches of a few hundred million elements.
                assert!(large > 100_000_000);
            }
        }
    }

    #[test]
    fn fused_select_doubles_capacity() {
        assert_eq!(
            bytes_per_elem(ShingleKernel::SortCompact, AggregationMode::Host),
            16
        );
        assert_eq!(
            bytes_per_elem(ShingleKernel::FusedSelect, AggregationMode::Host),
            8
        );
        let bytes = 5usize * 1024 * 1024 * 1024;
        let sort = batch_capacity(bytes, ShingleKernel::SortCompact, AggregationMode::Host);
        let select = batch_capacity(bytes, ShingleKernel::FusedSelect, AggregationMode::Host);
        assert_eq!(select, sort * 2);
    }

    #[test]
    fn device_aggregation_reserves_record_sort_workspace() {
        assert_eq!(
            bytes_per_elem(ShingleKernel::SortCompact, AggregationMode::Device),
            32
        );
        assert_eq!(
            bytes_per_elem(ShingleKernel::FusedSelect, AggregationMode::Device),
            24
        );
        let bytes = 5usize * 1024 * 1024 * 1024;
        for kernel in [ShingleKernel::SortCompact, ShingleKernel::FusedSelect] {
            let host = batch_capacity(bytes, kernel, AggregationMode::Host);
            let device = batch_capacity(bytes, kernel, AggregationMode::Device);
            assert!(device < host, "the reserve must shrink batches");
        }
    }

    #[test]
    fn batch_stats_describe_the_plan() {
        let bs = plan_batches(&OFFSETS, 4);
        let stats =
            BatchStats::from_plan(&bs, 4, ShingleKernel::SortCompact, AggregationMode::Host);
        assert_eq!(stats.n_batches, 3);
        assert_eq!(stats.max_batch_elems, 4);
        assert_eq!(stats.capacity_elems, 4);
        assert_eq!(stats.elem_footprint_bytes, 16);
        assert_eq!(stats.max_batch_footprint_bytes(), 64);
        let text = stats.to_string();
        assert!(text.contains("3 batch(es)"), "{text}");
        assert!(text.contains("16 B/elem"), "{text}");

        let mut merged = stats;
        merged.merge(&BatchStats::from_plan(
            &plan_batches(&OFFSETS, 8),
            8,
            ShingleKernel::FusedSelect,
            AggregationMode::Host,
        ));
        assert_eq!(merged.n_batches, 3 + 2);
        assert_eq!(merged.max_batch_elems, 8);
    }

    #[test]
    fn empty_plan_stats_are_zero() {
        let stats =
            BatchStats::from_plan(&[], 7, ShingleKernel::FusedSelect, AggregationMode::Host);
        assert_eq!(stats.n_batches, 0);
        assert_eq!(stats.max_batch_elems, 0);
        assert_eq!(stats.max_batch_footprint_bytes(), 0);
    }
}
