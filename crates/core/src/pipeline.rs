//! Algorithm 2 — the full gpClust driver.
//!
//! The division of labor the paper prescribes: "CPU is used to aggregate
//! the data for the GPU, and GPU is responsible of the compute-intensive
//! work." Concretely:
//!
//! 1. CPU loads the input graph (disk I/O, optional here);
//! 2. first-level shingling on the GPU, batch by batch — the pipeline
//!    lowers its parameters into a [`Plan`] and hands per-pass
//!    [`crate::plan::PassPlan`]s to the [`Executor`];
//! 3. CPU aggregates the returned shingles into the shingle graph;
//! 4. second-level shingling on the GPU over that graph;
//! 5. CPU aggregates again and reports dense subgraphs (Phase III) — or,
//!    under [`ComponentsMode::Device`], the records reduce to Phase-III
//!    union edges on the fly and the GPU pointer-jumping kernel labels the
//!    components, so neither the shingle sort (device aggregation + device
//!    inversion) nor the cluster merge round-trips through the host.
//!
//! Every stage is timed into [`StageTimes`]; device-side times come from
//! the simulator's cost model, host-side times from wall-clock stopwatches
//! (with the wall time spent *executing kernels on the pool* subtracted
//! from the CPU column — that time stands in for the device, not the host).

use crate::aggregate::fragment_run;
use crate::batch::BatchStats;
use crate::checkpoint::{
    self, write_pool, CheckpointConfig, Checkpointer, CrashInjector, CrashSite, PoolMeta, Reuse,
    RunMeta,
};
use crate::exec::{ClusterLabels, Executor, PassInput, Sink};
use crate::minwise::unpack_element;
use crate::params::{AggregationMode, ComponentsMode, PipelineMode, ShinglingParams};
use crate::plan::{PassPlan, Plan};
use crate::report;
use crate::resilience::with_oom_backoff;
use crate::shingle::{AdjacencyInput, RawShingles};
use crate::spill::{
    self, merge_external_runs, route_shard_records, ExternalRun, SpillStats, SpilledRun,
};
use crate::timing::{RecoveryReport, ResidentGauge, StageTimes};
use gpclust_gpu::{CountersSnapshot, DeviceError, Gpu};
use gpclust_graph::{io as graph_io, Csr, Partition, ShingleGraph, UnionFind};
use std::borrow::Cow;
use std::path::Path;
use std::time::Instant;

/// Where a shard's flat adjacency elements come from: the resident CSR
/// (borrowed windows, no copies) or the opened graph file (each window
/// read on demand, so the target array is never fully resident).
enum ShardSource<'a> {
    Resident(&'a [u32]),
    File(&'a graph_io::CsrFile),
}

impl ShardSource<'_> {
    /// The element window `[lo, hi)` in global positions.
    fn window(&self, lo: u64, hi: u64) -> Result<Cow<'_, [u32]>, DeviceError> {
        match self {
            ShardSource::Resident(flat) => Ok(Cow::Borrowed(&flat[lo as usize..hi as usize])),
            ShardSource::File(f) => f
                .read_targets(lo, hi)
                .map(Cow::Owned)
                .map_err(spill::io_to_device),
        }
    }

    /// Total elements the source covers.
    fn n_elements(&self) -> u64 {
        match self {
            ShardSource::Resident(flat) => flat.len() as u64,
            ShardSource::File(f) => f.n_targets(),
        }
    }
}

/// `n_batches` batch indices carved into `n_shards` contiguous chunks of
/// near-equal length (the vertex-range shards of the out-of-core pass —
/// the same carving [`PassPlan::subplan`] applies to device shares).
fn shard_chunks(n_batches: usize, n_shards: usize) -> Vec<std::ops::Range<usize>> {
    let k = n_shards.clamp(1, n_batches.max(1));
    (0..k)
        .map(|i| (i * n_batches / k)..((i + 1) * n_batches / k))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Estimated working-set bytes one batch contributes to its shard: its
/// element window, the record buffers of every emitting list that
/// *starts* inside the window (same per-record pricing as
/// [`Plan::estimate_pass_resident_bytes`]), and one transient raw record
/// per boundary fragment (a list split across batch boundaries emits a
/// fragment record in every batch it touches).
fn batch_byte_cost(offsets: &[u64], batch: &crate::batch::Batch, s: usize, trials: u64) -> u64 {
    let (lo, hi) = (batch.elem_lo, batch.elem_hi);
    let heads = offsets.len() - 1;
    let a = offsets[..heads].partition_point(|&o| o < lo);
    let b = offsets[..heads].partition_point(|&o| o < hi);
    let emitting = (a..b)
        .filter(|&v| (offsets[v + 1] - offsets[v]) as usize >= s)
        .count() as u64;
    let fragments =
        batch.first_is_fragment(offsets) as u64 + batch.last_is_fragment(offsets) as u64;
    4 * (hi - lo) + (emitting + fragments) * trials * (32 + 16 * s as u64)
}

/// The nodes whose adjacency list crosses a *shard* boundary — the only
/// records host aggregation must pool across shards (fragments split
/// across batches *within* one shard reconcile locally in that shard's
/// [`fragment_run`]). A chunk's first batch starting mid-list marks its
/// head node as split.
fn shard_split_nodes(
    batches: &[crate::batch::Batch],
    chunks: &[std::ops::Range<usize>],
    offsets: &[u64],
) -> Vec<u32> {
    let mut nodes: Vec<u32> = chunks
        .iter()
        .filter(|c| batches[c.start].first_is_fragment(offsets))
        .map(|c| batches[c.start].node_lo as u32)
        .collect();
    nodes.dedup();
    nodes
}

/// Estimated bytes the split-node fragment pool holds by the end of the
/// sharded pass. Unlike per-shard buffers the pool persists across the
/// whole pass (fragments reconcile only in the final run), so the greedy
/// carving reserves this amount off the budget up front. Under device
/// aggregation every *batch*-boundary fragment pools (the card flags
/// them); under host aggregation only *shard*-boundary nodes do. Each
/// incidence is priced as two raw fragment records per trial plus the
/// packed share of the final in-memory run.
fn pool_byte_cost(incidences: u64, s: usize, trials: u64) -> u64 {
    incidences * trials * (2 * (16 + 8 * s as u64) + (16 + 4 * s as u64))
}

/// Carve the batch list into shards by *estimated bytes* rather than by
/// count: accumulate batches greedily until the next one would push the
/// shard's working-set estimate past `budget`. Record density varies
/// across the vertex range (many short emitting lists cost far more than
/// the same elements in one long list), so equal-count chunks can blow
/// the budget on a dense shard; equal-cost chunks keep the observed peak
/// under it. A single batch whose own estimate exceeds the budget still
/// forms a (best-effort) shard of its own.
fn budget_chunks(
    batches: &[crate::batch::Batch],
    offsets: &[u64],
    s: usize,
    trials: u64,
    budget: u64,
) -> Vec<std::ops::Range<usize>> {
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, b) in batches.iter().enumerate() {
        let cost = batch_byte_cost(offsets, b, s, trials);
        if i > start && acc + cost > budget {
            chunks.push(start..i);
            start = i;
            acc = 0;
        }
        acc += cost;
    }
    if start < batches.len() {
        chunks.push(start..batches.len());
    }
    chunks
}

/// The GPU-accelerated Shingling clustering pipeline.
#[derive(Debug, Clone)]
pub struct GpClust {
    params: ShinglingParams,
    gpu: Gpu,
    checkpoint: Option<CheckpointConfig>,
}

/// Everything a gpClust run produces.
#[derive(Debug, Clone)]
pub struct GpClustReport {
    /// The reported clusters (union–find partition mode).
    pub partition: Partition,
    /// Per-component times (Table I row).
    pub times: StageTimes,
    /// Device telemetry for the run.
    pub counters: CountersSnapshot,
    /// Distinct first-level shingles (|S1|).
    pub first_level_shingles: usize,
    /// Second-level `<shingle, generator>` records streamed (|E″|). The
    /// distinct-|S2| count is not tracked: pass II streams straight into
    /// the union–find without materializing G″.
    pub second_level_records: u64,
    /// How the capacity model split each device pass into batches
    /// (`[pass I, pass II]`) under the configured kernel.
    pub batch_stats: [BatchStats; 2],
}

impl GpClust {
    /// Create a pipeline on `gpu` with validated `params`.
    pub fn new(params: ShinglingParams, gpu: Gpu) -> Result<Self, String> {
        params.validate()?;
        Ok(GpClust {
            params,
            gpu,
            checkpoint: None,
        })
    }

    /// Checkpoint the run per `cfg`: sharded Pass-I progress commits to a
    /// durable manifest journal as each shard's runs seal, and a resuming
    /// config re-executes only the incomplete tail (see
    /// [`crate::checkpoint`]).
    pub fn with_checkpoint(mut self, cfg: CheckpointConfig) -> Self {
        self.checkpoint = Some(cfg);
        self
    }

    /// The configured parameters.
    pub fn params(&self) -> &ShinglingParams {
        &self.params
    }

    /// The device handle.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Cluster an in-memory graph (no disk stage).
    pub fn cluster(&self, g: &Csr) -> Result<GpClustReport, DeviceError> {
        self.run(g, 0.0)
    }

    /// Load a binary graph from `path` (timed as Disk I/O) and cluster it.
    ///
    /// Under a bounded [`crate::params::MemoryBudget`] only the offset
    /// array is materialized up front; each Pass-I shard's target window
    /// is read from the file on demand ([`graph_io::CsrFile`]), so the
    /// input graph is never fully resident.
    pub fn cluster_from_file<P: AsRef<Path>>(
        &self,
        path: P,
    ) -> Result<GpClustReport, std::io::Error> {
        let start = Instant::now();
        let res = if self.params.mem_budget.or_env().is_unbounded() {
            let g = graph_io::read_file(path)?;
            let disk = start.elapsed().as_secs_f64();
            self.run(&g, disk)
        } else {
            let f = graph_io::CsrFile::open(path)?;
            let disk = start.elapsed().as_secs_f64();
            self.run_parts(f.offsets(), ShardSource::File(&f), disk)
        };
        res.map_err(|e| std::io::Error::new(std::io::ErrorKind::OutOfMemory, e.to_string()))
    }

    fn run(&self, g: &Csr, disk_io: f64) -> Result<GpClustReport, DeviceError> {
        self.run_parts(g.offsets(), ShardSource::Resident(g.flat()), disk_io)
    }

    /// Out-of-core Pass I: stream contiguous batch-range shards through
    /// the executor with [`Sink::Gather`], spill each shard's sorted run,
    /// and reconstruct the shingle graph with one external k-way merge.
    /// At no point is more than one shard's element window, its record
    /// buffers, and the merge frontier resident — the [`ResidentGauge`]
    /// records the observed peak.
    ///
    /// Bit-identity with the resident [`Sink::Aggregate`] path follows
    /// the multi-device scheme's argument: complete records pack into
    /// per-shard runs in shard order (a `(node, trial)` record lives in
    /// exactly one run), records of nodes split across shard boundaries
    /// pool globally and form the final run, and the external merge pops
    /// in the same `((key, node), run)` order the in-memory merge does.
    /// Under [`ComponentsMode::Device`] the pass-I inversion falls back
    /// to this host external merge (the device inversion needs resident
    /// runs, which is exactly what the budget rules out) — bit-identical
    /// by the repo's schedule-axis contract; Phase III still runs on the
    /// device.
    #[allow(clippy::too_many_arguments)]
    fn sharded_pass1(
        exec: &Executor,
        pass: &PassPlan,
        offsets: &[u64],
        source: &ShardSource<'_>,
        family: &crate::minwise::HashFamily,
        chunks: Vec<std::ops::Range<usize>>,
        pass_rec: &mut RecoveryReport,
        gauge: &mut ResidentGauge,
        spill_stats: &mut SpillStats,
        mut ckpt: Option<&mut Checkpointer>,
        crash: Option<&CrashInjector>,
        input_fp: u64,
    ) -> Result<(ShingleGraph, f64, f64), DeviceError> {
        let s = pass.s;
        let split = shard_split_nodes(&pass.batches, &chunks, offsets);
        let mut pool = RawShingles::new(s);
        let mut pool_bytes = 0u64;
        let mut runs: Vec<ExternalRun> = Vec::new();
        let mut makespan = 0.0f64;
        let mut agg_seconds = 0.0f64;
        for (key, chunk) in chunks.into_iter().enumerate() {
            let key = key as u64;
            // A resuming checkpoint answers for completed shards: sealed
            // runs re-verify their checksums and rejoin the merge in shard
            // order; the pool segment replays this shard's fragment
            // contribution exactly where the uninterrupted run put it. A
            // verification failure counts as detected corruption and the
            // shard simply re-executes.
            let mut reused = false;
            if let Some(ck) = ckpt.as_deref_mut() {
                match ck.take_entry(key, input_fp, s) {
                    Reuse::Hit(e) => {
                        pass_rec.resumed_shards += 1;
                        for run in e.runs {
                            runs.push(ExternalRun::Disk(run));
                        }
                        pool.append(&e.pool);
                        reused = true;
                    }
                    Reuse::Invalid => pass_rec.checksum_failures += 1,
                    Reuse::Miss => {}
                }
            }
            if !reused {
                let lo = pass.batches[chunk.start].elem_lo;
                let hi = pass.batches[chunk.end - 1].elem_hi;
                let window = source.window(lo, hi)?;
                let window_bytes = 4 * (hi - lo);
                gauge.charge(window_bytes);
                let sub = pass.subplan(chunk.collect());
                let r = exec.run(
                    &sub,
                    PassInput::window(offsets, &window, lo),
                    family,
                    pass_rec,
                    Sink::Gather,
                )?;
                if let Some((_, e)) = r.unfinished {
                    // Single executor: no surviving device to redistribute to.
                    return Err(e);
                }
                makespan += r.makespan;
                agg_seconds += r.agg_kernel_seconds;
                let raw_bytes = r.raw.approx_bytes() as u64;
                gauge.charge(raw_bytes);
                let pool_start = pool.len();
                let mut metas: Vec<RunMeta> = Vec::new();
                // Checkpointed shards seal into the checkpoint directory
                // (durable, manifest-owned); scratch shards spill to the
                // drop-cleaned temp dir.
                let mut spill_run = |run: &crate::aggregate::SortedRun,
                                     k: usize,
                                     ckpt: Option<&mut Checkpointer>,
                                     spill_stats: &mut SpillStats|
                 -> Result<SpilledRun, DeviceError> {
                    match ckpt {
                        Some(ck) => {
                            let sp = SpilledRun::write_at(
                                ck.run_path(key, k),
                                s,
                                run,
                                spill_stats,
                                true,
                            )
                            .map_err(spill::io_to_device)?;
                            metas.push(RunMeta::of(ck.run_file(key, k), &sp));
                            Ok(sp)
                        }
                        None => SpilledRun::write(s, run, spill_stats).map_err(spill::io_to_device),
                    }
                };
                match pass.aggregation {
                    // Device aggregation: the card already packed + sorted the
                    // shard's complete records into runs; only fragments came
                    // back raw. Spill the runs in shard order.
                    AggregationMode::Device => {
                        for (k, run) in r.runs.iter().enumerate() {
                            gauge.charge(spill::run_bytes(run));
                            let sp = spill_run(run, k, ckpt.as_deref_mut(), spill_stats)?;
                            gauge.discharge(spill::run_bytes(run));
                            runs.push(ExternalRun::Disk(sp));
                        }
                        pool.append(&r.raw);
                        drop(r);
                        gauge.discharge(raw_bytes);
                    }
                    // Host aggregation: Gather returns every record with the
                    // fragment flags lost — a record must pool iff its node's
                    // list crosses a *shard* boundary, so route by the
                    // precomputed split-node set (fragments split across
                    // batches within this shard merge locally in the
                    // `fragment_run` below). The gathered buffer drops as soon
                    // as routing copies it out, so it never coexists with the
                    // packed run.
                    AggregationMode::Host => {
                        let mut interior = RawShingles::new(s);
                        route_shard_records(&r.raw, &split, &mut interior, &mut pool);
                        let interior_bytes = interior.approx_bytes() as u64;
                        gauge.charge(interior_bytes);
                        drop(r);
                        gauge.discharge(raw_bytes);
                        if !interior.is_empty() {
                            let run = fragment_run(&interior, pass.par_sort_min);
                            gauge.charge(spill::run_bytes(&run));
                            let sp = spill_run(&run, 0, ckpt.as_deref_mut(), spill_stats)?;
                            gauge.discharge(spill::run_bytes(&run));
                            runs.push(ExternalRun::Disk(sp));
                        }
                        gauge.discharge(interior_bytes);
                    }
                }
                // Seal, then commit: the shard's pool delta is made durable
                // alongside its runs, the seal crash site fires with
                // everything synced but nothing committed (resume re-runs
                // this shard), and the commit crash site fires with the
                // manifest entry journaled (resume skips it).
                if let Some(ck) = ckpt.as_deref_mut() {
                    let pool_meta = if pool.len() > pool_start {
                        let (records, crc) =
                            write_pool(&ck.pool_path(key), &pool, pool_start, spill_stats)
                                .map_err(spill::io_to_device)?;
                        Some(PoolMeta {
                            file: ck.pool_file(key),
                            records,
                            crc,
                        })
                    } else {
                        None
                    };
                    if let Some(cr) = crash {
                        cr.strike(CrashSite::ShardSeal)?;
                    }
                    ck.commit_entry(key, input_fp, metas, pool_meta)
                        .map_err(spill::io_to_device)?;
                    if let Some(cr) = crash {
                        cr.strike(CrashSite::ManifestCommit)?;
                    }
                }
                gauge.discharge(window_bytes);
            }
            // The shard's window drops here; the pool persists, so keep
            // its growth charged.
            let new_pool_bytes = pool.approx_bytes() as u64;
            gauge.charge(new_pool_bytes - pool_bytes);
            pool_bytes = new_pool_bytes;
        }
        if let Some(cr) = crash {
            cr.strike(CrashSite::Merge)?;
        }
        // Fragments of split nodes reconcile once, in the final run — the
        // same "pooled fragments last" position the multi-device driver
        // proved bit-identical.
        if !pool.is_empty() {
            let run = fragment_run(&pool, pass.par_sort_min);
            gauge.charge(spill::run_bytes(&run));
            runs.push(ExternalRun::Mem(run));
        }
        let graph = merge_external_runs(s, runs, spill_stats).map_err(spill::io_to_device)?;
        Ok((graph, makespan, agg_seconds))
    }

    fn run_parts(
        &self,
        offsets: &[u64],
        source: ShardSource<'_>,
        disk_io: f64,
    ) -> Result<GpClustReport, DeviceError> {
        self.gpu.reset_counters();
        let n = offsets.len() - 1;
        let wall_start = Instant::now();
        let mut pipelined = 0.0f64;
        let mut device_aggregation = 0.0f64;
        let mut recovery = RecoveryReport::default();
        let mut gauge = ResidentGauge::new();
        let mut spill_stats = SpillStats::default();
        // Resolve the schedule axes — cost-model argmin under `--plan
        // auto`, pass-through under manual planning — and drive the whole
        // run from the *effective* parameters.
        let (plan, effective) =
            Plan::lower_auto(&self.params, std::slice::from_ref(&self.gpu), offsets, n)?;
        let predicted = plan.predicted;
        let policy = plan.policy;
        let exec = Executor::new(&self.gpu);

        // Open the checkpoint journal (fresh or resuming) before any work:
        // a resume refuses here, with a typed error, if the manifest was
        // written for a different input or under different plan axes. The
        // fingerprint folds in a bounded head/tail sample of the target
        // array — offsets alone cannot separate graphs that share a
        // degree sequence — read through the shard source so file-backed
        // inputs pay at most two small windows.
        let mut input_fp = 0u64;
        let mut ckpt: Option<Checkpointer> = match &self.checkpoint {
            Some(cfg) => {
                let m2 = *offsets.last().unwrap_or(&0);
                let k = checkpoint::FINGERPRINT_SAMPLE.min(m2);
                let head = source.window(0, k)?;
                let tail = source.window(m2 - k, m2)?;
                input_fp = checkpoint::fingerprint_csr(offsets, &head, &tail);
                let axes = checkpoint::axes_record(&effective, plan.mem_budget, 1);
                Some(Checkpointer::open(cfg, input_fp, &axes).map_err(checkpoint::to_device)?)
            }
            None => None,
        };
        let crash = self
            .checkpoint
            .as_ref()
            .map(|cfg| CrashInjector::new(cfg.crash.clone()));

        // Pass I on the device, aggregated per the plan's sink axis:
        // `Host` streams the records into the CPU-side global sort,
        // `Device` packs and radix-sorts them on the card and k-way-merges
        // the sorted runs — bit-identical shingle graphs, but the dominant
        // comparison sort leaves the CPU column. Either way the pass runs
        // under the fault policy: an `OutOfMemory` halves the planned batch
        // capacity and re-plans the whole pass (each executor run rebuilds
        // its sink state, so a re-plan never replays half-emitted records).
        // Under a bounded memory budget the pass instead runs in
        // vertex-range shards with its runs spilled to disk — bit-identical
        // either way (`sharded_pass1`).
        let s1 = effective.s1;
        let family1 = effective.family_pass1();
        let mut pass_rec = RecoveryReport::default();
        let mut backoff_rec = RecoveryReport::default();
        let (first, stats1) = {
            let (first, stats1, makespan, agg_s) =
                with_oom_backoff(&policy, &mut backoff_rec, plan.capacity, |cap| {
                    let n_elems = source.n_elements();
                    let n_shards = if plan.mem_budget.is_unbounded() {
                        1
                    } else {
                        let est = Plan::estimate_pass_resident_bytes(offsets, s1, effective.c1);
                        // A shard must span at least one element, so the
                        // element count is the only hard ceiling on how
                        // finely the pass can be carved.
                        plan.mem_budget
                            .resolve_shards(est, (n_elems as usize).max(1))
                    };
                    if n_shards <= 1 {
                        let pass = plan.pass(s1, plan.aggregation, cap, offsets);
                        let flat = source.window(0, n_elems)?;
                        let r = exec.run(
                            &pass,
                            PassInput::window(offsets, &flat, 0),
                            &family1,
                            &mut pass_rec,
                            Sink::Aggregate,
                        )?;
                        let graph = r.graph.expect("aggregate sink yields a graph");
                        Ok((graph, r.stats, r.makespan, r.agg_kernel_seconds))
                    } else {
                        // Shards are element ranges, so the batch list must
                        // be comfortably longer than the shard count: cap
                        // the pass capacity at a quarter of one shard's
                        // element share so the greedy byte-driven carving
                        // below has fine-grained pieces to balance with.
                        // Bit-identity across batch capacities is part of
                        // the schedule contract, so the re-plan cannot
                        // change the result.
                        let shard_cap =
                            cap.min(n_elems.div_ceil(4 * n_shards as u64).max(1) as usize);
                        let pass = plan.pass(s1, plan.aggregation, shard_cap, offsets);
                        let chunks = match (plan.mem_budget.shards, plan.mem_budget.bytes) {
                            // A byte budget carves by estimated working-set
                            // cost, with the persistent fragment pool's
                            // share reserved up front (best-effort floor of
                            // a quarter budget when the pool alone would eat
                            // it); an explicit shard count carves by count.
                            (None, Some(b)) if b > 0 => {
                                let trials = effective.c1 as u64;
                                let batches = &pass.batches;
                                let first = budget_chunks(batches, offsets, s1, trials, b);
                                let incidences = match plan.aggregation {
                                    // The card flags fragments per batch
                                    // boundary; the host pools only nodes
                                    // crossing shard boundaries.
                                    AggregationMode::Device => batches
                                        .iter()
                                        .map(|bt| {
                                            bt.first_is_fragment(offsets) as u64
                                                + bt.last_is_fragment(offsets) as u64
                                        })
                                        .sum(),
                                    AggregationMode::Host => {
                                        shard_split_nodes(batches, &first, offsets).len() as u64
                                    }
                                };
                                let reserve = pool_byte_cost(incidences, s1, trials);
                                let target = b.saturating_sub(reserve).max(b / 4);
                                budget_chunks(batches, offsets, s1, trials, target)
                            }
                            _ => shard_chunks(pass.batches.len(), n_shards),
                        };
                        // Entry group for this exact shard carving: the
                        // signature pins the element ranges, so entries
                        // only ever rejoin a resume (or an OOM-backoff
                        // replay) whose shards carve identically — a
                        // changed carving silently starts fresh rather
                        // than refusing the run.
                        if let Some(ck) = ckpt.as_mut() {
                            let mut parts = vec![s1 as u64, shard_cap as u64];
                            for c in &chunks {
                                parts.push(pass.batches[c.start].elem_lo);
                                parts.push(pass.batches[c.end - 1].elem_hi);
                            }
                            ck.begin_group(checkpoint::signature(&parts));
                        }
                        let stats = pass.stats;
                        let (graph, makespan, agg_s) = Self::sharded_pass1(
                            &exec,
                            &pass,
                            offsets,
                            &source,
                            &family1,
                            chunks,
                            &mut pass_rec,
                            &mut gauge,
                            &mut spill_stats,
                            ckpt.as_mut(),
                            crash.as_ref(),
                            input_fp,
                        )?;
                        Ok((graph, stats, makespan, agg_s))
                    }
                })?;
            recovery.merge(&pass_rec);
            recovery.merge(&backoff_rec);
            pipelined += makespan;
            device_aggregation += agg_s;
            (first, stats1)
        };

        // Pass II on the device, streamed straight into Phase III —
        // extracted into `second_pass_partition`, which the incremental
        // engine also re-runs from its merged shingle index.
        let second = second_pass_partition(&exec, &plan, &effective, &first, n, &mut recovery)?;
        let stats2 = second.stats;
        pipelined += second.makespan;
        let device_components = second.device_components;
        let second_level_records = second.second_level_records;
        let partition = second.partition;

        // The run completed: retire the journal and its sealed files. A
        // crash anywhere above leaves the manifest in place for --resume.
        if let Some(ck) = ckpt.take() {
            ck.finalize().map_err(checkpoint::to_device)?;
        }

        let wall = wall_start.elapsed().as_secs_f64();
        let counters = self.gpu.counters();
        recovery.faults_injected = counters.faults_injected;
        // Host time net of the wall time spent standing in for the device
        // — and of the spill traffic, which reports as Disk I/O instead.
        let spill_seconds = spill_stats.write_seconds + spill_stats.read_seconds;
        let cpu = (wall - counters.kernel_wall_seconds - spill_seconds).max(0.0);
        let device_pipelined = match effective.mode {
            PipelineMode::Synchronous => counters.serialized_device_seconds(),
            PipelineMode::Overlapped => pipelined,
        };
        let mut times = StageTimes {
            cpu,
            gpu: counters.kernel_seconds,
            h2d: counters.h2d_seconds,
            d2h: counters.d2h_seconds,
            disk_io: disk_io + spill_seconds,
            device_pipelined,
            device_aggregation,
            device_components,
            recovery,
            peak_resident_bytes: gauge.peak(),
            spilled_bytes: spill_stats.bytes,
            ..Default::default()
        };
        times.record_batch_stats(&stats1);
        times.record_batch_stats(&stats2);
        times.record_prediction(predicted.as_ref());
        Ok(GpClustReport {
            partition,
            times,
            counters,
            first_level_shingles: first.len(),
            second_level_records,
            batch_stats: [stats1, stats2],
        })
    }
}

/// Outcome of Passes II + III run from a first-level shingle graph.
pub(crate) struct SecondPassOutcome {
    /// Pass II batch statistics.
    pub(crate) stats: BatchStats,
    /// Pipelined makespan of Pass II.
    pub(crate) makespan: f64,
    /// Modeled device seconds of the Phase-III components kernels.
    pub(crate) device_components: f64,
    /// Second-level shingle records streamed into Phase III.
    pub(crate) second_level_records: u64,
    /// The clustering.
    pub(crate) partition: Partition,
}

/// Pass II, streamed straight into Phase III's union–find — G″ is never
/// materialized (see report module docs). A backed-off re-plan replays
/// the whole record stream, so each attempt starts from a fresh
/// union–find. Pass II always aggregates on the host (the records feed
/// the union–find, not a sort), so its batch budget is the host-mode
/// capacity. Shared by the batch pipeline and the incremental engine:
/// given the same `first` graph the partition is bit-identical, which is
/// what lets a delta pass stop at the merged shingle index and re-run
/// only these cheap passes.
pub(crate) fn second_pass_partition(
    exec: &Executor<'_>,
    plan: &Plan,
    effective: &ShinglingParams,
    first: &ShingleGraph,
    n: usize,
    recovery: &mut RecoveryReport,
) -> Result<SecondPassOutcome, DeviceError> {
    let mut uf = UnionFind::new(n);
    let mut labels: Option<ClusterLabels> = None;
    let mut second_level_records = 0u64;
    let s2 = effective.s2;
    let family2 = effective.family_pass2();
    let cap2 = plan.capacity_for(AggregationMode::Host);
    let policy = plan.policy;
    let mut pass_rec = RecoveryReport::default();
    let mut backoff_rec = RecoveryReport::default();
    let (stats, makespan, device_components) =
        with_oom_backoff(&policy, &mut backoff_rec, cap2, |cap| {
            let pass = plan.pass(s2, AggregationMode::Host, cap, first.offsets());
            match effective.components {
                ComponentsMode::Host => {
                    uf = UnionFind::new(n);
                    second_level_records = 0;
                    let mut union_record = |_trial: u32, node: u32, pairs: &[u64]| {
                        second_level_records += 1;
                        report::union_second_level_record(
                            &mut uf,
                            first,
                            node,
                            pairs.iter().map(|&p| unpack_element(p)),
                        );
                    };
                    let r = exec.run(
                        &pass,
                        PassInput::of(first),
                        &family2,
                        &mut pass_rec,
                        Sink::Stream(&mut union_record),
                    )?;
                    Ok((r.stats, r.makespan, 0.0))
                }
                // Device-resident Phase III: the records reduce to
                // packed union edges as they stream off the card, and
                // the pointer-jumping kernel labels the components
                // (host union–find only as fault fallback).
                ComponentsMode::Device => {
                    let r = exec.run(
                        &pass,
                        PassInput::of(first),
                        &family2,
                        &mut pass_rec,
                        Sink::Clusters { first, n },
                    )?;
                    let c = r.clusters.expect("clusters sink yields labels");
                    second_level_records = c.records;
                    labels = Some(c);
                    Ok((r.stats, r.makespan, r.cc_kernel_seconds))
                }
            }
        })?;
    recovery.merge(&pass_rec);
    recovery.merge(&backoff_rec);
    let partition = match &labels {
        Some(c) => Partition::from_labels(&c.labels),
        None => Partition::from_union_find(&mut uf),
    };
    Ok(SecondPassOutcome {
        stats,
        makespan,
        device_components,
        second_level_records,
        partition,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialShingling;
    use gpclust_gpu::DeviceConfig;
    use gpclust_graph::generate::{planted_partition, PlantedConfig};

    fn graph(seed: u64) -> Csr {
        planted_partition(&PlantedConfig {
            group_sizes: vec![25, 18, 30, 12],
            n_noise_vertices: 15,
            p_intra: 0.8,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 0.5,
            seed,
        })
        .graph
    }

    #[test]
    fn gpu_pipeline_matches_serial_exactly() {
        let g = graph(21);
        let params = ShinglingParams::light(77);
        let serial = SerialShingling::new(params).unwrap().cluster(&g);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 4);
        let report = GpClust::new(params, gpu).unwrap().cluster(&g).unwrap();
        assert_eq!(report.partition, serial);
    }

    #[test]
    fn gpu_pipeline_matches_serial_under_tiny_memory() {
        let g = graph(22);
        let params = ShinglingParams::light(78);
        let serial = SerialShingling::new(params).unwrap().cluster(&g);
        let gpu = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
        let report = GpClust::new(params, gpu).unwrap().cluster(&g).unwrap();
        assert_eq!(report.partition, serial);
    }

    #[test]
    fn overlapped_mode_same_partition_smaller_device_path() {
        let g = graph(25);
        let params = ShinglingParams::light(81);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let sync_report = GpClust::new(params, gpu).unwrap().cluster(&g).unwrap();
        // Synchronous mode reports the serialized sum as its "pipelined"
        // path — there is no overlap to claim.
        assert!(
            (sync_report.times.device_pipelined - sync_report.times.device_serialized()).abs()
                < 1e-12
        );

        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let ovl = GpClust::new(params.with_mode(PipelineMode::Overlapped), gpu)
            .unwrap()
            .cluster(&g)
            .unwrap();
        assert_eq!(ovl.partition, sync_report.partition);
        // Same work was modeled (identical totals) …
        assert!(
            (ovl.times.device_serialized() - sync_report.times.device_serialized()).abs() < 1e-9
        );
        // … but the overlapped schedule's critical path is strictly shorter.
        assert!(ovl.times.device_pipelined < ovl.times.device_serialized());
        assert!(ovl.times.device_pipelined >= ovl.times.gpu - 1e-9);
        assert!(ovl.times.total_pipelined() < ovl.times.total());
        // The async copies are all accounted in the overlap sub-accounts.
        assert!(ovl.counters.h2d_overlapped_seconds > 0.0);
        assert!(ovl.counters.d2h_overlapped_seconds > 0.0);
    }

    /// Device-resident components must reproduce the serial oracle exactly
    /// across schedule × aggregation combinations, with the Phase-III
    /// kernel time broken out and no host fallback taken.
    #[test]
    fn device_components_match_serial_exactly() {
        let g = graph(28);
        let params = ShinglingParams::light(84);
        let serial = SerialShingling::new(params).unwrap().cluster(&g);
        let host_report = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        assert_eq!(host_report.partition, serial);
        assert_eq!(host_report.times.device_components, 0.0);
        for (cfg, mode, agg) in [
            (
                DeviceConfig::tesla_k20(),
                PipelineMode::Synchronous,
                AggregationMode::Host,
            ),
            (
                DeviceConfig::tesla_k20(),
                PipelineMode::Synchronous,
                AggregationMode::Device,
            ),
            (
                DeviceConfig::tesla_k20(),
                PipelineMode::Overlapped,
                AggregationMode::Device,
            ),
        ] {
            let gpu = Gpu::with_workers(cfg, 2);
            let p = params
                .with_mode(mode)
                .with_aggregation(agg)
                .with_components(ComponentsMode::Device);
            let report = GpClust::new(p, gpu).unwrap().cluster(&g).unwrap();
            assert_eq!(report.partition, serial, "{mode:?}/{agg:?}");
            assert_eq!(
                report.second_level_records, host_report.second_level_records,
                "{mode:?}/{agg:?}"
            );
            assert!(
                report.times.device_components > 0.0,
                "{mode:?}/{agg:?}: Phase-III kernel time must be broken out"
            );
            assert!(report.times.device_components <= report.times.gpu + 1e-12);
            assert_eq!(report.times.recovery.host_fallbacks, 0, "{mode:?}/{agg:?}");
        }
        // On the 64 KiB test device the finish-time edge upload cannot fit,
        // so Phase III OOM-degrades to the bit-identical host union–find —
        // counted as a fallback, with no components kernel time claimed.
        let tiny = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
        let report = GpClust::new(params.with_components(ComponentsMode::Device), tiny)
            .unwrap()
            .cluster(&g)
            .unwrap();
        assert_eq!(report.partition, serial);
        assert_eq!(report.times.device_components, 0.0);
        assert!(report.times.recovery.host_fallbacks >= 1);
    }

    #[test]
    fn fused_select_kernel_matches_sort_compact_end_to_end() {
        use crate::params::ShingleKernel;
        let g = graph(26);
        let params = ShinglingParams::light(82);
        for mode in [PipelineMode::Synchronous, PipelineMode::Overlapped] {
            let sort_report = GpClust::new(
                params.with_mode(mode),
                Gpu::with_workers(DeviceConfig::tiny_test_device(), 2),
            )
            .unwrap()
            .cluster(&g)
            .unwrap();
            let sel_report = GpClust::new(
                params
                    .with_mode(mode)
                    .with_kernel(ShingleKernel::FusedSelect),
                Gpu::with_workers(DeviceConfig::tiny_test_device(), 2),
            )
            .unwrap()
            .cluster(&g)
            .unwrap();
            assert_eq!(sort_report.partition, sel_report.partition, "{mode:?}");
            // Halved footprint → fewer (or equal) batches, and less
            // modeled kernel time on the O(d) selection.
            assert_eq!(sel_report.times.elem_footprint_bytes, 8);
            assert_eq!(sort_report.times.elem_footprint_bytes, 16);
            assert!(sel_report.times.n_batches <= sort_report.times.n_batches);
            assert!(sel_report.times.gpu < sort_report.times.gpu, "{mode:?}");
        }
    }

    /// `--plan auto` must stay bit-identical to the serial oracle while
    /// attaching the autotuner's prediction and its relative error.
    #[test]
    fn auto_plan_matches_serial_and_reports_prediction() {
        let g = graph(29);
        let params = ShinglingParams::light(85);
        let serial = SerialShingling::new(params).unwrap().cluster(&g);
        let manual = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        assert_eq!(manual.partition, serial);
        assert_eq!(manual.times.prediction_error_pct(), None);
        let auto = GpClust::new(
            params.with_plan_auto(),
            Gpu::with_workers(DeviceConfig::tesla_k20(), 2),
        )
        .unwrap()
        .cluster(&g)
        .unwrap();
        assert_eq!(auto.partition, serial);
        assert!(auto.times.predicted_device_seconds > 0.0);
        assert!(auto.times.predicted_total_seconds >= auto.times.predicted_device_seconds);
        let err = auto
            .times
            .prediction_error_pct()
            .expect("auto reports error");
        assert!(err.is_finite());
    }

    #[test]
    fn report_carries_batch_stats() {
        // Several times the tiny device's batch capacity, so pass I must
        // split.
        let g = planted_partition(&PlantedConfig {
            group_sizes: vec![120, 100, 80],
            n_noise_vertices: 20,
            p_intra: 0.5,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed: 27,
        })
        .graph;
        let params = ShinglingParams::light(83);
        let gpu = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
        let report = GpClust::new(params, gpu).unwrap().cluster(&g).unwrap();
        assert!(
            report.batch_stats[0].n_batches > 1,
            "tiny device must split"
        );
        assert!(report.batch_stats[1].n_batches >= 1);
        assert_eq!(
            report.times.n_batches,
            report.batch_stats[0].n_batches + report.batch_stats[1].n_batches
        );
        assert!(report.times.max_batch_elems > 0);
    }

    #[test]
    fn report_carries_times_and_counts() {
        let g = graph(23);
        let params = ShinglingParams::light(79);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let report = GpClust::new(params, gpu).unwrap().cluster(&g).unwrap();
        assert!(report.times.gpu > 0.0);
        assert!(report.times.h2d > 0.0);
        assert!(report.times.d2h > 0.0);
        assert!(report.times.total() > 0.0);
        assert!(report.first_level_shingles > 0);
        assert!(report.counters.kernel_launches > 0);
        // Two passes × c trials, plus compaction launches.
        let c_total = (params.c1 + params.c2) as u64;
        assert!(report.counters.d2h_transfers >= c_total);
    }

    #[test]
    fn cluster_from_file_roundtrip() {
        let g = graph(24);
        let dir = std::env::temp_dir().join("gpclust_pipeline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        gpclust_graph::io::write_file(&path, &g).unwrap();

        let params = ShinglingParams::light(80);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let pipeline = GpClust::new(params, gpu).unwrap();
        let from_file = pipeline.cluster_from_file(&path).unwrap();
        assert!(from_file.times.disk_io > 0.0);

        let in_memory = pipeline.cluster(&g).unwrap();
        assert_eq!(from_file.partition, in_memory.partition);
        std::fs::remove_file(&path).ok();
    }

    /// The out-of-core sharded path must be bit-identical to the resident
    /// oracle across shard counts × aggregation modes × kernels, while
    /// actually spilling and measuring residency.
    #[test]
    fn sharded_spilled_run_matches_resident_oracle() {
        use crate::params::ShingleKernel;
        let g = graph(30);
        let params = ShinglingParams::light(86);
        let oracle = GpClust::new(
            params,
            Gpu::with_workers(DeviceConfig::tiny_test_device(), 2),
        )
        .unwrap()
        .cluster(&g)
        .unwrap();
        for agg in [AggregationMode::Host, AggregationMode::Device] {
            for kernel in [ShingleKernel::SortCompact, ShingleKernel::FusedSelect] {
                for shards in [2u32, 3, 8] {
                    let p = params
                        .with_aggregation(agg)
                        .with_kernel(kernel)
                        .with_shards(shards);
                    let gpu = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
                    let r = GpClust::new(p, gpu).unwrap().cluster(&g).unwrap();
                    assert_eq!(r.partition, oracle.partition, "{agg:?}/{kernel:?}/{shards}");
                    assert_eq!(
                        r.first_level_shingles, oracle.first_level_shingles,
                        "{agg:?}/{kernel:?}/{shards}"
                    );
                    assert!(r.times.spilled_bytes > 0, "{agg:?}/{kernel:?}/{shards}");
                    assert!(
                        r.times.peak_resident_bytes > 0,
                        "{agg:?}/{kernel:?}/{shards}"
                    );
                    assert!(r.times.disk_io > 0.0, "spill traffic reports as disk I/O");
                }
            }
        }
    }

    /// A byte budget (not an explicit shard count) derives the shard count
    /// and the recorded peak respects it.
    #[test]
    fn byte_budget_derives_shards_and_bounds_residency() {
        let g = graph(31);
        let params = ShinglingParams::light(87);
        let oracle = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        // The CI out-of-core job exports GPCLUST_MEM_BUDGET, which bounds
        // this oracle too; only a genuinely env-free run is spill-free.
        if std::env::var_os("GPCLUST_MEM_BUDGET").is_none() {
            assert_eq!(oracle.times.spilled_bytes, 0, "unbounded runs never spill");
            assert_eq!(oracle.times.peak_resident_bytes, 0);
        }
        let est = Plan::estimate_pass_resident_bytes(g.offsets(), params.s1, params.c1);
        let budget = est / 4;
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let r = GpClust::new(params.with_mem_budget(budget), gpu)
            .unwrap()
            .cluster(&g)
            .unwrap();
        assert_eq!(r.partition, oracle.partition);
        assert!(r.times.spilled_bytes > 0);
        assert!(
            r.times.peak_resident_bytes <= budget,
            "peak {} exceeds budget {budget}",
            r.times.peak_resident_bytes
        );
    }

    /// File-backed out-of-core: under a bounded budget the loader keeps
    /// only the offsets resident and shards stream their target windows
    /// from disk — same partition as the fully resident run.
    #[test]
    fn out_of_core_from_file_matches_resident() {
        let g = graph(32);
        let dir = std::env::temp_dir().join("gpclust_oocore_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        gpclust_graph::io::write_file(&path, &g).unwrap();
        let params = ShinglingParams::light(88);
        let resident = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let oocore = GpClust::new(params.with_shards(3), gpu)
            .unwrap()
            .cluster_from_file(&path)
            .unwrap();
        assert_eq!(oocore.partition, resident.partition);
        assert!(oocore.times.spilled_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_invalid_params() {
        let mut p = ShinglingParams::light(0);
        p.s2 = 0;
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
        assert!(GpClust::new(p, gpu).is_err());
    }

    #[test]
    fn surfaces_device_oom_as_error() {
        // A device so small that even a single batch's working buffers
        // cannot fit: the pipeline must return OutOfMemory, not panic.
        let mut cfg = DeviceConfig::tiny_test_device();
        cfg.global_mem_bytes = 16; // one u64 only
        let gpu = Gpu::with_workers(cfg, 1);
        let g = graph(40);
        let pipeline = GpClust::new(ShinglingParams::light(1), gpu).unwrap();
        let err = pipeline.cluster(&g).unwrap_err();
        assert!(matches!(err, gpclust_gpu::DeviceError::OutOfMemory { .. }));
    }

    #[test]
    fn device_survives_oom_and_recovers() {
        // After an OOM the same device must still run real workloads.
        let mut cfg = DeviceConfig::tiny_test_device();
        cfg.global_mem_bytes = 4 * 1024;
        let gpu = Gpu::with_workers(cfg, 1);
        assert!(gpu.alloc::<u64>(10_000).is_err());
        let g = graph(41);
        let pipeline = GpClust::new(ShinglingParams::light(2), gpu).unwrap();
        let report = pipeline.cluster(&g).unwrap();
        assert!(report.partition.n_groups() > 0);
    }
}
