//! Algorithm 2 — the full gpClust driver.
//!
//! The division of labor the paper prescribes: "CPU is used to aggregate
//! the data for the GPU, and GPU is responsible of the compute-intensive
//! work." Concretely:
//!
//! 1. CPU loads the input graph (disk I/O, optional here);
//! 2. first-level shingling on the GPU, batch by batch — the pipeline
//!    lowers its parameters into a [`Plan`] and hands per-pass
//!    [`crate::plan::PassPlan`]s to the [`Executor`];
//! 3. CPU aggregates the returned shingles into the shingle graph;
//! 4. second-level shingling on the GPU over that graph;
//! 5. CPU aggregates again and reports dense subgraphs (Phase III) — or,
//!    under [`ComponentsMode::Device`], the records reduce to Phase-III
//!    union edges on the fly and the GPU pointer-jumping kernel labels the
//!    components, so neither the shingle sort (device aggregation + device
//!    inversion) nor the cluster merge round-trips through the host.
//!
//! Every stage is timed into [`StageTimes`]; device-side times come from
//! the simulator's cost model, host-side times from wall-clock stopwatches
//! (with the wall time spent *executing kernels on the pool* subtracted
//! from the CPU column — that time stands in for the device, not the host).

use crate::batch::BatchStats;
use crate::exec::{ClusterLabels, Executor, PassInput, Sink};
use crate::minwise::unpack_element;
use crate::params::{AggregationMode, ComponentsMode, PipelineMode, ShinglingParams};
use crate::plan::Plan;
use crate::report;
use crate::resilience::with_oom_backoff;
use crate::shingle::AdjacencyInput;
use crate::timing::{RecoveryReport, StageTimes};
use gpclust_gpu::{CountersSnapshot, DeviceError, Gpu};
use gpclust_graph::{io as graph_io, Csr, Partition, UnionFind};
use std::path::Path;
use std::time::Instant;

/// The GPU-accelerated Shingling clustering pipeline.
#[derive(Debug, Clone)]
pub struct GpClust {
    params: ShinglingParams,
    gpu: Gpu,
}

/// Everything a gpClust run produces.
#[derive(Debug, Clone)]
pub struct GpClustReport {
    /// The reported clusters (union–find partition mode).
    pub partition: Partition,
    /// Per-component times (Table I row).
    pub times: StageTimes,
    /// Device telemetry for the run.
    pub counters: CountersSnapshot,
    /// Distinct first-level shingles (|S1|).
    pub first_level_shingles: usize,
    /// Second-level `<shingle, generator>` records streamed (|E″|). The
    /// distinct-|S2| count is not tracked: pass II streams straight into
    /// the union–find without materializing G″.
    pub second_level_records: u64,
    /// How the capacity model split each device pass into batches
    /// (`[pass I, pass II]`) under the configured kernel.
    pub batch_stats: [BatchStats; 2],
}

impl GpClust {
    /// Create a pipeline on `gpu` with validated `params`.
    pub fn new(params: ShinglingParams, gpu: Gpu) -> Result<Self, String> {
        params.validate()?;
        Ok(GpClust { params, gpu })
    }

    /// The configured parameters.
    pub fn params(&self) -> &ShinglingParams {
        &self.params
    }

    /// The device handle.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Cluster an in-memory graph (no disk stage).
    pub fn cluster(&self, g: &Csr) -> Result<GpClustReport, DeviceError> {
        self.run(g, 0.0)
    }

    /// Load a binary graph from `path` (timed as Disk I/O) and cluster it.
    pub fn cluster_from_file<P: AsRef<Path>>(
        &self,
        path: P,
    ) -> Result<GpClustReport, std::io::Error> {
        let start = Instant::now();
        let g = graph_io::read_file(path)?;
        let disk = start.elapsed().as_secs_f64();
        self.run(&g, disk)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::OutOfMemory, e.to_string()))
    }

    fn run(&self, g: &Csr, disk_io: f64) -> Result<GpClustReport, DeviceError> {
        self.gpu.reset_counters();
        let wall_start = Instant::now();
        let mut pipelined = 0.0f64;
        let mut device_aggregation = 0.0f64;
        let mut recovery = RecoveryReport::default();
        // Resolve the schedule axes — cost-model argmin under `--plan
        // auto`, pass-through under manual planning — and drive the whole
        // run from the *effective* parameters.
        let (plan, effective) = Plan::lower_auto(
            &self.params,
            std::slice::from_ref(&self.gpu),
            g.offsets(),
            g.n(),
        )?;
        let predicted = plan.predicted;
        let policy = plan.policy;
        let exec = Executor::new(&self.gpu);

        // Pass I on the device, aggregated per the plan's sink axis:
        // `Host` streams the records into the CPU-side global sort,
        // `Device` packs and radix-sorts them on the card and k-way-merges
        // the sorted runs — bit-identical shingle graphs, but the dominant
        // comparison sort leaves the CPU column. Either way the pass runs
        // under the fault policy: an `OutOfMemory` halves the planned batch
        // capacity and re-plans the whole pass (each executor run rebuilds
        // its sink state, so a re-plan never replays half-emitted records).
        let s1 = effective.s1;
        let family1 = effective.family_pass1();
        let mut pass_rec = RecoveryReport::default();
        let mut backoff_rec = RecoveryReport::default();
        let (first, stats1) = {
            let (first, stats1, makespan, agg_s) =
                with_oom_backoff(&policy, &mut backoff_rec, plan.capacity, |cap| {
                    let pass = plan.pass(s1, plan.aggregation, cap, g.offsets());
                    let r = exec.run(&pass, PassInput::of(g), &family1, &mut pass_rec, {
                        Sink::Aggregate
                    })?;
                    let graph = r.graph.expect("aggregate sink yields a graph");
                    Ok((graph, r.stats, r.makespan, r.agg_kernel_seconds))
                })?;
            recovery.merge(&pass_rec);
            recovery.merge(&backoff_rec);
            pipelined += makespan;
            device_aggregation += agg_s;
            (first, stats1)
        };

        // Pass II on the device, streamed straight into Phase III's
        // union–find — G″ is never materialized (see report module docs).
        // A backed-off re-plan replays the whole record stream, so each
        // attempt starts from a fresh union–find. Pass II always
        // aggregates on the host (the records feed the union–find, not a
        // sort), so its batch budget is the host-mode capacity.
        let mut uf = UnionFind::new(g.n());
        let mut labels: Option<ClusterLabels> = None;
        let mut second_level_records = 0u64;
        let s2 = effective.s2;
        let family2 = effective.family_pass2();
        let cap2 = plan.capacity_for(AggregationMode::Host);
        let mut pass_rec = RecoveryReport::default();
        let mut backoff_rec = RecoveryReport::default();
        let (stats2, makespan2, device_components) =
            with_oom_backoff(&policy, &mut backoff_rec, cap2, |cap| {
                let pass = plan.pass(s2, AggregationMode::Host, cap, first.offsets());
                match effective.components {
                    ComponentsMode::Host => {
                        uf = UnionFind::new(g.n());
                        second_level_records = 0;
                        let mut union_record = |_trial: u32, node: u32, pairs: &[u64]| {
                            second_level_records += 1;
                            report::union_second_level_record(
                                &mut uf,
                                &first,
                                node,
                                pairs.iter().map(|&p| unpack_element(p)),
                            );
                        };
                        let r = exec.run(
                            &pass,
                            PassInput::of(&first),
                            &family2,
                            &mut pass_rec,
                            Sink::Stream(&mut union_record),
                        )?;
                        Ok((r.stats, r.makespan, 0.0))
                    }
                    // Device-resident Phase III: the records reduce to
                    // packed union edges as they stream off the card, and
                    // the pointer-jumping kernel labels the components
                    // (host union–find only as fault fallback).
                    ComponentsMode::Device => {
                        let r = exec.run(
                            &pass,
                            PassInput::of(&first),
                            &family2,
                            &mut pass_rec,
                            Sink::Clusters {
                                first: &first,
                                n: g.n(),
                            },
                        )?;
                        let c = r.clusters.expect("clusters sink yields labels");
                        second_level_records = c.records;
                        labels = Some(c);
                        Ok((r.stats, r.makespan, r.cc_kernel_seconds))
                    }
                }
            })?;
        recovery.merge(&pass_rec);
        recovery.merge(&backoff_rec);
        pipelined += makespan2;
        let partition = match &labels {
            Some(c) => Partition::from_labels(&c.labels),
            None => Partition::from_union_find(&mut uf),
        };

        let wall = wall_start.elapsed().as_secs_f64();
        let counters = self.gpu.counters();
        recovery.faults_injected = counters.faults_injected;
        // Host time net of the wall time spent standing in for the device.
        let cpu = (wall - counters.kernel_wall_seconds).max(0.0);
        let device_pipelined = match effective.mode {
            PipelineMode::Synchronous => counters.serialized_device_seconds(),
            PipelineMode::Overlapped => pipelined,
        };
        let mut times = StageTimes {
            cpu,
            gpu: counters.kernel_seconds,
            h2d: counters.h2d_seconds,
            d2h: counters.d2h_seconds,
            disk_io,
            device_pipelined,
            device_aggregation,
            device_components,
            recovery,
            ..Default::default()
        };
        times.record_batch_stats(&stats1);
        times.record_batch_stats(&stats2);
        times.record_prediction(predicted.as_ref());
        Ok(GpClustReport {
            partition,
            times,
            counters,
            first_level_shingles: first.len(),
            second_level_records,
            batch_stats: [stats1, stats2],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialShingling;
    use gpclust_gpu::DeviceConfig;
    use gpclust_graph::generate::{planted_partition, PlantedConfig};

    fn graph(seed: u64) -> Csr {
        planted_partition(&PlantedConfig {
            group_sizes: vec![25, 18, 30, 12],
            n_noise_vertices: 15,
            p_intra: 0.8,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 0.5,
            seed,
        })
        .graph
    }

    #[test]
    fn gpu_pipeline_matches_serial_exactly() {
        let g = graph(21);
        let params = ShinglingParams::light(77);
        let serial = SerialShingling::new(params).unwrap().cluster(&g);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 4);
        let report = GpClust::new(params, gpu).unwrap().cluster(&g).unwrap();
        assert_eq!(report.partition, serial);
    }

    #[test]
    fn gpu_pipeline_matches_serial_under_tiny_memory() {
        let g = graph(22);
        let params = ShinglingParams::light(78);
        let serial = SerialShingling::new(params).unwrap().cluster(&g);
        let gpu = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
        let report = GpClust::new(params, gpu).unwrap().cluster(&g).unwrap();
        assert_eq!(report.partition, serial);
    }

    #[test]
    fn overlapped_mode_same_partition_smaller_device_path() {
        let g = graph(25);
        let params = ShinglingParams::light(81);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let sync_report = GpClust::new(params, gpu).unwrap().cluster(&g).unwrap();
        // Synchronous mode reports the serialized sum as its "pipelined"
        // path — there is no overlap to claim.
        assert!(
            (sync_report.times.device_pipelined - sync_report.times.device_serialized()).abs()
                < 1e-12
        );

        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let ovl = GpClust::new(params.with_mode(PipelineMode::Overlapped), gpu)
            .unwrap()
            .cluster(&g)
            .unwrap();
        assert_eq!(ovl.partition, sync_report.partition);
        // Same work was modeled (identical totals) …
        assert!(
            (ovl.times.device_serialized() - sync_report.times.device_serialized()).abs() < 1e-9
        );
        // … but the overlapped schedule's critical path is strictly shorter.
        assert!(ovl.times.device_pipelined < ovl.times.device_serialized());
        assert!(ovl.times.device_pipelined >= ovl.times.gpu - 1e-9);
        assert!(ovl.times.total_pipelined() < ovl.times.total());
        // The async copies are all accounted in the overlap sub-accounts.
        assert!(ovl.counters.h2d_overlapped_seconds > 0.0);
        assert!(ovl.counters.d2h_overlapped_seconds > 0.0);
    }

    /// Device-resident components must reproduce the serial oracle exactly
    /// across schedule × aggregation combinations, with the Phase-III
    /// kernel time broken out and no host fallback taken.
    #[test]
    fn device_components_match_serial_exactly() {
        let g = graph(28);
        let params = ShinglingParams::light(84);
        let serial = SerialShingling::new(params).unwrap().cluster(&g);
        let host_report = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        assert_eq!(host_report.partition, serial);
        assert_eq!(host_report.times.device_components, 0.0);
        for (cfg, mode, agg) in [
            (
                DeviceConfig::tesla_k20(),
                PipelineMode::Synchronous,
                AggregationMode::Host,
            ),
            (
                DeviceConfig::tesla_k20(),
                PipelineMode::Synchronous,
                AggregationMode::Device,
            ),
            (
                DeviceConfig::tesla_k20(),
                PipelineMode::Overlapped,
                AggregationMode::Device,
            ),
        ] {
            let gpu = Gpu::with_workers(cfg, 2);
            let p = params
                .with_mode(mode)
                .with_aggregation(agg)
                .with_components(ComponentsMode::Device);
            let report = GpClust::new(p, gpu).unwrap().cluster(&g).unwrap();
            assert_eq!(report.partition, serial, "{mode:?}/{agg:?}");
            assert_eq!(
                report.second_level_records, host_report.second_level_records,
                "{mode:?}/{agg:?}"
            );
            assert!(
                report.times.device_components > 0.0,
                "{mode:?}/{agg:?}: Phase-III kernel time must be broken out"
            );
            assert!(report.times.device_components <= report.times.gpu + 1e-12);
            assert_eq!(report.times.recovery.host_fallbacks, 0, "{mode:?}/{agg:?}");
        }
        // On the 64 KiB test device the finish-time edge upload cannot fit,
        // so Phase III OOM-degrades to the bit-identical host union–find —
        // counted as a fallback, with no components kernel time claimed.
        let tiny = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
        let report = GpClust::new(params.with_components(ComponentsMode::Device), tiny)
            .unwrap()
            .cluster(&g)
            .unwrap();
        assert_eq!(report.partition, serial);
        assert_eq!(report.times.device_components, 0.0);
        assert!(report.times.recovery.host_fallbacks >= 1);
    }

    #[test]
    fn fused_select_kernel_matches_sort_compact_end_to_end() {
        use crate::params::ShingleKernel;
        let g = graph(26);
        let params = ShinglingParams::light(82);
        for mode in [PipelineMode::Synchronous, PipelineMode::Overlapped] {
            let sort_report = GpClust::new(
                params.with_mode(mode),
                Gpu::with_workers(DeviceConfig::tiny_test_device(), 2),
            )
            .unwrap()
            .cluster(&g)
            .unwrap();
            let sel_report = GpClust::new(
                params
                    .with_mode(mode)
                    .with_kernel(ShingleKernel::FusedSelect),
                Gpu::with_workers(DeviceConfig::tiny_test_device(), 2),
            )
            .unwrap()
            .cluster(&g)
            .unwrap();
            assert_eq!(sort_report.partition, sel_report.partition, "{mode:?}");
            // Halved footprint → fewer (or equal) batches, and less
            // modeled kernel time on the O(d) selection.
            assert_eq!(sel_report.times.elem_footprint_bytes, 8);
            assert_eq!(sort_report.times.elem_footprint_bytes, 16);
            assert!(sel_report.times.n_batches <= sort_report.times.n_batches);
            assert!(sel_report.times.gpu < sort_report.times.gpu, "{mode:?}");
        }
    }

    /// `--plan auto` must stay bit-identical to the serial oracle while
    /// attaching the autotuner's prediction and its relative error.
    #[test]
    fn auto_plan_matches_serial_and_reports_prediction() {
        let g = graph(29);
        let params = ShinglingParams::light(85);
        let serial = SerialShingling::new(params).unwrap().cluster(&g);
        let manual = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        assert_eq!(manual.partition, serial);
        assert_eq!(manual.times.prediction_error_pct(), None);
        let auto = GpClust::new(
            params.with_plan_auto(),
            Gpu::with_workers(DeviceConfig::tesla_k20(), 2),
        )
        .unwrap()
        .cluster(&g)
        .unwrap();
        assert_eq!(auto.partition, serial);
        assert!(auto.times.predicted_device_seconds > 0.0);
        assert!(auto.times.predicted_total_seconds >= auto.times.predicted_device_seconds);
        let err = auto
            .times
            .prediction_error_pct()
            .expect("auto reports error");
        assert!(err.is_finite());
    }

    #[test]
    fn report_carries_batch_stats() {
        // Several times the tiny device's batch capacity, so pass I must
        // split.
        let g = planted_partition(&PlantedConfig {
            group_sizes: vec![120, 100, 80],
            n_noise_vertices: 20,
            p_intra: 0.5,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed: 27,
        })
        .graph;
        let params = ShinglingParams::light(83);
        let gpu = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
        let report = GpClust::new(params, gpu).unwrap().cluster(&g).unwrap();
        assert!(
            report.batch_stats[0].n_batches > 1,
            "tiny device must split"
        );
        assert!(report.batch_stats[1].n_batches >= 1);
        assert_eq!(
            report.times.n_batches,
            report.batch_stats[0].n_batches + report.batch_stats[1].n_batches
        );
        assert!(report.times.max_batch_elems > 0);
    }

    #[test]
    fn report_carries_times_and_counts() {
        let g = graph(23);
        let params = ShinglingParams::light(79);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let report = GpClust::new(params, gpu).unwrap().cluster(&g).unwrap();
        assert!(report.times.gpu > 0.0);
        assert!(report.times.h2d > 0.0);
        assert!(report.times.d2h > 0.0);
        assert!(report.times.total() > 0.0);
        assert!(report.first_level_shingles > 0);
        assert!(report.counters.kernel_launches > 0);
        // Two passes × c trials, plus compaction launches.
        let c_total = (params.c1 + params.c2) as u64;
        assert!(report.counters.d2h_transfers >= c_total);
    }

    #[test]
    fn cluster_from_file_roundtrip() {
        let g = graph(24);
        let dir = std::env::temp_dir().join("gpclust_pipeline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        gpclust_graph::io::write_file(&path, &g).unwrap();

        let params = ShinglingParams::light(80);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let pipeline = GpClust::new(params, gpu).unwrap();
        let from_file = pipeline.cluster_from_file(&path).unwrap();
        assert!(from_file.times.disk_io > 0.0);

        let in_memory = pipeline.cluster(&g).unwrap();
        assert_eq!(from_file.partition, in_memory.partition);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_invalid_params() {
        let mut p = ShinglingParams::light(0);
        p.s2 = 0;
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
        assert!(GpClust::new(p, gpu).is_err());
    }

    #[test]
    fn surfaces_device_oom_as_error() {
        // A device so small that even a single batch's working buffers
        // cannot fit: the pipeline must return OutOfMemory, not panic.
        let mut cfg = DeviceConfig::tiny_test_device();
        cfg.global_mem_bytes = 16; // one u64 only
        let gpu = Gpu::with_workers(cfg, 1);
        let g = graph(40);
        let pipeline = GpClust::new(ShinglingParams::light(1), gpu).unwrap();
        let err = pipeline.cluster(&g).unwrap_err();
        assert!(matches!(err, gpclust_gpu::DeviceError::OutOfMemory { .. }));
    }

    #[test]
    fn device_survives_oom_and_recovers() {
        // After an OOM the same device must still run real workloads.
        let mut cfg = DeviceConfig::tiny_test_device();
        cfg.global_mem_bytes = 4 * 1024;
        let gpu = Gpu::with_workers(cfg, 1);
        assert!(gpu.alloc::<u64>(10_000).is_err());
        let g = graph(41);
        let pipeline = GpClust::new(ShinglingParams::light(2), gpu).unwrap();
        let report = pipeline.cluster(&g).unwrap();
        assert!(report.partition.n_groups() > 0);
    }
}
