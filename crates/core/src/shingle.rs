//! Shingle identities, raw per-trial shingle records, and the adjacency
//! input abstraction shared by both shingling passes.
//!
//! A *shingle* is an s-element subset of a node's (permuted) adjacency
//! list. Its identity is "an integer representation obtained using a hash
//! function" (paper §III-B): here a 64-bit mix of the trial index and the
//! selected elements in their canonical (hash-sorted) order — so the same
//! elements selected in the same trial always produce the same key, and
//! shingles from different trials never mix.
//!
//! A shingling pass emits [`RawShingles`]: one record per (node, trial)
//! holding the top-s *(hash, element)* pairs. Records keep the hash halves
//! (not just elements) so that fragments of adjacency lists split across
//! device batches can be merged by re-selecting the globally smallest s —
//! the CPU-side fix-up the paper describes for split lists.

use crate::minwise::PackedHash;
use gpclust_graph::{Csr, ShingleGraph};

/// 64-bit shingle key space.
pub type ShingleKey = u64;

/// splitmix64 finalizer — a strong, cheap 64-bit mixer.
#[inline(always)]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Compute the identity of a shingle from its trial and the *element ids*
/// of its pairs, in their canonical ascending-(hash, element) order.
pub fn shingle_key(trial: u32, elements: impl IntoIterator<Item = u32>) -> ShingleKey {
    let mut h = splitmix64(0x5349_4E47_4C45 ^ ((trial as u64) << 20));
    for e in elements {
        h = splitmix64(h ^ (e as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
    }
    h
}

/// Raw shingle records emitted by one shingling pass (possibly one batch
/// of it): `(trial, node, top-s packed pairs)`.
///
/// Records may hold *fewer* than `s` pairs when the node's adjacency-list
/// fragment in this batch had fewer than `s` members; the aggregation step
/// merges fragments and drops nodes whose merged candidate count is still
/// below `s` (the paper generates shingles only for vertices with ≥ s
/// links).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RawShingles {
    s: usize,
    trials: Vec<u32>,
    nodes: Vec<u32>,
    offsets: Vec<u64>,
    pairs: Vec<PackedHash>,
    grouped: bool,
}

impl RawShingles {
    /// An empty record set for shingle size `s`.
    pub fn new(s: usize) -> Self {
        RawShingles {
            s,
            trials: Vec::new(),
            nodes: Vec::new(),
            offsets: vec![0],
            pairs: Vec::new(),
            grouped: false,
        }
    }

    /// Declare that every `(trial, node)` appears in at most one record and
    /// every record holds exactly `s` pairs — true for the serial pass and
    /// for the GPU pass after its boundary-fragment pre-merge. Lets the
    /// aggregation skip its merge sort.
    ///
    /// Debug builds verify the claim.
    pub fn mark_grouped(&mut self) {
        #[cfg(debug_assertions)]
        {
            let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
            for i in 0..self.len() {
                assert!(
                    seen.insert((self.trials[i], self.nodes[i])),
                    "duplicate (trial, node) in grouped RawShingles"
                );
                assert_eq!(
                    (self.offsets[i + 1] - self.offsets[i]) as usize,
                    self.s,
                    "grouped record must hold exactly s pairs"
                );
            }
        }
        self.grouped = true;
    }

    /// Whether [`RawShingles::mark_grouped`] has been asserted.
    pub fn is_grouped(&self) -> bool {
        self.grouped
    }

    /// The shingle size of the pass that produced these records.
    pub fn s(&self) -> usize {
        self.s
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no records are stored.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total packed pairs stored.
    pub fn n_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Append one record.
    ///
    /// # Panics
    /// Panics if more than `s` pairs are supplied.
    pub fn push(&mut self, trial: u32, node: u32, pairs: &[PackedHash]) {
        assert!(pairs.len() <= self.s, "record larger than s");
        self.grouped = false;
        self.trials.push(trial);
        self.nodes.push(node);
        self.pairs.extend_from_slice(pairs);
        self.offsets.push(self.pairs.len() as u64);
    }

    /// Record `i` as `(trial, node, pairs)`.
    pub fn record(&self, i: usize) -> (u32, u32, &[PackedHash]) {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        (self.trials[i], self.nodes[i], &self.pairs[lo..hi])
    }

    /// Trial of record `i` (column access for hot loops).
    #[inline]
    pub fn trial(&self, i: usize) -> u32 {
        self.trials[i]
    }

    /// Node of record `i`.
    #[inline]
    pub fn node(&self, i: usize) -> u32 {
        self.nodes[i]
    }

    /// Packed pairs of record `i`.
    #[inline]
    pub fn pairs_of(&self, i: usize) -> &[PackedHash] {
        &self.pairs[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterate all records.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, &[PackedHash])> + '_ {
        (0..self.len()).map(move |i| self.record(i))
    }

    /// Move all records of `other` into `self` (batch concatenation).
    ///
    /// # Panics
    /// Panics if the shingle sizes differ.
    pub fn append(&mut self, other: &RawShingles) {
        assert_eq!(self.s, other.s, "mixing shingle sizes");
        self.grouped = false;
        for (trial, node, pairs) in other.iter() {
            self.push(trial, node, pairs);
        }
    }

    /// Approximate heap footprint in bytes (for memory accounting).
    pub fn approx_bytes(&self) -> usize {
        self.trials.len() * 8 + self.offsets.len() * 8 + self.pairs.len() * 8
    }
}

/// Uniform view over the inputs of the two shingling passes: the original
/// similarity graph (pass I) and the first-level shingle graph (pass II).
/// Both are "a set of adjacency lists in one contiguous array".
pub trait AdjacencyInput {
    /// Number of nodes (adjacency lists).
    fn n_nodes(&self) -> usize;
    /// List boundaries: `n_nodes() + 1` monotone offsets into [`flat`].
    ///
    /// [`flat`]: AdjacencyInput::flat
    fn offsets(&self) -> &[u64];
    /// The concatenated adjacency array.
    fn flat(&self) -> &[u32];

    /// The adjacency list of node `i`.
    fn list(&self, i: usize) -> &[u32] {
        let o = self.offsets();
        &self.flat()[o[i] as usize..o[i + 1] as usize]
    }

    /// Total elements across all lists.
    fn n_elements(&self) -> usize {
        self.flat().len()
    }
}

impl AdjacencyInput for Csr {
    fn n_nodes(&self) -> usize {
        self.n()
    }
    fn offsets(&self) -> &[u64] {
        Csr::offsets(self)
    }
    fn flat(&self) -> &[u32] {
        self.targets()
    }
}

impl AdjacencyInput for ShingleGraph {
    fn n_nodes(&self) -> usize {
        self.len()
    }
    fn offsets(&self) -> &[u64] {
        self.gen_offsets()
    }
    fn flat(&self) -> &[u32] {
        self.generators_flat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpclust_graph::EdgeList;

    #[test]
    fn shingle_key_depends_on_trial_and_elements() {
        let k1 = shingle_key(0, [1, 2]);
        let k2 = shingle_key(1, [1, 2]);
        let k3 = shingle_key(0, [1, 3]);
        let k4 = shingle_key(0, [2, 1]);
        assert_ne!(k1, k2, "trial must separate keys");
        assert_ne!(k1, k3, "elements must separate keys");
        assert_ne!(k1, k4, "order is canonical, not symmetric");
        assert_eq!(k1, shingle_key(0, [1, 2]), "deterministic");
    }

    #[test]
    fn shingle_key_no_easy_collisions() {
        let mut seen = std::collections::HashSet::new();
        for trial in 0..50u32 {
            for a in 0..40u32 {
                for b in 0..40u32 {
                    seen.insert(shingle_key(trial, [a, b]));
                }
            }
        }
        assert_eq!(seen.len(), 50 * 40 * 40);
    }

    #[test]
    fn raw_shingles_roundtrip() {
        let mut rs = RawShingles::new(2);
        rs.push(0, 7, &[10, 20]);
        rs.push(1, 7, &[30]);
        rs.push(0, 9, &[]);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.n_pairs(), 3);
        assert_eq!(rs.record(0), (0, 7, &[10u64, 20][..]));
        assert_eq!(rs.record(1), (1, 7, &[30u64][..]));
        assert_eq!(rs.record(2), (0, 9, &[][..]));
    }

    #[test]
    #[should_panic(expected = "larger than s")]
    fn raw_shingles_rejects_oversized_record() {
        let mut rs = RawShingles::new(1);
        rs.push(0, 0, &[1, 2]);
    }

    #[test]
    fn append_concatenates() {
        let mut a = RawShingles::new(2);
        a.push(0, 1, &[5, 6]);
        let mut b = RawShingles::new(2);
        b.push(1, 2, &[7]);
        a.append(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.record(1), (1, 2, &[7u64][..]));
    }

    #[test]
    fn csr_as_adjacency_input() {
        let mut el: EdgeList = [(0, 1), (1, 2)].into_iter().collect();
        let g = Csr::from_edges(3, &mut el);
        assert_eq!(AdjacencyInput::n_nodes(&g), 3);
        assert_eq!(g.list(1), &[0, 2]);
        assert_eq!(g.n_elements(), 4);
    }

    #[test]
    fn shingle_graph_as_adjacency_input() {
        let sg = ShingleGraph::from_records(
            1,
            vec![(3u64, &[4u32][..], &[0u32, 1][..]), (9, &[5][..], &[2][..])],
        );
        assert_eq!(AdjacencyInput::n_nodes(&sg), 2);
        assert_eq!(sg.list(0), &[0, 1]);
        assert_eq!(sg.list(1), &[2]);
    }
}
