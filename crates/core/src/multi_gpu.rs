//! Multi-GPU gpClust — the scale-out direction the paper's conclusions
//! point toward ("further performance could be achieved ...").
//!
//! A thin driver over the single [`Executor`]: each pass lowers one
//! [`Plan`] over the fleet, deals the batch ids round-robin across the
//! surviving devices, and runs one executor per device on its **own host
//! thread** (devices run concurrently on real hardware, so the host
//! drives them concurrently too) over a [`crate::plan::PassPlan::subplan`]
//! of the shared batch list. Because a list can now be split across
//! *devices* (not just batches), the sub-plans run with deferred fragment
//! handling ([`crate::plan::FragmentMode::Defer`]) and the merged record
//! stream is not grouped — the generic merge path of
//! [`crate::aggregate::aggregate`] reconciles the fragments, which is
//! exactly what that path exists for. That path is insensitive to record
//! order (fragments are re-sorted and deduped when merged), which is what
//! makes the device-order merge sound.
//!
//! Device time is modeled as the **maximum** over devices; transfer time
//! likewise. Under [`PipelineMode::Overlapped`] each device additionally
//! runs its share on a compute/copy stream pair, and the reported
//! `device_pipelined` is the per-pass maximum of the per-device stream
//! makespans, summed over the two passes. The result is provably identical
//! to the single-device pipeline in either mode (tests assert it).

use crate::aggregate::{
    aggregate_with, fragment_run, merge_runs_to_run, merge_sorted_runs, SortedRun,
};
use crate::autotune::{apportion, capability_shares, device_weights};
use crate::batch::{plan_batches_range, BatchStats};
use crate::checkpoint::{
    self, write_pool, CheckpointConfig, Checkpointer, CrashInjector, CrashSite, PoolMeta, Reuse,
    RunMeta,
};
use crate::exec::{device_invert_or_merge, Executor, PassInput, PassReport, Sink};
use crate::minwise::HashFamily;
use crate::params::{AggregationMode, ComponentsMode, PipelineMode, PlanMode, ShinglingParams};
use crate::plan::Plan;
use crate::report;
use crate::resilience::{retry_transient, with_oom_backoff};
use crate::shingle::{AdjacencyInput, RawShingles};
use crate::spill::{
    self, merge_external_runs, merge_external_to_run, route_shard_records, split_nodes,
    ExternalRun, SpillStats, SpilledRun,
};
use crate::timing::{RecoveryReport, StageTimes};
use gpclust_gpu::{thrust, DeviceError, Gpu};
use gpclust_graph::components::absorb_labels;
use gpclust_graph::{Csr, Partition, ShingleGraph, UnionFind};
use std::time::Instant;

/// What a fleet pass hands back: the aggregated shingle graph (the batch
/// pipeline's shape) or the canonical record run *before* inversion (the
/// incremental engine's shape — records that must outlive the pass to be
/// folded into the persistent shingle index). Both shapes flow through
/// identical gathering, fault handling and merge order; `Records`'s run
/// inverts to exactly `Graph`'s graph.
pub(crate) enum PassYield {
    Graph(ShingleGraph),
    Records(SortedRun),
}

impl PassYield {
    fn graph(self) -> ShingleGraph {
        match self {
            PassYield::Graph(g) => g,
            PassYield::Records(_) => unreachable!("pass ran with to_records = false"),
        }
    }

    fn records(self) -> SortedRun {
        match self {
            PassYield::Records(r) => r,
            PassYield::Graph(_) => unreachable!("pass ran with to_records = true"),
        }
    }
}

/// A gpClust pipeline spanning multiple (simulated) devices.
#[derive(Debug, Clone)]
pub struct MultiGpuClust {
    params: ShinglingParams,
    gpus: Vec<Gpu>,
    checkpoint: Option<CheckpointConfig>,
}

/// Report of a multi-device run.
#[derive(Debug, Clone)]
pub struct MultiGpuReport {
    /// The clusters (identical to a single-device run).
    pub partition: Partition,
    /// Times with device/transfer columns = max over devices.
    pub times: StageTimes,
    /// Per-device simulated kernel seconds (load-balance diagnostics).
    pub per_device_gpu_seconds: Vec<f64>,
    /// How each pass was split into batches (`[pass I, pass II]`) at the
    /// fleet-wide capacity (smallest device, configured kernel).
    pub batch_stats: [BatchStats; 2],
}

impl MultiGpuClust {
    /// Create a pipeline over `gpus` (at least one).
    pub fn new(params: ShinglingParams, gpus: Vec<Gpu>) -> Result<Self, String> {
        params.validate()?;
        if gpus.is_empty() {
            return Err("at least one device required".into());
        }
        Ok(MultiGpuClust {
            params,
            gpus,
            checkpoint: None,
        })
    }

    /// Attach a checkpoint journal (and optional crash-injection plan; see
    /// [`crate::checkpoint`]). Under a bounded memory budget each pass
    /// seals its spilled runs into the journal directory and commits once
    /// per pass, so `--resume` replays a completed pass from disk instead
    /// of re-executing it.
    pub fn with_checkpoint(mut self, cfg: CheckpointConfig) -> Self {
        self.checkpoint = Some(cfg);
        self
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.gpus.len()
    }

    /// The fleet itself (the incremental engine prices refresh plans
    /// against the same devices the passes run on).
    pub(crate) fn gpus(&self) -> &[Gpu] {
        &self.gpus
    }

    /// Cluster `g` across all devices.
    pub fn cluster(&self, g: &Csr) -> Result<MultiGpuReport, DeviceError> {
        for gpu in &self.gpus {
            gpu.reset_counters();
        }
        let wall_start = std::time::Instant::now();

        // Resolve the schedule axes once up front — the cost-model argmin
        // under `--plan auto`, a pass-through under manual planning — and
        // drive both passes from the *effective* parameters.
        let (plan0, effective) = Plan::lower_auto(&self.params, &self.gpus, g.offsets(), g.n())?;
        let predicted = plan0.predicted;
        let mut spill_stats = SpillStats::default();

        // Open the checkpoint journal (fresh or resuming) before any work:
        // a resume whose input or plan axes differ refuses with a typed
        // error rather than merging incompatible state.
        let mut ckpt: Option<Checkpointer> = match &self.checkpoint {
            Some(cfg) => {
                let axes = checkpoint::axes_record(&effective, plan0.mem_budget, self.gpus.len());
                // Sample the target array's head and tail alongside the
                // offsets: degree structure alone cannot tell two graphs
                // with the same degree sequence apart.
                let t = g.flat();
                let k = (checkpoint::FINGERPRINT_SAMPLE as usize).min(t.len());
                let fp = checkpoint::fingerprint_csr(g.offsets(), &t[..k], &t[t.len() - k..]);
                Some(Checkpointer::open(cfg, fp, &axes).map_err(checkpoint::to_device)?)
            }
            None => None,
        };
        let crash = self
            .checkpoint
            .as_ref()
            .map(|cfg| CrashInjector::new(cfg.crash.clone()));

        let (first, pipe1, stats1, agg1, rec1) = self.multi_pass(
            &effective,
            g,
            effective.s1,
            &effective.family_pass1(),
            false,
            &mut spill_stats,
            1,
            ckpt.as_mut(),
            crash.as_ref(),
        )?;
        let first = first.graph();

        // If a device was lost during pass I, re-run plan *selection* over
        // the survivors — capacity and shares re-derive inside multi_pass
        // either way, but under `--plan auto` the argmin itself may now
        // prefer different axes (every candidate is bit-identical, so
        // switching between passes is safe). The pipeline-mode axis is
        // pinned to pass I's choice so the makespan accounting keeps one
        // convention across the run.
        let effective = if self.gpus.iter().any(|gp| gp.is_lost())
            && matches!(effective.plan, PlanMode::Auto(_))
        {
            let mut re = effective;
            if let PlanMode::Auto(mut forced) = re.plan {
                forced.mode = true;
                re.plan = PlanMode::Auto(forced);
            }
            Plan::lower_auto(&re, &self.gpus, g.offsets(), g.n())?.1
        } else {
            effective
        };

        // Pass II records may hold cross-device fragments, so Phase III
        // goes through the generic (merging) aggregation and the
        // materialized reporting path.
        let (second, pipe2, stats2, agg2, rec2) = self.multi_pass(
            &effective,
            &first,
            effective.s2,
            &effective.family_pass2(),
            false,
            &mut spill_stats,
            2,
            ckpt.as_mut(),
            crash.as_ref(),
        )?;
        let second = second.graph();
        let mut recovery = rec1;
        recovery.merge(&rec2);
        let (partition, device_components) = match effective.components {
            ComponentsMode::Host => (report::partition_clusters(g.n(), &first, &second), 0.0),
            ComponentsMode::Device => {
                self.device_partition(g.n(), &first, &second, &mut recovery)?
            }
        };
        // The run completed: retire the journal. (Durability ends here; a
        // crash anywhere above leaves the manifest in place for --resume.)
        if let Some(ck) = ckpt.take() {
            ck.finalize().map_err(checkpoint::to_device)?;
        }

        let wall = wall_start.elapsed().as_secs_f64();
        let snaps: Vec<_> = self.gpus.iter().map(|g| g.counters()).collect();
        let kernel_wall: f64 = snaps.iter().map(|s| s.kernel_wall_seconds).sum();
        let per_device_gpu_seconds: Vec<f64> = snaps.iter().map(|s| s.kernel_seconds).collect();
        recovery.faults_injected = snaps.iter().map(|s| s.faults_injected).sum();
        let max =
            |f: fn(&gpclust_gpu::CountersSnapshot) -> f64| snaps.iter().map(f).fold(0.0, f64::max);
        let spill_seconds = spill_stats.write_seconds + spill_stats.read_seconds;
        let mut times = StageTimes {
            cpu: (wall - kernel_wall - spill_seconds).max(0.0),
            gpu: max(|s| s.kernel_seconds),
            h2d: max(|s| s.h2d_seconds),
            d2h: max(|s| s.d2h_seconds),
            disk_io: spill_seconds,
            spilled_bytes: spill_stats.bytes,
            device_pipelined: 0.0,
            // Devices aggregate concurrently, so — like the gpu column —
            // the aggregation-kernel share is the per-pass max over
            // devices, summed over the passes.
            device_aggregation: agg1 + agg2,
            device_components,
            recovery,
            ..Default::default()
        };
        times.device_pipelined = match effective.mode {
            PipelineMode::Synchronous => times.device_serialized(),
            PipelineMode::Overlapped => pipe1 + pipe2,
        };
        times.record_batch_stats(&stats1);
        times.record_batch_stats(&stats2);
        times.record_prediction(predicted.as_ref());
        Ok(MultiGpuReport {
            partition,
            times,
            per_device_gpu_seconds,
            batch_stats: [stats1, stats2],
        })
    }

    /// Pass-I shingle records for `input`, gathered across the fleet and
    /// merged into one canonical record run — the incremental engine's
    /// delta pass. Runs under the full fault machinery (transient retries,
    /// OOM re-plans, lost-device redistribution) but without a run
    /// checkpoint: the engine's durability lives in the index store, and a
    /// delta pass is idempotent until its records are merged into the
    /// index. Returns the run, the pipelined makespan, and the recovery
    /// report.
    pub(crate) fn gather_pass1_records(
        &self,
        params: &ShinglingParams,
        input: &impl AdjacencyInput,
        spill: &mut SpillStats,
    ) -> Result<(SortedRun, f64, RecoveryReport), DeviceError> {
        let (yielded, pipe, _stats, _agg, rec) = self.multi_pass(
            params,
            input,
            params.s1,
            &params.family_pass1(),
            true,
            spill,
            1,
            None,
            None,
        )?;
        Ok((yielded.records(), pipe, rec))
    }

    /// Passes II + III from a first-level shingle graph: the cheap passes
    /// the incremental engine re-runs after merging a delta into its
    /// index. Fleet-dealt like any pass; the partition is bit-identical
    /// to the batch pipeline's given the same `first`.
    pub(crate) fn partition_from_first(
        &self,
        params: &ShinglingParams,
        n: usize,
        first: &ShingleGraph,
        spill: &mut SpillStats,
    ) -> Result<(Partition, f64, RecoveryReport), DeviceError> {
        let (second, pipe, _stats, _agg, mut recovery) = self.multi_pass(
            params,
            first,
            params.s2,
            &params.family_pass2(),
            false,
            spill,
            2,
            None,
            None,
        )?;
        let second = second.graph();
        let partition = match params.components {
            ComponentsMode::Host => report::partition_clusters(n, first, &second),
            ComponentsMode::Device => self.device_partition(n, first, &second, &mut recovery)?.0,
        };
        Ok((partition, pipe, recovery))
    }

    /// One shingling pass with batches dealt round-robin across devices,
    /// one executor per device, **aggregated**. Under
    /// [`AggregationMode::Host`] the per-device record streams merge into
    /// one [`RawShingles`] that the generic host aggregation sorts. Under
    /// [`AggregationMode::Device`] each device packs + radix-sorts its
    /// *complete* (non-fragment) records into [`SortedRun`]s on its own
    /// card, while cross-batch/cross-device **fragments** — the only
    /// records that need host-side reconciliation — pool into a small
    /// [`RawShingles`] whose merged, host-sorted output becomes one extra
    /// run; a single k-way merge over all runs then builds the shingle
    /// graph.
    ///
    /// The pass runs under the plan's fault policy: an `OutOfMemory`
    /// re-plans the whole pass at half capacity, and a
    /// [`DeviceError::DeviceLost`] reported by a device thread puts that
    /// device's unfinished batches back in the pending pool, which the
    /// next round deals across the survivors (batches commit their
    /// records atomically, so a re-run never duplicates). Returns
    /// `(shingle graph, pipelined makespan (max over devices; 0 in
    /// synchronous mode), batch stats, aggregation kernel seconds (max
    /// over devices), recovery report)`.
    #[allow(clippy::too_many_arguments)] // one driver call site per pass
    fn multi_pass(
        &self,
        params: &ShinglingParams,
        input: &impl AdjacencyInput,
        s: usize,
        family: &HashFamily,
        to_records: bool,
        spill: &mut SpillStats,
        pass_no: u64,
        ckpt: Option<&mut Checkpointer>,
        crash: Option<&CrashInjector>,
    ) -> Result<(PassYield, f64, BatchStats, f64, RecoveryReport), DeviceError> {
        // Re-lowered per pass: capacity follows the smallest *surviving*
        // unbenched device, so every batch fits anywhere it may be
        // (re)scheduled — including after a mid-run redistribution.
        let plan = Plan::lower(params, &self.gpus)?;
        let input = PassInput::of(input);
        let mut ckpt = ckpt;
        let mut pass_rec = RecoveryReport::default();
        let mut backoff_rec = RecoveryReport::default();
        let out = with_oom_backoff(&plan.policy, &mut backoff_rec, plan.capacity, |cap| {
            self.multi_pass_attempt(
                params,
                &plan,
                input,
                s,
                family,
                to_records,
                cap,
                &mut pass_rec,
                spill,
                pass_no,
                ckpt.as_deref_mut(),
                crash,
            )
        })?;
        let mut recovery = pass_rec;
        recovery.merge(&backoff_rec);
        let (yielded, makespan, stats, agg_seconds) = out;
        Ok((yielded, makespan, stats, agg_seconds, recovery))
    }

    /// One complete execution of a pass at a fixed starting `capacity` —
    /// the unit [`with_oom_backoff`] re-plans. Rounds of
    /// capability-weighted dealing over the surviving devices; a round
    /// whose device is lost re-queues that device's unfinished batches
    /// for the next round, re-derives the survivors' shares, and — when
    /// the fleet's capacity changed (e.g. the smallest card died) —
    /// re-cuts the remaining element range into batches sized for the
    /// survivors ([`plan_batches_range`]; sound because fragment
    /// reconciliation is insensitive to batch boundaries).
    #[allow(clippy::too_many_arguments)] // the unit with_oom_backoff re-plans
    fn multi_pass_attempt(
        &self,
        params: &ShinglingParams,
        plan: &Plan,
        input: PassInput<'_>,
        s: usize,
        family: &HashFamily,
        to_records: bool,
        capacity: usize,
        recovery: &mut RecoveryReport,
        spill: &mut SpillStats,
        pass_no: u64,
        mut ckpt: Option<&mut Checkpointer>,
        crash: Option<&CrashInjector>,
    ) -> Result<(PassYield, f64, BatchStats, f64), DeviceError> {
        let mut capacity = capacity;
        let mut pass = plan.pass(s, plan.aggregation, capacity, input.offsets);
        let device_agg = plan.aggregation == AggregationMode::Device;
        // Bounded budget: never accumulate the whole pass's record volume —
        // device runs spill to disk as they arrive, host-aggregated reports
        // pack + spill their complete records per round, and only the
        // batch-boundary fragments pool in memory. `raw` then holds the
        // fragment pool instead of the full record stream.
        let bounded = !plan.mem_budget.is_unbounded();
        let mut ext_runs: Vec<ExternalRun> = Vec::new();
        let mut split: Vec<u32> = if bounded && !device_agg {
            split_nodes(&pass.batches, input.offsets)
        } else {
            Vec::new()
        };

        let mut raw = RawShingles::new(s);
        let mut runs: Vec<SortedRun> = Vec::new();
        let mut makespan_by_dev = vec![0.0f64; self.gpus.len()];
        let mut agg_by_dev = vec![0.0f64; self.gpus.len()];
        let mut pending: Vec<usize> = (0..pass.batches.len()).collect();

        // Checkpointing covers the bounded (spill-to-disk) path: the whole
        // pass is one journal entry whose sealed runs + fragment pool
        // replay on resume, bit-identically (the external merge is a full
        // sort-merge over the same record set, and the pool run keeps its
        // "fragments last" position). Unbounded passes hold everything in
        // memory — nothing durable to reuse.
        let input_fp = checkpoint::fingerprint_offsets(input.offsets);
        let mut metas: Vec<RunMeta> = Vec::new();
        let mut run_idx = 0usize;
        let mut reused = false;
        if bounded {
            if let Some(ck) = ckpt.as_deref_mut() {
                ck.begin_group(checkpoint::signature(&[
                    pass_no,
                    s as u64,
                    capacity as u64,
                    pass.batches.len() as u64,
                    device_agg as u64,
                ]));
                match ck.take_entry(0, input_fp, s) {
                    Reuse::Hit(e) => {
                        recovery.resumed_shards += 1;
                        for run in e.runs {
                            ext_runs.push(ExternalRun::Disk(run));
                        }
                        raw.append(&e.pool);
                        reused = true;
                        pending.clear();
                    }
                    Reuse::Invalid => recovery.checksum_failures += 1,
                    Reuse::Miss => {}
                }
            }
        }

        while !pending.is_empty() {
            let alive: Vec<(usize, &Gpu)> = self
                .gpus
                .iter()
                .enumerate()
                .filter(|(_, g)| !g.is_lost())
                .collect();
            if alive.is_empty() {
                return Err(DeviceError::DeviceLost {
                    device: self.gpus.iter().position(|g| g.is_lost()).unwrap_or(0) as u32,
                });
            }
            // Capability-proportional dealing, recomputed per round so a
            // device lost in an earlier round holds weight 0 and a fleet
            // reduced to its slower members re-normalizes.
            let fleet_shares =
                capability_shares(&device_weights(&self.gpus, plan.kernel, family.len()));
            let alive_shares: Vec<f64> = alive.iter().map(|&(d, _)| fleet_shares[d]).collect();
            let shares = weighted_shares(&pending, &alive_shares);
            pending.clear();
            let outcomes: Vec<Result<(PassReport, RecoveryReport), DeviceError>> =
                std::thread::scope(|scope| {
                    let pass = &pass;
                    let handles: Vec<_> = alive
                        .iter()
                        .zip(&shares)
                        .map(|(&(_, gpu), share)| {
                            let sub = pass.subplan(share.clone());
                            scope.spawn(move || {
                                let mut dev_rec = RecoveryReport::default();
                                Executor::new(gpu)
                                    .run(&sub, input, family, &mut dev_rec, Sink::Gather)
                                    .map(|report| (report, dev_rec))
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("device worker panicked"))
                        .collect()
                });
            let mut fatal: Option<DeviceError> = None;
            let mut lost_this_round = false;
            for ((d, _), outcome) in alive.iter().zip(outcomes) {
                let (report, dev_rec) = match outcome {
                    Ok(o) => o,
                    Err(e) => {
                        // Commit/finish errors are not redistributable
                        // (only possible under a policy that forbids
                        // degradation) — the typed error surfaces.
                        fatal.get_or_insert(e);
                        continue;
                    }
                };
                // Commit the device's completed work even if it was lost
                // mid-round: completed batches stay completed.
                if bounded {
                    // A complete `(node, trial)` record lives wholly in one
                    // batch and so in exactly one report, which makes each
                    // report's packed output a valid external-merge run —
                    // equal `(key, node)` entries never span runs.
                    // Checkpointed runs seal into the journal directory
                    // (durable, manifest-owned); scratch runs spill to the
                    // drop-cleaned temp dir.
                    let mut spill_one =
                        |run: &SortedRun,
                         ckpt: Option<&mut Checkpointer>,
                         spill: &mut SpillStats,
                         fatal: &mut Option<DeviceError>,
                         ext_runs: &mut Vec<ExternalRun>| {
                            let written = match ckpt {
                                Some(ck) => SpilledRun::write_at(
                                    ck.run_path(0, run_idx),
                                    s,
                                    run,
                                    spill,
                                    true,
                                )
                                .inspect(|sp| {
                                    metas.push(RunMeta::of(ck.run_file(0, run_idx), sp));
                                }),
                                None => SpilledRun::write(s, run, spill),
                            };
                            run_idx += 1;
                            match written {
                                Ok(sp) => ext_runs.push(ExternalRun::Disk(sp)),
                                Err(e) => {
                                    fatal.get_or_insert(spill::io_to_device(e));
                                }
                            }
                        };
                    if device_agg {
                        for run in &report.runs {
                            spill_one(run, ckpt.as_deref_mut(), spill, &mut fatal, &mut ext_runs);
                        }
                        raw.append(&report.raw);
                    } else {
                        let mut interior = RawShingles::new(s);
                        route_shard_records(&report.raw, &split, &mut interior, &mut raw);
                        if !interior.is_empty() {
                            let run = fragment_run(&interior, plan.par_sort_min);
                            spill_one(&run, ckpt.as_deref_mut(), spill, &mut fatal, &mut ext_runs);
                        }
                    }
                } else {
                    for i in 0..report.raw.len() {
                        raw.push(
                            report.raw.trial(i),
                            report.raw.node(i),
                            report.raw.pairs_of(i),
                        );
                    }
                    runs.extend(report.runs);
                }
                makespan_by_dev[*d] += report.makespan;
                agg_by_dev[*d] += report.agg_kernel_seconds;
                recovery.merge(&dev_rec);
                if let Some((remaining, err)) = report.unfinished {
                    match err {
                        DeviceError::DeviceLost { .. } => {
                            let t0 = Instant::now();
                            recovery.lost_devices += 1;
                            recovery.redistributed_batches += remaining.len() as u64;
                            pending.extend(remaining);
                            lost_this_round = true;
                            recovery.recovery_seconds += t0.elapsed().as_secs_f64();
                        }
                        e => {
                            fatal.get_or_insert(e);
                        }
                    }
                }
            }
            if let Some(e) = fatal {
                return Err(e);
            }
            pending.sort_unstable();

            // Re-run plan selection over the survivors: if the fleet's
            // capacity changed (the lost card was the one bounding batch
            // size), re-cut the not-yet-run element ranges into batches
            // sized for who is left, preserving any OOM-backoff scaling.
            if lost_this_round && !pending.is_empty() {
                if let Ok(replan) = Plan::lower(params, &self.gpus) {
                    let backoff = capacity as f64 / plan.capacity as f64;
                    let new_cap = ((replan.capacity as f64 * backoff) as usize).max(1);
                    if new_cap != capacity {
                        let t0 = Instant::now();
                        // Maximal runs of consecutive pending ids cover
                        // contiguous element ranges; re-batch each range.
                        let mut recut = Vec::new();
                        let mut i = 0;
                        while i < pending.len() {
                            let mut j = i;
                            while j + 1 < pending.len() && pending[j + 1] == pending[j] + 1 {
                                j += 1;
                            }
                            let lo = pass.batches[pending[i]].elem_lo;
                            let hi = pass.batches[pending[j]].elem_hi;
                            for b in plan_batches_range(input.offsets, lo, hi, new_cap) {
                                recut.push(pass.batches.len());
                                pass.batches.push(b);
                            }
                            i = j + 1;
                        }
                        pending = recut;
                        capacity = new_cap;
                        // The recut may add or remove batch boundaries in
                        // the not-yet-run range; refresh the split-node set
                        // so later rounds route by the boundaries that
                        // actually apply. Already-routed records are
                        // unaffected: a recut only covers ranges that have
                        // produced no records yet.
                        if bounded && !device_agg {
                            split = split_nodes(&pass.batches, input.offsets);
                        }
                        recovery.recovery_seconds += t0.elapsed().as_secs_f64();
                    }
                }
            }
        }

        // Seal, then commit: the pass's fragment pool is made durable
        // alongside its runs, the seal crash site fires with everything
        // synced but nothing committed (resume re-runs the pass), and the
        // commit site fires with the entry journaled (resume replays it).
        if bounded && !reused {
            if let Some(ck) = ckpt {
                let pool_meta = if raw.is_empty() {
                    None
                } else {
                    let (records, crc) = write_pool(&ck.pool_path(0), &raw, 0, spill)
                        .map_err(spill::io_to_device)?;
                    Some(PoolMeta {
                        file: ck.pool_file(0),
                        records,
                        crc,
                    })
                };
                if let Some(cr) = crash {
                    cr.strike(CrashSite::ShardSeal)?;
                }
                ck.commit_entry(0, input_fp, metas, pool_meta)
                    .map_err(spill::io_to_device)?;
                if let Some(cr) = crash {
                    cr.strike(CrashSite::ManifestCommit)?;
                }
            }
        }
        if let Some(cr) = crash {
            cr.strike(CrashSite::Merge)?;
        }
        let yielded = if bounded {
            // The pooled fragments, merged and host-sorted, become the
            // final in-memory run alongside the spilled ones; one external
            // k-way merge reconstructs the graph (or, for the index path,
            // the record run — the merges pop in the same order). Under
            // [`ComponentsMode::Device`] this replaces the device-side
            // inversion (it needs resident runs — exactly what the budget
            // rules out) with the bit-identical host external merge; Phase
            // III itself still runs on the devices.
            if !raw.is_empty() {
                ext_runs.push(ExternalRun::Mem(fragment_run(&raw, plan.par_sort_min)));
            }
            if to_records {
                PassYield::Records(
                    merge_external_to_run(s, ext_runs, spill).map_err(spill::io_to_device)?,
                )
            } else {
                PassYield::Graph(
                    merge_external_runs(s, ext_runs, spill).map_err(spill::io_to_device)?,
                )
            }
        } else if device_agg {
            // The pooled fragments, merged and host-sorted, become one
            // extra run alongside the device runs.
            if !raw.is_empty() {
                runs.push(fragment_run(&raw, plan.par_sort_min));
            }
            if to_records {
                // The index path stops at the record-level merge: the
                // records must outlive the pass, and their later inversion
                // ([`crate::index::ShingleIndex::to_graph`]) reproduces
                // exactly the graph the merge below would have built.
                PassYield::Records(merge_runs_to_run(s, runs))
            } else {
                PassYield::Graph(match plan.components {
                    ComponentsMode::Host => merge_sorted_runs(s, runs),
                    // The pooled runs are host-resident either way; invert
                    // them on the first surviving device (host k-way merge
                    // as fault fallback). Its kernel seconds count toward
                    // that device's aggregation share, like the sort it
                    // extends.
                    ComponentsMode::Device => {
                        let d = self.gpus.iter().position(|g| !g.is_lost()).unwrap_or(0);
                        let mut inv_seconds = 0.0;
                        let graph = device_invert_or_merge(
                            &self.gpus[d],
                            &pass,
                            runs,
                            recovery,
                            &mut inv_seconds,
                        )?;
                        agg_by_dev[d] += inv_seconds;
                        graph
                    }
                })
            }
        } else if to_records {
            // All records came back raw (host aggregation gathers them
            // ungrouped); one canonical fragment-merge sort is exactly the
            // run [`aggregate_with`] would invert.
            PassYield::Records(fragment_run(&raw, plan.par_sort_min))
        } else {
            PassYield::Graph(aggregate_with(&raw, plan.par_sort_min))
        };
        let makespan = makespan_by_dev.iter().fold(0.0f64, |a, &b| a.max(b));
        let agg_seconds = agg_by_dev.iter().fold(0.0f64, |a, &b| a.max(b));
        Ok((yielded, makespan, pass.stats, agg_seconds))
    }

    /// Device-resident Phase III across the fleet: the union-edge list of
    /// the materialized second-level graph is dealt round-robin across the
    /// surviving devices, each labels its share with the pointer-jumping
    /// kernel over the full vertex range, and the host union–find
    /// *absorbs* the per-device min-vertex labelings
    /// ([`absorb_labels`]) — yielding the components of the union of the
    /// edge shares, which is exactly [`report::partition_clusters`].
    ///
    /// A share whose kernel faults past its retries is host-unioned
    /// directly (counted as a host fallback; dense fallback labels must
    /// *not* be absorbed — they are component ids, not vertex ids). With
    /// no survivors the whole edge list takes that path. Returns the
    /// partition plus the modeled Phase-III kernel seconds (max over
    /// devices — they label concurrently).
    fn device_partition(
        &self,
        n: usize,
        first: &ShingleGraph,
        second: &ShingleGraph,
        recovery: &mut RecoveryReport,
    ) -> Result<(Partition, f64), DeviceError> {
        let edges = report::partition_union_edges(first, second);
        let mut uf = UnionFind::new(n);
        let host_union = |uf: &mut UnionFind, share: &[u64], recovery: &mut RecoveryReport| {
            recovery.host_fallbacks += 1;
            let t0 = Instant::now();
            for &edge in share {
                uf.union((edge >> 32) as u32, (edge & 0xFFFF_FFFF) as u32);
            }
            recovery.recovery_seconds += t0.elapsed().as_secs_f64();
        };
        let alive: Vec<&Gpu> = self.gpus.iter().filter(|g| !g.is_lost()).collect();
        if alive.is_empty() {
            host_union(&mut uf, &edges, recovery);
            return Ok((Partition::from_union_find(&mut uf), 0.0));
        }
        let mut cc_seconds = 0.0f64;
        for (i, gpu) in alive.iter().enumerate() {
            let share: Vec<u64> = edges.iter().copied().skip(i).step_by(alive.len()).collect();
            if share.is_empty() {
                continue;
            }
            let k0 = gpu.counters().kernel_seconds;
            let attempt = retry_transient(&self.params.fault, recovery, || {
                let dev = gpu.htod(&share)?;
                thrust::connected_components(gpu, n, &dev)
            });
            cc_seconds = cc_seconds.max(gpu.counters().kernel_seconds - k0);
            match attempt {
                Ok(cc) => absorb_labels(&mut uf, &cc.labels),
                Err(e)
                    if matches!(e, DeviceError::OutOfMemory { .. })
                        || self.params.fault.degrade_to_host =>
                {
                    host_union(&mut uf, &share, recovery);
                }
                Err(e) => return Err(e),
            }
        }
        Ok((Partition::from_union_find(&mut uf), cc_seconds))
    }
}

/// Deal the pending batch ids round-robin across the `n_alive` surviving
/// devices (device index order — deterministic for a given survivor set).
/// Shares are disjoint, cover every pending batch, and differ in size by
/// at most one.
fn round_robin_shares(pending: &[usize], n_alive: usize) -> Vec<Vec<usize>> {
    (0..n_alive)
        .map(|i| pending.iter().copied().skip(i).step_by(n_alive).collect())
        .collect()
}

/// Deal the pending batch ids across devices in proportion to their
/// capability shares. Target counts come from largest-remainder
/// apportionment; ids are then dealt in order by a deficit stride (each
/// id goes to the device furthest behind its proportional quota, ties to
/// the lowest index), so every device's share is an interleaved
/// subsequence rather than a contiguous block — a lost device's work
/// redistributes evenly. Uniform weights reproduce
/// [`round_robin_shares`] exactly.
fn weighted_shares(pending: &[usize], weights: &[f64]) -> Vec<Vec<usize>> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 || weights.iter().all(|&w| (w - weights[0]).abs() < 1e-12) {
        return round_robin_shares(pending, n);
    }
    let counts = apportion(pending.len(), weights);
    let total = pending.len() as f64;
    let mut shares: Vec<Vec<usize>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for (k, &id) in pending.iter().enumerate() {
        let mut best = 0;
        let mut best_deficit = f64::NEG_INFINITY;
        for d in 0..n {
            if shares[d].len() >= counts[d] {
                continue;
            }
            let deficit = counts[d] as f64 * (k + 1) as f64 / total - shares[d].len() as f64;
            if deficit > best_deficit {
                best_deficit = deficit;
                best = d;
            }
        }
        shares[best].push(id);
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ShingleKernel;
    use crate::pipeline::GpClust;
    use gpclust_gpu::DeviceConfig;
    use gpclust_graph::generate::{planted_partition, PlantedConfig};

    fn graph(seed: u64) -> Csr {
        planted_partition(&PlantedConfig {
            group_sizes: vec![40, 25, 30, 15],
            n_noise_vertices: 20,
            p_intra: 0.7,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed,
        })
        .graph
    }

    #[test]
    fn multi_gpu_matches_single_device() {
        let g = graph(31);
        let params = ShinglingParams::light(9);
        let single = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        for n_dev in [1usize, 2, 3] {
            let gpus = (0..n_dev)
                .map(|_| Gpu::with_workers(DeviceConfig::tesla_k20(), 1))
                .collect();
            let multi = MultiGpuClust::new(params, gpus).unwrap();
            let report = multi.cluster(&g).unwrap();
            assert_eq!(report.partition, single.partition, "{n_dev} devices");
        }
    }

    #[test]
    fn multi_gpu_matches_under_tiny_devices_with_cross_device_splits() {
        let g = planted_partition(&PlantedConfig {
            group_sizes: vec![150, 120, 100],
            n_noise_vertices: 30,
            p_intra: 0.5,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed: 33,
        })
        .graph;
        let params = ShinglingParams::light(11);
        let single = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        let gpus = (0..3)
            .map(|_| Gpu::with_workers(DeviceConfig::tiny_test_device(), 1))
            .collect();
        let multi = MultiGpuClust::new(params, gpus).unwrap();
        let report = multi.cluster(&g).unwrap();
        assert_eq!(report.partition, single.partition);
    }

    #[test]
    fn multi_gpu_overlapped_bit_identical_and_pipelined() {
        let g = graph(37);
        let base = ShinglingParams::light(15);
        let single = GpClust::new(base, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();

        // Overlapped across two big devices: same clusters, and the stream
        // makespan beats the serialized device path.
        let gpus = (0..2)
            .map(|_| Gpu::with_workers(DeviceConfig::tesla_k20(), 1))
            .collect();
        let multi = MultiGpuClust::new(base.with_mode(PipelineMode::Overlapped), gpus).unwrap();
        let ovl = multi.cluster(&g).unwrap();
        assert_eq!(ovl.partition, single.partition);
        assert!(ovl.times.device_pipelined > 0.0);
        assert!(ovl.times.device_pipelined < ovl.times.device_serialized());
        assert!(ovl.times.device_pipelined >= ovl.times.gpu - 1e-9);

        // And across tiny devices, where lists split across devices.
        let gpus = (0..3)
            .map(|_| Gpu::with_workers(DeviceConfig::tiny_test_device(), 1))
            .collect();
        let multi = MultiGpuClust::new(base.with_mode(PipelineMode::Overlapped), gpus).unwrap();
        let ovl = multi.cluster(&g).unwrap();
        assert_eq!(ovl.partition, single.partition);
    }

    #[test]
    fn fused_select_matches_across_devices_and_modes() {
        let g = graph(43);
        let params = ShinglingParams::light(19);
        let single = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        for mode in [PipelineMode::Synchronous, PipelineMode::Overlapped] {
            let gpus = (0..3)
                .map(|_| Gpu::with_workers(DeviceConfig::tiny_test_device(), 1))
                .collect();
            let multi = MultiGpuClust::new(
                params
                    .with_mode(mode)
                    .with_kernel(ShingleKernel::FusedSelect),
                gpus,
            )
            .unwrap();
            let report = multi.cluster(&g).unwrap();
            assert_eq!(report.partition, single.partition, "{mode:?}");
            assert_eq!(report.batch_stats[0].elem_footprint_bytes, 8);
            assert!(report.times.n_batches > 0);
        }
    }

    /// Device aggregation across the fleet — complete records sorted on
    /// their own card, fragments pooled and merged as one extra run —
    /// must reproduce the single-device host-aggregated partition, across
    /// device counts, schedules, and kernels.
    #[test]
    fn device_aggregation_matches_across_devices_and_modes() {
        let g = planted_partition(&PlantedConfig {
            group_sizes: vec![150, 120, 100],
            n_noise_vertices: 30,
            p_intra: 0.5,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed: 47,
        })
        .graph;
        let params = ShinglingParams::light(23);
        let single = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        for mode in [PipelineMode::Synchronous, PipelineMode::Overlapped] {
            for kernel in [ShingleKernel::SortCompact, ShingleKernel::FusedSelect] {
                for n_dev in [1usize, 3] {
                    // Tiny devices force cross-batch and cross-device
                    // splits, so the fragment-pool run actually carries
                    // records.
                    let gpus = (0..n_dev)
                        .map(|_| Gpu::with_workers(DeviceConfig::tesla_k20(), 1))
                        .collect();
                    let multi = MultiGpuClust::new(
                        params
                            .with_mode(mode)
                            .with_kernel(kernel)
                            .with_aggregation(AggregationMode::Device),
                        gpus,
                    )
                    .unwrap();
                    let report = multi.cluster(&g).unwrap();
                    assert_eq!(
                        report.partition, single.partition,
                        "{mode:?} {kernel:?} {n_dev} devices"
                    );
                    assert!(
                        report.times.device_aggregation > 0.0,
                        "{mode:?} {kernel:?} {n_dev} devices"
                    );
                }
            }
        }
    }

    /// Device-resident Phase III across the fleet must reproduce the
    /// single-device host partition across schedules × aggregation modes
    /// × device counts, with the components kernel time broken out and no
    /// host fallback taken.
    #[test]
    fn device_components_match_across_devices_and_modes() {
        let g = graph(51);
        let params = ShinglingParams::light(27);
        let single = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        for mode in [PipelineMode::Synchronous, PipelineMode::Overlapped] {
            for agg in [AggregationMode::Host, AggregationMode::Device] {
                for n_dev in [1usize, 2, 4] {
                    let gpus = (0..n_dev)
                        .map(|_| Gpu::with_workers(DeviceConfig::tesla_k20(), 1))
                        .collect();
                    let multi = MultiGpuClust::new(
                        params
                            .with_mode(mode)
                            .with_aggregation(agg)
                            .with_components(ComponentsMode::Device),
                        gpus,
                    )
                    .unwrap();
                    let report = multi.cluster(&g).unwrap();
                    assert_eq!(
                        report.partition, single.partition,
                        "{mode:?} {agg:?} {n_dev} devices"
                    );
                    assert!(
                        report.times.device_components > 0.0,
                        "{mode:?} {agg:?} {n_dev} devices"
                    );
                    assert_eq!(
                        report.times.recovery.host_fallbacks, 0,
                        "{mode:?} {agg:?} {n_dev} devices"
                    );
                }
            }
        }
    }

    /// A device lost during the passes is excluded from Phase III: the
    /// survivors label the whole edge list and the partition is unchanged.
    #[test]
    fn device_components_survive_device_loss() {
        use gpclust_gpu::{FaultKind, FaultPlan, FaultSite};
        let g = graph(53);
        let params = ShinglingParams::light(29).with_components(ComponentsMode::Device);
        let oracle = GpClust::new(
            params.with_components(ComponentsMode::Host),
            Gpu::with_workers(DeviceConfig::tesla_k20(), 2),
        )
        .unwrap()
        .cluster(&g)
        .unwrap();
        let gpus: Vec<Gpu> = (0..2)
            .map(|d| {
                let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
                if d == 0 {
                    gpu.set_fault_plan(
                        FaultPlan::scheduled()
                            .with_fault(FaultSite::Kernel, 1, FaultKind::DeviceLost)
                            .with_device(0),
                    );
                }
                gpu
            })
            .collect();
        let report = MultiGpuClust::new(params, gpus)
            .unwrap()
            .cluster(&g)
            .unwrap();
        assert_eq!(report.partition, oracle.partition);
        assert_eq!(report.times.recovery.lost_devices, 1);
        assert!(report.times.device_components > 0.0);
    }

    /// Device aggregation widens the per-element footprint, and the
    /// report says so.
    #[test]
    fn device_aggregation_footprint_visible_in_stats() {
        let g = graph(49);
        let gpus = vec![Gpu::with_workers(DeviceConfig::tesla_k20(), 2)];
        let multi = MultiGpuClust::new(
            ShinglingParams::light(25).with_aggregation(AggregationMode::Device),
            gpus,
        )
        .unwrap();
        let report = multi.cluster(&g).unwrap();
        assert_eq!(report.batch_stats[0].elem_footprint_bytes, 32);
    }

    #[test]
    fn fused_select_plans_fewer_batches_across_the_fleet() {
        let g = graph(45);
        let params = ShinglingParams::light(21);
        let run = |kernel| {
            let gpus = (0..2)
                .map(|_| Gpu::with_workers(DeviceConfig::tiny_test_device(), 1))
                .collect();
            MultiGpuClust::new(params.with_kernel(kernel), gpus)
                .unwrap()
                .cluster(&g)
                .unwrap()
        };
        let sort = run(ShingleKernel::SortCompact);
        let sel = run(ShingleKernel::FusedSelect);
        assert_eq!(sort.partition, sel.partition);
        assert!(sel.times.n_batches < sort.times.n_batches);
        assert!(sel.times.gpu < sort.times.gpu);
    }

    #[test]
    fn synchronous_mode_reports_serialized_as_pipelined() {
        let g = graph(39);
        let gpus = (0..2)
            .map(|_| Gpu::with_workers(DeviceConfig::tesla_k20(), 1))
            .collect();
        let multi = MultiGpuClust::new(ShinglingParams::light(17), gpus).unwrap();
        let report = multi.cluster(&g).unwrap();
        assert!((report.times.device_pipelined - report.times.device_serialized()).abs() < 1e-12);
    }

    #[test]
    fn device_time_shrinks_with_more_devices() {
        // Large enough that both passes span several tiny-device batches;
        // otherwise a single-batch pass bounds the achievable reduction.
        let g = planted_partition(&PlantedConfig {
            group_sizes: vec![200, 160, 140, 120],
            n_noise_vertices: 40,
            p_intra: 0.5,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed: 35,
        })
        .graph;
        let params = ShinglingParams::light(13);
        let mut gpu_times = Vec::new();
        for n_dev in [1usize, 4] {
            // Tiny devices force many batches so round-robin matters.
            let gpus = (0..n_dev)
                .map(|_| Gpu::with_workers(DeviceConfig::tiny_test_device(), 1))
                .collect();
            let multi = MultiGpuClust::new(params, gpus).unwrap();
            let report = multi.cluster(&g).unwrap();
            gpu_times.push(report.times.gpu);
            assert_eq!(report.per_device_gpu_seconds.len(), n_dev);
        }
        assert!(
            gpu_times[1] < gpu_times[0] * 0.7,
            "4 devices {} !<< 1 device {}",
            gpu_times[1],
            gpu_times[0]
        );
    }

    /// A bounded memory budget across the fleet — per-report runs spilled
    /// to disk, fragments pooled, one external merge — must reproduce the
    /// unbounded single-device partition for both aggregation modes and
    /// report the spill traffic.
    #[test]
    fn bounded_budget_spills_and_matches_across_devices() {
        let g = graph(63);
        let params = ShinglingParams::light(39);
        let single = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        for agg in [AggregationMode::Host, AggregationMode::Device] {
            for n_dev in [1usize, 3] {
                let gpus = (0..n_dev)
                    .map(|_| Gpu::with_workers(DeviceConfig::tesla_k20(), 1))
                    .collect();
                let multi =
                    MultiGpuClust::new(params.with_aggregation(agg).with_shards(2), gpus).unwrap();
                let report = multi.cluster(&g).unwrap();
                assert_eq!(report.partition, single.partition, "{agg:?}/{n_dev}");
                assert!(report.times.spilled_bytes > 0, "{agg:?}/{n_dev}");
                assert!(report.times.disk_io > 0.0, "{agg:?}/{n_dev}");
            }
        }
    }

    /// A fleet run killed at the pass-II merge leaves both passes
    /// committed in the journal; `--resume` replays them from their
    /// sealed runs (no re-execution) and lands on the oracle partition.
    #[test]
    fn checkpointed_fleet_resumes_after_a_merge_crash() {
        use crate::checkpoint::{CheckpointConfig, CrashPlan, CrashSite, KILL_MARKER};
        let g = graph(67);
        let params = ShinglingParams::light(41).with_shards(2);
        let oracle = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        let dir = std::env::temp_dir().join(format!("gpclust-mgckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fleet = || -> Vec<Gpu> {
            (0..2)
                .map(|_| Gpu::with_workers(DeviceConfig::tesla_k20(), 1))
                .collect()
        };
        // Pass I strikes the merge site once (survives), pass II's strike
        // is the second occurrence — the kill lands after both commits.
        let cfg = CheckpointConfig::new(&dir)
            .with_crash(CrashPlan::scheduled().with_kill(CrashSite::Merge, 2));
        let err = MultiGpuClust::new(params, fleet())
            .unwrap()
            .with_checkpoint(cfg)
            .cluster(&g)
            .unwrap_err();
        assert!(format!("{err}").contains(KILL_MARKER), "{err}");
        let report = MultiGpuClust::new(params, fleet())
            .unwrap()
            .with_checkpoint(CheckpointConfig::new(&dir).resuming())
            .cluster(&g)
            .unwrap();
        assert_eq!(report.partition, oracle.partition);
        assert_eq!(
            report.times.recovery.resumed_shards, 2,
            "both passes must replay from the journal"
        );
        assert_eq!(report.times.recovery.checksum_failures, 0);
        // finalize retired the journal: the directory is empty again.
        let left: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(left.is_empty(), "{left:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_empty_device_list() {
        assert!(MultiGpuClust::new(ShinglingParams::light(0), vec![]).is_err());
    }

    #[test]
    fn round_robin_shares_are_disjoint_balanced_and_complete() {
        for n_pending in [0usize, 1, 2, 7, 16] {
            for n_alive in [1usize, 2, 3, 4] {
                let pending: Vec<usize> = (0..n_pending).collect();
                let shares = round_robin_shares(&pending, n_alive);
                assert_eq!(shares.len(), n_alive);
                let mut all: Vec<usize> = shares.iter().flatten().copied().collect();
                all.sort_unstable();
                assert_eq!(all, pending, "shares must cover exactly the pending set");
                let sizes: Vec<usize> = shares.iter().map(Vec::len).collect();
                let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "unbalanced shares: {sizes:?}");
            }
        }
    }

    #[test]
    fn lost_device_redistributes_remaining_batches() {
        use gpclust_gpu::{FaultKind, FaultPlan, FaultSite};
        let g = graph(41);
        let params = ShinglingParams::light(19);
        let oracle = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();

        // Tiny devices force many batches; device 0 drops off the bus at
        // its first kernel launch, so nearly its whole share re-queues.
        let gpus: Vec<Gpu> = (0..2)
            .map(|d| {
                let gpu = Gpu::with_workers(DeviceConfig::tiny_test_device(), 1);
                if d == 0 {
                    gpu.set_fault_plan(
                        FaultPlan::scheduled()
                            .with_fault(FaultSite::Kernel, 1, FaultKind::DeviceLost)
                            .with_device(0),
                    );
                }
                gpu
            })
            .collect();
        let report = MultiGpuClust::new(params, gpus)
            .unwrap()
            .cluster(&g)
            .unwrap();
        assert_eq!(report.partition, oracle.partition);
        let rec = &report.times.recovery;
        assert_eq!(rec.lost_devices, 1);
        assert!(rec.redistributed_batches > 0, "{rec}");
        let total_batches = report.batch_stats[0].n_batches + report.batch_stats[1].n_batches;
        assert!(
            rec.redistributed_batches <= total_batches,
            "redistributed {} > planned {}",
            rec.redistributed_batches,
            total_batches
        );
    }

    #[test]
    fn losing_every_device_surfaces_a_typed_error() {
        use gpclust_gpu::{FaultKind, FaultPlan, FaultSite};
        let g = graph(43);
        let gpus: Vec<Gpu> = (0..2)
            .map(|d| {
                let gpu = Gpu::with_workers(DeviceConfig::tiny_test_device(), 1);
                gpu.set_fault_plan(
                    FaultPlan::scheduled()
                        .with_fault(FaultSite::Kernel, 1, FaultKind::DeviceLost)
                        .with_device(d),
                );
                gpu
            })
            .collect();
        let err = MultiGpuClust::new(ShinglingParams::light(19), gpus)
            .unwrap()
            .cluster(&g)
            .unwrap_err();
        assert!(matches!(err, DeviceError::DeviceLost { .. }), "{err}");
    }

    #[test]
    fn weighted_shares_are_disjoint_complete_and_proportional() {
        for n_pending in [0usize, 1, 5, 16, 33] {
            let pending: Vec<usize> = (0..n_pending).collect();
            let weights = [2.0, 1.0, 1.0];
            let shares = weighted_shares(&pending, &weights);
            assert_eq!(shares.len(), weights.len());
            let mut all: Vec<usize> = shares.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, pending, "shares must cover exactly the pending set");
            let counts = apportion(n_pending, &weights);
            let sizes: Vec<usize> = shares.iter().map(Vec::len).collect();
            assert_eq!(sizes, counts, "sizes must hit the apportioned targets");
            // The double-weight device never ends up behind an equal one.
            assert!(sizes[0] >= sizes[1] && sizes[0] >= sizes[2], "{sizes:?}");
        }
    }

    /// Uniform (and degenerate) weights must reproduce the round-robin
    /// deal bit for bit — the weighted scheduler is a strict superset.
    #[test]
    fn weighted_shares_degrade_to_round_robin() {
        let pending: Vec<usize> = (0..17).collect();
        for weights in [vec![1.0; 3], vec![0.25; 4], vec![0.0; 3]] {
            assert_eq!(
                weighted_shares(&pending, &weights),
                round_robin_shares(&pending, weights.len()),
                "{weights:?}"
            );
        }
        assert!(weighted_shares(&pending, &[]).is_empty());
    }

    /// A heterogeneous fleet (full-bandwidth + half-bandwidth K20) must
    /// reproduce the single-device partition — proportional dealing only
    /// reshuffles which card runs which batch.
    #[test]
    fn heterogeneous_fleet_matches_single_device() {
        let g = graph(57);
        let params = ShinglingParams::light(33);
        let single = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        for mode in [PipelineMode::Synchronous, PipelineMode::Overlapped] {
            let gpus = vec![
                Gpu::with_workers(DeviceConfig::tesla_k20(), 1),
                Gpu::with_workers(DeviceConfig::tesla_k20_half_bandwidth(), 1),
            ];
            let report = MultiGpuClust::new(params.with_mode(mode), gpus)
                .unwrap()
                .cluster(&g)
                .unwrap();
            assert_eq!(report.partition, single.partition, "{mode:?}");
        }
    }

    /// When the capacity-bounding card dies mid-pass, the survivors
    /// re-cut the remaining element range into their own (larger) batch
    /// size — and the partition is still bit-identical.
    #[test]
    fn lost_capacity_bound_device_recuts_remaining_batches() {
        use gpclust_gpu::{FaultKind, FaultPlan, FaultSite};
        let g = graph(59);
        let params = ShinglingParams::light(35);
        let oracle = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        // Device 0 is a K20 whose memory is capped to 32 KiB — full
        // bandwidth (so it still draws an equal share of batches), but it
        // bounds the fleet capacity. It dies on its first kernel; the
        // surviving K20 re-plans at its own 5 GB capacity, collapsing the
        // small batches into large ones.
        let gpus: Vec<Gpu> = vec![
            {
                let gpu = Gpu::with_workers(
                    DeviceConfig {
                        global_mem_bytes: 32 << 10,
                        ..DeviceConfig::tesla_k20()
                    },
                    1,
                );
                gpu.set_fault_plan(
                    FaultPlan::scheduled()
                        .with_fault(FaultSite::Kernel, 1, FaultKind::DeviceLost)
                        .with_device(0),
                );
                gpu
            },
            Gpu::with_workers(DeviceConfig::tesla_k20(), 1),
        ];
        let report = MultiGpuClust::new(params, gpus)
            .unwrap()
            .cluster(&g)
            .unwrap();
        assert_eq!(report.partition, oracle.partition);
        assert_eq!(report.times.recovery.lost_devices, 1);
        // The re-cut is visible: the K20's capacity admits the whole
        // remaining range in far fewer batches than were redistributed.
        assert!(report.times.recovery.redistributed_batches > 0);
    }

    /// `--plan auto` across the fleet stays bit-identical to the manual
    /// single-device oracle and attaches the prediction to the report.
    #[test]
    fn auto_plan_matches_manual_and_reports_prediction() {
        let g = graph(61);
        let params = ShinglingParams::light(37);
        let oracle = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        let gpus = (0..2)
            .map(|_| Gpu::with_workers(DeviceConfig::tesla_k20(), 1))
            .collect();
        let report = MultiGpuClust::new(params.with_plan_auto(), gpus)
            .unwrap()
            .cluster(&g)
            .unwrap();
        assert_eq!(report.partition, oracle.partition);
        assert!(report.times.predicted_device_seconds > 0.0);
        assert!(report.times.predicted_total_seconds >= report.times.predicted_device_seconds);
        assert!(
            report.times.prediction_error_pct().is_some(),
            "auto runs must expose the model's relative error"
        );
    }
}
