//! Multi-GPU gpClust — the scale-out direction the paper's conclusions
//! point toward ("further performance could be achieved ...").
//!
//! Batches of adjacency lists are dealt round-robin across the devices;
//! each device runs Algorithm 1 over its share on its **own host thread**
//! (devices run concurrently on real hardware, so the host drives them
//! concurrently too), and the per-device record streams are merged on the
//! host in device index order. Because a list can now be split across
//! *devices* (not just batches), the merged stream is not grouped — the
//! generic merge path of [`crate::aggregate::aggregate`] reconciles the
//! fragments, which is exactly what that path exists for. That path is
//! insensitive to record order (fragments are re-sorted and deduped when
//! merged), which is what makes the device-order merge sound.
//!
//! Device time is modeled as the **maximum** over devices; transfer time
//! likewise. Under [`PipelineMode::Overlapped`] each device additionally
//! runs its share on a compute/copy stream pair, and the reported
//! `device_pipelined` is the per-pass maximum of the per-device stream
//! makespans, summed over the two passes. The result is provably identical
//! to the single-device pipeline in either mode (tests assert it).

use crate::aggregate::{aggregate_with, fragment_run, merge_sorted_runs, SortedRun};
use crate::batch::{batch_capacity, plan_batches, Batch, BatchStats};
use crate::gpu_pass::{DeviceRunBuilder, RecordSink};
use crate::minwise::{hash_with, pack, HashFamily};
use crate::params::{AggregationMode, PipelineMode, ShingleKernel, ShinglingParams};
use crate::report;
use crate::shingle::{AdjacencyInput, RawShingles};
use crate::timing::StageTimes;
use gpclust_gpu::{thrust, DeviceBuffer, DeviceError, Gpu, KernelCost, Stream};
use gpclust_graph::{Csr, Partition, ShingleGraph};

/// A gpClust pipeline spanning multiple (simulated) devices.
#[derive(Debug, Clone)]
pub struct MultiGpuClust {
    params: ShinglingParams,
    gpus: Vec<Gpu>,
}

/// Report of a multi-device run.
#[derive(Debug, Clone)]
pub struct MultiGpuReport {
    /// The clusters (identical to a single-device run).
    pub partition: Partition,
    /// Times with device/transfer columns = max over devices.
    pub times: StageTimes,
    /// Per-device simulated kernel seconds (load-balance diagnostics).
    pub per_device_gpu_seconds: Vec<f64>,
    /// How each pass was split into batches (`[pass I, pass II]`) at the
    /// fleet-wide capacity (smallest device, configured kernel).
    pub batch_stats: [BatchStats; 2],
}

impl MultiGpuClust {
    /// Create a pipeline over `gpus` (at least one).
    pub fn new(params: ShinglingParams, gpus: Vec<Gpu>) -> Result<Self, String> {
        params.validate()?;
        if gpus.is_empty() {
            return Err("at least one device required".into());
        }
        Ok(MultiGpuClust { params, gpus })
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.gpus.len()
    }

    /// Cluster `g` across all devices.
    pub fn cluster(&self, g: &Csr) -> Result<MultiGpuReport, DeviceError> {
        for gpu in &self.gpus {
            gpu.reset_counters();
        }
        let wall_start = std::time::Instant::now();

        let (first, pipe1, stats1, agg1) =
            self.multi_pass(g, self.params.s1, &self.params.family_pass1())?;

        // Pass II records may hold cross-device fragments, so Phase III
        // goes through the generic (merging) aggregation and the
        // materialized reporting path.
        let (second, pipe2, stats2, agg2) =
            self.multi_pass(&first, self.params.s2, &self.params.family_pass2())?;
        let partition = report::partition_clusters(g.n(), &first, &second);

        let wall = wall_start.elapsed().as_secs_f64();
        let snaps: Vec<_> = self.gpus.iter().map(|g| g.counters()).collect();
        let kernel_wall: f64 = snaps.iter().map(|s| s.kernel_wall_seconds).sum();
        let per_device_gpu_seconds: Vec<f64> = snaps.iter().map(|s| s.kernel_seconds).collect();
        let max =
            |f: fn(&gpclust_gpu::CountersSnapshot) -> f64| snaps.iter().map(f).fold(0.0, f64::max);
        let mut times = StageTimes {
            cpu: (wall - kernel_wall).max(0.0),
            gpu: max(|s| s.kernel_seconds),
            h2d: max(|s| s.h2d_seconds),
            d2h: max(|s| s.d2h_seconds),
            disk_io: 0.0,
            device_pipelined: 0.0,
            // Devices aggregate concurrently, so — like the gpu column —
            // the aggregation-kernel share is the per-pass max over
            // devices, summed over the passes.
            device_aggregation: agg1 + agg2,
            ..Default::default()
        };
        times.device_pipelined = match self.params.mode {
            PipelineMode::Synchronous => times.device_serialized(),
            PipelineMode::Overlapped => pipe1 + pipe2,
        };
        times.record_batch_stats(&stats1);
        times.record_batch_stats(&stats2);
        Ok(MultiGpuReport {
            partition,
            times,
            per_device_gpu_seconds,
            batch_stats: [stats1, stats2],
        })
    }

    /// One shingling pass with batches dealt round-robin across devices,
    /// one host thread per device, **aggregated**. Under
    /// [`AggregationMode::Host`] the per-device record streams merge into
    /// one [`RawShingles`] that the generic host aggregation sorts. Under
    /// [`AggregationMode::Device`] each device packs + radix-sorts its
    /// *complete* (non-fragment) records into [`SortedRun`]s on its own
    /// card, while cross-batch/cross-device **fragments** — the only
    /// records that need host-side reconciliation — pool into a small
    /// [`RawShingles`] whose merged, host-sorted output becomes one extra
    /// run; a single k-way merge over all runs then builds the shingle
    /// graph. Returns `(shingle graph, pipelined makespan (max over
    /// devices; 0 in synchronous mode), batch stats, aggregation kernel
    /// seconds (max over devices))`.
    fn multi_pass(
        &self,
        input: &impl AdjacencyInput,
        s: usize,
        family: &HashFamily,
    ) -> Result<(ShingleGraph, f64, BatchStats, f64), DeviceError> {
        let offsets = input.offsets();
        let flat = input.flat();
        let kernel = self.params.kernel;
        let aggregation = self.params.aggregation;
        // Use the smallest device's capacity so every batch fits anywhere.
        let capacity = self
            .gpus
            .iter()
            .map(|g| batch_capacity(g.mem_available(), kernel, aggregation))
            .min()
            .expect("at least one device");
        let batches = plan_batches(offsets, capacity);
        let stats = BatchStats::from_plan(&batches, capacity, kernel, aggregation);
        let n_dev = self.gpus.len();
        let overlapped = self.params.mode == PipelineMode::Overlapped;
        let device_agg = aggregation == AggregationMode::Device;

        type Share = (RawShingles, Vec<SortedRun>, f64, f64);
        let shares: Vec<Share> = std::thread::scope(|scope| {
            let batches = &batches;
            let handles: Vec<_> = self
                .gpus
                .iter()
                .enumerate()
                .map(|(d, gpu)| {
                    scope.spawn(move || -> Result<Share, DeviceError> {
                        let streams = overlapped
                            .then(|| (gpu.stream("mgpu-compute"), gpu.stream("mgpu-copy")));
                        let mut raw = RawShingles::new(s);
                        let mut builder = device_agg.then(|| DeviceRunBuilder::new(s, capacity));
                        for batch in batches.iter().skip(d).step_by(n_dev) {
                            let stream_refs = streams.as_ref().map(|(c, p)| (c, p));
                            run_batch(
                                gpu,
                                batch,
                                offsets,
                                flat,
                                s,
                                family,
                                kernel,
                                stream_refs,
                                &mut |trial, node, pairs, fragment| match (&mut builder, fragment) {
                                    (Some(b), false) => {
                                        b.record(gpu, stream_refs, trial, node, pairs)
                                    }
                                    _ => {
                                        raw.push(trial, node, pairs);
                                        Ok(())
                                    }
                                },
                            )?;
                            if let Some(b) = builder.as_mut() {
                                // Cut the run at the batch boundary, after
                                // run_batch freed its device buffers.
                                b.batch_end(gpu, streams.as_ref().map(|(c, p)| (c, p)))?;
                            }
                        }
                        let (runs, agg_seconds) = match builder {
                            Some(b) => b.finish(gpu, streams.as_ref().map(|(c, p)| (c, p)))?,
                            None => (Vec::new(), 0.0),
                        };
                        let makespan = streams.map_or(0.0, |(c, p)| {
                            c.completed_seconds().max(p.completed_seconds())
                        });
                        Ok((raw, runs, agg_seconds, makespan))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("device worker panicked"))
                .collect::<Result<Vec<_>, DeviceError>>()
        })?;

        let mut raw = RawShingles::new(s);
        let mut runs: Vec<SortedRun> = Vec::new();
        let mut makespan = 0.0f64;
        let mut agg_seconds = 0.0f64;
        for (share, share_runs, agg_s, m) in shares {
            for i in 0..share.len() {
                raw.push(share.trial(i), share.node(i), share.pairs_of(i));
            }
            runs.extend(share_runs);
            makespan = makespan.max(m);
            agg_seconds = agg_seconds.max(agg_s);
        }
        let graph = if device_agg {
            // The pooled fragments, merged and host-sorted, become one
            // extra run alongside the device runs.
            if !raw.is_empty() {
                runs.push(fragment_run(&raw, self.params.par_sort_min));
            }
            merge_sorted_runs(s, runs)
        } else {
            aggregate_with(&raw, self.params.par_sort_min)
        };
        Ok((graph, makespan, stats, agg_seconds))
    }
}

/// Algorithm 1 on a single batch, emitting every kept segment's top pairs
/// as `(trial, node, pairs, is_fragment)` records. Fragments (first/last
/// segments continuing into a neighboring batch, possibly on another
/// device) need host-side reconciliation; complete records carry exactly
/// `s` pairs and may aggregate anywhere. With `streams = Some((compute,
/// copy))` the batch upload and each trial's result download are charged
/// asynchronously to the copy stream while the kernels run on the compute
/// stream; data movement itself is eager either way, so the records are
/// bit-identical across schedules.
#[allow(clippy::too_many_arguments)]
fn run_batch(
    gpu: &Gpu,
    batch: &Batch,
    offsets: &[u64],
    flat: &[u32],
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
    streams: Option<(&Stream, &Stream)>,
    emit: &mut impl FnMut(u32, u32, &[u64], bool) -> Result<(), DeviceError>,
) -> Result<(), DeviceError> {
    let (local_offsets, nodes) = batch.segments(offsets);
    if nodes.is_empty() {
        return Ok(());
    }
    let n_segs = nodes.len();
    // Fragment flags are per-batch invariants — hoisted out of the
    // per-segment keep test below.
    let first_frag = batch.first_is_fragment(offsets);
    let last_frag = batch.last_is_fragment(offsets);
    let mut out_offsets = Vec::with_capacity(n_segs + 1);
    out_offsets.push(0usize);
    for i in 0..n_segs {
        let len = (local_offsets[i + 1] - local_offsets[i]) as usize;
        let boundary = (i == 0 && first_frag) || (i == n_segs - 1 && last_frag);
        let k = if boundary || len >= s { len.min(s) } else { 0 };
        out_offsets.push(out_offsets[i] + k);
    }
    let out_total = *out_offsets.last().unwrap();

    let host_elems = &flat[batch.elem_lo as usize..batch.elem_hi as usize];
    let elems_dev = match streams {
        Some((compute, copy)) => {
            let buf = copy.htod_async(host_elems)?;
            compute.wait_event(&copy.record_event());
            buf
        }
        None => gpu.htod(host_elems)?,
    };
    // Only the sort path materializes the packed workspace; the fused
    // kernel hashes on the fly.
    let mut packed_dev = match kernel {
        ShingleKernel::SortCompact => Some(gpu.alloc::<u64>(elems_dev.len())?),
        ShingleKernel::FusedSelect => None,
    };
    // The buffer whose async download is still "in flight" — kept alive
    // for one trial (stream semantics), freed before the next allocation.
    let mut prev_out: Option<DeviceBuffer<u64>> = None;
    for trial in 0..family.len() {
        let (a, b) = family.coeffs(trial);
        let xform = move |v: u32| pack(hash_with(a, b, v), v);
        prev_out = None;
        let mut out_dev = gpu.alloc::<u64>(out_total)?;
        match (kernel, &mut packed_dev) {
            (ShingleKernel::SortCompact, Some(packed_dev)) => {
                match streams {
                    Some((compute, _)) => {
                        thrust::transform_on(compute, &elems_dev, packed_dev, xform);
                        thrust::segmented_sort_on(compute, packed_dev, &local_offsets);
                    }
                    None => {
                        thrust::transform(gpu, &elems_dev, packed_dev, xform);
                        thrust::segmented_sort(gpu, packed_dev, &local_offsets);
                    }
                }
                let src = packed_dev.device_slice();
                let dst = out_dev.device_slice_mut();
                let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
                let mut rest = dst;
                for i in 0..n_segs {
                    let k = out_offsets[i + 1] - out_offsets[i];
                    if k == 0 {
                        continue;
                    }
                    let (head, tail) = rest.split_at_mut(k);
                    rest = tail;
                    let seg_lo = local_offsets[i] as usize;
                    let src_top = &src[seg_lo..seg_lo + k];
                    tasks.push(Box::new(move || head.copy_from_slice(src_top)));
                }
                match streams {
                    Some((compute, _)) => compute.launch(out_total, &KernelCost::gather(), tasks),
                    None => gpu.launch(out_total, &KernelCost::gather(), tasks),
                }
            }
            (ShingleKernel::FusedSelect, _) => match streams {
                Some((compute, _)) => thrust::transform_select_on(
                    compute,
                    &elems_dev,
                    &local_offsets,
                    &out_offsets,
                    &mut out_dev,
                    xform,
                ),
                None => thrust::transform_select(
                    gpu,
                    &elems_dev,
                    &local_offsets,
                    &out_offsets,
                    &mut out_dev,
                    xform,
                ),
            },
            (ShingleKernel::SortCompact, None) => unreachable!("workspace allocated above"),
        }
        let host_out = match streams {
            Some((compute, copy)) => {
                copy.wait_event(&compute.record_event());
                let data = copy.dtoh_async(&out_dev);
                prev_out = Some(out_dev);
                data
            }
            None => gpu.dtoh(&out_dev),
        };
        for i in 0..n_segs {
            let lo = out_offsets[i];
            let hi = out_offsets[i + 1];
            if hi > lo {
                let fragment = (i == 0 && first_frag) || (i == n_segs - 1 && last_frag);
                emit(trial as u32, nodes[i], &host_out[lo..hi], fragment)?;
            }
        }
    }
    drop(prev_out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::GpClust;
    use gpclust_gpu::DeviceConfig;
    use gpclust_graph::generate::{planted_partition, PlantedConfig};

    fn graph(seed: u64) -> Csr {
        planted_partition(&PlantedConfig {
            group_sizes: vec![40, 25, 30, 15],
            n_noise_vertices: 20,
            p_intra: 0.7,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed,
        })
        .graph
    }

    #[test]
    fn multi_gpu_matches_single_device() {
        let g = graph(31);
        let params = ShinglingParams::light(9);
        let single = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        for n_dev in [1usize, 2, 3] {
            let gpus = (0..n_dev)
                .map(|_| Gpu::with_workers(DeviceConfig::tesla_k20(), 1))
                .collect();
            let multi = MultiGpuClust::new(params, gpus).unwrap();
            let report = multi.cluster(&g).unwrap();
            assert_eq!(report.partition, single.partition, "{n_dev} devices");
        }
    }

    #[test]
    fn multi_gpu_matches_under_tiny_devices_with_cross_device_splits() {
        let g = planted_partition(&PlantedConfig {
            group_sizes: vec![150, 120, 100],
            n_noise_vertices: 30,
            p_intra: 0.5,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed: 33,
        })
        .graph;
        let params = ShinglingParams::light(11);
        let single = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        let gpus = (0..3)
            .map(|_| Gpu::with_workers(DeviceConfig::tiny_test_device(), 1))
            .collect();
        let multi = MultiGpuClust::new(params, gpus).unwrap();
        let report = multi.cluster(&g).unwrap();
        assert_eq!(report.partition, single.partition);
    }

    #[test]
    fn multi_gpu_overlapped_bit_identical_and_pipelined() {
        let g = graph(37);
        let base = ShinglingParams::light(15);
        let single = GpClust::new(base, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();

        // Overlapped across two big devices: same clusters, and the stream
        // makespan beats the serialized device path.
        let gpus = (0..2)
            .map(|_| Gpu::with_workers(DeviceConfig::tesla_k20(), 1))
            .collect();
        let multi = MultiGpuClust::new(base.with_mode(PipelineMode::Overlapped), gpus).unwrap();
        let ovl = multi.cluster(&g).unwrap();
        assert_eq!(ovl.partition, single.partition);
        assert!(ovl.times.device_pipelined > 0.0);
        assert!(ovl.times.device_pipelined < ovl.times.device_serialized());
        assert!(ovl.times.device_pipelined >= ovl.times.gpu - 1e-9);

        // And across tiny devices, where lists split across devices.
        let gpus = (0..3)
            .map(|_| Gpu::with_workers(DeviceConfig::tiny_test_device(), 1))
            .collect();
        let multi = MultiGpuClust::new(base.with_mode(PipelineMode::Overlapped), gpus).unwrap();
        let ovl = multi.cluster(&g).unwrap();
        assert_eq!(ovl.partition, single.partition);
    }

    #[test]
    fn fused_select_matches_across_devices_and_modes() {
        let g = graph(43);
        let params = ShinglingParams::light(19);
        let single = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        for mode in [PipelineMode::Synchronous, PipelineMode::Overlapped] {
            let gpus = (0..3)
                .map(|_| Gpu::with_workers(DeviceConfig::tiny_test_device(), 1))
                .collect();
            let multi = MultiGpuClust::new(
                params
                    .with_mode(mode)
                    .with_kernel(ShingleKernel::FusedSelect),
                gpus,
            )
            .unwrap();
            let report = multi.cluster(&g).unwrap();
            assert_eq!(report.partition, single.partition, "{mode:?}");
            assert_eq!(report.batch_stats[0].elem_footprint_bytes, 8);
            assert!(report.times.n_batches > 0);
        }
    }

    /// Device aggregation across the fleet — complete records sorted on
    /// their own card, fragments pooled and merged as one extra run —
    /// must reproduce the single-device host-aggregated partition, across
    /// device counts, schedules, and kernels.
    #[test]
    fn device_aggregation_matches_across_devices_and_modes() {
        let g = planted_partition(&PlantedConfig {
            group_sizes: vec![150, 120, 100],
            n_noise_vertices: 30,
            p_intra: 0.5,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed: 47,
        })
        .graph;
        let params = ShinglingParams::light(23);
        let single = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap()
            .cluster(&g)
            .unwrap();
        for mode in [PipelineMode::Synchronous, PipelineMode::Overlapped] {
            for kernel in [ShingleKernel::SortCompact, ShingleKernel::FusedSelect] {
                for n_dev in [1usize, 3] {
                    // Tiny devices force cross-batch and cross-device
                    // splits, so the fragment-pool run actually carries
                    // records.
                    let gpus = (0..n_dev)
                        .map(|_| Gpu::with_workers(DeviceConfig::tiny_test_device(), 1))
                        .collect();
                    let multi = MultiGpuClust::new(
                        params
                            .with_mode(mode)
                            .with_kernel(kernel)
                            .with_aggregation(AggregationMode::Device),
                        gpus,
                    )
                    .unwrap();
                    let report = multi.cluster(&g).unwrap();
                    assert_eq!(
                        report.partition, single.partition,
                        "{mode:?} {kernel:?} {n_dev} devices"
                    );
                    assert!(
                        report.times.device_aggregation > 0.0,
                        "{mode:?} {kernel:?} {n_dev} devices"
                    );
                }
            }
        }
    }

    /// Device aggregation widens the per-element footprint, and the
    /// report says so.
    #[test]
    fn device_aggregation_footprint_visible_in_stats() {
        let g = graph(49);
        let gpus = vec![Gpu::with_workers(DeviceConfig::tesla_k20(), 2)];
        let multi = MultiGpuClust::new(
            ShinglingParams::light(25).with_aggregation(AggregationMode::Device),
            gpus,
        )
        .unwrap();
        let report = multi.cluster(&g).unwrap();
        assert_eq!(report.batch_stats[0].elem_footprint_bytes, 32);
    }

    #[test]
    fn fused_select_plans_fewer_batches_across_the_fleet() {
        let g = graph(45);
        let params = ShinglingParams::light(21);
        let run = |kernel| {
            let gpus = (0..2)
                .map(|_| Gpu::with_workers(DeviceConfig::tiny_test_device(), 1))
                .collect();
            MultiGpuClust::new(params.with_kernel(kernel), gpus)
                .unwrap()
                .cluster(&g)
                .unwrap()
        };
        let sort = run(ShingleKernel::SortCompact);
        let sel = run(ShingleKernel::FusedSelect);
        assert_eq!(sort.partition, sel.partition);
        assert!(sel.times.n_batches < sort.times.n_batches);
        assert!(sel.times.gpu < sort.times.gpu);
    }

    #[test]
    fn synchronous_mode_reports_serialized_as_pipelined() {
        let g = graph(39);
        let gpus = (0..2)
            .map(|_| Gpu::with_workers(DeviceConfig::tesla_k20(), 1))
            .collect();
        let multi = MultiGpuClust::new(ShinglingParams::light(17), gpus).unwrap();
        let report = multi.cluster(&g).unwrap();
        assert!((report.times.device_pipelined - report.times.device_serialized()).abs() < 1e-12);
    }

    #[test]
    fn device_time_shrinks_with_more_devices() {
        // Large enough that both passes span several tiny-device batches;
        // otherwise a single-batch pass bounds the achievable reduction.
        let g = planted_partition(&PlantedConfig {
            group_sizes: vec![200, 160, 140, 120],
            n_noise_vertices: 40,
            p_intra: 0.5,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed: 35,
        })
        .graph;
        let params = ShinglingParams::light(13);
        let mut gpu_times = Vec::new();
        for n_dev in [1usize, 4] {
            // Tiny devices force many batches so round-robin matters.
            let gpus = (0..n_dev)
                .map(|_| Gpu::with_workers(DeviceConfig::tiny_test_device(), 1))
                .collect();
            let multi = MultiGpuClust::new(params, gpus).unwrap();
            let report = multi.cluster(&g).unwrap();
            gpu_times.push(report.times.gpu);
            assert_eq!(report.per_device_gpu_seconds.len(), n_dev);
        }
        assert!(
            gpu_times[1] < gpu_times[0] * 0.7,
            "4 devices {} !<< 1 device {}",
            gpu_times[1],
            gpu_times[0]
        );
    }

    #[test]
    fn rejects_empty_device_list() {
        assert!(MultiGpuClust::new(ShinglingParams::light(0), vec![]).is_err());
    }
}
