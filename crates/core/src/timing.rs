//! Component timers for the Table I breakdown.
//!
//! The paper decomposes gpClust runtime into: CPU (host-side aggregation
//! and reporting), GPU (kernel time), Data c→g, Data g→c, and Disk I/O.
//! In this reproduction the CPU and Disk columns are *measured wall-clock*
//! seconds on the host, while the GPU and transfer columns are *simulated
//! device seconds* from the cost model — the distinction every report
//! spells out (see EXPERIMENTS.md).

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// A simple accumulating stopwatch.
#[derive(Debug, Default, Clone, Copy)]
pub struct Stopwatch {
    seconds: f64,
}

impl Stopwatch {
    /// Zeroed stopwatch.
    pub fn new() -> Self {
        Stopwatch::default()
    }

    /// Time `f`, adding its duration.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.seconds += start.elapsed().as_secs_f64();
        out
    }

    /// Add raw seconds.
    pub fn add(&mut self, seconds: f64) {
        self.seconds += seconds;
    }

    /// Accumulated seconds.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }
}

/// High-water-mark gauge for host-resident working-set bytes — how the
/// out-of-core path *observes* (rather than asserts) its memory bound.
/// Drivers charge an allocation when a shard's records materialize and
/// discharge it once the buffer spills or drops; the peak is what the
/// `--mem-budget` acceptance check compares against.
///
/// The gauge tracks the bytes the sharding machinery controls (raw
/// record buffers, sorted runs, the merge frontier) — not the process
/// RSS, which the simulated device model has no business estimating.
#[derive(Debug, Default, Clone, Copy)]
pub struct ResidentGauge {
    current: u64,
    peak: u64,
}

impl ResidentGauge {
    /// Zeroed gauge.
    pub fn new() -> Self {
        ResidentGauge::default()
    }

    /// Charge `bytes` to the resident set, raising the peak if needed.
    pub fn charge(&mut self, bytes: u64) {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
    }

    /// Release `bytes` (saturating — a discharge can never go negative).
    pub fn discharge(&mut self, bytes: u64) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// Replace the current charge with `bytes` (for callers that re-measure
    /// a buffer instead of tracking deltas), raising the peak if needed.
    pub fn set_floor(&mut self, bytes: u64) {
        self.current = self.current.max(bytes);
        self.peak = self.peak.max(self.current);
    }

    /// Bytes currently charged.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// High-water mark over the gauge's lifetime.
    pub fn peak(&self) -> u64 {
        self.peak
    }
}

/// Tally of every recovery action the resilience layer took during one
/// run (see [`crate::params::FaultPolicy`]). All zeros on a fault-free
/// run; results are bit-identical either way — this report is how a run
/// says *what it survived*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct RecoveryReport {
    /// Transient faults (failed transfers/launches, ECC events) cleared
    /// by re-attempting the same operation.
    pub retries: u64,
    /// Times an `OutOfMemory` halved the planned batch capacity and
    /// re-planned a device pass.
    pub oom_backoffs: u64,
    /// Batches that exhausted their retries and ran on the bit-identical
    /// host path instead.
    pub degraded_batches: u64,
    /// Per-flush host sort fallbacks in the device-aggregation path
    /// (`DeviceRunBuilder`), previously tracked but never reported.
    pub host_fallbacks: u64,
    /// Devices lost mid-run (multi-GPU; their remaining batches were
    /// redistributed across survivors).
    pub lost_devices: u64,
    /// Batches re-executed on a surviving device after a device loss.
    pub redistributed_batches: u64,
    /// Faults the injector fired during the run (0 without injection).
    pub faults_injected: u64,
    /// Shards skipped on a checkpoint resume because their sealed runs
    /// re-verified clean (see [`crate::checkpoint`]).
    #[serde(default)]
    pub resumed_shards: u64,
    /// Sealed runs or pool segments whose checksum verification failed
    /// on resume — detected corruption, answered by re-running the shard.
    #[serde(default)]
    pub checksum_failures: u64,
    /// Host wall seconds spent inside recovery (retry loops, degraded
    /// host execution, re-planning).
    pub recovery_seconds: f64,
}

impl RecoveryReport {
    /// True if any recovery action was taken (or any fault injected).
    pub fn any(&self) -> bool {
        self.retries != 0
            || self.oom_backoffs != 0
            || self.degraded_batches != 0
            || self.host_fallbacks != 0
            || self.lost_devices != 0
            || self.redistributed_batches != 0
            || self.faults_injected != 0
            || self.resumed_shards != 0
            || self.checksum_failures != 0
    }

    /// Fold another report into this one (multi-device / multi-pass).
    pub fn merge(&mut self, other: &RecoveryReport) {
        self.retries += other.retries;
        self.oom_backoffs += other.oom_backoffs;
        self.degraded_batches += other.degraded_batches;
        self.host_fallbacks += other.host_fallbacks;
        self.lost_devices += other.lost_devices;
        self.redistributed_batches += other.redistributed_batches;
        self.faults_injected += other.faults_injected;
        self.resumed_shards += other.resumed_shards;
        self.checksum_failures += other.checksum_failures;
        self.recovery_seconds += other.recovery_seconds;
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} fault(s) injected | {} retries | {} OOM backoff(s) | {} degraded batch(es) \
             | {} host fallback(s) | {} lost device(s), {} batch(es) redistributed \
             | {} shard(s) resumed, {} checksum failure(s) | recovery {:.3}s",
            self.faults_injected,
            self.retries,
            self.oom_backoffs,
            self.degraded_batches,
            self.host_fallbacks,
            self.lost_devices,
            self.redistributed_batches,
            self.resumed_shards,
            self.checksum_failures,
            self.recovery_seconds
        )
    }
}

/// The per-component times of one gpClust run (one row of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct StageTimes {
    /// Host-side work: aggregation, reporting, batching (measured wall s).
    pub cpu: f64,
    /// Device kernel time (simulated s).
    pub gpu: f64,
    /// Host→device transfer time, "Data c→g" (simulated s).
    pub h2d: f64,
    /// Device→host transfer time, "Data g→c" (simulated s).
    pub d2h: f64,
    /// Graph load time from disk (measured wall s).
    pub disk_io: f64,
    /// Modeled device critical path under the run's pipeline schedule
    /// (simulated s). Equals [`StageTimes::device_serialized`] in
    /// synchronous mode; under `PipelineMode::Overlapped` it is the
    /// stream makespan, which is what transfer/compute overlap buys.
    #[serde(default)]
    pub device_pipelined: f64,
    /// Modeled device seconds spent in **aggregation** kernels (record
    /// pack + u128 radix sort) under `AggregationMode::Device` — work
    /// that under `Host` aggregation would have been CPU sort time. It is
    /// a subset of [`StageTimes::gpu`], broken out so reports can show
    /// the CPU→GPU column shift; 0 under host aggregation.
    #[serde(default)]
    pub device_aggregation: f64,
    /// Modeled device seconds spent in the **Phase-III components** kernel
    /// (edge symmetrize/sort plus hooking and pointer-jumping sweeps) under
    /// `ComponentsMode::Device` — work that under `Host` components would
    /// have been CPU union–find time. A subset of [`StageTimes::gpu`];
    /// 0 under host components.
    #[serde(default)]
    pub device_components: f64,
    /// Batches across both device passes (capacity-driven splits must
    /// never be silent; see [`crate::batch::BatchStats`]).
    #[serde(default)]
    pub n_batches: u64,
    /// Elements in the largest batch of either pass.
    #[serde(default)]
    pub max_batch_elems: u64,
    /// Per-element device-memory footprint of the active kernel (bytes;
    /// see [`crate::batch::bytes_per_elem`]).
    #[serde(default)]
    pub elem_footprint_bytes: u64,
    /// Every recovery action the resilience layer took (all zeros on a
    /// fault-free run).
    #[serde(default)]
    pub recovery: RecoveryReport,
    /// The autotuner's predicted device seconds under the chosen plan's
    /// pipeline convention — the figure [`StageTimes::device_pipelined`]
    /// measures (0 when the run was not planned by `--plan auto`).
    #[serde(default)]
    pub predicted_device_seconds: f64,
    /// The autotuner's predicted end-to-end objective (device critical
    /// path + finish-time tail + modeled host work) the argmin ranked
    /// plans by (0 without `--plan auto`).
    #[serde(default)]
    pub predicted_total_seconds: f64,
    /// Peak host-resident working-set bytes the run's record buffers
    /// reached ([`ResidentGauge`] high-water mark). Under a `--mem-budget`
    /// this is the figure the bound is checked against; 0 when the run
    /// never measured residency.
    #[serde(default)]
    pub peak_resident_bytes: u64,
    /// Bytes of sorted runs spilled to disk by the out-of-core path
    /// (0 for fully resident runs). The spill write/read wall time folds
    /// into [`StageTimes::disk_io`].
    #[serde(default)]
    pub spilled_bytes: u64,
}

impl StageTimes {
    /// Fold a device pass's batch plan into the visibility fields.
    pub fn record_batch_stats(&mut self, stats: &crate::batch::BatchStats) {
        self.n_batches += stats.n_batches;
        self.max_batch_elems = self.max_batch_elems.max(stats.max_batch_elems);
        self.elem_footprint_bytes = self.elem_footprint_bytes.max(stats.elem_footprint_bytes);
    }

    /// Attach the autotuner's cost estimate (no-op for manual plans).
    pub fn record_prediction(&mut self, predicted: Option<&crate::autotune::Prediction>) {
        if let Some(p) = predicted {
            self.predicted_device_seconds = p.device_seconds;
            self.predicted_total_seconds = p.seconds;
        }
    }

    /// Relative error of the predicted device seconds against the
    /// measured [`StageTimes::device_pipelined`], as a signed percentage
    /// (positive = the model over-predicted). `None` when the run was not
    /// auto-planned or nothing was measured — keeping the model honest is
    /// only possible when both figures exist.
    pub fn prediction_error_pct(&self) -> Option<f64> {
        if self.predicted_device_seconds <= 0.0 || self.device_pipelined <= 0.0 {
            return None;
        }
        Some((self.predicted_device_seconds / self.device_pipelined - 1.0) * 100.0)
    }
}

impl StageTimes {
    /// Total runtime as the paper composes it: the sum of all components
    /// (no overlap — Thrust 1.5 transfers are synchronous).
    pub fn total(&self) -> f64 {
        self.cpu + self.gpu + self.h2d + self.d2h + self.disk_io
    }

    /// The serialized device critical path: kernels plus both transfer
    /// directions back to back (the sum of the three Table I device
    /// columns).
    pub fn device_serialized(&self) -> f64 {
        self.gpu + self.h2d + self.d2h
    }

    /// Total with the device portion replaced by the pipelined makespan —
    /// the end-to-end time a run under stream overlap would take.
    pub fn total_pipelined(&self) -> f64 {
        self.cpu + self.disk_io + self.device_pipelined
    }

    /// Total if transfers were fully overlapped with computation (the
    /// paper's async-transfer future work, as an idealized bound; the
    /// measured pipelined figure is [`StageTimes::total_pipelined`]).
    pub fn total_with_overlapped_transfers(&self) -> f64 {
        self.cpu + self.gpu + self.disk_io
    }
}

impl std::fmt::Display for StageTimes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CPU {:.2}s | GPU {:.4}s (agg {:.4}s, cc {:.4}s) | c→g {:.4}s | g→c {:.4}s \
             | disk {:.3}s | total {:.2}s | device pipelined {:.4}s \
             | {} batch(es), max {} elems @ {} B/elem",
            self.cpu,
            self.gpu,
            self.device_aggregation,
            self.device_components,
            self.h2d,
            self.d2h,
            self.disk_io,
            self.total(),
            self.device_pipelined,
            self.n_batches,
            self.max_batch_elems,
            self.elem_footprint_bytes
        )?;
        if self.peak_resident_bytes > 0 {
            write!(f, " | resident peak {} B", self.peak_resident_bytes)?;
            if self.spilled_bytes > 0 {
                write!(f, " (spilled {} B)", self.spilled_bytes)?;
            }
        }
        if let Some(err) = self.prediction_error_pct() {
            write!(
                f,
                " | predicted {:.4}s ({:+.1}% vs measured)",
                self.predicted_device_seconds, err
            )?;
        }
        if self.recovery.any() {
            write!(f, " | recovery: {}", self.recovery)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_accumulates() {
        let mut sw = Stopwatch::new();
        let x = sw.time(|| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            42
        });
        assert_eq!(x, 42);
        sw.add(0.5);
        assert!(sw.seconds() >= 0.51);
    }

    #[test]
    fn totals_compose() {
        let t = StageTimes {
            cpu: 1.0,
            gpu: 2.0,
            h2d: 0.25,
            d2h: 0.75,
            disk_io: 0.5,
            device_pipelined: 2.25,
            device_aggregation: 0.5,
            ..Default::default()
        };
        assert!((t.total() - 4.5).abs() < 1e-12);
        assert!((t.device_serialized() - 3.0).abs() < 1e-12);
        assert!((t.total_pipelined() - 3.75).abs() < 1e-12);
        assert!((t.total_with_overlapped_transfers() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_all_components() {
        let s = StageTimes::default().to_string();
        for needle in [
            "CPU",
            "GPU",
            "c→g",
            "g→c",
            "disk",
            "total",
            "pipelined",
            "agg",
            "cc",
            "batch",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn recovery_report_merges_and_displays() {
        let mut a = RecoveryReport {
            retries: 2,
            oom_backoffs: 1,
            degraded_batches: 1,
            host_fallbacks: 3,
            lost_devices: 0,
            redistributed_batches: 0,
            faults_injected: 7,
            resumed_shards: 2,
            checksum_failures: 1,
            recovery_seconds: 0.25,
        };
        let b = RecoveryReport {
            lost_devices: 1,
            redistributed_batches: 4,
            faults_injected: 1,
            recovery_seconds: 0.5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.retries, 2);
        assert_eq!(a.lost_devices, 1);
        assert_eq!(a.redistributed_batches, 4);
        assert_eq!(a.faults_injected, 8);
        assert!((a.recovery_seconds - 0.75).abs() < 1e-12);
        assert!(a.any());
        assert!(!RecoveryReport::default().any());
        let s = a.to_string();
        for needle in [
            "retries", "OOM", "degraded", "fallback", "lost", "resumed", "checksum", "recovery",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
        // A fault-free StageTimes display stays free of recovery noise; a
        // recovering one appends it.
        assert!(!StageTimes::default().to_string().contains("recovery"));
        let t = StageTimes {
            recovery: a,
            ..Default::default()
        };
        assert!(t.to_string().contains("recovery"));
    }

    #[test]
    fn prediction_error_reports_only_when_both_sides_exist() {
        let mut t = StageTimes {
            device_pipelined: 2.0,
            ..Default::default()
        };
        assert_eq!(t.prediction_error_pct(), None, "manual runs stay silent");
        assert!(!t.to_string().contains("predicted"));
        t.record_prediction(Some(&crate::autotune::Prediction {
            seconds: 3.0,
            device_seconds: 2.2,
            host_seconds: 0.8,
            n_batches: 4,
        }));
        let err = t.prediction_error_pct().unwrap();
        assert!((err - 10.0).abs() < 1e-9, "{err}");
        let s = t.to_string();
        assert!(s.contains("predicted"), "{s}");
        assert!(s.contains("+10.0%"), "{s}");
        t.record_prediction(None);
        assert!((t.predicted_total_seconds - 3.0).abs() < 1e-12, "no-op");
    }

    #[test]
    fn resident_gauge_tracks_the_high_water_mark() {
        let mut g = ResidentGauge::new();
        assert_eq!(g.peak(), 0);
        g.charge(100);
        g.charge(50);
        assert_eq!(g.current(), 150);
        assert_eq!(g.peak(), 150);
        g.discharge(120);
        assert_eq!(g.current(), 30);
        assert_eq!(g.peak(), 150, "peak survives discharges");
        g.discharge(1000);
        assert_eq!(g.current(), 0, "discharge saturates");
        g.set_floor(40);
        assert_eq!(g.current(), 40);
        g.set_floor(10);
        assert_eq!(g.current(), 40, "set_floor never lowers the charge");
        assert_eq!(g.peak(), 150);

        // The StageTimes display stays silent without a measurement and
        // reports peak + spill once one exists.
        assert!(!StageTimes::default().to_string().contains("resident"));
        let t = StageTimes {
            peak_resident_bytes: 150,
            spilled_bytes: 64,
            ..Default::default()
        };
        let s = t.to_string();
        assert!(s.contains("resident peak 150 B"), "{s}");
        assert!(s.contains("spilled 64 B"), "{s}");
    }

    #[test]
    fn batch_stats_fold_into_stage_times() {
        let mut t = StageTimes::default();
        t.record_batch_stats(&crate::batch::BatchStats {
            n_batches: 3,
            max_batch_elems: 1000,
            capacity_elems: 1024,
            elem_footprint_bytes: 16,
        });
        t.record_batch_stats(&crate::batch::BatchStats {
            n_batches: 2,
            max_batch_elems: 500,
            capacity_elems: 1024,
            elem_footprint_bytes: 16,
        });
        assert_eq!(t.n_batches, 5);
        assert_eq!(t.max_batch_elems, 1000);
        assert_eq!(t.elem_footprint_bytes, 16);
        assert!(t.to_string().contains("5 batch(es)"));
    }
}
