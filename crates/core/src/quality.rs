//! Pairwise clustering quality against a benchmark partition.
//!
//! The paper classifies every sequence pair `(si, sj)` into TP/FP/FN/TN by
//! whether the test partition and the benchmark agree on co-membership,
//! then reports PPV, NPV, SP and SE (Equations 2–5). Unassigned sequences
//! behave as singleton groups (they co-occur with nothing).
//!
//! Counting all `C(n, 2)` pairs explicitly is infeasible at 2M sequences
//! (~2×10¹² pairs); instead the counts are computed exactly from the
//! contingency table between the two partitions:
//!
//! * pairs together in the test partition: Σ over test groups of `C(g, 2)`;
//! * pairs together in the benchmark: likewise over benchmark groups;
//! * TP: Σ over nonempty contingency cells of `C(cell, 2)`;
//! * the remaining classes follow by subtraction from `C(n, 2)`.

use gpclust_graph::Partition;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Exact pairwise confusion counts between a test and benchmark partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionCounts {
    /// Pairs grouped together in both partitions.
    pub tp: u64,
    /// Pairs together in the test partition but not the benchmark.
    pub fp: u64,
    /// Pairs together in the benchmark but not the test partition.
    pub fn_: u64,
    /// Pairs separated in both.
    pub tn: u64,
}

impl ConfusionCounts {
    /// Count pairs between `test` and `benchmark` (same vertex universe).
    ///
    /// # Panics
    /// Panics if the two partitions cover different numbers of vertices.
    pub fn count(test: &Partition, benchmark: &Partition) -> Self {
        assert_eq!(
            test.n_vertices(),
            benchmark.n_vertices(),
            "partitions over different universes"
        );
        let n = test.n_vertices() as u64;
        let total = choose2(n);

        let same_t: u64 = test.sizes().iter().map(|&s| choose2(s as u64)).sum();
        let same_b: u64 = benchmark.sizes().iter().map(|&s| choose2(s as u64)).sum();

        // Contingency cells over vertices assigned in *both* partitions.
        let mut cells: HashMap<(u32, u32), u64> = HashMap::new();
        for v in 0..test.n_vertices() as u32 {
            if let (Some(t), Some(b)) = (test.group_of(v), benchmark.group_of(v)) {
                *cells.entry((t, b)).or_insert(0) += 1;
            }
        }
        let tp: u64 = cells.values().map(|&c| choose2(c)).sum();
        let fp = same_t - tp;
        let fn_ = same_b - tp;
        let tn = total - tp - fp - fn_;
        ConfusionCounts { tp, fp, fn_, tn }
    }

    /// All four derived scores (Equations 2–5).
    pub fn scores(&self) -> QualityScores {
        QualityScores {
            ppv: ratio(self.tp, self.tp + self.fp),
            npv: ratio(self.tn, self.fn_ + self.tn),
            sp: ratio(self.tn, self.fp + self.tn),
            se: ratio(self.tp, self.tp + self.fn_),
        }
    }
}

/// PPV/NPV/SP/SE as fractions in [0, 1] (Table III reports percentages).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityScores {
    /// Positive predictive value TP/(TP+FP).
    pub ppv: f64,
    /// Negative predictive value TN/(FN+TN).
    pub npv: f64,
    /// Specificity TN/(FP+TN).
    pub sp: f64,
    /// Sensitivity TP/(TP+FN).
    pub se: f64,
}

impl std::fmt::Display for QualityScores {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PPV {:6.2}%  NPV {:6.2}%  SP {:6.2}%  SE {:6.2}%",
            self.ppv * 100.0,
            self.npv * 100.0,
            self.sp * 100.0,
            self.se * 100.0
        )
    }
}

#[inline]
fn choose2(n: u64) -> u64 {
    n * n.saturating_sub(1) / 2
}

#[inline]
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        1.0 // vacuous: no pairs in the class
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(membership: Vec<Option<u32>>) -> Partition {
        Partition::from_membership(membership)
    }

    /// O(n²) oracle.
    fn brute(test: &Partition, benchmark: &Partition) -> ConfusionCounts {
        let n = test.n_vertices();
        let (mut tp, mut fp, mut fn_, mut tn) = (0u64, 0u64, 0u64, 0u64);
        for i in 0..n as u32 {
            for j in i + 1..n as u32 {
                let same_t = test.group_of(i).is_some() && test.group_of(i) == test.group_of(j);
                let same_b = benchmark.group_of(i).is_some()
                    && benchmark.group_of(i) == benchmark.group_of(j);
                match (same_t, same_b) {
                    (true, true) => tp += 1,
                    (true, false) => fp += 1,
                    (false, true) => fn_ += 1,
                    (false, false) => tn += 1,
                }
            }
        }
        ConfusionCounts { tp, fp, fn_, tn }
    }

    #[test]
    fn identical_partitions_are_perfect() {
        let p = part(vec![Some(0), Some(0), Some(1), Some(1), Some(1), None]);
        let c = ConfusionCounts::count(&p, &p);
        assert_eq!(c.fp, 0);
        assert_eq!(c.fn_, 0);
        let s = c.scores();
        assert_eq!(s.ppv, 1.0);
        assert_eq!(s.se, 1.0);
        assert_eq!(s.sp, 1.0);
        assert_eq!(s.npv, 1.0);
    }

    #[test]
    fn matches_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for trial in 0..20 {
            let n = 60;
            let t: Vec<Option<u32>> = (0..n)
                .map(|_| (rng.gen_bool(0.8)).then(|| rng.gen_range(0..6u32)))
                .collect();
            let b: Vec<Option<u32>> = (0..n)
                .map(|_| (rng.gen_bool(0.8)).then(|| rng.gen_range(0..5u32)))
                .collect();
            let (tp_, bp) = (part(t), part(b));
            assert_eq!(
                ConfusionCounts::count(&tp_, &bp),
                brute(&tp_, &bp),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn subpartition_has_perfect_ppv_low_se() {
        // Benchmark: one big family {0..9}. Test: two "core sets" {0..4},
        // {5..9} — the paper's expected regime.
        let benchmark = part((0..10).map(|_| Some(0u32)).collect());
        let test = part((0..10).map(|i| Some((i / 5) as u32)).collect());
        let s = ConfusionCounts::count(&test, &benchmark).scores();
        assert_eq!(s.ppv, 1.0, "core sets never cross families");
        assert!(s.se < 0.5, "sensitivity must suffer: {}", s.se);
    }

    #[test]
    fn unassigned_vertices_count_as_singletons() {
        let benchmark = part(vec![Some(0), Some(0), Some(0)]);
        let test = part(vec![Some(0), Some(0), None]);
        let c = ConfusionCounts::count(&test, &benchmark);
        assert_eq!(c.tp, 1); // (0,1)
        assert_eq!(c.fn_, 2); // (0,2), (1,2)
        assert_eq!(c.fp, 0);
        assert_eq!(c.tn, 0);
    }

    #[test]
    fn overmerging_costs_ppv() {
        // Benchmark: two families. Test merges them.
        let benchmark = part(vec![Some(0), Some(0), Some(1), Some(1)]);
        let test = part(vec![Some(0), Some(0), Some(0), Some(0)]);
        let c = ConfusionCounts::count(&test, &benchmark);
        assert_eq!(c.tp, 2);
        assert_eq!(c.fp, 4);
        let s = c.scores();
        assert!(s.ppv < 0.5);
        assert_eq!(s.se, 1.0);
    }

    #[test]
    #[should_panic(expected = "different universes")]
    fn mismatched_universes_panic() {
        let a = part(vec![Some(0)]);
        let b = part(vec![Some(0), Some(0)]);
        ConfusionCounts::count(&a, &b);
    }

    #[test]
    fn display_formats_percentages() {
        let s = QualityScores {
            ppv: 0.9717,
            npv: 0.9243,
            sp: 0.9988,
            se: 0.1785,
        };
        let txt = s.to_string();
        assert!(txt.contains("97.17"));
        assert!(txt.contains("17.85"));
    }
}
