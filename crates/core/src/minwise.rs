//! Min-wise independent permutations and top-s selection.
//!
//! A random trial `j` permutes an adjacency list Γ(u) by mapping each
//! member `v` to `h_j(v) = (A_j·v + B_j) mod P` for a fixed random pair
//! `<A_j, B_j>` (paper §III-B, after Broder et al.'s min-wise independent
//! permutation theory). The s members with the smallest permuted values
//! form the trial's shingle. With high probability, vertices of a dense
//! subgraph — which share most of their neighbors — also share their
//! minimum-hash members, hence their shingles.
//!
//! The top-s selection keeps the paper's implementation choice: an s-sized
//! buffer maintained by insertion sort ("the small values of s expected to
//! be used in practice, typically under 10, justify a simple insertion
//! sort-based approach").

use crate::params::PRIME_P;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One packed (hash, element) pair: hash in the high 32 bits, element id in
/// the low 32. Ordering packed values orders by hash with element id as the
/// deterministic tie-break — the same layout the device sort operates on.
pub type PackedHash = u64;

/// Pack a (hash, element) pair.
#[inline(always)]
pub fn pack(hash: u32, element: u32) -> PackedHash {
    ((hash as u64) << 32) | element as u64
}

/// Element id of a packed pair.
#[inline(always)]
pub fn unpack_element(p: PackedHash) -> u32 {
    p as u32
}

/// Hash of a packed pair.
#[inline(always)]
pub fn unpack_hash(p: PackedHash) -> u32 {
    (p >> 32) as u32
}

/// A family of `c` random linear hash functions `h_j(v) = (A_j·v+B_j) mod P`.
#[derive(Debug, Clone)]
pub struct HashFamily {
    coeffs: Vec<(u64, u64)>,
}

impl HashFamily {
    /// Draw `c` pairs `<A_j, B_j>` from `seed`. `A_j` is non-zero so every
    /// `h_j` is a permutation of Z_P.
    pub fn new(c: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let coeffs = (0..c)
            .map(|_| (rng.gen_range(1..PRIME_P), rng.gen_range(0..PRIME_P)))
            .collect();
        HashFamily { coeffs }
    }

    /// Number of trials in the family.
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// True if the family has no trials.
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The `<A, B>` pair of trial `j`.
    #[inline]
    pub fn coeffs(&self, j: usize) -> (u64, u64) {
        self.coeffs[j]
    }

    /// Evaluate `h_j(v)`. The product is taken in 128-bit to avoid overflow
    /// (A, v < 2³²; A·v can reach ~2⁶⁴).
    #[inline(always)]
    pub fn hash(&self, j: usize, v: u32) -> u32 {
        let (a, b) = self.coeffs[j];
        hash_with(a, b, v)
    }
}

/// Evaluate `(a·v + b) mod P` for explicit coefficients (the form kernels
/// capture, avoiding a family lookup per element).
#[inline(always)]
pub fn hash_with(a: u64, b: u64, v: u32) -> u32 {
    (((a as u128 * v as u128) + b as u128) % PRIME_P as u128) as u32
}

/// Fixed-capacity buffer keeping the `s` smallest packed (hash, element)
/// pairs seen so far, by insertion sort.
#[derive(Debug, Clone)]
pub struct TopS {
    buf: Vec<PackedHash>,
    s: usize,
}

impl TopS {
    /// An empty buffer of capacity `s`.
    pub fn new(s: usize) -> Self {
        assert!(s > 0, "s must be positive");
        TopS {
            buf: Vec::with_capacity(s),
            s,
        }
    }

    /// Clear for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Offer one packed pair.
    #[inline]
    pub fn push(&mut self, p: PackedHash) {
        if self.buf.len() == self.s {
            if p >= self.buf[self.s - 1] {
                return;
            }
            self.buf.pop();
        }
        // Insertion sort: find the slot from the back.
        let mut i = self.buf.len();
        self.buf.push(p);
        while i > 0 && self.buf[i - 1] > p {
            self.buf[i] = self.buf[i - 1];
            i -= 1;
        }
        self.buf[i] = p;
    }

    /// The selected pairs, ascending by (hash, element). Fewer than `s`
    /// entries if fewer were offered.
    pub fn as_slice(&self) -> &[PackedHash] {
        &self.buf
    }

    /// True if exactly `s` pairs were retained.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let f = HashFamily::new(8, 42);
        let g = HashFamily::new(8, 42);
        for j in 0..8 {
            for v in [0u32, 1, 777, u32::MAX] {
                assert_eq!(f.hash(j, v), g.hash(j, v));
                assert!((f.hash(j, v) as u64) < PRIME_P);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let f = HashFamily::new(4, 1);
        let g = HashFamily::new(4, 2);
        let differs = (0..4).any(|j| f.hash(j, 12345) != g.hash(j, 12345));
        assert!(differs);
    }

    #[test]
    fn trials_are_distinct_hashes() {
        let f = HashFamily::new(16, 3);
        let vals: std::collections::HashSet<u32> = (0..16).map(|j| f.hash(j, 999)).collect();
        assert!(vals.len() > 12, "trials should mostly differ");
    }

    #[test]
    fn hash_is_injective_on_small_domain() {
        // A linear map mod a prime is a bijection of Z_P; distinct small
        // vertex ids must hash distinctly.
        let f = HashFamily::new(1, 9);
        let mut seen = std::collections::HashSet::new();
        for v in 0..10_000u32 {
            assert!(seen.insert(f.hash(0, v)), "collision at {v}");
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let p = pack(0xDEAD_BEEF, 0x1234_5678);
        assert_eq!(unpack_hash(p), 0xDEAD_BEEF);
        assert_eq!(unpack_element(p), 0x1234_5678);
    }

    #[test]
    fn packed_order_is_hash_then_element() {
        assert!(pack(1, 999) < pack(2, 0));
        assert!(pack(5, 1) < pack(5, 2));
    }

    #[test]
    fn top_s_matches_full_sort() {
        let mut rng = StdRng::seed_from_u64(7);
        for s in [1usize, 2, 3, 8] {
            for n in [0usize, 1, 2, 5, 50, 500] {
                let vals: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
                let mut top = TopS::new(s);
                for &v in &vals {
                    top.push(v);
                }
                let mut sorted = vals.clone();
                sorted.sort_unstable();
                sorted.truncate(s);
                assert_eq!(top.as_slice(), sorted.as_slice(), "s={s}, n={n}");
            }
        }
    }

    #[test]
    fn top_s_full_flag() {
        let mut t = TopS::new(3);
        t.push(5);
        t.push(2);
        assert!(!t.is_full());
        t.push(9);
        assert!(t.is_full());
        t.push(1);
        assert!(t.is_full());
        assert_eq!(t.as_slice(), &[1, 2, 5]);
    }

    #[test]
    fn top_s_clear_reuses() {
        let mut t = TopS::new(2);
        t.push(3);
        t.push(1);
        t.clear();
        assert_eq!(t.as_slice(), &[] as &[u64]);
        t.push(10);
        assert_eq!(t.as_slice(), &[10]);
    }

    #[test]
    fn hash_with_matches_family() {
        let f = HashFamily::new(2, 11);
        let (a, b) = f.coeffs(1);
        assert_eq!(f.hash(1, 4242), hash_with(a, b, 4242));
    }
}
