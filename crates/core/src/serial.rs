//! The serial Shingling implementation (pClust).
//!
//! This is the reference the paper benchmarks against ("our serial
//! implementation") and the correctness oracle for the GPU pipeline: both
//! derive their hash families from the same parameters, so for any graph
//! and seed the serial and device paths must produce identical partitions.
//!
//! The runtime is dominated — the paper profiles ~80 % — by the per-trial
//! hashing and top-s selection in the two passes: O(m · c · s) overall.

use crate::aggregate::{aggregate, StreamAggregator};
use crate::minwise::{hash_with, pack, unpack_element, HashFamily, TopS};
use crate::params::ShinglingParams;
use crate::report;
use crate::shingle::{AdjacencyInput, RawShingles};
use gpclust_graph::UnionFind;
use gpclust_graph::{Csr, Partition, ShingleGraph, VertexId};

/// One full serial shingling pass over `input`, streaming each
/// `(trial, node, top-s pairs)` record to `f` as it is produced. Records
/// arrive grouped (one per `(trial, node)`), pairs sorted ascending by
/// (hash, element), always exactly `s` of them.
pub fn shingle_pass_foreach(
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
    mut f: impl FnMut(u32, u32, &[crate::minwise::PackedHash]),
) {
    let mut top = TopS::new(s);
    let n = input.n_nodes();
    for trial in 0..family.len() {
        let (a, b) = family.coeffs(trial);
        for node in 0..n {
            let list = input.list(node);
            if list.len() < s {
                continue;
            }
            top.clear();
            for &v in list {
                top.push(pack(hash_with(a, b, v), v));
            }
            f(trial as u32, node as u32, top.as_slice());
        }
    }
}

/// One full serial shingling pass over `input`: `c = family.len()` trials,
/// shingle size `s`, materializing raw records for every node with ≥ s
/// links. Prefer [`shingle_pass_foreach`] in memory-sensitive paths.
pub fn shingle_pass(input: &impl AdjacencyInput, s: usize, family: &HashFamily) -> RawShingles {
    let mut raw = RawShingles::new(s);
    shingle_pass_foreach(input, s, family, |trial, node, pairs| {
        raw.push(trial, node, pairs);
    });
    raw.mark_grouped();
    raw
}

/// Intermediate products of a full two-pass run, exposed for inspection
/// (the bipartite graphs G′ and G″ of the paper).
#[derive(Debug, Clone)]
pub struct ShinglingRun {
    /// First-level shingle graph G′(S1, V′l, E′).
    pub first: ShingleGraph,
    /// Second-level shingle graph G″(S2, S′1, E″).
    pub second: ShingleGraph,
}

/// The serial pClust clustering algorithm.
#[derive(Debug, Clone)]
pub struct SerialShingling {
    params: ShinglingParams,
}

impl SerialShingling {
    /// Create with validated parameters.
    pub fn new(params: ShinglingParams) -> Result<Self, String> {
        params.validate()?;
        Ok(SerialShingling { params })
    }

    /// The configured parameters.
    pub fn params(&self) -> &ShinglingParams {
        &self.params
    }

    /// Run both shingling passes, returning the intermediate graphs.
    pub fn run(&self, g: &Csr) -> ShinglingRun {
        let raw1 = shingle_pass(g, self.params.s1, &self.params.family_pass1());
        let first = aggregate(&raw1);
        drop(raw1); // raw records dwarf the aggregated graph at scale
        let raw2 = shingle_pass(&first, self.params.s2, &self.params.family_pass2());
        let second = aggregate(&raw2);
        ShinglingRun { first, second }
    }

    /// Cluster `g` with the union–find (non-overlapping) reporting the
    /// paper adopts. Vertices in no dense subgraph remain singletons.
    ///
    /// Pass I streams into a [`StreamAggregator`]; pass II streams straight
    /// into the union–find (G″ is never materialized), so peak memory is
    /// O(|E′|), matching the paper's stated complexity.
    pub fn cluster(&self, g: &Csr) -> Partition {
        let mut agg1 = StreamAggregator::new(self.params.s1);
        shingle_pass_foreach(g, self.params.s1, &self.params.family_pass1(), |t, n, p| {
            agg1.push(t, n, p);
        });
        let first = agg1.finish();
        let mut uf = UnionFind::new(g.n());
        shingle_pass_foreach(
            &first,
            self.params.s2,
            &self.params.family_pass2(),
            |_, node, pairs| {
                report::union_second_level_record(
                    &mut uf,
                    &first,
                    node,
                    pairs.iter().map(|&p| unpack_element(p)),
                );
            },
        );
        Partition::from_union_find(&mut uf)
    }

    /// Reference implementation of [`SerialShingling::cluster`] that
    /// materializes both shingle graphs (used by tests as the oracle for
    /// the streaming variant, and by callers that also want the graphs).
    pub fn cluster_materialized(&self, g: &Csr) -> Partition {
        let run = self.run(g);
        report::partition_clusters(g.n(), &run.first, &run.second)
    }

    /// Cluster `g` with the overlapping connected-component reporting.
    pub fn cluster_overlapping(&self, g: &Csr) -> Vec<Vec<VertexId>> {
        let run = self.run(g);
        report::overlap_clusters(&run.first, &run.second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpclust_graph::generate::{planted_partition, PlantedConfig};
    use gpclust_graph::EdgeList;

    fn params() -> ShinglingParams {
        ShinglingParams::light(42)
    }

    fn planted(sizes: &[usize], noise: usize, seed: u64) -> (Csr, Partition) {
        let pg = planted_partition(&PlantedConfig {
            group_sizes: sizes.to_vec(),
            n_noise_vertices: noise,
            p_intra: 0.95,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 0.0,
            seed,
        });
        (pg.graph, pg.truth)
    }

    #[test]
    fn recovers_planted_cliques() {
        let (g, truth) = planted(&[12, 15, 9], 4, 5);
        let p = SerialShingling::new(params()).unwrap().cluster(&g);
        // Every planted group must land inside one reported cluster.
        for grp in truth.groups() {
            let c0 = p.group_of(grp[0]);
            assert!(c0.is_some());
            for &v in grp {
                assert_eq!(p.group_of(v), c0, "vertex {v} strayed");
            }
        }
        // Distinct planted groups must land in distinct clusters (they are
        // disconnected components here).
        let cids: std::collections::HashSet<_> = truth
            .groups()
            .iter()
            .map(|grp| p.group_of(grp[0]).unwrap())
            .collect();
        assert_eq!(cids.len(), 3);
    }

    #[test]
    fn noise_vertices_stay_singletons() {
        let (g, truth) = planted(&[10, 10], 6, 7);
        let p = SerialShingling::new(params()).unwrap().cluster(&g);
        for v in 0..g.n() as u32 {
            if truth.group_of(v).is_none() {
                // Noise has no edges here; it must be its own cluster.
                let gid = p.group_of(v).unwrap();
                assert_eq!(p.group(gid as usize), &[v]);
            }
        }
    }

    #[test]
    fn streaming_equals_materialized() {
        // The streaming Phase III (no G″) must produce the exact partition
        // of the materialized reference, on graphs with noise and bridges.
        for seed in [3u64, 9, 21] {
            let pg = planted_partition(&PlantedConfig {
                group_sizes: vec![18, 25, 7, 40],
                n_noise_vertices: 12,
                p_intra: 0.7,
                max_intra_degree: f64::MAX,
                inter_edges_per_vertex: 1.5,
                seed,
            });
            let alg = SerialShingling::new(ShinglingParams::light(seed)).unwrap();
            assert_eq!(
                alg.cluster(&pg.graph),
                alg.cluster_materialized(&pg.graph),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (g, _) = planted(&[20, 8], 3, 11);
        let alg = SerialShingling::new(params()).unwrap();
        assert_eq!(alg.cluster(&g), alg.cluster(&g));
    }

    #[test]
    fn different_seed_may_change_details_but_keeps_cliques() {
        let (g, truth) = planted(&[14, 14], 0, 13);
        for seed in [1u64, 2, 3] {
            let alg = SerialShingling::new(ShinglingParams::light(seed)).unwrap();
            let p = alg.cluster(&g);
            for grp in truth.groups() {
                let c0 = p.group_of(grp[0]);
                for &v in grp {
                    assert_eq!(p.group_of(v), c0, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn sparse_vertices_skipped() {
        // Vertices of degree < s1 generate no shingles; a path graph with
        // s1 = 2 gives interior vertices (deg 2) shingles but no shared
        // ones beyond chance.
        let mut el: EdgeList = (0..9u32).map(|v| (v, v + 1)).collect();
        let g = Csr::from_edges(10, &mut el);
        let alg = SerialShingling::new(params()).unwrap();
        let run = alg.run(&g);
        // Endpoint vertices (deg 1) must not appear as generators.
        for (_, _, _, gens) in run.first.iter() {
            assert!(!gens.contains(&0));
            assert!(!gens.contains(&9));
        }
    }

    #[test]
    fn pass_emits_c_trials_per_eligible_node() {
        let (g, _) = planted(&[6], 0, 17);
        let family = HashFamily::new(10, 3);
        let raw = shingle_pass(&g, 2, &family);
        // All 6 vertices have degree ≥ 2 in a 0.95-dense group of 6.
        let eligible = (0..6u32).filter(|&v| g.degree(v) >= 2).count();
        assert_eq!(raw.len(), eligible * 10);
    }

    #[test]
    fn overlapping_mode_covers_cliques() {
        let (g, truth) = planted(&[10, 10], 2, 19);
        let clusters = SerialShingling::new(params())
            .unwrap()
            .cluster_overlapping(&g);
        for grp in truth.groups() {
            let found = clusters.iter().any(|c| grp.iter().all(|v| c.contains(v)));
            assert!(found, "planted group not covered: {grp:?}");
        }
    }

    #[test]
    fn empty_graph() {
        let mut el = EdgeList::new();
        let g = Csr::from_edges(4, &mut el);
        let p = SerialShingling::new(params()).unwrap().cluster(&g);
        assert_eq!(p.n_groups(), 4); // all singletons
    }

    #[test]
    fn rejects_invalid_params() {
        let mut p = ShinglingParams::light(0);
        p.c1 = 0;
        assert!(SerialShingling::new(p).is_err());
    }
}
