//! Spill-to-disk sorted runs and the external k-way merge — the
//! out-of-core half of the aggregation layer.
//!
//! The device-aggregation path already reduces each batch (or shard) of
//! pass records to a [`SortedRun`] — packed `(key << 64 | node << 32 |
//! local-index)` u128s plus `s` element ids per record — and
//! [`merge_sorted_runs`] reconstructs the shingle graph from any set of
//! such runs in one streaming heap pass. That merge only ever looks at
//! each run's *frontier* record, so a run does not need to be resident:
//! this module writes finished runs to chunked temp files
//! ([`SpilledRun`]) and generalizes the binary-heap merge into
//! [`merge_external_runs`] over any mix of in-memory and on-disk runs.
//!
//! ## On-disk format
//!
//! Records are interleaved, fixed-stride, little-endian: 16 bytes of
//! packed key/node/local-index followed by `s × 4` bytes of element ids —
//! `(16 + 4s)` bytes per record, in ascending packed order (the order the
//! run was sorted in). Interleaving keeps replay strictly sequential: the
//! reader refills a bounded chunk of records at a time, so the merge
//! frontier holds `runs × CHUNK` records regardless of run length. The
//! packed local index is retained verbatim but ignored on replay (the
//! elements travel with their record), so spilling and replaying a run is
//! byte-faithful to its in-memory form.
//!
//! ## Bit-identity
//!
//! [`merge_external_runs`] pops records in exactly the order
//! [`merge_sorted_runs`] does — ascending `(key, node)` with ties broken
//! by run index — and feeds the same [`StreamInverter`]. Where the
//! records sleep between production and merge changes nothing about the
//! sequence, so the out-of-core path inherits the in-memory path's
//! bit-identity proof (`tests/oocore_properties.rs` pins it).

use crate::aggregate::{SortedRun, StreamInverter};
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Records per replay chunk: bounds the merge frontier at
/// `runs × CHUNK × (16 + 4s)` bytes (≈ 384 KiB per run at `s = 2`).
const REPLAY_CHUNK: usize = 1 << 14;

/// Monotone counter making spill file names unique within the process.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Wall-clock seconds and byte volume of spill traffic, folded into
/// [`crate::timing::StageTimes`] by the out-of-core drivers.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpillStats {
    /// Bytes written to (and later read back from) spill files.
    pub bytes: u64,
    /// Wall seconds spent writing spill files.
    pub write_seconds: f64,
    /// Wall seconds spent reading them back during the merge.
    pub read_seconds: f64,
}

impl SpillStats {
    /// Fold another tally into this one.
    pub fn merge(&mut self, other: &SpillStats) {
        self.bytes += other.bytes;
        self.write_seconds += other.write_seconds;
        self.read_seconds += other.read_seconds;
    }
}

/// A [`SortedRun`] spilled to a temp file, replayable as a sequential
/// record stream. The file is deleted on drop.
#[derive(Debug)]
pub struct SpilledRun {
    path: PathBuf,
    records: usize,
    s: usize,
}

impl SpilledRun {
    /// Write `run` (shingle size `s`) to a fresh temp file in bounded
    /// chunks, tallying the traffic into `stats`.
    pub fn write(s: usize, run: &SortedRun, stats: &mut SpillStats) -> io::Result<SpilledRun> {
        assert_eq!(run.elements.len(), run.len() * s, "run/elements mismatch");
        let t0 = Instant::now();
        let path = std::env::temp_dir().join(format!(
            "gpclust-spill-{}-{}.run",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        // Nothing is retained per record, so the writer's resident
        // footprint is its 1 MiB buffer.
        let mut w = BufWriter::with_capacity(1 << 20, File::create(&path)?);
        for &p in &run.packed {
            w.write_all(&p.to_le_bytes())?;
            let rep = (p & 0xFFFF_FFFF) as usize;
            for &e in &run.elements[rep * s..(rep + 1) * s] {
                w.write_all(&e.to_le_bytes())?;
            }
        }
        w.flush()?;
        stats.bytes += (run.len() * (16 + 4 * s)) as u64;
        stats.write_seconds += t0.elapsed().as_secs_f64();
        Ok(SpilledRun {
            path,
            records: run.len(),
            s,
        })
    }

    /// Number of records in the spilled run.
    pub fn len(&self) -> usize {
        self.records
    }

    /// True if the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// On-disk size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.records * (16 + 4 * self.s)) as u64
    }

    /// Open a sequential replay over the run's records.
    pub fn replay(&self) -> io::Result<RunReplay> {
        Ok(RunReplay {
            reader: BufReader::with_capacity(1 << 20, File::open(&self.path)?),
            s: self.s,
            remaining: self.records,
            packed: Vec::new(),
            elements: Vec::new(),
            pos: 0,
        })
    }
}

impl Drop for SpilledRun {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A bounded-memory cursor over a [`SpilledRun`]'s records, refilled
/// [`REPLAY_CHUNK`] records at a time.
#[derive(Debug)]
pub struct RunReplay {
    reader: BufReader<File>,
    s: usize,
    remaining: usize,
    packed: Vec<u128>,
    elements: Vec<u32>,
    pos: usize,
}

impl RunReplay {
    /// The current frontier record, refilling the chunk buffer if it is
    /// exhausted. `None` once the run is drained.
    pub fn peek(&mut self) -> io::Result<Option<u128>> {
        if self.pos == self.packed.len() {
            self.refill()?;
        }
        Ok(self.packed.get(self.pos).copied())
    }

    /// The current frontier record's element ids (valid after a
    /// successful [`RunReplay::peek`]).
    pub fn elements(&self) -> &[u32] {
        &self.elements[self.pos * self.s..(self.pos + 1) * self.s]
    }

    /// Advance past the current frontier record.
    pub fn advance(&mut self) {
        self.pos += 1;
    }

    fn refill(&mut self) -> io::Result<()> {
        self.packed.clear();
        self.elements.clear();
        self.pos = 0;
        let n = self.remaining.min(REPLAY_CHUNK);
        if n == 0 {
            return Ok(());
        }
        let stride = 16 + 4 * self.s;
        let mut buf = vec![0u8; n * stride];
        self.reader.read_exact(&mut buf)?;
        for rec in buf.chunks_exact(stride) {
            self.packed
                .push(u128::from_le_bytes(rec[..16].try_into().unwrap()));
            for e in rec[16..].chunks_exact(4) {
                self.elements
                    .push(u32::from_le_bytes(e.try_into().unwrap()));
            }
        }
        self.remaining -= n;
        Ok(())
    }
}

/// One run of the external merge: resident or spilled.
#[derive(Debug)]
pub enum ExternalRun {
    /// A run kept in memory (e.g. the final pooled-fragment run).
    Mem(SortedRun),
    /// A run spilled to disk.
    Disk(SpilledRun),
}

impl ExternalRun {
    /// Number of records in the run.
    pub fn len(&self) -> usize {
        match self {
            ExternalRun::Mem(r) => r.len(),
            ExternalRun::Disk(r) => r.len(),
        }
    }

    /// True if the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-run cursor state of the external merge.
enum Cursor {
    Mem { run: SortedRun, pos: usize },
    Disk { replay: RunReplay },
}

impl Cursor {
    fn peek(&mut self) -> io::Result<Option<u128>> {
        match self {
            Cursor::Mem { run, pos } => Ok(run.packed.get(*pos).copied()),
            Cursor::Disk { replay } => replay.peek(),
        }
    }
}

/// Merge resident and spilled sorted runs into the bipartite shingle
/// graph — [`merge_sorted_runs`] generalized over run residency.
///
/// Entries pop in ascending `((key, node), run-index)` order, exactly the
/// in-memory merge's sequence, so the result is bit-identical to merging
/// the same runs resident. Host memory holds one [`REPLAY_CHUNK`]-record
/// frontier per on-disk run plus the growing output graph; read traffic
/// is tallied into `stats`.
///
/// [`merge_sorted_runs`]: crate::aggregate::merge_sorted_runs
pub fn merge_external_runs(
    s: usize,
    runs: Vec<ExternalRun>,
    stats: &mut SpillStats,
) -> io::Result<gpclust_graph::ShingleGraph> {
    let t0 = Instant::now();
    let runs: Vec<ExternalRun> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert!(total < (1 << 32), "too many shingle records");
    let mut inv = StreamInverter::new(s, total);
    let mut cursors: Vec<Cursor> = runs
        .into_iter()
        .map(|r| match r {
            ExternalRun::Mem(run) => Ok(Cursor::Mem { run, pos: 0 }),
            ExternalRun::Disk(spilled) => Ok(Cursor::Disk {
                replay: spilled.replay()?,
            }),
        })
        .collect::<io::Result<_>>()?;

    use std::cmp::Reverse;
    // Heap keys strip the run-local index (low 32 bits) and tie-break on
    // the run index — the same order [`merge_sorted_runs`] restores.
    let mut heap: BinaryHeap<Reverse<(u128, usize)>> = BinaryHeap::with_capacity(cursors.len());
    for (ri, c) in cursors.iter_mut().enumerate() {
        if let Some(p) = c.peek()? {
            heap.push(Reverse((p >> 32, ri)));
        }
    }
    while let Some(Reverse((_, ri))) = heap.pop() {
        let cursor = &mut cursors[ri];
        match cursor {
            Cursor::Mem { run, pos } => {
                let p = run.packed[*pos];
                let rep = (p & 0xFFFF_FFFF) as usize;
                // Split borrows: elements slice is read inside the push.
                let elems = &run.elements[rep * s..(rep + 1) * s];
                inv.push(p, |out| out.extend_from_slice(elems));
                *pos += 1;
            }
            Cursor::Disk { replay } => {
                let p = replay.peek()?.expect("heap entry implies a record");
                inv.push(p, |out| out.extend_from_slice(replay.elements()));
                replay.advance();
            }
        }
        if let Some(next) = cursor.peek()? {
            heap.push(Reverse((next >> 32, ri)));
        }
    }
    stats.read_seconds += t0.elapsed().as_secs_f64();
    Ok(inv.finish())
}

/// Surface a spill/scratch I/O failure through the drivers' device-error
/// channel ([`gpclust_gpu::DeviceError::HostIo`]).
pub(crate) fn io_to_device(e: io::Error) -> gpclust_gpu::DeviceError {
    gpclust_gpu::DeviceError::HostIo {
        detail: e.to_string(),
    }
}

/// Nodes whose adjacency lists cross a batch boundary of `batches` —
/// exactly the nodes [`crate::plan::FragmentMode::Defer`] flags as
/// fragments. Sorted ascending so routing can binary-search it (the batch
/// list itself may be out of node order after a mid-pass recut appends
/// re-planned batches).
pub(crate) fn split_nodes(batches: &[crate::batch::Batch], offsets: &[u64]) -> Vec<u32> {
    let mut nodes: Vec<u32> = batches
        .iter()
        .filter(|b| b.first_is_fragment(offsets))
        .map(|b| b.node_lo as u32)
        .collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

/// Route one shard's gathered records under host aggregation, where
/// [`Sink::Gather`] loses the fragment flags: a record is a fragment iff
/// its node's list crosses a batch boundary, so records of `split` nodes
/// join the global fragment `pool` (reconciled once, after every shard)
/// and the rest — complete by construction — go to `interior` for
/// immediate packing and spilling.
///
/// [`Sink::Gather`]: crate::exec::Sink::Gather
pub(crate) fn route_shard_records(
    raw: &crate::shingle::RawShingles,
    split: &[u32],
    interior: &mut crate::shingle::RawShingles,
    pool: &mut crate::shingle::RawShingles,
) {
    for (trial, node, pairs) in raw.iter() {
        if split.binary_search(&node).is_ok() {
            pool.push(trial, node, pairs);
        } else {
            interior.push(trial, node, pairs);
        }
    }
}

/// Resident bytes of a [`SortedRun`] (packed u128s + element ids) — what
/// the [`crate::timing::ResidentGauge`] charges while a run awaits its
/// spill.
pub(crate) fn run_bytes(run: &SortedRun) -> u64 {
    (run.packed.len() * 16 + run.elements.len() * 4) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::merge_sorted_runs;
    use crate::minwise::{pack, unpack_element};
    use crate::shingle::shingle_key;

    /// Pack one grouped record the way a device run does (run-local idx).
    fn push_run_record(run: &mut SortedRun, trial: u32, node: u32, pairs: &[u64]) {
        let s = pairs.len();
        let idx = (run.elements.len() / s) as u128;
        for &p in pairs {
            run.elements.push(unpack_element(p));
        }
        let key = shingle_key(trial, pairs.iter().map(|&p| unpack_element(p)));
        run.packed
            .push(((key as u128) << 64) | ((node as u128) << 32) | idx);
    }

    fn sample_runs(n_runs: usize, n_records: u32) -> Vec<SortedRun> {
        let mut runs = vec![SortedRun::default(); n_runs];
        for i in 0..n_records {
            let trial = i % 5;
            let e = i % 37;
            let pairs = [pack(e, e), pack(e + 1, e + 1)];
            let run = (i as usize * n_runs) / n_records as usize;
            push_run_record(&mut runs[run], trial, i, &pairs);
        }
        for run in &mut runs {
            run.packed.sort_unstable();
        }
        runs
    }

    #[test]
    fn spill_roundtrip_replays_every_record() {
        let run = sample_runs(1, 1000).pop().unwrap();
        let mut stats = SpillStats::default();
        let spilled = SpilledRun::write(2, &run, &mut stats).unwrap();
        assert_eq!(spilled.len(), 1000);
        assert_eq!(spilled.bytes(), 1000 * 24);
        assert_eq!(stats.bytes, spilled.bytes());
        assert!(stats.write_seconds >= 0.0);
        let mut replay = spilled.replay().unwrap();
        for (i, &p) in run.packed.iter().enumerate() {
            assert_eq!(replay.peek().unwrap(), Some(p), "record {i}");
            let rep = (p & 0xFFFF_FFFF) as usize;
            assert_eq!(replay.elements(), &run.elements[rep * 2..rep * 2 + 2]);
            replay.advance();
        }
        assert_eq!(replay.peek().unwrap(), None);
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let run = sample_runs(1, 10).pop().unwrap();
        let mut stats = SpillStats::default();
        let spilled = SpilledRun::write(2, &run, &mut stats).unwrap();
        let path = spilled.path.clone();
        assert!(path.exists());
        drop(spilled);
        assert!(!path.exists());
    }

    #[test]
    fn replay_crosses_chunk_boundaries() {
        // More records than one replay chunk, so refill() runs mid-stream.
        let n = (REPLAY_CHUNK + REPLAY_CHUNK / 3) as u32;
        let run = sample_runs(1, n).pop().unwrap();
        let mut stats = SpillStats::default();
        let spilled = SpilledRun::write(2, &run, &mut stats).unwrap();
        let mut replay = spilled.replay().unwrap();
        let mut count = 0usize;
        while replay.peek().unwrap().is_some() {
            replay.advance();
            count += 1;
        }
        assert_eq!(count, n as usize);
    }

    #[test]
    fn external_merge_matches_in_memory_merge() {
        // Every residency mix of the same runs must reproduce the
        // in-memory k-way merge bit for bit.
        for n_runs in [1usize, 2, 3, 7] {
            let runs = sample_runs(n_runs, 2_000);
            let oracle = merge_sorted_runs(2, runs.clone());
            for spill_mask in 0..(1u32 << n_runs) {
                let mut stats = SpillStats::default();
                let ext: Vec<ExternalRun> = runs
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        if spill_mask & (1 << i) != 0 {
                            Ok(ExternalRun::Disk(SpilledRun::write(2, r, &mut stats)?))
                        } else {
                            Ok(ExternalRun::Mem(r.clone()))
                        }
                    })
                    .collect::<io::Result<_>>()
                    .unwrap();
                let merged = merge_external_runs(2, ext, &mut stats).unwrap();
                assert_eq!(merged, oracle, "{n_runs} runs, mask {spill_mask:b}");
            }
        }
    }

    #[test]
    fn external_merge_handles_empty_and_unbalanced_runs() {
        let mut big = SortedRun::default();
        let mut small = SortedRun::default();
        for i in 0..100u32 {
            let pairs = [pack(i % 9, i % 9)];
            push_run_record(if i < 99 { &mut big } else { &mut small }, 0, i, &pairs);
        }
        big.packed.sort_unstable();
        small.packed.sort_unstable();
        let oracle = merge_sorted_runs(1, vec![big.clone(), small.clone()]);
        let mut stats = SpillStats::default();
        let ext = vec![
            ExternalRun::Mem(SortedRun::default()),
            ExternalRun::Disk(SpilledRun::write(1, &big, &mut stats).unwrap()),
            ExternalRun::Mem(SortedRun::default()),
            ExternalRun::Mem(small),
        ];
        assert_eq!(merge_external_runs(1, ext, &mut stats).unwrap(), oracle);
        assert!(merge_external_runs(1, Vec::new(), &mut stats)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn spill_stats_accumulate() {
        let mut a = SpillStats {
            bytes: 10,
            write_seconds: 1.0,
            read_seconds: 2.0,
        };
        a.merge(&SpillStats {
            bytes: 5,
            write_seconds: 0.5,
            read_seconds: 0.25,
        });
        assert_eq!(a.bytes, 15);
        assert!((a.write_seconds - 1.5).abs() < 1e-12);
        assert!((a.read_seconds - 2.25).abs() < 1e-12);
    }
}
