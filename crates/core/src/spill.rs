//! Spill-to-disk sorted runs and the external k-way merge — the
//! out-of-core half of the aggregation layer.
//!
//! The device-aggregation path already reduces each batch (or shard) of
//! pass records to a [`SortedRun`] — packed `(key << 64 | node << 32 |
//! local-index)` u128s plus `s` element ids per record — and
//! [`merge_sorted_runs`] reconstructs the shingle graph from any set of
//! such runs in one streaming heap pass. That merge only ever looks at
//! each run's *frontier* record, so a run does not need to be resident:
//! this module writes finished runs to framed temp files
//! ([`SpilledRun`]) and generalizes the binary-heap merge into
//! [`merge_external_runs`] over any mix of in-memory and on-disk runs.
//!
//! ## On-disk format (v2, framed + checksummed)
//!
//! A run file opens with a 24-byte header — magic `GPCLRUN2`, the record
//! count (u64), the shingle size `s` (u32), and a CRC-32 of those twenty
//! bytes — followed by one *frame* per replay chunk: `[n: u32][len: u32]
//! [crc: u32]` then `len = n × (16 + 4s)` payload bytes holding `n`
//! interleaved little-endian records (16 bytes of packed key/node/local-
//! index, then `s × 4` bytes of element ids), in ascending packed order.
//! Frames are exactly the replay granularity, so every refill verifies
//! its own length framing and checksum before a single record is
//! surfaced: a truncated or bit-flipped spill file is *detected* — a
//! typed [`io::ErrorKind::InvalidData`] error naming the byte offset —
//! never silently merged. The whole-payload CRC ([`SpilledRun::crc`])
//! additionally names the run in checkpoint manifests.
//!
//! ## Lifetime
//!
//! Scratch runs live in a per-process directory ([`spill_dir`]) and are
//! removed when the [`SpilledRun`] drops — on success *and* on error
//! paths, including half-written files abandoned by a failed write.
//! Checkpointed runs ([`SpilledRun::write_at`] / [`SpilledRun::reopen`])
//! opt out of drop-removal: they are sealed (synced) into a checkpoint
//! directory and owned by the manifest journal, which sweeps them when
//! the run finalizes.
//!
//! ## Bit-identity
//!
//! [`merge_external_runs`] pops records in exactly the order
//! [`merge_sorted_runs`] does — ascending `(key, node)` with ties broken
//! by run index — and feeds the same [`StreamInverter`]. Where the
//! records sleep between production and merge changes nothing about the
//! sequence, so the out-of-core path inherits the in-memory path's
//! bit-identity proof (`tests/oocore_properties.rs` pins it).

use crate::aggregate::{SortedRun, StreamInverter};
use crate::checkpoint::{crc32, Crc32};
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Records per replay chunk — and per on-disk frame: bounds the merge
/// frontier at `runs × CHUNK × (16 + 4s)` bytes (≈ 384 KiB per run at
/// `s = 2`) and scopes each checksum to one refill's worth of data.
const REPLAY_CHUNK: usize = 1 << 14;

const MAGIC: &[u8; 8] = b"GPCLRUN2";
const HEADER_LEN: usize = 24;
const FRAME_HEADER: usize = 12;

/// Monotone counter making spill file names unique within the process.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// The per-process scratch directory temp spills live in. Keeping them
/// under one pid-stamped directory (rather than loose in the system temp
/// dir) lets tests assert the RAII cleanup story: after a run completes,
/// this directory is empty.
pub fn spill_dir() -> PathBuf {
    std::env::temp_dir().join(format!("gpclust-spill-{}", std::process::id()))
}

/// Wall-clock seconds and byte volume of spill traffic, folded into
/// [`crate::timing::StageTimes`] by the out-of-core drivers.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpillStats {
    /// Bytes written to (and later read back from) spill files.
    pub bytes: u64,
    /// Wall seconds spent writing spill files.
    pub write_seconds: f64,
    /// Wall seconds spent reading them back during the merge.
    pub read_seconds: f64,
}

impl SpillStats {
    /// Fold another tally into this one.
    pub fn merge(&mut self, other: &SpillStats) {
        self.bytes += other.bytes;
        self.write_seconds += other.write_seconds;
        self.read_seconds += other.read_seconds;
    }
}

/// Removes a half-written file if the write that created it fails —
/// the error-path half of the spill cleanup guarantee.
struct PathGuard {
    path: PathBuf,
    armed: bool,
}

impl Drop for PathGuard {
    fn drop(&mut self) {
        if self.armed {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

fn header_bytes(records: u64, s: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(MAGIC);
    h[8..16].copy_from_slice(&records.to_le_bytes());
    h[16..20].copy_from_slice(&s.to_le_bytes());
    let crc = crc32(&h[..20]);
    h[20..24].copy_from_slice(&crc.to_le_bytes());
    h
}

fn corrupt(path: &Path, offset: u64, detail: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!(
            "spilled run {} corrupt at byte {offset}: {detail}",
            path.display()
        ),
    )
}

/// A [`SortedRun`] spilled to a framed, checksummed file, replayable as a
/// sequential record stream. Scratch spills delete their file on drop;
/// checkpointed spills (`keep = true`) leave it for the manifest to own.
#[derive(Debug)]
pub struct SpilledRun {
    path: PathBuf,
    records: usize,
    s: usize,
    crc: u32,
    disk_bytes: u64,
    keep: bool,
}

impl SpilledRun {
    /// Write `run` (shingle size `s`) to a fresh scratch file under
    /// [`spill_dir`] in bounded chunks, tallying the traffic into
    /// `stats`. The file is removed when the returned run drops.
    pub fn write(s: usize, run: &SortedRun, stats: &mut SpillStats) -> io::Result<SpilledRun> {
        let dir = spill_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.run", SPILL_SEQ.fetch_add(1, Ordering::Relaxed)));
        SpilledRun::write_impl(path, s, run, stats, false, false)
    }

    /// Seal `run` into `path` for a checkpoint: the file is synced to
    /// disk before returning (the manifest's commit contract) and is
    /// *not* removed on drop — the checkpoint journal owns it.
    pub fn write_at(
        path: PathBuf,
        s: usize,
        run: &SortedRun,
        stats: &mut SpillStats,
        durable: bool,
    ) -> io::Result<SpilledRun> {
        SpilledRun::write_impl(path, s, run, stats, durable, true)
    }

    fn write_impl(
        path: PathBuf,
        s: usize,
        run: &SortedRun,
        stats: &mut SpillStats,
        durable: bool,
        keep: bool,
    ) -> io::Result<SpilledRun> {
        assert_eq!(run.elements.len(), run.len() * s, "run/elements mismatch");
        let t0 = Instant::now();
        let mut guard = PathGuard {
            path: path.clone(),
            armed: true,
        };
        // Nothing is retained per record, so the writer's resident
        // footprint is its 1 MiB buffer plus one frame's payload.
        let mut w = BufWriter::with_capacity(1 << 20, File::create(&path)?);
        w.write_all(&header_bytes(run.len() as u64, s as u32))?;
        let stride = 16 + 4 * s;
        let mut digest = Crc32::new();
        let mut disk_bytes = HEADER_LEN as u64;
        let mut payload = Vec::with_capacity(stride * REPLAY_CHUNK.min(run.len().max(1)));
        for frame in run.packed.chunks(REPLAY_CHUNK) {
            payload.clear();
            for &p in frame {
                payload.extend_from_slice(&p.to_le_bytes());
                let rep = (p & 0xFFFF_FFFF) as usize;
                for &e in &run.elements[rep * s..(rep + 1) * s] {
                    payload.extend_from_slice(&e.to_le_bytes());
                }
            }
            digest.update(&payload);
            w.write_all(&(frame.len() as u32).to_le_bytes())?;
            w.write_all(&(payload.len() as u32).to_le_bytes())?;
            w.write_all(&crc32(&payload).to_le_bytes())?;
            w.write_all(&payload)?;
            disk_bytes += (FRAME_HEADER + payload.len()) as u64;
        }
        w.flush()?;
        if durable {
            w.get_ref().sync_all()?;
        }
        guard.armed = false;
        stats.bytes += disk_bytes;
        stats.write_seconds += t0.elapsed().as_secs_f64();
        Ok(SpilledRun {
            path,
            records: run.len(),
            s,
            crc: digest.finish(),
            disk_bytes,
            keep,
        })
    }

    /// Reopen a sealed run from a checkpoint directory, re-verifying the
    /// header, every frame's length framing and checksum, and the exact
    /// end-of-file — the resume-time proof that the survivor is intact.
    /// The reopened run is checkpoint-owned (`keep = true`).
    pub fn reopen(path: PathBuf) -> io::Result<SpilledRun> {
        let mut r = BufReader::with_capacity(1 << 20, File::open(&path)?);
        let mut header = [0u8; HEADER_LEN];
        r.read_exact(&mut header)
            .map_err(|_| corrupt(&path, 0, "truncated header"))?;
        if &header[..8] != MAGIC {
            return Err(corrupt(&path, 0, "bad magic"));
        }
        if crc32(&header[..20]) != u32::from_le_bytes(header[20..24].try_into().unwrap()) {
            return Err(corrupt(&path, 20, "header CRC mismatch"));
        }
        let records = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
        let s = u32::from_le_bytes(header[16..20].try_into().unwrap()) as usize;
        let stride = 16 + 4 * s;
        let mut digest = Crc32::new();
        let mut seen = 0usize;
        let mut offset = HEADER_LEN as u64;
        let mut payload = Vec::new();
        while seen < records {
            let mut fh = [0u8; FRAME_HEADER];
            r.read_exact(&mut fh)
                .map_err(|_| corrupt(&path, offset, "truncated frame header"))?;
            let n = u32::from_le_bytes(fh[..4].try_into().unwrap()) as usize;
            let len = u32::from_le_bytes(fh[4..8].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(fh[8..12].try_into().unwrap());
            if n == 0 || n > REPLAY_CHUNK || n > records - seen || len != n * stride {
                return Err(corrupt(&path, offset, "bad frame framing"));
            }
            payload.resize(len, 0);
            r.read_exact(&mut payload)
                .map_err(|_| corrupt(&path, offset + FRAME_HEADER as u64, "truncated frame"))?;
            if crc32(&payload) != crc {
                return Err(corrupt(
                    &path,
                    offset + FRAME_HEADER as u64,
                    "frame CRC mismatch",
                ));
            }
            digest.update(&payload);
            seen += n;
            offset += (FRAME_HEADER + len) as u64;
        }
        if r.read(&mut [0u8; 1])? != 0 {
            return Err(corrupt(&path, offset, "trailing bytes after last frame"));
        }
        Ok(SpilledRun {
            path,
            records,
            s,
            crc: digest.finish(),
            disk_bytes: offset,
            keep: true,
        })
    }

    /// Number of records in the spilled run.
    pub fn len(&self) -> usize {
        self.records
    }

    /// True if the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Shingle size the records carry.
    pub fn s(&self) -> usize {
        self.s
    }

    /// CRC-32 over the run's payload bytes (frame payloads concatenated).
    pub fn crc(&self) -> u32 {
        self.crc
    }

    /// On-disk size in bytes, framing included.
    pub fn bytes(&self) -> u64 {
        self.disk_bytes
    }

    /// The file the run lives in.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Open a sequential replay over the run's records.
    pub fn replay(&self) -> io::Result<RunReplay> {
        let mut reader = BufReader::with_capacity(1 << 20, File::open(&self.path)?);
        let mut header = [0u8; HEADER_LEN];
        reader
            .read_exact(&mut header)
            .map_err(|_| corrupt(&self.path, 0, "truncated header"))?;
        if &header[..8] != MAGIC
            || crc32(&header[..20]) != u32::from_le_bytes(header[20..24].try_into().unwrap())
        {
            return Err(corrupt(&self.path, 0, "bad header"));
        }
        Ok(RunReplay {
            reader,
            path: self.path.clone(),
            s: self.s,
            remaining: self.records,
            offset: HEADER_LEN as u64,
            packed: Vec::new(),
            elements: Vec::new(),
            pos: 0,
        })
    }
}

impl Drop for SpilledRun {
    fn drop(&mut self) {
        if !self.keep {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// A bounded-memory cursor over a [`SpilledRun`]'s records, refilled one
/// verified frame ([`REPLAY_CHUNK`] records) at a time.
#[derive(Debug)]
pub struct RunReplay {
    reader: BufReader<File>,
    path: PathBuf,
    s: usize,
    remaining: usize,
    offset: u64,
    packed: Vec<u128>,
    elements: Vec<u32>,
    pos: usize,
}

impl RunReplay {
    /// The current frontier record, refilling the chunk buffer if it is
    /// exhausted. `None` once the run is drained.
    pub fn peek(&mut self) -> io::Result<Option<u128>> {
        if self.pos == self.packed.len() {
            self.refill()?;
        }
        Ok(self.packed.get(self.pos).copied())
    }

    /// The current frontier record's element ids (valid after a
    /// successful [`RunReplay::peek`]).
    pub fn elements(&self) -> &[u32] {
        &self.elements[self.pos * self.s..(self.pos + 1) * self.s]
    }

    /// Advance past the current frontier record.
    pub fn advance(&mut self) {
        self.pos += 1;
    }

    fn refill(&mut self) -> io::Result<()> {
        self.packed.clear();
        self.elements.clear();
        self.pos = 0;
        if self.remaining == 0 {
            return Ok(());
        }
        let mut fh = [0u8; FRAME_HEADER];
        self.reader
            .read_exact(&mut fh)
            .map_err(|_| corrupt(&self.path, self.offset, "truncated frame header"))?;
        let n = u32::from_le_bytes(fh[..4].try_into().unwrap()) as usize;
        let len = u32::from_le_bytes(fh[4..8].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(fh[8..12].try_into().unwrap());
        let stride = 16 + 4 * self.s;
        if n == 0 || n > REPLAY_CHUNK || n > self.remaining || len != n * stride {
            return Err(corrupt(&self.path, self.offset, "bad frame framing"));
        }
        let mut buf = vec![0u8; len];
        self.reader.read_exact(&mut buf).map_err(|_| {
            corrupt(
                &self.path,
                self.offset + FRAME_HEADER as u64,
                "truncated frame",
            )
        })?;
        if crc32(&buf) != crc {
            return Err(corrupt(
                &self.path,
                self.offset + FRAME_HEADER as u64,
                "frame CRC mismatch",
            ));
        }
        for rec in buf.chunks_exact(stride) {
            self.packed
                .push(u128::from_le_bytes(rec[..16].try_into().unwrap()));
            for e in rec[16..].chunks_exact(4) {
                self.elements
                    .push(u32::from_le_bytes(e.try_into().unwrap()));
            }
        }
        self.remaining -= n;
        self.offset += (FRAME_HEADER + len) as u64;
        Ok(())
    }
}

/// One run of the external merge: resident or spilled.
#[derive(Debug)]
pub enum ExternalRun {
    /// A run kept in memory (e.g. the final pooled-fragment run).
    Mem(SortedRun),
    /// A run spilled to disk.
    Disk(SpilledRun),
}

impl ExternalRun {
    /// Number of records in the run.
    pub fn len(&self) -> usize {
        match self {
            ExternalRun::Mem(r) => r.len(),
            ExternalRun::Disk(r) => r.len(),
        }
    }

    /// True if the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-run cursor state of the external merge.
enum Cursor {
    Mem { run: SortedRun, pos: usize },
    Disk { replay: RunReplay },
}

impl Cursor {
    fn peek(&mut self) -> io::Result<Option<u128>> {
        match self {
            Cursor::Mem { run, pos } => Ok(run.packed.get(*pos).copied()),
            Cursor::Disk { replay } => replay.peek(),
        }
    }
}

/// Merge resident and spilled sorted runs into the bipartite shingle
/// graph — [`merge_sorted_runs`] generalized over run residency.
///
/// Entries pop in ascending `((key, node), run-index)` order, exactly the
/// in-memory merge's sequence, so the result is bit-identical to merging
/// the same runs resident. Host memory holds one [`REPLAY_CHUNK`]-record
/// frontier per on-disk run plus the growing output graph; read traffic
/// is tallied into `stats`.
///
/// [`merge_sorted_runs`]: crate::aggregate::merge_sorted_runs
pub fn merge_external_runs(
    s: usize,
    runs: Vec<ExternalRun>,
    stats: &mut SpillStats,
) -> io::Result<gpclust_graph::ShingleGraph> {
    let t0 = Instant::now();
    let runs: Vec<ExternalRun> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert!(total < (1 << 32), "too many shingle records");
    let mut inv = StreamInverter::new(s, total);
    let mut cursors: Vec<Cursor> = runs
        .into_iter()
        .map(|r| match r {
            ExternalRun::Mem(run) => Ok(Cursor::Mem { run, pos: 0 }),
            ExternalRun::Disk(spilled) => Ok(Cursor::Disk {
                replay: spilled.replay()?,
            }),
        })
        .collect::<io::Result<_>>()?;

    use std::cmp::Reverse;
    // Heap keys strip the run-local index (low 32 bits) and tie-break on
    // the run index — the same order [`merge_sorted_runs`] restores.
    let mut heap: BinaryHeap<Reverse<(u128, usize)>> = BinaryHeap::with_capacity(cursors.len());
    for (ri, c) in cursors.iter_mut().enumerate() {
        if let Some(p) = c.peek()? {
            heap.push(Reverse((p >> 32, ri)));
        }
    }
    while let Some(Reverse((_, ri))) = heap.pop() {
        let cursor = &mut cursors[ri];
        match cursor {
            Cursor::Mem { run, pos } => {
                let p = run.packed[*pos];
                let rep = (p & 0xFFFF_FFFF) as usize;
                // Split borrows: elements slice is read inside the push.
                let elems = &run.elements[rep * s..(rep + 1) * s];
                inv.push(p, |out| out.extend_from_slice(elems));
                *pos += 1;
            }
            Cursor::Disk { replay } => {
                let p = replay.peek()?.expect("heap entry implies a record");
                inv.push(p, |out| out.extend_from_slice(replay.elements()));
                replay.advance();
            }
        }
        if let Some(next) = cursor.peek()? {
            heap.push(Reverse((next >> 32, ri)));
        }
    }
    stats.read_seconds += t0.elapsed().as_secs_f64();
    Ok(inv.finish())
}

/// Merge resident and spilled sorted runs into one in-memory
/// [`SortedRun`] — [`crate::aggregate::merge_runs_to_run`] generalized
/// over run residency, for when the merged records must outlive the merge
/// (the incremental engine folds delta-pass shard runs into its persistent
/// shingle index this way). Pops in exactly [`merge_external_runs`]'s
/// order, so collapsing through this run first then inverting is
/// bit-identical to inverting the runs directly.
pub fn merge_external_to_run(
    s: usize,
    runs: Vec<ExternalRun>,
    stats: &mut SpillStats,
) -> io::Result<SortedRun> {
    let t0 = Instant::now();
    let runs: Vec<ExternalRun> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert!(total < (1 << 32), "too many shingle records");
    let mut out = SortedRun {
        packed: Vec::with_capacity(total),
        elements: Vec::with_capacity(total * s),
    };
    let mut cursors: Vec<Cursor> = runs
        .into_iter()
        .map(|r| match r {
            ExternalRun::Mem(run) => Ok(Cursor::Mem { run, pos: 0 }),
            ExternalRun::Disk(spilled) => Ok(Cursor::Disk {
                replay: spilled.replay()?,
            }),
        })
        .collect::<io::Result<_>>()?;

    use std::cmp::Reverse;
    let mut heap: BinaryHeap<Reverse<(u128, usize)>> = BinaryHeap::with_capacity(cursors.len());
    for (ri, c) in cursors.iter_mut().enumerate() {
        if let Some(p) = c.peek()? {
            heap.push(Reverse((p >> 32, ri)));
        }
    }
    while let Some(Reverse((key_node, ri))) = heap.pop() {
        let cursor = &mut cursors[ri];
        let idx = out.packed.len() as u128;
        out.packed.push((key_node << 32) | idx);
        match cursor {
            Cursor::Mem { run, pos } => {
                let p = run.packed[*pos];
                let rep = (p & 0xFFFF_FFFF) as usize;
                out.elements
                    .extend_from_slice(&run.elements[rep * s..(rep + 1) * s]);
                *pos += 1;
            }
            Cursor::Disk { replay } => {
                replay.peek()?.expect("heap entry implies a record");
                out.elements.extend_from_slice(replay.elements());
                replay.advance();
            }
        }
        if let Some(next) = cursor.peek()? {
            heap.push(Reverse((next >> 32, ri)));
        }
    }
    stats.read_seconds += t0.elapsed().as_secs_f64();
    Ok(out)
}

/// Surface a spill/scratch I/O failure through the drivers' device-error
/// channel ([`gpclust_gpu::DeviceError::HostIo`]).
pub(crate) fn io_to_device(e: io::Error) -> gpclust_gpu::DeviceError {
    gpclust_gpu::DeviceError::HostIo {
        detail: e.to_string(),
    }
}

/// Nodes whose adjacency lists cross a batch boundary of `batches` —
/// exactly the nodes [`crate::plan::FragmentMode::Defer`] flags as
/// fragments. Sorted ascending so routing can binary-search it (the batch
/// list itself may be out of node order after a mid-pass recut appends
/// re-planned batches).
pub(crate) fn split_nodes(batches: &[crate::batch::Batch], offsets: &[u64]) -> Vec<u32> {
    let mut nodes: Vec<u32> = batches
        .iter()
        .filter(|b| b.first_is_fragment(offsets))
        .map(|b| b.node_lo as u32)
        .collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

/// Route one shard's gathered records under host aggregation, where
/// [`Sink::Gather`] loses the fragment flags: a record is a fragment iff
/// its node's list crosses a batch boundary, so records of `split` nodes
/// join the global fragment `pool` (reconciled once, after every shard)
/// and the rest — complete by construction — go to `interior` for
/// immediate packing and spilling.
///
/// [`Sink::Gather`]: crate::exec::Sink::Gather
pub(crate) fn route_shard_records(
    raw: &crate::shingle::RawShingles,
    split: &[u32],
    interior: &mut crate::shingle::RawShingles,
    pool: &mut crate::shingle::RawShingles,
) {
    for (trial, node, pairs) in raw.iter() {
        if split.binary_search(&node).is_ok() {
            pool.push(trial, node, pairs);
        } else {
            interior.push(trial, node, pairs);
        }
    }
}

/// Resident bytes of a [`SortedRun`] (packed u128s + element ids) — what
/// the [`crate::timing::ResidentGauge`] charges while a run awaits its
/// spill.
pub(crate) fn run_bytes(run: &SortedRun) -> u64 {
    (run.packed.len() * 16 + run.elements.len() * 4) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::merge_sorted_runs;
    use crate::minwise::{pack, unpack_element};
    use crate::shingle::shingle_key;

    /// Pack one grouped record the way a device run does (run-local idx).
    fn push_run_record(run: &mut SortedRun, trial: u32, node: u32, pairs: &[u64]) {
        let s = pairs.len();
        let idx = (run.elements.len() / s) as u128;
        for &p in pairs {
            run.elements.push(unpack_element(p));
        }
        let key = shingle_key(trial, pairs.iter().map(|&p| unpack_element(p)));
        run.packed
            .push(((key as u128) << 64) | ((node as u128) << 32) | idx);
    }

    fn sample_runs(n_runs: usize, n_records: u32) -> Vec<SortedRun> {
        let mut runs = vec![SortedRun::default(); n_runs];
        for i in 0..n_records {
            let trial = i % 5;
            let e = i % 37;
            let pairs = [pack(e, e), pack(e + 1, e + 1)];
            let run = (i as usize * n_runs) / n_records as usize;
            push_run_record(&mut runs[run], trial, i, &pairs);
        }
        for run in &mut runs {
            run.packed.sort_unstable();
        }
        runs
    }

    #[test]
    fn spill_roundtrip_replays_every_record() {
        let run = sample_runs(1, 1000).pop().unwrap();
        let mut stats = SpillStats::default();
        let spilled = SpilledRun::write(2, &run, &mut stats).unwrap();
        assert_eq!(spilled.len(), 1000);
        // One frame: 24-byte header + 12-byte frame header + payload.
        assert_eq!(spilled.bytes(), 24 + 12 + 1000 * 24);
        assert_eq!(stats.bytes, spilled.bytes());
        assert!(stats.write_seconds >= 0.0);
        let mut replay = spilled.replay().unwrap();
        for (i, &p) in run.packed.iter().enumerate() {
            assert_eq!(replay.peek().unwrap(), Some(p), "record {i}");
            let rep = (p & 0xFFFF_FFFF) as usize;
            assert_eq!(replay.elements(), &run.elements[rep * 2..rep * 2 + 2]);
            replay.advance();
        }
        assert_eq!(replay.peek().unwrap(), None);
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let run = sample_runs(1, 10).pop().unwrap();
        let mut stats = SpillStats::default();
        let spilled = SpilledRun::write(2, &run, &mut stats).unwrap();
        let path = spilled.path.clone();
        assert!(path.exists());
        drop(spilled);
        assert!(!path.exists());
    }

    #[test]
    fn sealed_run_survives_drop_and_reopens_verified() {
        let run = sample_runs(1, 500).pop().unwrap();
        let mut stats = SpillStats::default();
        let path = spill_dir().join("sealed-test.run");
        std::fs::create_dir_all(spill_dir()).unwrap();
        let sealed = SpilledRun::write_at(path.clone(), 2, &run, &mut stats, true).unwrap();
        let crc = sealed.crc();
        drop(sealed);
        assert!(path.exists(), "keep = true must survive the drop");
        let back = SpilledRun::reopen(path.clone()).unwrap();
        assert_eq!(back.len(), 500);
        assert_eq!(back.s(), 2);
        assert_eq!(back.crc(), crc);
        let mut replay = back.replay().unwrap();
        let mut count = 0;
        while replay.peek().unwrap().is_some() {
            replay.advance();
            count += 1;
        }
        assert_eq!(count, 500);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_and_truncation_are_detected_not_merged() {
        let run = sample_runs(1, 300).pop().unwrap();
        let mut stats = SpillStats::default();
        let path = spill_dir().join("corrupt-test.run");
        std::fs::create_dir_all(spill_dir()).unwrap();
        let sealed = SpilledRun::write_at(path.clone(), 2, &run, &mut stats, false).unwrap();
        let clean = std::fs::read(&path).unwrap();

        // Bit-flip deep in the payload: reopen and replay both reject.
        let mut flipped = clean.clone();
        let mid = clean.len() - 100;
        flipped[mid] ^= 0x04;
        std::fs::write(&path, &flipped).unwrap();
        let err = SpilledRun::reopen(path.clone()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("byte"), "{err}");
        let mut replay = sealed.replay().unwrap();
        assert!(replay.peek().is_err(), "replay must verify frames too");

        // Truncation mid-frame.
        std::fs::write(&path, &clean[..clean.len() / 2]).unwrap();
        assert!(SpilledRun::reopen(path.clone()).is_err());
        let mut replay = sealed.replay().unwrap();
        assert!(replay.peek().is_err());

        // Header damage.
        let mut bad_magic = clean.clone();
        bad_magic[0] ^= 0xFF;
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(SpilledRun::reopen(path.clone()).is_err());

        // Trailing garbage after the last frame.
        let mut padded = clean.clone();
        padded.push(0xAB);
        std::fs::write(&path, &padded).unwrap();
        assert!(SpilledRun::reopen(path.clone()).is_err());

        // The pristine bytes still verify.
        std::fs::write(&path, &clean).unwrap();
        assert_eq!(SpilledRun::reopen(path.clone()).unwrap().len(), 300);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_crosses_chunk_boundaries() {
        // More records than one replay chunk, so refill() runs mid-stream
        // and the file carries multiple frames.
        let n = (REPLAY_CHUNK + REPLAY_CHUNK / 3) as u32;
        let run = sample_runs(1, n).pop().unwrap();
        let mut stats = SpillStats::default();
        let spilled = SpilledRun::write(2, &run, &mut stats).unwrap();
        assert_eq!(
            spilled.bytes(),
            24 + 2 * 12 + n as u64 * 24,
            "two frames expected"
        );
        let mut replay = spilled.replay().unwrap();
        let mut count = 0usize;
        while replay.peek().unwrap().is_some() {
            replay.advance();
            count += 1;
        }
        assert_eq!(count, n as usize);
    }

    #[test]
    fn external_merge_matches_in_memory_merge() {
        // Every residency mix of the same runs must reproduce the
        // in-memory k-way merge bit for bit.
        for n_runs in [1usize, 2, 3, 7] {
            let runs = sample_runs(n_runs, 2_000);
            let oracle = merge_sorted_runs(2, runs.clone());
            for spill_mask in 0..(1u32 << n_runs) {
                let mut stats = SpillStats::default();
                let ext: Vec<ExternalRun> = runs
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        if spill_mask & (1 << i) != 0 {
                            Ok(ExternalRun::Disk(SpilledRun::write(2, r, &mut stats)?))
                        } else {
                            Ok(ExternalRun::Mem(r.clone()))
                        }
                    })
                    .collect::<io::Result<_>>()
                    .unwrap();
                let merged = merge_external_runs(2, ext, &mut stats).unwrap();
                assert_eq!(merged, oracle, "{n_runs} runs, mask {spill_mask:b}");
            }
        }
    }

    #[test]
    fn external_merge_handles_empty_and_unbalanced_runs() {
        let mut big = SortedRun::default();
        let mut small = SortedRun::default();
        for i in 0..100u32 {
            let pairs = [pack(i % 9, i % 9)];
            push_run_record(if i < 99 { &mut big } else { &mut small }, 0, i, &pairs);
        }
        big.packed.sort_unstable();
        small.packed.sort_unstable();
        let oracle = merge_sorted_runs(1, vec![big.clone(), small.clone()]);
        let mut stats = SpillStats::default();
        let ext = vec![
            ExternalRun::Mem(SortedRun::default()),
            ExternalRun::Disk(SpilledRun::write(1, &big, &mut stats).unwrap()),
            ExternalRun::Mem(SortedRun::default()),
            ExternalRun::Mem(small),
        ];
        assert_eq!(merge_external_runs(1, ext, &mut stats).unwrap(), oracle);
        assert!(merge_external_runs(1, Vec::new(), &mut stats)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn spill_stats_accumulate() {
        let mut a = SpillStats {
            bytes: 10,
            write_seconds: 1.0,
            read_seconds: 2.0,
        };
        a.merge(&SpillStats {
            bytes: 5,
            write_seconds: 0.5,
            read_seconds: 0.25,
        });
        assert_eq!(a.bytes, 15);
        assert!((a.write_seconds - 1.5).abs() < 1e-12);
        assert!((a.read_seconds - 2.25).abs() < 1e-12);
    }
}
