//! Recovery primitives shared by the device passes.
//!
//! Three mechanisms implement [`FaultPolicy`](crate::params::FaultPolicy)
//! (each action tallied in [`RecoveryReport`](crate::timing::RecoveryReport)):
//!
//! 1. **Bounded retries** ([`retry_transient`]) — transient faults (failed
//!    transfers/launches, ECC events) re-attempt the same idempotent
//!    operation up to `max_retries` times. Every device-side step of a
//!    shingling trial recomputes its outputs from inputs that are still
//!    resident, so a re-run is bit-identical to a clean first run.
//! 2. **OOM backoff** ([`with_oom_backoff`]) — a pass that hits
//!    `OutOfMemory` is re-planned from scratch with half the batch
//!    capacity (down to a one-element floor), mirroring how the batched
//!    schedule exists precisely because device memory is the binding
//!    constraint. The caller supplies a closure that rebuilds all pass
//!    state per attempt, so a re-plan never replays half-emitted records.
//! 3. **Host degradation** (in `gpu_pass`/`multi_gpu`) — a batch whose
//!    retries are exhausted runs on the bit-identical host path instead
//!    of failing the run.
//!
//! `DeviceLost` is never retried, backed off, or degraded here: a lost
//! device stays lost, so single-device runs surface the typed error and
//! `multi_gpu` redistributes the dead device's remaining batches across
//! survivors.

use crate::params::FaultPolicy;
use crate::timing::RecoveryReport;
use gpclust_gpu::DeviceError;
use std::time::Instant;

/// Run `op`, re-attempting up to `policy.max_retries` times while it
/// fails with a *transient* [`DeviceError`]. Non-transient errors (OOM,
/// device loss) return immediately; re-attempt count and the wall time
/// they consumed are tallied into `recovery`.
pub(crate) fn retry_transient<T>(
    policy: &FaultPolicy,
    recovery: &mut RecoveryReport,
    mut op: impl FnMut() -> Result<T, DeviceError>,
) -> Result<T, DeviceError> {
    let mut err = match op() {
        Ok(v) => return Ok(v),
        Err(e) => e,
    };
    let start = Instant::now();
    let mut attempts = 0u32;
    while err.is_transient() && attempts < policy.max_retries {
        attempts += 1;
        match op() {
            Ok(v) => {
                recovery.retries += attempts as u64;
                recovery.recovery_seconds += start.elapsed().as_secs_f64();
                return Ok(v);
            }
            Err(e) => err = e,
        }
    }
    recovery.retries += attempts as u64;
    recovery.recovery_seconds += start.elapsed().as_secs_f64();
    Err(err)
}

/// Run `attempt(capacity)`, halving `capacity` and re-running on
/// `OutOfMemory` while the policy allows and the floor of one element has
/// not been reached. `attempt` must rebuild all pass state internally —
/// each call is a complete, independent execution of the pass.
pub(crate) fn with_oom_backoff<T>(
    policy: &FaultPolicy,
    recovery: &mut RecoveryReport,
    mut capacity: usize,
    mut attempt: impl FnMut(usize) -> Result<T, DeviceError>,
) -> Result<T, DeviceError> {
    loop {
        match attempt(capacity) {
            Ok(v) => return Ok(v),
            Err(DeviceError::OutOfMemory { .. }) if policy.oom_backoff && capacity > 1 => {
                capacity = (capacity / 2).max(1);
                recovery.oom_backoffs += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transient() -> DeviceError {
        DeviceError::Ecc
    }

    #[test]
    fn retry_clears_transient_faults_within_budget() {
        let policy = FaultPolicy::default(); // max_retries = 3
        let mut rec = RecoveryReport::default();
        let mut failures = 2;
        let out = retry_transient(&policy, &mut rec, || {
            if failures > 0 {
                failures -= 1;
                Err(transient())
            } else {
                Ok(42)
            }
        });
        assert_eq!(out, Ok(42));
        assert_eq!(rec.retries, 2);
        assert!(rec.recovery_seconds >= 0.0);
    }

    #[test]
    fn retry_exhausts_and_returns_the_typed_error() {
        let policy = FaultPolicy {
            max_retries: 2,
            ..Default::default()
        };
        let mut rec = RecoveryReport::default();
        let mut calls = 0u32;
        let out: Result<(), _> = retry_transient(&policy, &mut rec, || {
            calls += 1;
            Err(transient())
        });
        assert_eq!(out, Err(transient()));
        assert_eq!(calls, 3, "initial attempt + max_retries");
        assert_eq!(rec.retries, 2);
    }

    #[test]
    fn retry_never_reattempts_terminal_errors() {
        let policy = FaultPolicy::default();
        let mut rec = RecoveryReport::default();
        let mut calls = 0u32;
        let out: Result<(), _> = retry_transient(&policy, &mut rec, || {
            calls += 1;
            Err(DeviceError::DeviceLost { device: 1 })
        });
        assert_eq!(out, Err(DeviceError::DeviceLost { device: 1 }));
        assert_eq!(calls, 1);
        assert_eq!(rec.retries, 0);
    }

    fn oom() -> DeviceError {
        DeviceError::OutOfMemory {
            requested: 100,
            available: 10,
            capacity: 64,
        }
    }

    #[test]
    fn backoff_halves_capacity_until_it_fits() {
        let policy = FaultPolicy::default();
        let mut rec = RecoveryReport::default();
        let mut seen = Vec::new();
        let out = with_oom_backoff(&policy, &mut rec, 1000, |cap| {
            seen.push(cap);
            if cap > 130 {
                Err(oom())
            } else {
                Ok(cap)
            }
        });
        assert_eq!(out, Ok(125));
        assert_eq!(seen, vec![1000, 500, 250, 125]);
        assert_eq!(rec.oom_backoffs, 3);
    }

    #[test]
    fn backoff_stops_at_the_one_element_floor() {
        let policy = FaultPolicy::default();
        let mut rec = RecoveryReport::default();
        let mut seen = Vec::new();
        let out: Result<(), _> = with_oom_backoff(&policy, &mut rec, 4, |cap| {
            seen.push(cap);
            Err(oom())
        });
        assert_eq!(out, Err(oom()));
        assert_eq!(seen, vec![4, 2, 1], "floor reached, error surfaces typed");
        assert_eq!(rec.oom_backoffs, 2);
    }

    #[test]
    fn backoff_disabled_surfaces_oom_immediately() {
        let policy = FaultPolicy {
            oom_backoff: false,
            ..Default::default()
        };
        let mut rec = RecoveryReport::default();
        let mut calls = 0u32;
        let out: Result<(), _> = with_oom_backoff(&policy, &mut rec, 1000, |_| {
            calls += 1;
            Err(oom())
        });
        assert_eq!(out, Err(oom()));
        assert_eq!(calls, 1);
        assert_eq!(rec.oom_backoffs, 0);
    }
}
