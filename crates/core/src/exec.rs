//! The single executor for Algorithm 1: interprets a lowered
//! [`PassPlan`] against one (simulated) device.
//!
//! Every schedule axis that used to have its own `gpu_shingle_pass_*`
//! entry point is now a field of the plan, handled by one strategy
//! object inside [`Executor::run`]:
//!
//! * [`KernelStrategy`] *(internal)* — the top-s extraction plan per
//!   trial: `SortCompact` (transform → segmented sort → compaction, the
//!   paper's pipeline) or `FusedSelect` (one fused hash + ascending
//!   selection kernel). Both emit bit-identical bytes.
//! * `SinkStrategy` *(internal, from the public [`Sink`] request)* —
//!   where finalized records go: a caller closure, a [`RawShingles`]
//!   buffer, the host [`StreamAggregator`], the device
//!   `DeviceRunBuilder` whose flushes pack + radix-sort runs on the card,
//!   or the Phase-III union-edge list the device connected-components
//!   kernel labels ([`Sink::Clusters`]). Under
//!   [`ComponentsMode::Device`] the device-sorted runs also *invert* to
//!   the shingle graph on the card ([`thrust::invert_sorted_runs`])
//!   instead of k-way merging on the host — records never round-trip
//!   through a host-side sort.
//! * `StreamSchedule` *(internal)* — serialized transfers
//!   ([`PipelineMode::Synchronous`]) or a double-buffered compute/copy
//!   stream pair ([`PipelineMode::Overlapped`]); the pass's pipelined
//!   makespan is the max of the two stream cursors.
//! * [`crate::resilience`] combinators — wrapped uniformly around every
//!   device op: transient faults retry, an exhausted batch degrades to
//!   the bit-identical host path when the policy allows, `OutOfMemory`
//!   and `DeviceLost` propagate typed (backoff and redistribution are
//!   the callers' pass-level decisions).
//!
//! [`FragmentMode`] selects between the two historical loop bodies —
//! single-device semantics (in-order batches, host-side carry merge of
//! boundary fragments, double-buffered prefetch) and multi-device
//! semantics (an arbitrary share of the batch list, fragment-flagged
//! records for driver-side reconciliation, atomic per-batch commits,
//! unfinished-share reporting on device loss). The per-trial device code
//! is shared, which is what keeps the whole cross-product bit-identical:
//! same batch plan + same emission order ⇒ same records, under every
//! combination of axes.

#![deny(dead_code)]

use crate::aggregate::{merge_sorted_runs, SortedRun, StreamAggregator};
use crate::batch::BatchStats;
use crate::gpu_pass::{
    compaction_tasks, host_trial_out, plan_batch, BatchPlan, DeviceRunBuilder, RecordSink,
};
use crate::minwise::{hash_with, pack, unpack_element, HashFamily};
use crate::params::{AggregationMode, ComponentsMode, PipelineMode, ShingleKernel};
use crate::plan::{FragmentMode, PassPlan};
use crate::report;
use crate::resilience::retry_transient;
use crate::shingle::{AdjacencyInput, RawShingles};
use crate::timing::RecoveryReport;
use gpclust_gpu::{thrust, DeviceBuffer, DeviceError, Gpu, KernelCost, Stream, StreamEvent};
use gpclust_graph::{ShingleGraph, UnionFind};
use std::time::Instant;

/// One record a batch emits: `(trial, node, top-s pairs, is_fragment)`.
/// Fragments are first/last segments continuing into a neighboring batch
/// (possibly on another device) and need host-side reconciliation.
type BatchRecord = (u32, u32, Vec<u64>, bool);

/// Borrowed adjacency input of one pass — plain slices so per-device
/// worker threads can share one input without generic plumbing.
#[derive(Clone, Copy)]
pub struct PassInput<'a> {
    /// `n + 1` monotone list offsets (always the *global* offsets — the
    /// batch plan addresses elements by global position).
    pub offsets: &'a [u64],
    /// Concatenated adjacency elements. May be a window of the global
    /// element array starting at global position [`PassInput::base`], so
    /// out-of-core shards never materialize the whole input.
    pub flat: &'a [u32],
    /// Global element position of `flat[0]`. 0 for fully resident inputs;
    /// a shard's batches index `flat[pos - base]`.
    pub base: u64,
}

impl<'a> PassInput<'a> {
    /// Borrow the slices of any [`AdjacencyInput`] (CSR or shingle graph).
    pub fn of(input: &'a impl AdjacencyInput) -> Self {
        PassInput {
            offsets: input.offsets(),
            flat: input.flat(),
            base: 0,
        }
    }

    /// An input whose elements are a window of the global array starting
    /// at global element position `base` (out-of-core shards). `offsets`
    /// stays global.
    pub fn window(offsets: &'a [u64], flat: &'a [u32], base: u64) -> Self {
        PassInput {
            offsets,
            flat,
            base,
        }
    }
}

/// What the caller wants out of the pass — the sink half of the plan.
pub enum Sink<'a> {
    /// Stream each finalized `(trial, node, top-s pairs)` record to the
    /// callback (pass II feeds the union–find this way). Records arrive
    /// exactly as the legacy `foreach` entry points delivered them.
    Stream(&'a mut dyn FnMut(u32, u32, &[u64])),
    /// Materialize records into [`PassReport::raw`] — and, under
    /// [`AggregationMode::Device`], complete records into
    /// [`PassReport::runs`] with only fragments left in `raw`.
    Gather,
    /// Aggregate to the pass's [`ShingleGraph`] ([`PassReport::graph`]):
    /// the host global sort or the device run merge, per the plan's
    /// aggregation mode — and, under [`ComponentsMode::Device`], the
    /// device inversion of the sorted runs instead of the host k-way
    /// merge. Requires [`FragmentMode::Merge`].
    Aggregate,
    /// Stream each record into the device-resident Phase III: records
    /// reduce to the `(anchor, v)` union edges of
    /// [`report::union_second_level_record`], and draining the sink runs
    /// the pointer-jumping connected-components kernel over the edge list
    /// ([`PassReport::clusters`]). Requires [`FragmentMode::Merge`]
    /// (finalized records only).
    Clusters {
        /// The pass-I shingle graph the record generators expand through
        /// (also the pass's adjacency input).
        first: &'a ShingleGraph,
        /// |V| of the *input* graph the component labels cover.
        n: usize,
    },
}

/// Device Phase-III output of [`Sink::Clusters`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterLabels {
    /// Component label per input vertex; equal labels ⇔ same cluster.
    /// Min-vertex ids from the device kernel, dense union–find labels
    /// from the host fallback — either canonicalizes to the same
    /// [`gpclust_graph::Partition`].
    pub labels: Vec<u32>,
    /// Second-level `<shingle, generator>` records streamed (|E″|).
    pub records: u64,
    /// Hook + pointer-jump sweeps to the label fixpoint (0 on the host
    /// fallback path and for edgeless inputs).
    pub cc_iterations: usize,
}

/// Everything one executed pass produced. Which fields are populated
/// depends on the requested [`Sink`]; `stats` and `makespan` always are.
#[derive(Debug)]
pub struct PassReport {
    /// The plan's batch statistics (echoed for reporting).
    pub stats: BatchStats,
    /// Pipelined makespan of the pass — max of the compute/copy stream
    /// cursors; 0 under [`PipelineMode::Synchronous`].
    pub makespan: f64,
    /// Gathered records ([`Sink::Gather`]): every record under host
    /// aggregation (grouped when [`FragmentMode::Merge`] finalized them),
    /// only boundary fragments under device aggregation.
    pub raw: RawShingles,
    /// Device-sorted runs ([`Sink::Gather`] + [`AggregationMode::Device`]).
    pub runs: Vec<SortedRun>,
    /// The aggregated shingle graph ([`Sink::Aggregate`]).
    pub graph: Option<ShingleGraph>,
    /// Phase-III component labels ([`Sink::Clusters`]).
    pub clusters: Option<ClusterLabels>,
    /// Modeled device seconds the aggregation kernels (pack + radix
    /// sort, plus the run inversion under [`ComponentsMode::Device`])
    /// consumed.
    pub agg_kernel_seconds: f64,
    /// Modeled device seconds the Phase-III components kernels consumed
    /// ([`Sink::Clusters`]; 0 otherwise).
    pub cc_kernel_seconds: f64,
    /// Batch ids left unfinished plus the interrupting error — only under
    /// [`FragmentMode::Defer`], where a mid-share [`DeviceError::DeviceLost`]
    /// reports the remainder for redistribution instead of failing.
    pub unfinished: Option<(Vec<usize>, DeviceError)>,
}

/// The one interpreter for every (kernel × schedule × sink × fault
/// policy) combination: construct it over a device and feed it plans.
pub struct Executor<'g> {
    gpu: &'g Gpu,
}

impl<'g> Executor<'g> {
    /// An executor bound to `gpu`.
    pub fn new(gpu: &'g Gpu) -> Self {
        Executor { gpu }
    }

    /// Execute one pass plan. `recovery` is caller-owned so retry/degrade
    /// tallies accumulate across pass-level re-plans (the
    /// [`crate::resilience::with_oom_backoff`] loop re-invokes `run` with
    /// a smaller-capacity plan); sink state is rebuilt per call, so a
    /// re-plan never replays half-emitted records.
    pub fn run(
        &self,
        plan: &PassPlan,
        input: PassInput<'_>,
        family: &HashFamily,
        recovery: &mut RecoveryReport,
        sink: Sink<'_>,
    ) -> Result<PassReport, DeviceError> {
        let schedule = StreamSchedule::new(self.gpu, plan.mode, plan.fragments);
        let streams = schedule.pair();
        let mut state = SinkState::new(plan, sink);
        let unfinished = match plan.fragments {
            FragmentMode::Merge => {
                debug_assert!(
                    plan.share.is_none(),
                    "fragment merging needs the full in-order batch list"
                );
                self.run_merged(plan, input, family, streams, recovery, &mut state)?;
                None
            }
            FragmentMode::Defer => {
                self.run_deferred(plan, input, family, streams, recovery, &mut state)?
            }
        };
        let out = state.finish(self.gpu, streams, plan, recovery)?;
        Ok(PassReport {
            stats: plan.stats,
            makespan: schedule.makespan(),
            raw: out.raw,
            runs: out.runs,
            graph: out.graph,
            clusters: out.clusters,
            agg_kernel_seconds: out.agg_kernel_seconds,
            cc_kernel_seconds: out.cc_kernel_seconds,
            unfinished,
        })
    }

    /// Single-device loop body: every batch in order, boundary fragments
    /// merged on the host via per-trial carry buffers, batch *k+1*
    /// prefetched on the copy stream while batch *k* computes.
    fn run_merged(
        &self,
        pass: &PassPlan,
        input: PassInput<'_>,
        family: &HashFamily,
        streams: Option<(&Stream, &Stream)>,
        recovery: &mut RecoveryReport,
        state: &mut SinkState<'_>,
    ) -> Result<(), DeviceError> {
        let gpu = self.gpu;
        let kernel = KernelStrategy::of(pass.kernel);
        let policy = &pass.policy;
        let offsets = input.offsets;
        let flat = input.flat;
        let base = input.base;
        let s = pass.s;
        let batches = &pass.batches;

        // Carry buffers for the one adjacency list that can span the
        // current batch boundary: per-trial top candidates of the
        // fragments seen so far.
        let mut carry: Vec<Vec<u64>> = vec![Vec::new(); family.len()];
        let mut carry_node: Option<u32> = None;
        // Double buffer: the next batch's elements already uploaded on the
        // copy stream, with the event marking that upload's completion.
        let mut staged: Option<(DeviceBuffer<u32>, StreamEvent)> = None;
        for (bi, batch) in batches.iter().enumerate() {
            let plan = plan_batch(batch, offsets, s);
            let staged_now = staged.take();
            if plan.nodes.is_empty() {
                continue;
            }
            let range = (batch.elem_lo - base) as usize..(batch.elem_hi - base) as usize;
            let batch_elems = &flat[range];
            // Once true, every remaining trial of this batch runs on the
            // bit-identical host path.
            let mut degraded = false;

            // 1. The batch's elements on the device: staged by the
            // previous iteration's prefetch, or moved now (H2D once,
            // reused across trials). Transient upload faults retry; an
            // exhausted budget degrades the whole batch.
            let upload = if let Some((compute, copy)) = streams {
                match staged_now {
                    Some((buf, uploaded)) => {
                        compute.wait_event(&uploaded);
                        Ok(buf)
                    }
                    None => retry_transient(policy, recovery, || {
                        let buf = copy.htod_async(batch_elems)?;
                        compute.wait_event(&copy.record_event());
                        Ok(buf)
                    }),
                }
            } else {
                retry_transient(policy, recovery, || gpu.htod(batch_elems))
            };
            let elems_dev: Option<DeviceBuffer<u32>> = match upload {
                Ok(buf) => Some(buf),
                Err(e) if e.is_transient() && policy.degrade_to_host => {
                    degraded = true;
                    recovery.degraded_batches += 1;
                    None
                }
                Err(e) => return Err(e),
            };
            let mut packed_dev =
                kernel.alloc_workspace(gpu, &elems_dev, policy, recovery, &mut degraded)?;

            // Prefetch batch k+1 on the copy stream while batch k
            // computes. Best effort: under memory pressure (or an
            // injected upload fault) the upload simply happens at the top
            // of the next iteration instead.
            if let Some((_, copy)) = streams {
                if let Some(next) = batches.get(bi + 1) {
                    let next_range = (next.elem_lo - base) as usize..(next.elem_hi - base) as usize;
                    if let Ok(buf) = copy.htod_async(&flat[next_range]) {
                        staged = Some((buf, copy.record_event()));
                    }
                }
            }

            // In the overlapped schedule the previous trial's output
            // buffer stays allocated while its D2H is modeled in flight.
            let mut prev_out: Option<DeviceBuffer<u64>> = None;
            #[allow(clippy::needless_range_loop)] // trial indexes both family and carry
            for trial in 0..family.len() {
                let (a, b) = family.coeffs(trial);
                let host_out = match elems_dev.as_ref().filter(|_| !degraded) {
                    Some(elems) => {
                        let attempt = retry_transient(policy, recovery, || {
                            device_trial(
                                gpu,
                                streams,
                                kernel,
                                &plan,
                                elems,
                                &mut packed_dev,
                                a,
                                b,
                                &mut prev_out,
                                &mut staged,
                            )
                        });
                        match attempt {
                            Ok(out) => out,
                            Err(e) if e.is_transient() && policy.degrade_to_host => {
                                degraded = true;
                                recovery.degraded_batches += 1;
                                let t0 = Instant::now();
                                let out = host_trial_out(&plan, batch_elems, a, b);
                                recovery.recovery_seconds += t0.elapsed().as_secs_f64();
                                out
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    None => {
                        let t0 = Instant::now();
                        let out = host_trial_out(&plan, batch_elems, a, b);
                        recovery.recovery_seconds += t0.elapsed().as_secs_f64();
                        out
                    }
                };
                emit_trial_records(
                    &plan, &host_out, trial, s, &mut carry, carry_node, gpu, streams, state,
                )?;
            }
            drop(prev_out);
            // Free the batch's element (and packed-workspace) buffers
            // before the sink's batch hook runs, so a device-aggregation
            // flush can allocate its staging column and record buffer.
            drop(packed_dev);
            drop(elems_dev);
            state.batch_end(gpu, streams)?;
            carry_node = if plan.last_frag {
                Some(plan.nodes[plan.nodes.len() - 1])
            } else {
                None
            };
        }
        debug_assert!(carry_node.is_none(), "carry must drain by the final batch");
        Ok(())
    }

    /// Multi-device loop body: the plan's share of batches in order, each
    /// batch's records buffered and committed atomically only after the
    /// whole batch succeeded, boundary segments emitted fragment-flagged
    /// for the driver to reconcile. A [`DeviceError::DeviceLost`] mid-share
    /// stops the loop and reports the unfinished batch ids.
    #[allow(clippy::type_complexity)] // the unfinished-share pair mirrors PassReport
    fn run_deferred(
        &self,
        pass: &PassPlan,
        input: PassInput<'_>,
        family: &HashFamily,
        streams: Option<(&Stream, &Stream)>,
        recovery: &mut RecoveryReport,
        state: &mut SinkState<'_>,
    ) -> Result<Option<(Vec<usize>, DeviceError)>, DeviceError> {
        let gpu = self.gpu;
        let all: Vec<usize>;
        let share: &[usize] = match &pass.share {
            Some(share) => share,
            None => {
                all = (0..pass.batches.len()).collect();
                &all
            }
        };
        for (i, &bid) in share.iter().enumerate() {
            match self.run_batch(pass, &pass.batches[bid], input, family, streams, recovery) {
                Ok(records) => {
                    for (trial, node, pairs, fragment) in records {
                        state.record(gpu, streams, trial, node, &pairs, fragment)?;
                    }
                    // Cut the device-aggregation run at the batch
                    // boundary, after the batch freed its device buffers.
                    state.batch_end(gpu, streams)?;
                }
                Err(e) => return Ok(Some((share[i..].to_vec(), e))),
            }
        }
        Ok(None)
    }

    /// Algorithm 1 on a single batch under the fault policy, returning the
    /// batch's [`BatchRecord`]s buffered for an atomic commit.
    /// Fragments (first/last segments continuing into a
    /// neighboring batch, possibly on another device) need host-side
    /// reconciliation; complete records carry exactly `s` pairs and may
    /// aggregate anywhere. Records are bit-identical across schedules and
    /// across the retry/degrade paths, which replay the same computation.
    fn run_batch(
        &self,
        pass: &PassPlan,
        batch: &crate::batch::Batch,
        input: PassInput<'_>,
        family: &HashFamily,
        streams: Option<(&Stream, &Stream)>,
        recovery: &mut RecoveryReport,
    ) -> Result<Vec<BatchRecord>, DeviceError> {
        let gpu = self.gpu;
        let kernel = KernelStrategy::of(pass.kernel);
        let policy = &pass.policy;
        let plan = plan_batch(batch, input.offsets, pass.s);
        if plan.nodes.is_empty() {
            return Ok(Vec::new());
        }
        let n_segs = plan.nodes.len();
        let batch_elems = &input.flat
            [(batch.elem_lo - input.base) as usize..(batch.elem_hi - input.base) as usize];
        // Once true, every remaining trial runs on the host path.
        let mut degraded = false;

        let upload = match streams {
            Some((compute, copy)) => retry_transient(policy, recovery, || {
                let buf = copy.htod_async(batch_elems)?;
                compute.wait_event(&copy.record_event());
                Ok(buf)
            }),
            None => retry_transient(policy, recovery, || gpu.htod(batch_elems)),
        };
        let elems_dev = match upload {
            Ok(buf) => Some(buf),
            Err(e) if e.is_transient() && policy.degrade_to_host => {
                degraded = true;
                recovery.degraded_batches += 1;
                None
            }
            Err(e) => return Err(e),
        };
        let mut packed_dev =
            kernel.alloc_workspace(gpu, &elems_dev, policy, recovery, &mut degraded)?;
        // The buffer whose async download is still "in flight" — kept
        // alive for one trial (stream semantics), freed before the next
        // allocation. No prefetch here: the share's batches are not
        // contiguous in the flat array.
        let mut prev_out: Option<DeviceBuffer<u64>> = None;
        let mut records: Vec<BatchRecord> = Vec::new();
        for trial in 0..family.len() {
            let (a, b) = family.coeffs(trial);
            let host_out = match elems_dev.as_ref().filter(|_| !degraded) {
                Some(elems) => {
                    let attempt = retry_transient(policy, recovery, || {
                        device_trial(
                            gpu,
                            streams,
                            kernel,
                            &plan,
                            elems,
                            &mut packed_dev,
                            a,
                            b,
                            &mut prev_out,
                            &mut None,
                        )
                    });
                    match attempt {
                        Ok(out) => out,
                        Err(e) if e.is_transient() && policy.degrade_to_host => {
                            degraded = true;
                            recovery.degraded_batches += 1;
                            let t0 = Instant::now();
                            let out = host_trial_out(&plan, batch_elems, a, b);
                            recovery.recovery_seconds += t0.elapsed().as_secs_f64();
                            out
                        }
                        Err(e) => return Err(e),
                    }
                }
                None => {
                    let t0 = Instant::now();
                    let out = host_trial_out(&plan, batch_elems, a, b);
                    recovery.recovery_seconds += t0.elapsed().as_secs_f64();
                    out
                }
            };
            for i in 0..n_segs {
                let lo = plan.out_offsets[i];
                let hi = plan.out_offsets[i + 1];
                if hi > lo {
                    let fragment =
                        (i == 0 && plan.first_frag) || (i == n_segs - 1 && plan.last_frag);
                    records.push((
                        trial as u32,
                        plan.nodes[i],
                        host_out[lo..hi].to_vec(),
                        fragment,
                    ));
                }
            }
        }
        drop(prev_out);
        Ok(records)
    }
}

/// The stream schedule strategy: how transfers and kernels interleave.
enum StreamSchedule {
    /// Thrust 1.5 behavior: every copy blocks on the device timeline.
    Serialized,
    /// Double-buffered compute/copy stream pair; the pass's makespan is
    /// the max of the two cursors once both drain.
    DoubleBuffered { compute: Stream, copy: Stream },
}

impl StreamSchedule {
    fn new(gpu: &Gpu, mode: PipelineMode, fragments: FragmentMode) -> Self {
        match mode {
            PipelineMode::Synchronous => StreamSchedule::Serialized,
            PipelineMode::Overlapped => {
                // Historical stream labels, kept so device timelines read
                // the same: single-device passes vs. multi-device shares.
                let (c, p) = match fragments {
                    FragmentMode::Merge => ("shingle-compute", "shingle-copy"),
                    FragmentMode::Defer => ("mgpu-compute", "mgpu-copy"),
                };
                StreamSchedule::DoubleBuffered {
                    compute: gpu.stream(c),
                    copy: gpu.stream(p),
                }
            }
        }
    }

    fn pair(&self) -> Option<(&Stream, &Stream)> {
        match self {
            StreamSchedule::Serialized => None,
            StreamSchedule::DoubleBuffered { compute, copy } => Some((compute, copy)),
        }
    }

    fn makespan(&self) -> f64 {
        match self {
            StreamSchedule::Serialized => 0.0,
            StreamSchedule::DoubleBuffered { compute, copy } => {
                compute.completed_seconds().max(copy.completed_seconds())
            }
        }
    }
}

/// The kernel strategy: which device plan extracts each segment's top-s
/// pairs. Both plans emit bit-identical bytes — the ascending s-smallest
/// selection equals the sorted prefix, duplicates included.
#[derive(Clone, Copy)]
enum KernelStrategy {
    SortCompact,
    FusedSelect,
}

impl KernelStrategy {
    fn of(kernel: ShingleKernel) -> Self {
        match kernel {
            ShingleKernel::SortCompact => KernelStrategy::SortCompact,
            ShingleKernel::FusedSelect => KernelStrategy::FusedSelect,
        }
    }

    /// Allocate the per-batch packed workspace if this kernel needs one
    /// (only the sort path materializes the 8-byte `(hash, vertex)`
    /// buffer; the fused kernel hashes on the fly), with the standard
    /// retry/degrade wrapping.
    fn alloc_workspace(
        &self,
        gpu: &Gpu,
        elems_dev: &Option<DeviceBuffer<u32>>,
        policy: &crate::params::FaultPolicy,
        recovery: &mut RecoveryReport,
        degraded: &mut bool,
    ) -> Result<Option<DeviceBuffer<u64>>, DeviceError> {
        match (self, elems_dev) {
            (KernelStrategy::SortCompact, Some(elems)) => {
                let n = elems.len();
                match retry_transient(policy, recovery, || gpu.alloc::<u64>(n)) {
                    Ok(buf) => Ok(Some(buf)),
                    Err(e) if e.is_transient() && policy.degrade_to_host => {
                        *degraded = true;
                        recovery.degraded_batches += 1;
                        Ok(None)
                    }
                    Err(e) => Err(e),
                }
            }
            _ => Ok(None),
        }
    }

    /// Launch this kernel plan for one trial: fill `out_dev` with each
    /// kept segment's ascending top-k packed pairs.
    #[allow(clippy::too_many_arguments)] // per-trial launch point of device_trial
    fn launch(
        &self,
        gpu: &Gpu,
        streams: Option<(&Stream, &Stream)>,
        plan: &BatchPlan,
        elems_dev: &DeviceBuffer<u32>,
        packed_dev: &mut Option<DeviceBuffer<u64>>,
        out_dev: &mut DeviceBuffer<u64>,
        a: u64,
        b: u64,
    ) {
        let xform = move |v: u32| pack(hash_with(a, b, v), v);
        match (self, packed_dev) {
            (KernelStrategy::SortCompact, Some(packed_dev)) => {
                // 2a. Random permutation via the min-wise hash, then
                // 2b. segmented sort within each adjacency list, then
                // 2c. compact the top-s pairs of each kept segment.
                if let Some((compute, _)) = streams {
                    thrust::transform_on(compute, elems_dev, packed_dev, xform);
                    thrust::segmented_sort_on(compute, packed_dev, &plan.local_offsets);
                } else {
                    thrust::transform(gpu, elems_dev, packed_dev, xform);
                    thrust::segmented_sort(gpu, packed_dev, &plan.local_offsets);
                }
                let tasks =
                    compaction_tasks(plan, packed_dev.device_slice(), out_dev.device_slice_mut());
                if let Some((compute, _)) = streams {
                    compute.launch(plan.out_total, &KernelCost::gather(), tasks);
                } else {
                    gpu.launch(plan.out_total, &KernelCost::gather(), tasks);
                }
            }
            (KernelStrategy::FusedSelect, _) => {
                // 2a–c fused: hash + per-segment ascending top-s
                // selection straight into the dense output. Identical
                // bytes to the sorted prefix the compaction copies.
                if let Some((compute, _)) = streams {
                    thrust::transform_select_on(
                        compute,
                        elems_dev,
                        &plan.local_offsets,
                        &plan.out_offsets,
                        out_dev,
                        xform,
                    );
                } else {
                    thrust::transform_select(
                        gpu,
                        elems_dev,
                        &plan.local_offsets,
                        &plan.out_offsets,
                        out_dev,
                        xform,
                    );
                }
            }
            (KernelStrategy::SortCompact, None) => unreachable!("workspace allocated above"),
        }
    }
}

/// One trial's device execution: allocate the dense output, run the
/// kernel plan, and copy the result back via the *fallible* transfers —
/// the sync point where injected kernel faults surface. Idempotent:
/// every buffer it writes is recomputed from `elems_dev`, so
/// [`retry_transient`] can re-run it after a transient fault and get
/// bit-identical bytes. `staged` is the merged loop's prefetch slot
/// (given back under memory pressure); the deferred loop has no prefetch
/// and passes an empty slot.
#[allow(clippy::too_many_arguments)] // internal per-trial helper of the executor
fn device_trial(
    gpu: &Gpu,
    streams: Option<(&Stream, &Stream)>,
    kernel: KernelStrategy,
    plan: &BatchPlan,
    elems_dev: &DeviceBuffer<u32>,
    packed_dev: &mut Option<DeviceBuffer<u64>>,
    a: u64,
    b: u64,
    prev_out: &mut Option<DeviceBuffer<u64>>,
    staged: &mut Option<(DeviceBuffer<u32>, StreamEvent)>,
) -> Result<Vec<u64>, DeviceError> {
    // The previous trial's output has drained by now; free it before
    // allocating the next so peak memory holds at most one in-flight
    // output buffer.
    *prev_out = None;
    let mut out_dev = match gpu.alloc::<u64>(plan.out_total) {
        Ok(buf) => buf,
        Err(DeviceError::OutOfMemory { .. }) if staged.is_some() => {
            // Memory pressure: give the prefetched batch back (it will
            // re-upload next iteration) and retry.
            *staged = None;
            gpu.alloc::<u64>(plan.out_total)?
        }
        Err(e) => return Err(e),
    };
    kernel.launch(
        gpu,
        streams,
        plan,
        elems_dev,
        packed_dev,
        &mut out_dev,
        a,
        b,
    );
    // 2d. Per-trial transfer back to the host. Synchronous mode blocks;
    // overlapped mode queues the copy behind the trial's kernels and lets
    // the next trial's kernels start meanwhile.
    if let Some((compute, copy)) = streams {
        copy.wait_event(&compute.record_event());
        let data = copy.try_dtoh_async(&out_dev)?;
        *prev_out = Some(out_dev);
        Ok(data)
    } else {
        gpu.try_dtoh(&out_dev)
    }
}

/// CPU-side record building for one trial's host output, with
/// boundary-fragment merging ("the CPU has to combine the shingle results
/// for the split adjacency lists after it receives shingles from the
/// GPU"). Only the merged loop calls this; the deferred loop emits
/// fragments unmerged for the driver.
#[allow(clippy::too_many_arguments)] // internal per-trial helper of run_merged
fn emit_trial_records(
    plan: &BatchPlan,
    host_out: &[u64],
    trial: usize,
    s: usize,
    carry: &mut [Vec<u64>],
    carry_node: Option<u32>,
    gpu: &Gpu,
    streams: Option<(&Stream, &Stream)>,
    state: &mut SinkState<'_>,
) -> Result<(), DeviceError> {
    let n_segs = plan.nodes.len();
    for &seg in &plan.emit_segs {
        let i = seg as usize;
        let lo = plan.out_offsets[i];
        let hi = plan.out_offsets[i + 1];
        let pairs = &host_out[lo..hi];
        let is_first = i == 0;
        let is_last = i == n_segs - 1;
        if is_first && plan.first_frag {
            debug_assert_eq!(carry_node, Some(plan.nodes[i]));
            let mut merged = std::mem::take(&mut carry[trial]);
            merged.extend_from_slice(pairs);
            merged.sort_unstable();
            merged.dedup();
            merged.truncate(s);
            if is_last && plan.last_frag {
                carry[trial] = merged; // list continues further
            } else if merged.len() == s {
                state.record(gpu, streams, trial as u32, plan.nodes[i], &merged, false)?;
            }
        } else if is_last && plan.last_frag {
            carry[trial] = pairs.to_vec();
        } else if pairs.len() == s {
            state.record(gpu, streams, trial as u32, plan.nodes[i], pairs, false)?;
        }
    }
    Ok(())
}

/// The sink strategy, instantiated from the public [`Sink`] request plus
/// the plan's aggregation axis. Device-aggregating variants own a
/// `DeviceRunBuilder` whose flushes may run device kernels — which is why
/// every hook sees the [`Gpu`] and the optional stream pair.
enum SinkState<'a> {
    /// Finalized records stream to the caller.
    Stream(&'a mut dyn FnMut(u32, u32, &[u64])),
    /// Records materialize: complete records to the builder when device
    /// aggregation is on, everything else (fragments, or all records
    /// under host aggregation) to `raw`.
    Gather {
        raw: RawShingles,
        builder: Option<DeviceRunBuilder>,
    },
    /// Records aggregate straight to the pass's shingle graph on the host.
    HostAggregate(StreamAggregator),
    /// Records aggregate via device-sorted runs: k-way merged on the host
    /// at finish, or inverted on the device under
    /// [`ComponentsMode::Device`].
    DeviceAggregate(DeviceRunBuilder),
    /// Records reduce to Phase-III union edges for the device
    /// connected-components kernel at finish.
    Clusters {
        first: &'a ShingleGraph,
        n: usize,
        edges: Vec<u64>,
        records: u64,
    },
}

/// Everything a drained sink hands to the pass report.
struct SinkOutput {
    raw: RawShingles,
    runs: Vec<SortedRun>,
    graph: Option<ShingleGraph>,
    clusters: Option<ClusterLabels>,
    agg_kernel_seconds: f64,
    cc_kernel_seconds: f64,
}

impl SinkOutput {
    fn bare(raw: RawShingles) -> Self {
        SinkOutput {
            raw,
            runs: Vec::new(),
            graph: None,
            clusters: None,
            agg_kernel_seconds: 0.0,
            cc_kernel_seconds: 0.0,
        }
    }
}

impl<'a> SinkState<'a> {
    fn new(plan: &PassPlan, sink: Sink<'a>) -> Self {
        let builder = || DeviceRunBuilder::with_policy(plan.s, plan.capacity, plan.policy);
        match (sink, plan.aggregation) {
            (Sink::Stream(f), _) => SinkState::Stream(f),
            (Sink::Gather, AggregationMode::Host) => SinkState::Gather {
                raw: RawShingles::new(plan.s),
                builder: None,
            },
            (Sink::Gather, AggregationMode::Device) => SinkState::Gather {
                raw: RawShingles::new(plan.s),
                builder: Some(builder()),
            },
            (Sink::Aggregate, AggregationMode::Host) => SinkState::HostAggregate(
                StreamAggregator::with_par_sort_min(plan.s, plan.par_sort_min),
            ),
            (Sink::Aggregate, AggregationMode::Device) => SinkState::DeviceAggregate(builder()),
            (Sink::Clusters { first, n }, _) => SinkState::Clusters {
                first,
                n,
                edges: Vec::new(),
                records: 0,
            },
        }
    }

    fn record(
        &mut self,
        gpu: &Gpu,
        streams: Option<(&Stream, &Stream)>,
        trial: u32,
        node: u32,
        pairs: &[u64],
        fragment: bool,
    ) -> Result<(), DeviceError> {
        match self {
            SinkState::Stream(f) => {
                f(trial, node, pairs);
                Ok(())
            }
            SinkState::Gather { raw, builder } => match builder {
                Some(b) if !fragment => b.record(gpu, streams, trial, node, pairs),
                _ => {
                    raw.push(trial, node, pairs);
                    Ok(())
                }
            },
            SinkState::HostAggregate(agg) => {
                agg.push(trial, node, pairs);
                Ok(())
            }
            SinkState::DeviceAggregate(b) => b.record(gpu, streams, trial, node, pairs),
            SinkState::Clusters {
                first,
                edges,
                records,
                ..
            } => {
                debug_assert!(!fragment, "Phase-III sink needs finalized records");
                *records += 1;
                report::record_union_edges(
                    first,
                    node,
                    pairs.iter().map(|&p| unpack_element(p)),
                    edges,
                );
                Ok(())
            }
        }
    }

    fn batch_end(
        &mut self,
        gpu: &Gpu,
        streams: Option<(&Stream, &Stream)>,
    ) -> Result<(), DeviceError> {
        match self {
            SinkState::Gather {
                builder: Some(b), ..
            } => b.batch_end(gpu, streams),
            SinkState::DeviceAggregate(b) => b.batch_end(gpu, streams),
            _ => Ok(()),
        }
    }

    /// Drain the sink: flush any staged device-aggregation tail, run the
    /// finish-time device passes (run inversion, components), fold the
    /// recovery tallies into `recovery`, and hand the results to the pass
    /// report.
    fn finish(
        self,
        gpu: &Gpu,
        streams: Option<(&Stream, &Stream)>,
        plan: &PassPlan,
        recovery: &mut RecoveryReport,
    ) -> Result<SinkOutput, DeviceError> {
        let empty = || RawShingles::new(plan.s);
        match self {
            SinkState::Stream(_) => Ok(SinkOutput::bare(empty())),
            SinkState::Gather { mut raw, builder } => {
                let (runs, agg_seconds) = match builder {
                    Some(b) => {
                        let (runs, agg_seconds, builder_rec) =
                            b.finish_with_recovery(gpu, streams)?;
                        recovery.merge(&builder_rec);
                        (runs, agg_seconds)
                    }
                    None => (Vec::new(), 0.0),
                };
                if plan.fragments == FragmentMode::Merge {
                    // Boundary fragments were merged as the batches ran,
                    // so the records are one-per-(trial, node) — the
                    // aggregation may skip its merge sort.
                    raw.mark_grouped();
                }
                Ok(SinkOutput {
                    runs,
                    agg_kernel_seconds: agg_seconds,
                    ..SinkOutput::bare(raw)
                })
            }
            SinkState::HostAggregate(agg) => Ok(SinkOutput {
                graph: Some(agg.finish()),
                ..SinkOutput::bare(empty())
            }),
            SinkState::DeviceAggregate(b) => {
                let (runs, mut agg_seconds, builder_rec) = b.finish_with_recovery(gpu, streams)?;
                recovery.merge(&builder_rec);
                let graph = match plan.components {
                    ComponentsMode::Host => merge_sorted_runs(plan.s, runs),
                    ComponentsMode::Device => {
                        device_invert_or_merge(gpu, plan, runs, recovery, &mut agg_seconds)?
                    }
                };
                Ok(SinkOutput {
                    graph: Some(graph),
                    agg_kernel_seconds: agg_seconds,
                    ..SinkOutput::bare(empty())
                })
            }
            SinkState::Clusters {
                n, edges, records, ..
            } => {
                let k0 = gpu.counters().kernel_seconds;
                let (labels, cc_iterations) =
                    device_components_or_union(gpu, &plan.policy, n, &edges, recovery)?;
                Ok(SinkOutput {
                    clusters: Some(ClusterLabels {
                        labels,
                        records,
                        cc_iterations,
                    }),
                    cc_kernel_seconds: gpu.counters().kernel_seconds - k0,
                    ..SinkOutput::bare(empty())
                })
            }
        }
    }
}

/// Invert device-sorted runs to the pass's shingle graph on the card
/// ([`thrust::invert_sorted_runs`]), degrading to the bit-identical host
/// k-way merge when the kernels cannot run — the same contract as the run
/// builder's flush (`OutOfMemory` always falls back; exhausted transient
/// retries fall back when the policy allows; anything else propagates
/// typed). The inversion's modeled kernel time folds into the
/// aggregation column, the fallback's wall time into recovery.
pub(crate) fn device_invert_or_merge(
    gpu: &Gpu,
    plan: &PassPlan,
    runs: Vec<SortedRun>,
    recovery: &mut RecoveryReport,
    agg_seconds: &mut f64,
) -> Result<ShingleGraph, DeviceError> {
    let k0 = gpu.counters().kernel_seconds;
    let attempt = {
        let slices: Vec<(&[u128], &[u32])> = runs
            .iter()
            .map(|r| (r.packed.as_slice(), r.elements.as_slice()))
            .collect();
        retry_transient(&plan.policy, recovery, || {
            thrust::invert_sorted_runs(gpu, plan.s, &slices)
        })
    };
    *agg_seconds += gpu.counters().kernel_seconds - k0;
    match attempt {
        Ok(inv) => Ok(ShingleGraph::from_parts(
            plan.s,
            inv.keys,
            inv.elements,
            inv.gen_offsets,
            inv.generators,
        )),
        Err(e) if matches!(e, DeviceError::OutOfMemory { .. }) || plan.policy.degrade_to_host => {
            // Same (key, node, emission-index) total order on the host;
            // only the time moves columns.
            recovery.host_fallbacks += 1;
            let t0 = Instant::now();
            let graph = merge_sorted_runs(plan.s, runs);
            recovery.recovery_seconds += t0.elapsed().as_secs_f64();
            Ok(graph)
        }
        Err(e) => Err(e),
    }
}

/// Label the collected Phase-III union edges on the device
/// ([`thrust::connected_components`]), degrading to the host union–find
/// fold of the same edges when the kernels cannot run. Returns the
/// per-vertex labels and the sweep count (0 on the fallback path and for
/// edgeless inputs). The device labels are component minima, the fallback
/// labels union–find densities — partition-equal either way.
pub(crate) fn device_components_or_union(
    gpu: &Gpu,
    policy: &crate::params::FaultPolicy,
    n: usize,
    edges: &[u64],
    recovery: &mut RecoveryReport,
) -> Result<(Vec<u32>, usize), DeviceError> {
    if edges.is_empty() {
        // Edgeless labeling is the identity; skip the launches entirely.
        return Ok(((0..n as u32).collect(), 0));
    }
    let attempt = retry_transient(policy, recovery, || {
        let dev = gpu.htod(edges)?;
        thrust::connected_components(gpu, n, &dev)
    });
    match attempt {
        Ok(cc) => Ok((cc.labels, cc.iterations)),
        Err(e) if matches!(e, DeviceError::OutOfMemory { .. }) || policy.degrade_to_host => {
            recovery.host_fallbacks += 1;
            let t0 = Instant::now();
            let mut uf = UnionFind::new(n);
            for &e in edges {
                uf.union((e >> 32) as u32, (e & 0xFFFF_FFFF) as u32);
            }
            let (labels, _) = uf.labels();
            recovery.recovery_seconds += t0.elapsed().as_secs_f64();
            Ok((labels, 0))
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::aggregate;
    use crate::params::ShinglingParams;
    use crate::plan::Plan;
    use crate::serial::shingle_pass;
    use gpclust_gpu::DeviceConfig;
    use gpclust_graph::generate::{planted_partition, PlantedConfig};
    use gpclust_graph::Csr;

    const KERNELS: [ShingleKernel; 2] = [ShingleKernel::SortCompact, ShingleKernel::FusedSelect];

    fn planted_graph(seed: u64) -> Csr {
        planted_partition(&PlantedConfig {
            group_sizes: vec![30, 20, 25],
            n_noise_vertices: 10,
            p_intra: 0.7,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed,
        })
        .graph
    }

    fn batching_graph(seed: u64) -> Csr {
        // ~8k edges → ~16k adjacency elements, several times the tiny
        // device's batch capacity under either kernel.
        planted_partition(&PlantedConfig {
            group_sizes: vec![120, 100, 80],
            n_noise_vertices: 20,
            p_intra: 0.5,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed,
        })
        .graph
    }

    /// Lower a pass plan for tests: device-derived capacity unless forced.
    fn pass_plan(
        gpu: &Gpu,
        s: usize,
        kernel: ShingleKernel,
        mode: PipelineMode,
        aggregation: AggregationMode,
        capacity: Option<usize>,
        input: &impl AdjacencyInput,
    ) -> PassPlan {
        let params = ShinglingParams::light(0)
            .with_kernel(kernel)
            .with_mode(mode)
            .with_aggregation(aggregation);
        let plan = Plan::lower(&params, std::slice::from_ref(gpu)).unwrap();
        plan.pass(
            s,
            aggregation,
            capacity.unwrap_or(plan.capacity),
            input.offsets(),
        )
    }

    /// One gathered pass through the executor.
    #[allow(clippy::too_many_arguments)]
    fn gather(
        gpu: &Gpu,
        g: &impl AdjacencyInput,
        s: usize,
        family: &HashFamily,
        kernel: ShingleKernel,
        mode: PipelineMode,
        aggregation: AggregationMode,
        capacity: Option<usize>,
    ) -> PassReport {
        let pass = pass_plan(gpu, s, kernel, mode, aggregation, capacity, g);
        Executor::new(gpu)
            .run(
                &pass,
                PassInput::of(g),
                family,
                &mut RecoveryReport::default(),
                Sink::Gather,
            )
            .unwrap()
    }

    fn sync_host(
        gpu: &Gpu,
        g: &impl AdjacencyInput,
        s: usize,
        family: &HashFamily,
        kernel: ShingleKernel,
        capacity: Option<usize>,
    ) -> PassReport {
        gather(
            gpu,
            g,
            s,
            family,
            kernel,
            PipelineMode::Synchronous,
            AggregationMode::Host,
            capacity,
        )
    }

    /// The executor must aggregate to exactly the serial pass's result —
    /// under both kernels.
    #[test]
    fn matches_serial_oracle_single_batch() {
        let g = planted_graph(1);
        let family = HashFamily::new(25, 9);
        let serial = aggregate(&shingle_pass(&g, 2, &family));
        for kernel in KERNELS {
            let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 3);
            let device = aggregate(&sync_host(&gpu, &g, 2, &family, kernel, None).raw);
            assert_eq!(serial, device, "{kernel:?}");
        }
    }

    /// The tiny device (64 KiB) forces many batches and split lists; the
    /// merged result must still equal the serial oracle — under both
    /// kernels.
    #[test]
    fn matches_serial_oracle_with_forced_batching() {
        let g = batching_graph(2);
        let family = HashFamily::new(12, 4);
        let serial = aggregate(&shingle_pass(&g, 2, &family));
        for kernel in KERNELS {
            let gpu = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
            let device = aggregate(&sync_host(&gpu, &g, 2, &family, kernel, None).raw);
            assert_eq!(serial, device, "{kernel:?}");
            assert!(
                gpu.counters().h2d_transfers > 1,
                "tiny device must have batched ({kernel:?})"
            );
        }
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let g = planted_graph(3);
        let family = HashFamily::new(8, 5);
        for kernel in KERNELS {
            let mut results = Vec::new();
            for workers in [1usize, 4] {
                let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), workers);
                results.push(aggregate(
                    &sync_host(&gpu, &g, 3, &family, kernel, None).raw,
                ));
            }
            assert_eq!(results[0], results[1], "{kernel:?}");
        }
    }

    #[test]
    fn per_trial_d2h_traffic() {
        let g = planted_graph(4);
        let c = 10;
        let family = HashFamily::new(c, 6);
        for kernel in KERNELS {
            let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
            sync_host(&gpu, &g, 2, &family, kernel, None);
            let snap = gpu.counters();
            // One D2H per trial per batch (single batch here).
            assert_eq!(snap.d2h_transfers, c as u64, "{kernel:?}");
            assert_eq!(snap.h2d_transfers, 1, "{kernel:?}");
            assert!(snap.d2h_seconds > 0.0, "{kernel:?}");
        }
    }

    #[test]
    fn s_larger_than_all_degrees_yields_nothing() {
        let g = planted_graph(5);
        let family = HashFamily::new(5, 7);
        for kernel in KERNELS {
            let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
            let report = sync_host(&gpu, &g, 10_000, &family, kernel, None);
            assert!(aggregate(&report.raw).is_empty(), "{kernel:?}");
        }
    }

    #[test]
    fn empty_graph_no_records() {
        let mut el = gpclust_graph::EdgeList::new();
        let g = Csr::from_edges(5, &mut el);
        let family = HashFamily::new(3, 8);
        for kernel in KERNELS {
            let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
            let report = sync_host(&gpu, &g, 2, &family, kernel, None);
            assert!(report.raw.is_empty(), "{kernel:?}");
        }
    }

    /// The overlapped pipeline must produce bit-identical records — same
    /// values, same emission order — on both the one-batch K20 and the
    /// tiny device that forces multi-batch double buffering, under both
    /// kernels.
    #[test]
    fn overlapped_bit_identical_to_synchronous() {
        let g = batching_graph(11);
        let family = HashFamily::new(12, 4);
        for kernel in KERNELS {
            for config in [DeviceConfig::tesla_k20(), DeviceConfig::tiny_test_device()] {
                let gpu_sync = Gpu::with_workers(config.clone(), 2);
                let gpu_ovl = Gpu::with_workers(config, 2);
                let sync = sync_host(&gpu_sync, &g, 2, &family, kernel, None).raw;
                let ovl = gather(
                    &gpu_ovl,
                    &g,
                    2,
                    &family,
                    kernel,
                    PipelineMode::Overlapped,
                    AggregationMode::Host,
                    None,
                );
                assert_eq!(sync, ovl.raw, "{kernel:?}");
                assert!(ovl.makespan > 0.0);
                // Transfer traffic (counts and bytes) is also identical when
                // no prefetch had to be retried.
                let a = gpu_sync.counters();
                let b = gpu_ovl.counters();
                assert_eq!(a.h2d_bytes, b.h2d_bytes, "{kernel:?}");
                assert_eq!(a.d2h_bytes, b.d2h_bytes, "{kernel:?}");
                assert_eq!(a.kernel_launches, b.kernel_launches, "{kernel:?}");
            }
        }
    }

    /// Overlap accounting on the K20: every async transfer lands in the
    /// overlap sub-accounts, and the pipelined makespan beats the
    /// serialized sum while never beating the kernel lower bound.
    #[test]
    fn overlapped_makespan_beats_serialized_path() {
        let g = planted_graph(6);
        let family = HashFamily::new(20, 9);
        for kernel in KERNELS {
            let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
            let makespan = gather(
                &gpu,
                &g,
                2,
                &family,
                kernel,
                PipelineMode::Overlapped,
                AggregationMode::Host,
                None,
            )
            .makespan;
            let snap = gpu.counters();
            let serialized = snap.serialized_device_seconds();
            assert!(
                makespan < serialized,
                "pipelined {makespan} must beat serialized {serialized} ({kernel:?})"
            );
            assert!(
                makespan >= snap.kernel_seconds - 1e-6,
                "pipelined {makespan} cannot beat the kernel-only lower bound ({kernel:?})"
            );
            // All transfers were issued asynchronously.
            assert!(snap.d2h_overlapped_seconds > 0.0);
            assert!((snap.d2h_overlapped_seconds - snap.d2h_seconds).abs() < 1e-9);
            assert!((snap.h2d_overlapped_seconds - snap.h2d_seconds).abs() < 1e-9);
            assert_eq!(snap.blocking_transfer_seconds(), 0.0);
        }
    }

    /// At a shared (forced) capacity the two kernels share a batch plan
    /// and must emit **record-identical streams**, while the fused kernel
    /// does strictly less device work: one launch per (batch, trial)
    /// instead of three, and less modeled kernel time.
    #[test]
    fn fused_select_bit_identical_and_cheaper_at_equal_capacity() {
        let g = batching_graph(7);
        let family = HashFamily::new(10, 3);
        let cap = 1500; // forces several batches with split lists
        let gpu_sort = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let gpu_sel = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let sort = sync_host(
            &gpu_sort,
            &g,
            2,
            &family,
            ShingleKernel::SortCompact,
            Some(cap),
        )
        .raw;
        let sel = sync_host(
            &gpu_sel,
            &g,
            2,
            &family,
            ShingleKernel::FusedSelect,
            Some(cap),
        )
        .raw;
        assert_eq!(sort, sel);
        let a = gpu_sort.counters();
        let b = gpu_sel.counters();
        assert!(
            b.kernel_launches < a.kernel_launches,
            "fused {} vs sort {}",
            b.kernel_launches,
            a.kernel_launches
        );
        assert!(
            b.kernel_seconds < a.kernel_seconds,
            "fused {} s vs sort {} s",
            b.kernel_seconds,
            a.kernel_seconds
        );
        // Transfer traffic is identical under a shared plan.
        assert_eq!(a.h2d_bytes, b.h2d_bytes);
        assert_eq!(a.d2h_bytes, b.d2h_bytes);
    }

    /// With device-derived capacities the fused kernel's halved footprint
    /// plans ~2× larger batches: fewer batches, fewer H2D invocations.
    #[test]
    fn fused_select_plans_larger_batches() {
        let g = batching_graph(8);
        let family = HashFamily::new(6, 2);
        let gpu_sort = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
        let gpu_sel = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
        let sort = sync_host(&gpu_sort, &g, 2, &family, ShingleKernel::SortCompact, None);
        let sel = sync_host(&gpu_sel, &g, 2, &family, ShingleKernel::FusedSelect, None);
        assert_eq!(sort.raw.len(), sel.raw.len());
        // Halved footprint → ~2× capacity (±1 from integer division).
        assert!(sel.stats.capacity_elems >= 2 * sort.stats.capacity_elems - 1);
        assert!(
            sel.stats.n_batches < sort.stats.n_batches,
            "select {} batches vs sort {}",
            sel.stats.n_batches,
            sort.stats.n_batches
        );
        assert!(gpu_sel.counters().h2d_transfers < gpu_sort.counters().h2d_transfers);
        assert_eq!(sel.stats.elem_footprint_bytes, 8);
        assert_eq!(sort.stats.elem_footprint_bytes, 16);
    }

    /// BatchStats reflect the actual plan on an unconstrained device.
    #[test]
    fn batch_stats_single_batch_on_k20() {
        let g = planted_graph(9);
        let family = HashFamily::new(4, 1);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let stats = sync_host(&gpu, &g, 2, &family, ShingleKernel::SortCompact, None).stats;
        assert_eq!(stats.n_batches, 1);
        assert_eq!(stats.max_batch_elems, g.flat().len() as u64);
        assert!(stats.capacity_elems >= stats.max_batch_elems);
    }

    /// Device-aggregated runs, merged, must equal the host-aggregated
    /// oracle — under both kernels, on the one-batch K20.
    #[test]
    fn device_agg_matches_host_oracle_single_batch() {
        let g = planted_graph(12);
        let family = HashFamily::new(20, 5);
        for kernel in KERNELS {
            let gpu_host = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
            let host = aggregate(&sync_host(&gpu_host, &g, 2, &family, kernel, None).raw);
            let gpu_dev = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
            let dev = gather(
                &gpu_dev,
                &g,
                2,
                &family,
                kernel,
                PipelineMode::Synchronous,
                AggregationMode::Device,
                None,
            );
            assert!(dev.agg_kernel_seconds > 0.0, "{kernel:?}");
            assert!(dev.raw.is_empty(), "no fragments on a merged pass");
            assert_eq!(host, merge_sorted_runs(2, dev.runs), "{kernel:?}");
        }
    }

    /// The tiny device forces many batches → many runs (one per batch
    /// flush, possibly more from the capacity trigger); the k-way merge
    /// must still reproduce the host oracle exactly, under both kernels
    /// and both schedules.
    #[test]
    fn device_agg_matches_host_oracle_with_forced_batching() {
        let g = batching_graph(13);
        let family = HashFamily::new(12, 4);
        for kernel in KERNELS {
            let gpu_host = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
            let host = aggregate(&sync_host(&gpu_host, &g, 2, &family, kernel, None).raw);

            let gpu_sync = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
            let dev = gather(
                &gpu_sync,
                &g,
                2,
                &family,
                kernel,
                PipelineMode::Synchronous,
                AggregationMode::Device,
                None,
            );
            assert!(dev.stats.n_batches > 1, "{kernel:?}");
            assert!(dev.runs.len() > 1, "{kernel:?}");
            assert_eq!(host, merge_sorted_runs(2, dev.runs), "{kernel:?}");

            let gpu_ovl = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
            let ovl = gather(
                &gpu_ovl,
                &g,
                2,
                &family,
                kernel,
                PipelineMode::Overlapped,
                AggregationMode::Device,
                None,
            );
            assert!(ovl.makespan > 0.0 && ovl.agg_kernel_seconds >= 0.0);
            assert_eq!(
                host,
                merge_sorted_runs(2, ovl.runs),
                "{kernel:?} overlapped"
            );
        }
    }

    /// Under a shared forced capacity the record streams are identical
    /// across modes, so the concatenated device runs must hold exactly the
    /// host-mode records (same count), each run ascending in the full
    /// 128-bit record with run-local low bits.
    #[test]
    fn device_runs_are_sorted_contiguous_slices_of_the_emission_stream() {
        let g = batching_graph(14);
        let family = HashFamily::new(8, 6);
        let cap = 1200;
        let kernel = ShingleKernel::SortCompact;
        let gpu_host = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let n_host = sync_host(&gpu_host, &g, 2, &family, kernel, Some(cap))
            .raw
            .len();
        let gpu_dev = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let runs = gather(
            &gpu_dev,
            &g,
            2,
            &family,
            kernel,
            PipelineMode::Synchronous,
            AggregationMode::Device,
            Some(cap),
        )
        .runs;
        assert_eq!(runs.iter().map(|r| r.len()).sum::<usize>(), n_host);
        for run in &runs {
            assert!(run.packed.windows(2).all(|w| w[0] < w[1]), "run ascending");
            assert_eq!(run.elements.len(), run.len() * 2);
            for (i, &p) in run.packed.iter().enumerate() {
                assert!(((p & 0xFFFF_FFFF) as usize) < run.len(), "local idx {i}");
            }
        }
    }

    /// The device-aggregation flush charges its pack + radix-sort kernels
    /// to the device counters, and the overlapped schedule's makespan
    /// stays within the serialized bound.
    #[test]
    fn device_agg_charges_kernels_and_overlap_accounting_holds() {
        let g = planted_graph(15);
        let family = HashFamily::new(16, 7);
        let kernel = ShingleKernel::FusedSelect;
        let gpu_host = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        sync_host(&gpu_host, &g, 2, &family, kernel, None);
        let gpu_dev = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let dev = gather(
            &gpu_dev,
            &g,
            2,
            &family,
            kernel,
            PipelineMode::Overlapped,
            AggregationMode::Device,
            None,
        );
        let host_snap = gpu_host.counters();
        let dev_snap = gpu_dev.counters();
        assert!(
            dev_snap.kernel_seconds > host_snap.kernel_seconds,
            "aggregation kernels must add device time"
        );
        assert!(
            (dev_snap.kernel_seconds - host_snap.kernel_seconds) >= dev.agg_kernel_seconds * 0.5,
            "reported agg seconds {} should show up in the counters",
            dev.agg_kernel_seconds
        );
        assert!(dev.makespan < dev_snap.serialized_device_seconds());
        assert!(dev.makespan >= dev_snap.kernel_seconds - 1e-6);
    }

    /// `Sink::Aggregate` must equal gathering + host-sorting by hand, for
    /// both aggregation modes (one executor call vs. the two-step oracle).
    #[test]
    fn aggregate_sink_matches_gather_then_sort() {
        let g = batching_graph(16);
        let family = HashFamily::new(10, 2);
        for aggregation in [AggregationMode::Host, AggregationMode::Device] {
            let gpu_a = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
            let oracle =
                aggregate(&sync_host(&gpu_a, &g, 2, &family, ShingleKernel::SortCompact, None).raw);
            let gpu_b = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
            let pass = pass_plan(
                &gpu_b,
                2,
                ShingleKernel::SortCompact,
                PipelineMode::Synchronous,
                aggregation,
                None,
                &g,
            );
            let report = Executor::new(&gpu_b)
                .run(
                    &pass,
                    PassInput::of(&g),
                    &family,
                    &mut RecoveryReport::default(),
                    Sink::Aggregate,
                )
                .unwrap();
            assert_eq!(oracle, report.graph.unwrap(), "{aggregation:?}");
        }
    }

    /// `ComponentsMode::Device` replaces the host k-way merge of the
    /// device-sorted runs with the on-card inversion — the shingle graph
    /// must come out structurally identical, with no fallback taken and
    /// strictly more modeled aggregation-kernel time. A forced small batch
    /// capacity yields several sorted runs per pass (the tiny test device
    /// would force batching too, but its 64 KiB memory cannot hold the
    /// concatenated runs at finish, so the inversion would OOM-degrade).
    #[test]
    fn device_components_inversion_matches_host_merge() {
        let g = batching_graph(19);
        let family = HashFamily::new(12, 4);
        for kernel in KERNELS {
            let gpu_h = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
            let pass_h = pass_plan(
                &gpu_h,
                2,
                kernel,
                PipelineMode::Synchronous,
                AggregationMode::Device,
                Some(2048),
                &g,
            );
            let oracle = Executor::new(&gpu_h)
                .run(
                    &pass_h,
                    PassInput::of(&g),
                    &family,
                    &mut RecoveryReport::default(),
                    Sink::Aggregate,
                )
                .unwrap();

            let gpu_d = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
            let params = ShinglingParams::light(0)
                .with_kernel(kernel)
                .with_aggregation(AggregationMode::Device)
                .with_components(ComponentsMode::Device);
            let plan = Plan::lower(&params, std::slice::from_ref(&gpu_d)).unwrap();
            let pass_d = plan.pass(2, AggregationMode::Device, 2048, g.offsets());
            let mut rec = RecoveryReport::default();
            let dev = Executor::new(&gpu_d)
                .run(
                    &pass_d,
                    PassInput::of(&g),
                    &family,
                    &mut rec,
                    Sink::Aggregate,
                )
                .unwrap();
            assert_eq!(oracle.graph, dev.graph, "{kernel:?}");
            assert_eq!(rec.host_fallbacks, 0, "{kernel:?}");
            assert!(
                dev.agg_kernel_seconds > oracle.agg_kernel_seconds,
                "{kernel:?}: inversion must add modeled kernel time"
            );
        }
    }

    /// The Clusters sink must reproduce the streamed union–find partition
    /// exactly: same record count, and labels that canonicalize to the
    /// identical [`gpclust_graph::Partition`].
    #[test]
    fn clusters_sink_matches_streamed_union_find_partition() {
        use gpclust_graph::Partition;
        let g = planted_graph(18);
        let family1 = HashFamily::new(10, 3);
        let family2 = HashFamily::new(8, 11);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let first = {
            let pass = pass_plan(
                &gpu,
                2,
                ShingleKernel::SortCompact,
                PipelineMode::Synchronous,
                AggregationMode::Host,
                None,
                &g,
            );
            Executor::new(&gpu)
                .run(
                    &pass,
                    PassInput::of(&g),
                    &family1,
                    &mut RecoveryReport::default(),
                    Sink::Aggregate,
                )
                .unwrap()
                .graph
                .unwrap()
        };
        let pass2 = pass_plan(
            &gpu,
            2,
            ShingleKernel::SortCompact,
            PipelineMode::Synchronous,
            AggregationMode::Host,
            None,
            &first,
        );

        // Host oracle: stream pass II into the union–find.
        let mut uf = UnionFind::new(g.n());
        let mut n_records = 0u64;
        {
            let mut union_record = |_trial: u32, node: u32, pairs: &[u64]| {
                n_records += 1;
                report::union_second_level_record(
                    &mut uf,
                    &first,
                    node,
                    pairs.iter().map(|&p| unpack_element(p)),
                );
            };
            Executor::new(&gpu)
                .run(
                    &pass2,
                    PassInput::of(&first),
                    &family2,
                    &mut RecoveryReport::default(),
                    Sink::Stream(&mut union_record),
                )
                .unwrap();
        }
        let oracle = Partition::from_union_find(&mut uf);

        // Device: the same record stream through the Clusters sink.
        let mut rec = RecoveryReport::default();
        let report = Executor::new(&gpu)
            .run(
                &pass2,
                PassInput::of(&first),
                &family2,
                &mut rec,
                Sink::Clusters {
                    first: &first,
                    n: g.n(),
                },
            )
            .unwrap();
        let clusters = report.clusters.unwrap();
        assert!(clusters.records > 0, "pass II must emit records");
        assert_eq!(clusters.records, n_records);
        assert_eq!(clusters.labels.len(), g.n());
        assert_eq!(Partition::from_labels(&clusters.labels), oracle);
        assert_eq!(rec.host_fallbacks, 0);
        if oracle.n_groups() < g.n() {
            assert!(clusters.cc_iterations >= 1);
            assert!(report.cc_kernel_seconds > 0.0);
        }
    }

    /// When every kernel launch fails, the inversion exhausts its retries
    /// and must degrade to the bit-identical host k-way merge, counted as
    /// a host fallback.
    #[test]
    fn inversion_faults_degrade_to_bit_identical_host_merge() {
        use gpclust_gpu::{FaultKind, FaultPlan, FaultSite};
        let g = batching_graph(20);
        let family = HashFamily::new(10, 5);
        let runs_of = |gpu: &Gpu| {
            let pass = pass_plan(
                gpu,
                2,
                ShingleKernel::SortCompact,
                PipelineMode::Synchronous,
                AggregationMode::Device,
                Some(2048),
                &g,
            );
            (
                Executor::new(gpu)
                    .run(
                        &pass,
                        PassInput::of(&g),
                        &family,
                        &mut RecoveryReport::default(),
                        Sink::Gather,
                    )
                    .unwrap()
                    .runs,
                pass,
            )
        };
        let (oracle_runs, _) = runs_of(&Gpu::with_workers(DeviceConfig::tesla_k20(), 2));
        let oracle = merge_sorted_runs(2, oracle_runs);
        let clean = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let (runs, pass) = runs_of(&clean);

        let faulty = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let mut fp = FaultPlan::scheduled();
        for occ in 1..=64 {
            fp = fp.with_fault(FaultSite::Kernel, occ, FaultKind::LaunchFailed);
        }
        faulty.set_fault_plan(fp);
        let mut rec = RecoveryReport::default();
        let mut agg = 0.0;
        let graph = device_invert_or_merge(&faulty, &pass, runs, &mut rec, &mut agg).unwrap();
        assert_eq!(graph, oracle);
        assert_eq!(rec.host_fallbacks, 1);
        assert!(rec.retries > 0);
    }

    /// Components faults: degrade to the host union–find fold of the same
    /// edges under the default policy, surface typed under a strict one;
    /// an empty edge list short-circuits to the identity labeling.
    #[test]
    fn components_faults_degrade_to_host_union_find() {
        use gpclust_gpu::{FaultKind, FaultPlan, FaultSite};
        let n = 40usize;
        let edges: Vec<u64> = (0..n as u64 - 1).map(|v| (v << 32) | (v + 1)).collect();
        let all_kernels_fail = || {
            let mut fp = FaultPlan::scheduled();
            for occ in 1..=64 {
                fp = fp.with_fault(FaultSite::Kernel, occ, FaultKind::LaunchFailed);
            }
            fp
        };

        let faulty = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        faulty.set_fault_plan(all_kernels_fail());
        let mut rec = RecoveryReport::default();
        let policy = crate::params::FaultPolicy::default();
        let (labels, iters) =
            device_components_or_union(&faulty, &policy, n, &edges, &mut rec).unwrap();
        assert_eq!(iters, 0, "fallback reports no sweeps");
        assert!(
            labels.iter().all(|&l| l == labels[0]),
            "the path graph is one component"
        );
        assert_eq!(rec.host_fallbacks, 1);
        assert!(rec.retries > 0);

        let strict = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        strict.set_fault_plan(all_kernels_fail());
        let mut rec = RecoveryReport::default();
        let err = device_components_or_union(
            &strict,
            &crate::params::FaultPolicy::strict(),
            n,
            &edges,
            &mut rec,
        )
        .unwrap_err();
        assert!(err.is_transient());
        assert_eq!(rec.host_fallbacks, 0);

        let clean = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
        let mut rec = RecoveryReport::default();
        let (labels, iters) =
            device_components_or_union(&clean, &policy, 5, &[], &mut rec).unwrap();
        assert_eq!(labels, vec![0, 1, 2, 3, 4]);
        assert_eq!(iters, 0);
        assert_eq!(clean.counters().kernel_launches, 0);
    }

    /// A deferred sub-plan covering every batch emits fragment-flagged,
    /// unmerged records whose generic aggregation still equals the oracle
    /// — the single-executor contract `multi_gpu` builds on.
    #[test]
    fn deferred_subplan_reconciles_through_generic_aggregation() {
        let g = batching_graph(17);
        let family = HashFamily::new(9, 3);
        let serial = aggregate(&shingle_pass(&g, 2, &family));
        let gpu = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
        let pass = pass_plan(
            &gpu,
            2,
            ShingleKernel::SortCompact,
            PipelineMode::Synchronous,
            AggregationMode::Host,
            None,
            &g,
        );
        let n_batches = pass.batches.len();
        let sub = pass.subplan((0..n_batches).collect());
        let report = Executor::new(&gpu)
            .run(
                &sub,
                PassInput::of(&g),
                &family,
                &mut RecoveryReport::default(),
                Sink::Gather,
            )
            .unwrap();
        assert!(report.unfinished.is_none());
        assert!(!report.raw.is_grouped(), "deferred records are unmerged");
        assert_eq!(serial, aggregate(&report.raw));
    }
}
