//! Phase III — reporting dense subgraphs from the second-level shingle
//! graph.
//!
//! Both variants the paper describes are implemented:
//!
//! * [`partition_clusters`] — the union–find variant the paper adopts:
//!   every vertex starts in its own cluster; for each connected component
//!   of G″ the vertices constituting its first- and second-level shingles
//!   are unioned. The result is a strict partition (no overlaps).
//! * [`overlap_clusters`] — the alternative: enumerate connected components
//!   of G″ over first-level shingle nodes and report, per component, the
//!   union of the member shingles' element vertices. The same vertex may
//!   appear in several clusters.
//!
//! In both, connectivity in G″ is induced by second-level shingles: all
//! first-level shingles in `L(t)` of a second-level shingle `t` are
//! connected through `t`.
//!
//! For device-resident Phase III ([`crate::params::ComponentsMode::Device`])
//! the union operands are instead *materialized* as a packed edge list
//! ([`record_union_edges`] / [`partition_union_edges`]) and handed to the
//! GPU pointer-jumping connected-components kernel; union–find order
//! independence makes that path provably partition-equal to the streamed
//! one.

use gpclust_graph::{Partition, ShingleGraph, UnionFind, VertexId};

/// Stream one second-level shingling record into the union–find.
///
/// Partition-mode Phase III never needs G″ materialized: records carrying
/// the *same* second-level shingle carry the *same* element vertices, so
/// unioning each record's `{elements(t)} ∪ {elements(F)}` independently
/// links all of t's generators transitively through `elements(t)` — the
/// identical final partition, with zero pass-II storage. Union–find order
/// independence makes the streaming and materialized variants provably
/// equal (and tests assert it).
pub fn union_second_level_record(
    uf: &mut UnionFind,
    first: &ShingleGraph,
    generator: u32,
    second_elements: impl IntoIterator<Item = VertexId>,
) {
    let mut anchor: Option<VertexId> = None;
    let mut link = |v: VertexId, uf: &mut UnionFind| match anchor {
        Some(a) => {
            uf.union(a, v);
        }
        None => anchor = Some(v),
    };
    for v in second_elements {
        link(v, uf);
    }
    for &v in first.elements(generator as usize) {
        link(v, uf);
    }
}

/// Emit one second-level record's union operands as packed `(anchor, v)`
/// edges — exactly the pairs [`union_second_level_record`] unions, encoded
/// `(anchor << 32) | v` for the device connected-components kernel.
///
/// Folding the emitted edges into a `UnionFind` (or labeling them with the
/// pointer-jumping kernel) therefore yields the identical partition the
/// streamed union–find produces.
pub fn record_union_edges(
    first: &ShingleGraph,
    generator: u32,
    second_elements: impl IntoIterator<Item = VertexId>,
    edges: &mut Vec<u64>,
) {
    let mut anchor: Option<VertexId> = None;
    let mut link = |v: VertexId, edges: &mut Vec<u64>| match anchor {
        Some(a) => edges.push(((a as u64) << 32) | v as u64),
        None => anchor = Some(v),
    };
    for v in second_elements {
        link(v, edges);
    }
    for &v in first.elements(generator as usize) {
        link(v, edges);
    }
}

/// Materialize the full Phase-III union-edge list from an aggregated
/// second-level graph: one [`record_union_edges`] call per
/// (second-level shingle, generator) pair — the same record set pass II
/// streams, so component-labeling these edges reproduces
/// [`partition_clusters`] exactly.
pub fn partition_union_edges(first: &ShingleGraph, second: &ShingleGraph) -> Vec<u64> {
    let mut edges = Vec::new();
    for (_, _, elements, generators) in second.iter() {
        for &f in generators {
            record_union_edges(first, f, elements.iter().copied(), &mut edges);
        }
    }
    edges
}

/// Union–find reporting (the paper's choice). `n` is |V| of the input
/// graph; `first` and `second` are the two aggregated shingle graphs.
pub fn partition_clusters(n: usize, first: &ShingleGraph, second: &ShingleGraph) -> Partition {
    let mut uf = UnionFind::new(n);
    for (_, _, elements, generators) in second.iter() {
        // Union, transitively via an anchor vertex: the second-level
        // shingle's own element vertices, plus the element vertices of every
        // first-level shingle that generated it.
        let mut anchor: Option<VertexId> = None;
        {
            let mut link = |v: VertexId| match anchor {
                Some(a) => {
                    uf.union(a, v);
                }
                None => anchor = Some(v),
            };
            for &v in elements {
                link(v);
            }
            for &f in generators {
                for &v in first.elements(f as usize) {
                    link(v);
                }
            }
        }
    }
    Partition::from_union_find(&mut uf)
}

/// Overlapping reporting: clusters are per-component unions of first-level
/// shingle elements; a vertex may belong to several clusters. Components
/// are over S′1 — only first-level shingles that contributed to at least
/// one second-level shingle.
pub fn overlap_clusters(first: &ShingleGraph, second: &ShingleGraph) -> Vec<Vec<VertexId>> {
    let mut uf = UnionFind::new(first.len());
    let mut in_g2 = vec![false; first.len()];
    for (_, _, _, generators) in second.iter() {
        let mut anchor: Option<u32> = None;
        for &f in generators {
            in_g2[f as usize] = true;
            match anchor {
                Some(a) => {
                    uf.union(a, f);
                }
                None => anchor = Some(f),
            }
        }
    }
    // Group member shingles per component root, then expand to vertices.
    let mut groups: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for f in 0..first.len() as u32 {
        if in_g2[f as usize] {
            groups.entry(uf.find(f)).or_default().push(f);
        }
    }
    let mut clusters: Vec<Vec<VertexId>> = groups
        .into_values()
        .map(|shingles| {
            let mut members: Vec<VertexId> = shingles
                .iter()
                .flat_map(|&f| first.elements(f as usize).iter().copied())
                .collect();
            members.sort_unstable();
            members.dedup();
            members
        })
        .collect();
    clusters.sort();
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    /// first: three shingles over vertices; second: one shingle linking
    /// first-shingles 0 and 1 (shingle 2 is outside G″).
    fn graphs() -> (ShingleGraph, ShingleGraph) {
        let first = ShingleGraph::from_records(
            2,
            vec![
                (10u64, &[0u32, 1][..], &[2u32, 3][..]),
                (20, &[1, 4], &[5][..]),
                (30, &[7, 8], &[9][..]),
            ],
        );
        // One second-level shingle: elements {2,5} (pass-I generators),
        // generated by first-level shingles 0 and 1.
        let second = ShingleGraph::from_records(2, vec![(99u64, &[2u32, 5][..], &[0u32, 1][..])]);
        (first, second)
    }

    #[test]
    fn partition_unions_first_and_second_level_elements() {
        let (first, second) = graphs();
        let p = partition_clusters(10, &first, &second);
        // Expected union: elements of second {2,5} + elements of first 0
        // {0,1} + elements of first 1 {1,4} → {0,1,2,4,5}.
        let g = p.group_of(0).unwrap();
        for v in [1u32, 2, 4, 5] {
            assert_eq!(p.group_of(v), Some(g), "vertex {v}");
        }
        // Vertices 7, 8 (shingle 2, outside G″) stay singletons.
        assert_ne!(p.group_of(7), Some(g));
        assert_ne!(p.group_of(7), p.group_of(8));
        // The big cluster plus 5 singletons: 3,6,7,8,9.
        assert_eq!(p.n_groups(), 6);
    }

    #[test]
    fn union_edges_reproduce_partition_clusters() {
        let (first, second) = graphs();
        let edges = partition_union_edges(&first, &second);
        assert!(!edges.is_empty());
        let mut uf = UnionFind::new(10);
        for &e in &edges {
            uf.union((e >> 32) as u32, (e & 0xFFFF_FFFF) as u32);
        }
        assert_eq!(
            Partition::from_union_find(&mut uf),
            partition_clusters(10, &first, &second)
        );
        // The per-record streaming form emits the same edge list.
        let mut streamed = Vec::new();
        for (_, _, elements, generators) in second.iter() {
            for &f in generators {
                record_union_edges(&first, f, elements.iter().copied(), &mut streamed);
            }
        }
        assert_eq!(streamed, edges);
    }

    #[test]
    fn overlap_reports_only_g2_members() {
        let (first, second) = graphs();
        let clusters = overlap_clusters(&first, &second);
        assert_eq!(clusters, vec![vec![0, 1, 4]]);
    }

    #[test]
    fn overlap_allows_shared_vertices() {
        // Two disjoint components in G″ whose shingles share vertex 1.
        let first = ShingleGraph::from_records(
            2,
            vec![
                (10u64, &[0u32, 1][..], &[4u32][..]),
                (20, &[1, 2], &[5][..]),
            ],
        );
        let second = ShingleGraph::from_records(
            1,
            vec![(50u64, &[4u32][..], &[0u32][..]), (60, &[5], &[1][..])],
        );
        let clusters = overlap_clusters(&first, &second);
        assert_eq!(clusters, vec![vec![0, 1], vec![1, 2]]);
        // Vertex 1 is in both — the overlap the partition variant forbids.
    }

    #[test]
    fn partition_with_empty_second_graph_is_all_singletons() {
        let first = ShingleGraph::from_records(2, vec![(10u64, &[0u32, 1][..], &[2u32][..])]);
        let second = ShingleGraph::from_records(2, std::iter::empty());
        let p = partition_clusters(5, &first, &second);
        assert_eq!(p.n_groups(), 5);
    }

    #[test]
    fn transitive_linking_across_second_level_shingles() {
        // Two second-level shingles sharing first-level shingle 1 must
        // merge everything into one cluster.
        let first = ShingleGraph::from_records(
            1,
            vec![
                (10u64, &[0u32][..], &[10u32][..]),
                (20, &[1], &[11][..]),
                (30, &[2], &[12][..]),
            ],
        );
        let second = ShingleGraph::from_records(
            1,
            vec![
                (70u64, &[10u32][..], &[0u32, 1][..]),
                (80, &[11], &[1, 2][..]),
            ],
        );
        let p = partition_clusters(13, &first, &second);
        let g = p.group_of(0).unwrap();
        for v in [1u32, 2, 10, 11] {
            assert_eq!(p.group_of(v), Some(g), "vertex {v}");
        }
    }
}
