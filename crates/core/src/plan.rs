//! The execution-plan IR: lowering [`ShinglingParams`] and device
//! statistics into an explicit, inspectable description of how a
//! shingling pass will run.
//!
//! Five orthogonal schedule axes have accumulated — [`PipelineMode`]
//! (serialized vs. double-buffered streams), [`ShingleKernel`]
//! (sort-compact vs. fused-select top-s extraction), [`AggregationMode`]
//! (host vs. device record sort), [`ComponentsMode`] (host vs. device
//! inversion merge and Phase-III components) and the [`FaultPolicy`],
//! times 1–N devices. Instead of one entry point per combination, the pipeline
//! lowers its configuration once into a [`Plan`] (the run-level axes plus
//! the capacity model's verdict), derives one [`PassPlan`] per shingling
//! pass (the batch list and per-pass sink parameters), and hands it to
//! [`crate::exec::Executor::run`] — the single interpreter for the whole
//! cross-product. Multi-device drivers partition a `PassPlan` into
//! per-device sub-plans ([`PassPlan::subplan`]) and reuse the same
//! executor.
//!
//! ```text
//! params (ShinglingParams)           axes + algorithm parameters
//!    │ lower()                       capacity model (crate::batch)
//!    ▼
//! plan (Plan → PassPlan)             batches, kernel, sink, schedule, policy
//!    │ Executor::run()
//!    ▼
//! exec (crate::exec)                 KernelStrategy × SinkStrategy × StreamSchedule
//!    │ launches / transfers
//!    ▼
//! device (gpclust-gpu)               simulated streams, counters, fault injection
//! ```

#![deny(dead_code)]

use crate::autotune::{self, capability_shares, device_weights, Prediction, WorkloadShape};
use crate::batch::{batch_capacity, plan_batches, Batch, BatchStats};
use crate::params::{
    AggregationMode, ComponentsMode, FaultPolicy, MemoryBudget, PipelineMode, PlanMode,
    ShingleKernel, ShinglingParams,
};
use gpclust_gpu::{DeviceError, Gpu};

/// The run-level execution plan: every schedule axis resolved, the
/// capability-proportional device shares, plus the per-batch element
/// budget the capacity model derived from the smallest *unbenched*
/// surviving device. Lowered once per run (or per pass for multi-device
/// drivers, which must re-assess survivors) via [`Plan::lower`], or
/// chosen by the cost-model argmin via [`Plan::lower_auto`].
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Top-s extraction kernel the device passes launch.
    pub kernel: ShingleKernel,
    /// Transfer/kernel schedule (serialized or double-buffered streams).
    pub mode: PipelineMode,
    /// Where the record sort runs (host inversion or device runs).
    pub aggregation: AggregationMode,
    /// Where the inversion merge and Phase-III components run.
    pub components: ComponentsMode,
    /// Recovery policy wrapped around every device operation.
    pub policy: FaultPolicy,
    /// Host-sort parallelism threshold threaded to the aggregation sinks.
    pub par_sort_min: usize,
    /// Devices the plan was lowered over (all of them, including lost
    /// ones — shares are dealt over survivors at execution time).
    pub n_devices: usize,
    /// Capability-proportional work shares, one per device (lost and
    /// benched devices hold 0; the rest sum to 1). Uniform fleets get
    /// uniform shares — see [`autotune::capability_shares`].
    pub shares: Vec<f64>,
    /// Free bytes of the smallest surviving device *with a nonzero
    /// share* at lowering time (a benched device receives no batches, so
    /// its memory no longer bounds anyone's batch size).
    pub min_device_mem: usize,
    /// Per-batch element budget at the configured kernel/aggregation
    /// ([`batch_capacity`] of `min_device_mem`).
    pub capacity: usize,
    /// The autotuner's cost estimate when this plan was chosen by
    /// [`Plan::lower_auto`] under [`PlanMode::Auto`]; `None` for manual
    /// plans.
    pub predicted: Option<Prediction>,
    /// Host-memory budget for the out-of-core path (resolved from params
    /// and the `GPCLUST_MEM_BUDGET` environment override at lowering
    /// time). Unbounded budgets keep every pass fully resident.
    pub mem_budget: MemoryBudget,
}

impl Plan {
    /// Lower `params` against the fleet: capacity is the
    /// [`batch_capacity`] of the smallest surviving device *holding a
    /// nonzero capability share*, so every batch fits on any device it
    /// may be (re)scheduled to. Under a uniform fleet every survivor
    /// shares alike and this is the smallest survivor, the historical
    /// rule; a device so slow it gets benched ([`autotune::MIN_SHARE`])
    /// also stops bounding the batch size. Typed
    /// [`DeviceError::DeviceLost`] once no device remains.
    pub fn lower(params: &ShinglingParams, gpus: &[Gpu]) -> Result<Plan, DeviceError> {
        let weights = device_weights(gpus, params.kernel, params.c1);
        let shares = capability_shares(&weights);
        let min_device_mem = gpus
            .iter()
            .zip(&shares)
            .filter(|&(g, &s)| !g.is_lost() && s > 0.0)
            .map(|(g, _)| g.mem_available())
            .min()
            .ok_or_else(|| DeviceError::DeviceLost {
                device: gpus.iter().position(|g| g.is_lost()).unwrap_or(0) as u32,
            })?;
        Ok(Plan {
            kernel: params.kernel,
            mode: params.mode,
            aggregation: params.aggregation,
            components: params.components,
            policy: params.fault,
            par_sort_min: params.par_sort_min,
            n_devices: gpus.len(),
            shares,
            min_device_mem,
            capacity: batch_capacity(min_device_mem, params.kernel, params.aggregation),
            predicted: None,
            mem_budget: params.mem_budget.or_env(),
        })
    }

    /// Lower `params` with the schedule axes chosen by the cost model
    /// when [`ShinglingParams::plan`] is [`PlanMode::Auto`]: run
    /// [`autotune::select`] over the axis cross-product (honoring any
    /// axes the user forced explicitly), install the winning axes, and
    /// attach the prediction. Under [`PlanMode::Manual`] this is exactly
    /// [`Plan::lower`].
    ///
    /// Returns the plan *and* the effective parameters (the input with
    /// the chosen axes installed) so drivers derive every downstream
    /// decision from the same axes the plan resolved.
    pub fn lower_auto(
        params: &ShinglingParams,
        gpus: &[Gpu],
        offsets: &[u64],
        n_vertices: usize,
    ) -> Result<(Plan, ShinglingParams), DeviceError> {
        let (plan, effective) = match params.plan {
            PlanMode::Manual => (Plan::lower(params, gpus)?, *params),
            PlanMode::Auto(forced) => {
                let workload = WorkloadShape::from_input(n_vertices, offsets, params);
                let selection =
                    autotune::select(params, forced, &workload, gpus).ok_or_else(|| {
                        DeviceError::DeviceLost {
                            device: gpus.iter().position(|g| g.is_lost()).unwrap_or(0) as u32,
                        }
                    })?;
                let effective = selection.axes.apply(*params);
                let mut plan = Plan::lower(&effective, gpus)?;
                plan.predicted = Some(selection.prediction);
                (plan, effective)
            }
        };
        // A byte budget no shard count can satisfy fails here, up front,
        // with the minimum feasible figure — not as a degenerate
        // one-vertex-per-shard plan grinding through the pass.
        plan.mem_budget
            .validate_feasible(Plan::min_feasible_budget(
                offsets,
                effective.s1,
                effective.c1,
            ))
            .map_err(|e| DeviceError::HostIo {
                detail: e.to_string(),
            })?;
        Ok((plan, effective))
    }

    /// The smallest byte budget any shard carving of this input is
    /// feasible under: the resident working set of the single heaviest
    /// vertex (its flat adjacency plus, if it emits, its per-trial record
    /// buffers — the same per-vertex pricing as
    /// [`Plan::estimate_pass_resident_bytes`]). A budget below this fails
    /// [`MemoryBudget::validate_feasible`] even at one vertex per shard.
    pub fn min_feasible_budget(offsets: &[u64], s: usize, trials: usize) -> u64 {
        offsets
            .windows(2)
            .map(|w| {
                let deg = w[1] - w[0];
                let records = if deg as usize >= s {
                    trials as u64 * (32 + 16 * s as u64)
                } else {
                    0
                };
                4 * deg + records
            })
            .max()
            .unwrap_or(0)
    }

    /// The per-batch element budget this plan's devices afford under
    /// `aggregation` (pass II always aggregates on the host in the
    /// single-device pipeline, so its budget differs from `capacity`
    /// whenever device aggregation is configured).
    pub fn capacity_for(&self, aggregation: AggregationMode) -> usize {
        batch_capacity(self.min_device_mem, self.kernel, aggregation)
    }

    /// One-line human summary of the resolved axes — what the CLI and the
    /// bench tables print instead of ad-hoc per-row batch-plan lines.
    pub fn describe(&self) -> String {
        let kernel = match self.kernel {
            ShingleKernel::SortCompact => "sort-compact",
            ShingleKernel::FusedSelect => "fused-select",
        };
        let schedule = match self.mode {
            PipelineMode::Synchronous => "serialized",
            PipelineMode::Overlapped => "overlapped",
        };
        let sink = match self.aggregation {
            AggregationMode::Host => "host-sort",
            AggregationMode::Device => "device-runs",
        };
        let components = match self.components {
            ComponentsMode::Host => "host-bfs",
            ComponentsMode::Device => "device-cc",
        };
        let base = format!(
            "kernel {kernel} | schedule {schedule} | sink {sink} | components {components} | \
             {} device(s) | {} elems/batch (retries {}, oom-backoff {}, degrade {})",
            self.n_devices,
            self.capacity,
            self.policy.max_retries,
            if self.policy.oom_backoff { "on" } else { "off" },
            if self.policy.degrade_to_host {
                "on"
            } else {
                "off"
            },
        );
        let base = if self.mem_budget.is_unbounded() {
            base
        } else {
            let budget = match (self.mem_budget.bytes, self.mem_budget.shards) {
                (Some(b), _) => format!("{b} B"),
                (None, Some(n)) => format!("{n} shard(s)"),
                (None, None) => unreachable!("bounded budget has bytes or shards"),
            };
            format!("{base} | mem-budget {budget}")
        };
        match &self.predicted {
            Some(p) => format!("plan auto → {base} | predicted {:.4}s", p.seconds),
            None => base,
        }
    }

    /// Estimated peak host-resident bytes of one *fully resident* pass:
    /// the flat adjacency elements plus every trial's record buffers — a
    /// node emits a record per trial whenever its list reaches `s`
    /// elements, and at its residency peak a record is held twice over
    /// (`2 × (16 + 8·s) B`: the gathered raw buffer plus the routed copy
    /// the fragment merge packs from). The budget→shard-count derivation
    /// divides this figure by the budget; it deliberately prices the
    /// dominant buffers only, not allocator slack, so budgets are
    /// working-set bounds rather than RSS bounds.
    pub fn estimate_pass_resident_bytes(offsets: &[u64], s: usize, trials: usize) -> u64 {
        let n_elems = offsets.last().copied().unwrap_or(0) - offsets.first().copied().unwrap_or(0);
        let emitting = offsets
            .windows(2)
            .filter(|w| (w[1] - w[0]) as usize >= s)
            .count() as u64;
        4 * n_elems + emitting * trials as u64 * (32 + 16 * s as u64)
    }

    /// Lower one shingling pass: plan the batches of `offsets` at
    /// `capacity` elements (the [`crate::resilience::with_oom_backoff`]
    /// loop passes progressively smaller capacities on re-plan) and bind
    /// the per-pass sink parameters. Single-device semantics
    /// ([`FragmentMode::Merge`]); call [`PassPlan::subplan`] to carve
    /// per-device shares with deferred fragment handling.
    pub fn pass(
        &self,
        s: usize,
        aggregation: AggregationMode,
        capacity: usize,
        offsets: &[u64],
    ) -> PassPlan {
        let batches = plan_batches(offsets, capacity);
        let stats = BatchStats::from_plan(&batches, capacity, self.kernel, aggregation);
        PassPlan {
            s,
            kernel: self.kernel,
            mode: self.mode,
            aggregation,
            components: self.components,
            policy: self.policy,
            par_sort_min: self.par_sort_min,
            capacity,
            fragments: FragmentMode::Merge,
            batches,
            stats,
            share: None,
        }
    }
}

/// How the executor treats adjacency lists split across batch boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragmentMode {
    /// Single-device semantics: batches run in order, so boundary
    /// fragments merge on the host as each batch's trials arrive (the
    /// carry buffers) and every emitted record is final. Allows the
    /// double-buffered prefetch of batch *k+1* while batch *k* computes.
    Merge,
    /// Multi-device semantics: this executor sees only a share of the
    /// batches, so boundary segments are emitted as fragment-flagged raw
    /// records for the driver to reconcile. Batches commit atomically
    /// (all-or-nothing) so an interrupted share can re-run on a survivor
    /// without duplicating records; errors mid-share report the
    /// unfinished batch ids instead of failing the pass.
    Defer,
}

/// The lowered plan of one shingling pass: everything
/// [`crate::exec::Executor::run`] needs to interpret it.
#[derive(Debug, Clone)]
pub struct PassPlan {
    /// Shingle size (pairs per record).
    pub s: usize,
    /// Top-s extraction kernel.
    pub kernel: ShingleKernel,
    /// Stream schedule.
    pub mode: PipelineMode,
    /// Where this pass's records get sorted.
    pub aggregation: AggregationMode,
    /// Where this pass's inversion merge runs (device aggregation only).
    pub components: ComponentsMode,
    /// Recovery policy for every device op of the pass.
    pub policy: FaultPolicy,
    /// Host-sort parallelism threshold for aggregation sinks.
    pub par_sort_min: usize,
    /// Per-batch element budget the batches were planned at.
    pub capacity: usize,
    /// Boundary-fragment handling (single- vs. multi-device semantics).
    pub fragments: FragmentMode,
    /// The batch list covering the whole input.
    pub batches: Vec<Batch>,
    /// Plan statistics ([`BatchStats::from_plan`] of `batches`).
    pub stats: BatchStats,
    /// Batch indices this executor runs (`None` = all, in order).
    pub share: Option<Vec<usize>>,
}

impl PassPlan {
    /// The sub-plan for one device of a multi-device round: the same
    /// batch list, restricted to `share`, with deferred fragment
    /// handling.
    pub fn subplan(&self, share: Vec<usize>) -> PassPlan {
        PassPlan {
            fragments: FragmentMode::Defer,
            share: Some(share),
            batches: self.batches.clone(),
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpclust_gpu::DeviceConfig;

    #[test]
    fn lower_resolves_axes_and_capacity() {
        let params = ShinglingParams::light(1)
            .with_mode(PipelineMode::Overlapped)
            .with_kernel(ShingleKernel::FusedSelect)
            .with_aggregation(AggregationMode::Device);
        let gpus: Vec<Gpu> = (0..3)
            .map(|_| Gpu::with_workers(DeviceConfig::tesla_k20(), 1))
            .collect();
        let plan = Plan::lower(&params, &gpus).unwrap();
        assert_eq!(plan.n_devices, 3);
        assert_eq!(plan.mode, PipelineMode::Overlapped);
        assert_eq!(
            plan.capacity,
            batch_capacity(
                plan.min_device_mem,
                ShingleKernel::FusedSelect,
                AggregationMode::Device
            )
        );
        // Pass II runs host aggregation: a larger budget from the same
        // memory (no 16 B/elem record-sort reserve).
        assert!(plan.capacity_for(AggregationMode::Host) > plan.capacity);
    }

    #[test]
    fn lower_uses_the_smallest_survivor() {
        let params = ShinglingParams::light(2);
        let gpus = vec![
            Gpu::with_workers(DeviceConfig::tesla_k20(), 1),
            Gpu::with_workers(DeviceConfig::tiny_test_device(), 1),
        ];
        let plan = Plan::lower(&params, &gpus).unwrap();
        let tiny = Plan::lower(&params, &gpus[1..]).unwrap();
        assert_eq!(plan.capacity, tiny.capacity, "smallest device bounds");
        assert!(
            plan.shares[1] > 0.0,
            "the tiny device still earns a share: {:?}",
            plan.shares
        );
    }

    #[test]
    fn lower_gives_uniform_fleets_uniform_shares() {
        let params = ShinglingParams::light(2);
        let gpus: Vec<Gpu> = (0..3)
            .map(|_| Gpu::with_workers(DeviceConfig::tesla_k20(), 1))
            .collect();
        let plan = Plan::lower(&params, &gpus).unwrap();
        for &s in &plan.shares {
            assert!((s - 1.0 / 3.0).abs() < 1e-12, "{:?}", plan.shares);
        }
        // Uniform fleet: the weighted rule degenerates to the historical
        // smallest-survivor capacity.
        assert_eq!(plan.min_device_mem, gpus[0].mem_available());
    }

    #[test]
    fn lower_unbounds_capacity_from_benched_devices() {
        let params = ShinglingParams::light(2);
        // A card ~1000× slower than the K20 falls below MIN_SHARE and is
        // benched: it gets no batches, so its memory must not bound the
        // batch size even though it is the smallest survivor.
        let gpus = vec![
            Gpu::with_workers(DeviceConfig::tesla_k20(), 1),
            Gpu::with_workers(
                DeviceConfig {
                    global_mem_bytes: 64 * 1024,
                    ..DeviceConfig::tesla_k20().scaled("weak", 1e-3)
                },
                1,
            ),
        ];
        let plan = Plan::lower(&params, &gpus).unwrap();
        assert_eq!(plan.shares[1], 0.0, "{:?}", plan.shares);
        let solo = Plan::lower(&params, &gpus[..1]).unwrap();
        assert_eq!(
            plan.capacity, solo.capacity,
            "benched device no longer bounds capacity"
        );
    }

    #[test]
    fn lower_auto_picks_axes_and_attaches_the_prediction() {
        use crate::params::ForcedAxes;
        let gpus = vec![Gpu::with_workers(DeviceConfig::tesla_k20(), 1)];
        let offsets: Vec<u64> = (0..=20_000u64).map(|i| i * 200).collect();
        let manual = ShinglingParams::paper_default(7);
        let (plan, eff) = Plan::lower_auto(&manual, &gpus, &offsets, 20_000).unwrap();
        assert!(plan.predicted.is_none(), "manual mode never predicts");
        assert_eq!(eff, manual);

        let auto = manual.with_plan_auto();
        let (plan, eff) = Plan::lower_auto(&auto, &gpus, &offsets, 20_000).unwrap();
        let p = plan.predicted.expect("auto mode attaches the prediction");
        assert!(p.seconds > 0.0);
        assert_eq!(plan.kernel, eff.kernel);
        assert_eq!(plan.aggregation, eff.aggregation);
        let line = plan.describe();
        assert!(line.starts_with("plan auto → "), "{line}");
        assert!(line.contains("predicted"), "{line}");

        // Forcing every axis reproduces the manual plan's axes, with the
        // prediction still attached.
        let pinned = manual.with_plan(crate::params::PlanMode::Auto(ForcedAxes {
            kernel: true,
            mode: true,
            aggregation: true,
            components: true,
        }));
        let (plan, _) = Plan::lower_auto(&pinned, &gpus, &offsets, 20_000).unwrap();
        assert_eq!(plan.kernel, manual.kernel);
        assert_eq!(plan.mode, manual.mode);
        assert_eq!(plan.aggregation, manual.aggregation);
        assert_eq!(plan.components, manual.components);
        assert!(plan.predicted.is_some());
    }

    #[test]
    fn lower_without_survivors_is_device_lost() {
        use gpclust_gpu::{FaultKind, FaultPlan, FaultSite};
        let gpu = Gpu::with_workers(DeviceConfig::tiny_test_device(), 1);
        gpu.set_fault_plan(
            FaultPlan::scheduled()
                .with_fault(FaultSite::H2D, 1, FaultKind::DeviceLost)
                .with_device(0),
        );
        assert!(gpu.htod(&[1u32]).is_err());
        assert!(gpu.is_lost());
        let err = Plan::lower(&ShinglingParams::light(0), std::slice::from_ref(&gpu)).unwrap_err();
        assert!(matches!(err, DeviceError::DeviceLost { .. }), "{err}");
    }

    #[test]
    fn describe_names_every_axis() {
        let params = ShinglingParams::light(0)
            .with_kernel(ShingleKernel::FusedSelect)
            .with_aggregation(AggregationMode::Device);
        let gpus = vec![Gpu::with_workers(DeviceConfig::tesla_k20(), 1)];
        let line = Plan::lower(&params, &gpus).unwrap().describe();
        assert!(line.contains("fused-select"), "{line}");
        assert!(line.contains("serialized"), "{line}");
        assert!(line.contains("device-runs"), "{line}");
        assert!(line.contains("components host-bfs"), "{line}");
        assert!(line.contains("1 device(s)"), "{line}");
        assert!(line.contains("elems/batch"), "{line}");
        assert!(!line.contains('\n'), "one line: {line}");

        let dev = Plan::lower(&params.with_components(ComponentsMode::Device), &gpus)
            .unwrap()
            .describe();
        assert!(dev.contains("components device-cc"), "{dev}");
    }

    #[test]
    fn lower_resolves_the_memory_budget_and_describe_reports_it() {
        let gpus = vec![Gpu::with_workers(DeviceConfig::tesla_k20(), 1)];
        let plan = Plan::lower(&ShinglingParams::light(1), &gpus).unwrap();
        // The CI out-of-core job exports GPCLUST_MEM_BUDGET, which lower()
        // resolves into this otherwise-unbounded plan.
        if std::env::var_os("GPCLUST_MEM_BUDGET").is_none() {
            assert!(plan.mem_budget.is_unbounded());
            assert!(!plan.describe().contains("mem-budget"));
        }

        let budgeted = ShinglingParams::light(1).with_mem_budget(1 << 20);
        let plan = Plan::lower(&budgeted, &gpus).unwrap();
        assert_eq!(plan.mem_budget.bytes, Some(1 << 20));
        assert!(
            plan.describe().contains("mem-budget 1048576 B"),
            "{}",
            plan.describe()
        );

        let sharded = ShinglingParams::light(1).with_shards(4);
        let plan = Plan::lower(&sharded, &gpus).unwrap();
        assert!(
            plan.describe().contains("mem-budget 4 shard(s)"),
            "{}",
            plan.describe()
        );
    }

    #[test]
    fn pass_footprint_estimate_prices_flat_plus_records() {
        // 4 lists of degrees 3, 1, 5, 0 → 9 elements; with s=2, two lists
        // emit (deg ≥ 2), so trials × 2 records at (32 + 16·2) bytes each
        // (raw + routed forms coexist at the peak).
        let offsets = [0u64, 3, 4, 9, 9];
        let est = Plan::estimate_pass_resident_bytes(&offsets, 2, 10);
        assert_eq!(est, 4 * 9 + 2 * 10 * 64);
        assert_eq!(Plan::estimate_pass_resident_bytes(&[0u64], 2, 10), 0);
        // More shards than the estimate warrants clamp to the batch count.
        let budget = crate::params::MemoryBudget {
            bytes: Some(100),
            shards: None,
        };
        assert_eq!(budget.resolve_shards(est, 3), 3, "clamped to max_shards");
    }

    #[test]
    fn infeasible_byte_budget_is_refused_up_front_naming_the_minimum() {
        let gpus = vec![Gpu::with_workers(DeviceConfig::tesla_k20(), 1)];
        let offsets: Vec<u64> = vec![0, 3, 400, 404];
        let params = ShinglingParams::light(0);
        let min = Plan::min_feasible_budget(&offsets, params.s1, params.c1);
        // The heaviest vertex: 397 elements flat + c1 emitted records.
        assert_eq!(min, 4 * 397 + params.c1 as u64 * (32 + 16 * 2));

        let err =
            Plan::lower_auto(&params.with_mem_budget(min - 1), &gpus, &offsets, 3).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("infeasible"), "{msg}");
        assert!(msg.contains(&min.to_string()), "names the minimum: {msg}");

        // At exactly the minimum (or with an explicit shard count, or
        // unbounded) lowering proceeds.
        assert!(Plan::lower_auto(&params.with_mem_budget(min), &gpus, &offsets, 3).is_ok());
        assert!(Plan::lower_auto(&params.with_shards(2), &gpus, &offsets, 3).is_ok());
        assert!(Plan::lower_auto(&params, &gpus, &offsets, 3).is_ok());
    }

    #[test]
    fn pass_plans_batches_and_subplans_share_them() {
        let params = ShinglingParams::light(3);
        let gpus = vec![Gpu::with_workers(DeviceConfig::tesla_k20(), 1)];
        let plan = Plan::lower(&params, &gpus).unwrap();
        let offsets = [0u64, 3, 3, 8, 10];
        let pass = plan.pass(2, AggregationMode::Host, 4, &offsets);
        assert_eq!(pass.batches.len(), 3);
        assert_eq!(pass.stats.n_batches, 3);
        assert_eq!(pass.fragments, FragmentMode::Merge);
        assert!(pass.share.is_none());
        let sub = pass.subplan(vec![0, 2]);
        assert_eq!(sub.fragments, FragmentMode::Defer);
        assert_eq!(sub.share.as_deref(), Some(&[0usize, 2][..]));
        assert_eq!(sub.batches, pass.batches);
    }
}
