//! The persistent shingle index — Pass I's output as a durable artifact.
//!
//! A [`ShingleIndex`] holds the aggregated first-pass shingle records (the
//! shingle→vertex posting lists, in the canonical sorted-run form of
//! [`crate::aggregate`]) for a whole graph. Min-wise shingles are a pure
//! function of one vertex's adjacency list and the hash seed, so a graph
//! delta invalidates exactly the records of the vertices whose lists it
//! extends: the incremental engine [`retract`]s those vertices, re-runs
//! Pass I over just them, [`merge`]s the fresh records back in, and
//! re-runs the cheap Passes II/III from [`to_graph`] — bit-identical to
//! re-clustering the union graph from scratch (see
//! `tests/incremental_properties.rs`).
//!
//! [`IndexStore`] persists an index snapshot (records + union graph +
//! cached partition) through the same atomic-manifest discipline as
//! [`crate::checkpoint`]: sealed generation-numbered files first, one
//! `index-manifest.json` rename last, so a crash mid-save always leaves
//! the previous generation loadable. Reloads refuse with the *same* typed
//! [`CheckpointError`]s the batch checkpoint uses when the stored axes
//! record or input fingerprint disagrees with the live parameters —
//! a stale index is never silently merged into.
//!
//! [`retract`]: ShingleIndex::retract
//! [`merge`]: ShingleIndex::merge
//! [`to_graph`]: ShingleIndex::to_graph

use crate::aggregate::{merge_runs_to_run, SortedRun, StreamInverter};
use crate::checkpoint::{
    self, axes_record, crc32, esc, CheckpointError, Json, Parser, FINGERPRINT_SAMPLE,
};
use crate::params::{
    AggregationMode, ComponentsMode, ForcedAxes, MemoryBudget, PipelineMode, PlanMode,
    ShingleKernel, ShinglingParams,
};
use crate::spill::{merge_external_to_run, ExternalRun, SpillStats, SpilledRun};
use gpclust_graph::{io as graph_io, Csr, Partition, ShingleGraph, VertexId};
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Manifest file naming the live index generation. Distinct from the
/// batch pipeline's `manifest.json` so an index directory and a run
/// checkpoint can coexist.
pub const INDEX_MANIFEST_FILE: &str = "index-manifest.json";

/// Index manifest schema version.
pub const INDEX_MANIFEST_VERSION: u64 = 1;

/// Sample-bounded fingerprint of a resident CSR — the same
/// [`checkpoint::fingerprint_csr`] the batch checkpoint computes through
/// its shard source, evaluated over the in-memory target array.
pub fn fingerprint_resident(g: &Csr) -> u64 {
    let offsets = g.offsets();
    let targets = g.targets();
    let m2 = *offsets.last().unwrap_or(&0);
    let k = FINGERPRINT_SAMPLE.min(m2) as usize;
    checkpoint::fingerprint_csr(offsets, &targets[..k], &targets[targets.len() - k..])
}

// ---------------------------------------------------------------------------
// The in-memory index
// ---------------------------------------------------------------------------

/// Rewrite a sorted run into the index's canonical representation:
/// local indices ranked sequentially in `(key, node)` order, elements
/// stored in that same order. A [`SortedRun`] is only sorted by its
/// *packed* field; its local indices may still point into emission-order
/// element storage (`fragment_run` ranks before its final sort), so two
/// logically identical runs can differ byte-wise. Normalizing here makes
/// index equality — and the snapshot round-trip — representation-free.
fn normalize_run(s: usize, run: SortedRun) -> SortedRun {
    let sequential = run
        .packed
        .iter()
        .enumerate()
        .all(|(i, &p)| (p & 0xFFFF_FFFF) as usize == i);
    if sequential {
        return run;
    }
    let mut out = SortedRun {
        packed: Vec::with_capacity(run.len()),
        elements: Vec::with_capacity(run.elements.len()),
    };
    for &p in &run.packed {
        let rep = (p & 0xFFFF_FFFF) as usize;
        let idx = out.packed.len() as u128;
        out.packed.push(((p >> 32) << 32) | idx);
        out.elements
            .extend_from_slice(&run.elements[rep * s..(rep + 1) * s]);
    }
    out
}

/// Pass-I shingle records for a whole graph, held as one canonical
/// [`SortedRun`]: ascending `(key, node)` with sequentially re-ranked
/// local indices (see [`normalize_run`]) — the same bytes regardless of
/// how many delta passes built it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShingleIndex {
    s: usize,
    run: SortedRun,
}

impl ShingleIndex {
    /// An empty index for shingle size `s` (Pass I's `s1`).
    pub fn new(s: usize) -> ShingleIndex {
        ShingleIndex {
            s,
            run: SortedRun::default(),
        }
    }

    /// Wrap a sorted run (any representation — normalized on entry).
    pub fn from_run(s: usize, run: SortedRun) -> ShingleIndex {
        debug_assert!(run.packed.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(run.elements.len(), run.len() * s);
        ShingleIndex {
            s,
            run: normalize_run(s, run),
        }
    }

    /// Shingle size the records carry.
    pub fn s(&self) -> usize {
        self.s
    }

    /// Number of posting records.
    pub fn len(&self) -> usize {
        self.run.len()
    }

    /// True if the index holds no records.
    pub fn is_empty(&self) -> bool {
        self.run.is_empty()
    }

    /// The canonical record run (for persistence and cost modeling).
    pub fn run(&self) -> &SortedRun {
        &self.run
    }

    /// Drop every record belonging to a vertex in `touched` (sorted,
    /// deduplicated), re-ranking the survivors sequentially. This is the
    /// invalidation half of a delta pass: the retracted vertices' records
    /// are stale the moment their adjacency lists grow.
    pub fn retract(&mut self, touched: &[VertexId]) {
        debug_assert!(touched.windows(2).all(|w| w[0] < w[1]));
        if touched.is_empty() || self.run.is_empty() {
            return;
        }
        let s = self.s;
        let old = std::mem::take(&mut self.run);
        let mut kept = SortedRun {
            packed: Vec::with_capacity(old.len()),
            elements: Vec::with_capacity(old.elements.len()),
        };
        for &p in &old.packed {
            let node = ((p >> 32) & 0xFFFF_FFFF) as VertexId;
            if touched.binary_search(&node).is_ok() {
                continue;
            }
            let rep = (p & 0xFFFF_FFFF) as usize;
            let idx = kept.packed.len() as u128;
            kept.packed.push(((p >> 32) << 32) | idx);
            kept.elements
                .extend_from_slice(&old.elements[rep * s..(rep + 1) * s]);
        }
        self.run = kept;
    }

    /// Fold a delta pass's fresh records into the index. `fresh` must
    /// cover only vertices previously [`retract`]ed (or never indexed):
    /// the two runs' `(key, node)` sets are then disjoint, the merge
    /// order is unique, and the result is byte-for-byte the run a
    /// from-scratch Pass I over the union graph would aggregate.
    ///
    /// [`retract`]: ShingleIndex::retract
    pub fn merge(&mut self, fresh: SortedRun) {
        if fresh.is_empty() {
            return;
        }
        let old = std::mem::take(&mut self.run);
        // `merge_runs_to_run` normalizes when it actually merges, but its
        // single-run fast path (empty index, first flush) passes the
        // fresh run's representation straight through.
        self.run = normalize_run(self.s, merge_runs_to_run(self.s, vec![old, fresh]));
    }

    /// Invert the posting records into the bipartite first-level shingle
    /// graph G′ — the input Passes II/III consume. Equal to
    /// `merge_sorted_runs(s, vec![run])` without cloning the run.
    pub fn to_graph(&self) -> ShingleGraph {
        let s = self.s;
        let mut inv = StreamInverter::new(s, self.run.len());
        for &p in &self.run.packed {
            let rep = (p & 0xFFFF_FFFF) as usize;
            inv.push(p, |out| {
                out.extend_from_slice(&self.run.elements[rep * s..(rep + 1) * s])
            });
        }
        inv.finish()
    }
}

// ---------------------------------------------------------------------------
// Durable snapshots
// ---------------------------------------------------------------------------

/// One durable engine state: the index records, the union graph they were
/// computed from, and the partition Passes II/III derived — everything a
/// restarted server needs to answer queries and accept deltas.
#[derive(Debug)]
pub struct IndexSnapshot {
    /// The shingle index.
    pub index: ShingleIndex,
    /// The base graph the index covers (fingerprint source).
    pub graph: Csr,
    /// The cached clustering of `graph`.
    pub partition: Partition,
    /// Monotone save generation the snapshot was loaded from.
    pub generation: u64,
}

/// The index directory: generation-numbered sealed files plus one
/// atomically renamed manifest naming the live generation.
///
/// Save order is seal-then-commit, the same crash contract as the run
/// checkpoint: `index-<gen>.run`, `graph-<gen>.bin` and
/// `partition-<gen>.tsv` are written and synced first, then
/// `index-manifest.json` is renamed over the old manifest and the
/// directory fsynced, then stale generations are swept. A crash at any
/// point leaves a manifest whose named files are intact.
#[derive(Debug, Clone)]
pub struct IndexStore {
    dir: PathBuf,
}

impl IndexStore {
    /// A store rooted at `dir` (created on first save).
    pub fn new<P: Into<PathBuf>>(dir: P) -> IndexStore {
        IndexStore { dir: dir.into() }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the live manifest.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(INDEX_MANIFEST_FILE)
    }

    /// True if a manifest exists (a snapshot has been committed).
    pub fn exists(&self) -> bool {
        self.manifest_path().is_file()
    }

    fn run_file(gen: u64) -> String {
        format!("index-{gen}.run")
    }

    fn graph_file(gen: u64) -> String {
        format!("graph-{gen}.bin")
    }

    fn partition_file(gen: u64) -> String {
        format!("partition-{gen}.tsv")
    }

    /// Seal and commit a snapshot as generation `generation`, pinning the
    /// live `params`/`budget`/`n_devices` axes and the graph fingerprint
    /// in the manifest. Returns spill statistics for the sealed run.
    #[allow(clippy::too_many_arguments)] // one caller: the engine's refresh commit
    pub fn save(
        &self,
        snapshot_gen: u64,
        index: &ShingleIndex,
        graph: &Csr,
        partition: &Partition,
        params: &ShinglingParams,
        budget: MemoryBudget,
        n_devices: usize,
    ) -> Result<SpillStats, CheckpointError> {
        fs::create_dir_all(&self.dir)?;
        let mut stats = SpillStats::default();
        let gen = snapshot_gen;

        // Seal the three payload files (synced before the commit).
        let run_path = self.dir.join(Self::run_file(gen));
        let sealed = SpilledRun::write_at(run_path, index.s(), index.run(), &mut stats, true)?;
        let graph_path = self.dir.join(Self::graph_file(gen));
        graph_io::write_file(&graph_path, graph)?;
        File::open(&graph_path)?.sync_all()?;
        let part_bytes = partition_to_tsv(partition);
        let part_crc = crc32(&part_bytes);
        let part_path = self.dir.join(Self::partition_file(gen));
        {
            let mut f = File::create(&part_path)?;
            f.write_all(&part_bytes)?;
            f.sync_all()?;
        }

        // Commit: atomic manifest rename, then fsync the directory.
        let axes = axes_record(params, budget, n_devices);
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {INDEX_MANIFEST_VERSION},\n"));
        out.push_str(&format!("  \"generation\": {gen},\n"));
        out.push_str(&format!(
            "  \"fingerprint\": {},\n",
            fingerprint_resident(graph)
        ));
        out.push_str(&format!("  \"n\": {},\n", graph.n()));
        out.push_str("  \"axes\": {");
        for (i, (k, v)) in axes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\": \"{}\"", esc(k), esc(v)));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"index\": {{\"file\": \"{}\", \"records\": {}, \"s\": {}, \"crc\": {}}},\n",
            esc(&Self::run_file(gen)),
            sealed.len(),
            index.s(),
            sealed.crc()
        ));
        out.push_str(&format!(
            "  \"graph\": {{\"file\": \"{}\"}},\n",
            esc(&Self::graph_file(gen))
        ));
        out.push_str(&format!(
            "  \"partition\": {{\"file\": \"{}\", \"crc\": {}}}\n",
            esc(&Self::partition_file(gen)),
            part_crc
        ));
        out.push_str("}\n");
        let tmp = self.dir.join("index-manifest.json.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(out.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.manifest_path())?;
        #[cfg(unix)]
        File::open(&self.dir)?.sync_all()?;

        self.sweep_stale(gen)?;
        Ok(stats)
    }

    /// Remove sealed files of every generation other than `live` — safe
    /// only after the manifest commit (the old manifest never survives
    /// past its files, the new one's files are already durable).
    fn sweep_stale(&self, live: u64) -> io::Result<()> {
        let keep = [
            Self::run_file(live),
            Self::graph_file(live),
            Self::partition_file(live),
        ];
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let stale = (name.starts_with("index-") && name.ends_with(".run"))
                || (name.starts_with("graph-") && name.ends_with(".bin"))
                || (name.starts_with("partition-") && name.ends_with(".tsv"));
            if stale && !keep.iter().any(|k| k == &name) {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    /// Load the live snapshot, refusing with a typed error when the store
    /// disagrees with the live configuration:
    ///
    /// * [`CheckpointError::Missing`] — no manifest committed.
    /// * [`CheckpointError::Corrupt`] — manifest, run, graph or partition
    ///   fails to parse or checksum.
    /// * [`CheckpointError::AxesMismatch`] — the index was built under
    ///   different schedule axes (named axis, both values).
    /// * [`CheckpointError::FingerprintMismatch`] — the stored graph is
    ///   not the graph the manifest was committed for.
    pub fn load(
        &self,
        params: &ShinglingParams,
        budget: MemoryBudget,
        n_devices: usize,
    ) -> Result<IndexSnapshot, CheckpointError> {
        let path = self.manifest_path();
        let text = fs::read_to_string(&path).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                CheckpointError::Missing { path: path.clone() }
            } else {
                CheckpointError::Io(e)
            }
        })?;
        let corrupt = |detail: String| CheckpointError::Corrupt {
            path: path.clone(),
            detail,
        };
        let m = parse_index_manifest(&text).map_err(corrupt)?;

        // Axes first: a mismatch here is a *configuration* disagreement
        // the user can resolve, reported before any payload I/O.
        let current_axes = axes_record(params, budget, n_devices);
        for (axis, current) in &current_axes {
            match m.axes.iter().find(|(k, _)| k == axis).map(|(_, v)| v) {
                Some(recorded) if recorded == current => {}
                recorded => {
                    return Err(CheckpointError::AxesMismatch {
                        axis: axis.clone(),
                        manifest: recorded.cloned().unwrap_or_else(|| "<absent>".into()),
                        current: current.clone(),
                    })
                }
            }
        }

        // Graph, then its fingerprint against the manifest's record.
        let graph = graph_io::read_file(self.dir.join(&m.graph_file))
            .map_err(|e| corrupt(format!("graph {}: {e}", m.graph_file)))?;
        if graph.n() != m.n {
            return Err(corrupt(format!(
                "graph {}: {} vertices, manifest says {}",
                m.graph_file,
                graph.n(),
                m.n
            )));
        }
        let fp = fingerprint_resident(&graph);
        if fp != m.fingerprint {
            return Err(CheckpointError::FingerprintMismatch {
                manifest: m.fingerprint,
                current: fp,
            });
        }

        // The sealed record run, checksummed frame by frame on reopen and
        // cross-checked against the manifest's totals.
        let run_path = self.dir.join(&m.run_file);
        let sealed = SpilledRun::reopen(run_path)
            .map_err(|e| corrupt(format!("run {}: {e}", m.run_file)))?;
        if sealed.len() as u64 != m.records || sealed.s() != m.s as usize || sealed.crc() != m.crc {
            return Err(corrupt(format!(
                "run {}: records/s/crc disagree with manifest",
                m.run_file
            )));
        }
        let mut stats = SpillStats::default();
        let run = merge_external_to_run(m.s as usize, vec![ExternalRun::Disk(sealed)], &mut stats)
            .map_err(|e| corrupt(format!("run {}: {e}", m.run_file)))?;

        // The cached partition, crc-checked as bytes then parsed.
        let part_path = self.dir.join(&m.partition_file);
        let part_bytes = fs::read(&part_path)
            .map_err(|e| corrupt(format!("partition {}: {e}", m.partition_file)))?;
        if crc32(&part_bytes) != m.partition_crc {
            return Err(corrupt(format!(
                "partition {}: crc mismatch",
                m.partition_file
            )));
        }
        let partition = partition_from_tsv(&part_bytes)
            .map_err(|detail| corrupt(format!("partition {}: {detail}", m.partition_file)))?;
        if partition.n_vertices() != m.n {
            return Err(corrupt(format!(
                "partition {}: {} vertices, manifest says {}",
                m.partition_file,
                partition.n_vertices(),
                m.n
            )));
        }

        Ok(IndexSnapshot {
            index: ShingleIndex::from_run(m.s as usize, run),
            graph,
            partition,
            generation: m.generation,
        })
    }

    /// Re-resolve auto-planned `params` against the schedule axes this
    /// store recorded. [`PlanMode::Auto`] delegates the four schedule
    /// axes (kernel, mode, aggregation, components) to the engine, so a
    /// resume adopts the stored choice rather than refusing on axes the
    /// caller never pinned; any axis `forced` *does* pin must still
    /// agree with the record, refused with the same typed
    /// [`CheckpointError::AxesMismatch`] a stale manifest gets. Content
    /// axes (`s1`, `c1`, seed, budget, …) are untouched here and stay
    /// strictly checked by [`IndexStore::load`].
    pub fn adopt_axes(
        &self,
        params: &ShinglingParams,
        forced: ForcedAxes,
    ) -> Result<ShinglingParams, CheckpointError> {
        let path = self.manifest_path();
        let text = fs::read_to_string(&path).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                CheckpointError::Missing { path: path.clone() }
            } else {
                CheckpointError::Io(e)
            }
        })?;
        let manifest = parse_index_manifest(&text).map_err(|detail| CheckpointError::Corrupt {
            path: path.clone(),
            detail,
        })?;
        let stored = |axis: &str| -> Result<&str, CheckpointError> {
            manifest
                .axes
                .iter()
                .find(|(k, _)| k == axis)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| CheckpointError::Corrupt {
                    path: path.clone(),
                    detail: format!("axes record is missing {axis:?}"),
                })
        };
        let unknown = |axis: &str, value: &str| CheckpointError::Corrupt {
            path: path.clone(),
            detail: format!("axes record has unknown {axis} {value:?}"),
        };
        let mismatch =
            |axis: &str, manifest: &str, current: String| CheckpointError::AxesMismatch {
                axis: axis.into(),
                manifest: manifest.into(),
                current,
            };
        let mut out = *params;
        out.plan = PlanMode::Manual;

        let v = stored("kernel")?;
        if forced.kernel {
            let live = format!("{:?}", params.kernel);
            if v != live {
                return Err(mismatch("kernel", v, live));
            }
        } else {
            out.kernel = match v {
                "SortCompact" => ShingleKernel::SortCompact,
                "FusedSelect" => ShingleKernel::FusedSelect,
                other => return Err(unknown("kernel", other)),
            };
        }
        let v = stored("mode")?;
        if forced.mode {
            let live = format!("{:?}", params.mode);
            if v != live {
                return Err(mismatch("mode", v, live));
            }
        } else {
            out.mode = match v {
                "Synchronous" => PipelineMode::Synchronous,
                "Overlapped" => PipelineMode::Overlapped,
                other => return Err(unknown("mode", other)),
            };
        }
        let v = stored("aggregation")?;
        if forced.aggregation {
            let live = format!("{:?}", params.aggregation);
            if v != live {
                return Err(mismatch("aggregation", v, live));
            }
        } else {
            out.aggregation = match v {
                "Host" => AggregationMode::Host,
                "Device" => AggregationMode::Device,
                other => return Err(unknown("aggregation", other)),
            };
        }
        let v = stored("components")?;
        if forced.components {
            let live = format!("{:?}", params.components);
            if v != live {
                return Err(mismatch("components", v, live));
            }
        } else {
            out.components = match v {
                "Host" => ComponentsMode::Host,
                "Device" => ComponentsMode::Device,
                other => return Err(unknown("components", other)),
            };
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Manifest and partition codecs
// ---------------------------------------------------------------------------

struct LoadedIndexManifest {
    generation: u64,
    fingerprint: u64,
    n: usize,
    axes: Vec<(String, String)>,
    run_file: String,
    records: u64,
    s: u64,
    crc: u32,
    graph_file: String,
    partition_file: String,
    partition_crc: u32,
}

fn parse_index_manifest(text: &str) -> Result<LoadedIndexManifest, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    let version = v.get("version")?.as_u64()?;
    if version != INDEX_MANIFEST_VERSION {
        return Err(format!("unsupported index manifest version {version}"));
    }
    let axes = match v.get("axes")? {
        Json::Obj(kv) => kv
            .iter()
            .map(|(k, val)| Ok((k.clone(), val.as_str()?.to_string())))
            .collect::<Result<Vec<_>, String>>()?,
        other => return Err(format!("expected axes object, got {other:?}")),
    };
    let idx = v.get("index")?;
    let graph = v.get("graph")?;
    let part = v.get("partition")?;
    Ok(LoadedIndexManifest {
        generation: v.get("generation")?.as_u64()?,
        fingerprint: v.get("fingerprint")?.as_u64()?,
        n: v.get("n")?.as_u64()? as usize,
        axes,
        run_file: idx.get("file")?.as_str()?.to_string(),
        records: idx.get("records")?.as_u64()?,
        s: idx.get("s")?.as_u64()?,
        crc: idx.get("crc")?.as_u64()? as u32,
        graph_file: graph.get("file")?.as_str()?.to_string(),
        partition_file: part.get("file")?.as_str()?.to_string(),
        partition_crc: part.get("crc")?.as_u64()? as u32,
    })
}

/// One line per vertex: the group id, or `-` for unassigned (vertices in
/// no non-singleton family). Line number = vertex id.
fn partition_to_tsv(p: &Partition) -> Vec<u8> {
    let mut out = Vec::with_capacity(p.n_vertices() * 4);
    for m in p.membership() {
        match m {
            Some(g) => out.extend_from_slice(g.to_string().as_bytes()),
            None => out.push(b'-'),
        }
        out.push(b'\n');
    }
    out
}

fn partition_from_tsv(bytes: &[u8]) -> Result<Partition, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
    let mut membership = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line == "-" {
            membership.push(None);
        } else {
            let g: u32 = line.parse().map_err(|e| format!("line {}: {e}", i + 1))?;
            membership.push(Some(g));
        }
    }
    Ok(Partition::from_membership(membership))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{fragment_run, merge_sorted_runs};
    use crate::serial::shingle_pass_foreach;
    use crate::shingle::RawShingles;
    use gpclust_graph::generate::{planted_partition, PlantedConfig};

    fn graph(seed: u64) -> Csr {
        planted_partition(&PlantedConfig {
            group_sizes: vec![25, 18, 30, 12],
            n_noise_vertices: 15,
            p_intra: 0.8,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 0.5,
            seed,
        })
        .graph
    }

    fn params() -> ShinglingParams {
        ShinglingParams::light(7)
    }

    /// Pass-I records of `g` restricted to `only` (None = all vertices),
    /// straight off the serial oracle.
    fn pass1_records(g: &Csr, p: &ShinglingParams, only: Option<&[VertexId]>) -> SortedRun {
        let mut raw = RawShingles::new(p.s1);
        shingle_pass_foreach(g, p.s1, &p.family_pass1(), |trial, node, pairs| {
            if only.is_none_or(|vs| vs.binary_search(&node).is_ok()) {
                raw.push(trial, node, pairs);
            }
        });
        fragment_run(&raw, p.par_sort_min)
    }

    #[test]
    fn retract_then_merge_matches_from_scratch() {
        let p = params();
        let g = graph(1);
        let full = pass1_records(&g, &p, None);
        let mut index = ShingleIndex::from_run(p.s1, full.clone());

        // Retract a vertex subset, recompute just their records, merge.
        let touched: Vec<VertexId> = vec![3, 10, 11, 40];
        index.retract(&touched);
        for &pk in &index.run().packed {
            let node = ((pk >> 32) & 0xFFFF_FFFF) as VertexId;
            assert!(touched.binary_search(&node).is_err());
        }
        let fresh = pass1_records(&g, &p, Some(&touched));
        index.merge(fresh);
        assert_eq!(index, ShingleIndex::from_run(p.s1, full));
    }

    #[test]
    fn to_graph_matches_merge_sorted_runs() {
        let p = params();
        let g = graph(2);
        let run = pass1_records(&g, &p, None);
        let index = ShingleIndex::from_run(p.s1, run.clone());
        assert_eq!(index.to_graph(), merge_sorted_runs(p.s1, vec![run]));
    }

    #[test]
    fn snapshot_roundtrip() {
        let p = params();
        let g = graph(3);
        let run = pass1_records(&g, &p, None);
        let index = ShingleIndex::from_run(p.s1, run);
        let part = Partition::from_membership(
            (0..g.n())
                .map(|v| if v % 3 == 0 { None } else { Some(v as u32 / 7) })
                .collect(),
        );
        let dir = std::env::temp_dir().join(format!("gpclust-index-rt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = IndexStore::new(&dir);
        assert!(!store.exists());
        store
            .save(4, &index, &g, &part, &p, MemoryBudget::default(), 1)
            .unwrap();
        assert!(store.exists());
        let snap = store.load(&p, MemoryBudget::default(), 1).unwrap();
        assert_eq!(snap.generation, 4);
        assert_eq!(snap.index, index);
        assert_eq!(snap.graph, g);
        assert_eq!(snap.partition.membership(), part.membership());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_refuses_axes_and_fingerprint_mismatch() {
        let p = params();
        let g = graph(4);
        let index = ShingleIndex::from_run(p.s1, pass1_records(&g, &p, None));
        let part = Partition::singletons(g.n());
        let dir = std::env::temp_dir().join(format!("gpclust-index-stale-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = IndexStore::new(&dir);
        assert!(matches!(
            store.load(&p, MemoryBudget::default(), 1),
            Err(CheckpointError::Missing { .. })
        ));
        store
            .save(0, &index, &g, &part, &p, MemoryBudget::default(), 1)
            .unwrap();

        // A different seed is a different axes record — typed refusal
        // naming the axis, not a silent rebuild.
        let mut other = params();
        other.seed += 1;
        match store.load(&other, MemoryBudget::default(), 1) {
            Err(CheckpointError::AxesMismatch { axis, .. }) => assert_eq!(axis, "seed"),
            other => panic!("expected AxesMismatch, got {other:?}"),
        }

        // Tampering with the sealed graph flips the fingerprint check
        // (or the codec's own integrity checks) — never a clean load.
        let graph_path = dir.join(IndexStore::graph_file(0));
        let other_graph = graph(5);
        graph_io::write_file(&graph_path, &other_graph).unwrap();
        assert!(store.load(&p, MemoryBudget::default(), 1).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_refuses_corrupt_run() {
        let p = params();
        let g = graph(6);
        let index = ShingleIndex::from_run(p.s1, pass1_records(&g, &p, None));
        let part = Partition::singletons(g.n());
        let dir = std::env::temp_dir().join(format!("gpclust-index-crc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = IndexStore::new(&dir);
        store
            .save(0, &index, &g, &part, &p, MemoryBudget::default(), 1)
            .unwrap();
        let run_path = dir.join(IndexStore::run_file(0));
        let mut bytes = fs::read(&run_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&run_path, &bytes).unwrap();
        assert!(matches!(
            store.load(&p, MemoryBudget::default(), 1),
            Err(CheckpointError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
