//! Markov Clustering (MCL) — the comparator the metagenomics field
//! actually standardized on.
//!
//! The paper compares Shingling against the GOS k-neighbor heuristic; the
//! broader protein-family literature (TribeMCL, OrthoMCL) clusters
//! homology graphs with van Dongen's Markov Cluster algorithm instead.
//! This module implements sparse MCL so the reproduction can triangulate
//! all three methods on the same graphs:
//!
//! 1. column-stochastic transition matrix from the adjacency (+ self
//!    loops);
//! 2. iterate **expansion** (matrix squaring — random-walk smearing) and
//!    **inflation** (entrywise power + renormalize — contrast
//!    sharpening), pruning small entries to keep columns sparse;
//! 3. at convergence, interpret the nonzero structure as clusters
//!    ("attractors" and the columns they attract).
//!
//! The implementation is column-major sparse with per-column top-K
//! pruning, the standard practical MCL scheme.

use gpclust_graph::{Csr, Partition, UnionFind};

/// MCL parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MclParams {
    /// Inflation exponent r (≥ 1); higher → finer clusters. TribeMCL
    /// protein-family practice uses 1.5–4.0, commonly 2.0.
    pub inflation: f64,
    /// Maximum kept entries per column after pruning.
    pub max_column_entries: usize,
    /// Entries below this are pruned after each inflation.
    pub prune_threshold: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Convergence: max column change (L∞) below this stops iteration.
    pub convergence_eps: f64,
}

impl Default for MclParams {
    fn default() -> Self {
        MclParams {
            inflation: 2.0,
            max_column_entries: 64,
            prune_threshold: 1e-4,
            max_iterations: 60,
            convergence_eps: 1e-4,
        }
    }
}

/// Column-major sparse stochastic matrix.
struct Columns {
    /// `cols[v]` = sorted (row, value) entries of column v.
    cols: Vec<Vec<(u32, f64)>>,
}

impl Columns {
    fn from_graph(g: &Csr) -> Self {
        let n = g.n();
        let mut cols = Vec::with_capacity(n);
        for v in 0..n as u32 {
            let ns = g.neighbors(v);
            let mut col: Vec<(u32, f64)> = Vec::with_capacity(ns.len() + 1);
            // Self loop (standard MCL regularization) + uniform weights.
            let w = 1.0 / (ns.len() as f64 + 1.0);
            let mut inserted_self = false;
            for &u in ns {
                if !inserted_self && u > v {
                    col.push((v, w));
                    inserted_self = true;
                }
                col.push((u, w));
            }
            if !inserted_self {
                col.push((v, w));
            }
            cols.push(col);
        }
        Columns { cols }
    }

    /// One expansion step: `new[:, v] = M · M[:, v]` — accumulate scaled
    /// columns of M for each entry of column v.
    fn expand(&self, scratch: &mut Vec<f64>, touched: &mut Vec<u32>) -> Columns {
        let n = self.cols.len();
        scratch.clear();
        scratch.resize(n, 0.0);
        let mut out = Vec::with_capacity(n);
        for v in 0..n {
            touched.clear();
            for &(mid, w1) in &self.cols[v] {
                for &(row, w2) in &self.cols[mid as usize] {
                    let slot = &mut scratch[row as usize];
                    if *slot == 0.0 {
                        touched.push(row);
                    }
                    *slot += w1 * w2;
                }
            }
            let mut col: Vec<(u32, f64)> =
                touched.iter().map(|&r| (r, scratch[r as usize])).collect();
            for &r in touched.iter() {
                scratch[r as usize] = 0.0;
            }
            col.sort_unstable_by_key(|&(r, _)| r);
            out.push(col);
        }
        Columns { cols: out }
    }

    /// Inflation + pruning + renormalization; returns the max L∞ change
    /// against `prev` (same sparsity comparison on union support).
    fn inflate_prune(&mut self, params: &MclParams) {
        for col in &mut self.cols {
            for e in col.iter_mut() {
                e.1 = e.1.powf(params.inflation);
            }
            // Prune: threshold, then keep top-K by value.
            col.retain(|&(_, w)| w >= params.prune_threshold * params.prune_threshold);
            if col.len() > params.max_column_entries {
                col.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
                col.truncate(params.max_column_entries);
                col.sort_unstable_by_key(|&(r, _)| r);
            }
            let total: f64 = col.iter().map(|&(_, w)| w).sum();
            if total > 0.0 {
                for e in col.iter_mut() {
                    e.1 /= total;
                }
            }
            col.retain(|&(_, w)| w >= params.prune_threshold);
        }
    }

    fn linf_delta(&self, other: &Columns) -> f64 {
        let mut delta = 0.0f64;
        for (a, b) in self.cols.iter().zip(&other.cols) {
            let (mut i, mut j) = (0, 0);
            while i < a.len() || j < b.len() {
                match (a.get(i), b.get(j)) {
                    (Some(&(ra, wa)), Some(&(rb, wb))) => {
                        if ra == rb {
                            delta = delta.max((wa - wb).abs());
                            i += 1;
                            j += 1;
                        } else if ra < rb {
                            delta = delta.max(wa);
                            i += 1;
                        } else {
                            delta = delta.max(wb);
                            j += 1;
                        }
                    }
                    (Some(&(_, wa)), None) => {
                        delta = delta.max(wa);
                        i += 1;
                    }
                    (None, Some(&(_, wb))) => {
                        delta = delta.max(wb);
                        j += 1;
                    }
                    (None, None) => break,
                }
            }
        }
        delta
    }
}

/// Cluster `g` with MCL. Isolated vertices become singletons.
pub fn mcl_clusters(g: &Csr, params: &MclParams) -> Partition {
    assert!(params.inflation >= 1.0, "inflation must be >= 1");
    let n = g.n();
    if n == 0 {
        return Partition::from_membership(Vec::new());
    }
    let mut m = Columns::from_graph(g);
    m.inflate_prune(&MclParams {
        inflation: 1.0, // initial normalization only
        ..*params
    });
    let mut scratch: Vec<f64> = Vec::new();
    let mut touched: Vec<u32> = Vec::new();
    for _ in 0..params.max_iterations {
        let mut next = m.expand(&mut scratch, &mut touched);
        next.inflate_prune(params);
        let delta = next.linf_delta(&m);
        m = next;
        if delta < params.convergence_eps {
            break;
        }
    }
    // Interpretation: vertex v joins the cluster of each row its column
    // still flows to — union v with its surviving support. At convergence
    // columns concentrate on attractors, so this reproduces the standard
    // attractor-based clusters while tolerating near-converged states.
    let mut uf = UnionFind::new(n);
    for (v, col) in m.cols.iter().enumerate() {
        for &(row, w) in col {
            if w > 0.05 {
                uf.union(v as u32, row);
            }
        }
    }
    Partition::from_union_find(&mut uf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpclust_graph::generate::{planted_partition, PlantedConfig};
    use gpclust_graph::EdgeList;

    #[test]
    fn two_cliques_with_bridge_separate() {
        let mut el = EdgeList::new();
        for a in 0..6u32 {
            for b in a + 1..6 {
                el.push(a, b);
            }
        }
        for a in 6..12u32 {
            for b in a + 1..12 {
                el.push(a, b);
            }
        }
        el.push(0, 6); // weak bridge
        let g = Csr::from_edges(12, &mut el);
        let p = mcl_clusters(&g, &MclParams::default());
        assert_eq!(p.group_of(1), p.group_of(5));
        assert_eq!(p.group_of(7), p.group_of(11));
        assert_ne!(p.group_of(1), p.group_of(7), "bridge must not merge");
    }

    #[test]
    fn recovers_planted_groups() {
        let pg = planted_partition(&PlantedConfig {
            group_sizes: vec![15, 20, 12],
            n_noise_vertices: 6,
            p_intra: 0.9,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 0.0,
            seed: 11,
        });
        let p = mcl_clusters(&pg.graph, &MclParams::default());
        for grp in pg.truth.groups() {
            let c0 = p.group_of(grp[0]);
            for &v in grp {
                assert_eq!(p.group_of(v), c0, "vertex {v}");
            }
        }
    }

    #[test]
    fn higher_inflation_gives_finer_clusters() {
        // A loose blob: moderate density over 30 vertices.
        let pg = planted_partition(&PlantedConfig {
            group_sizes: vec![30],
            n_noise_vertices: 0,
            p_intra: 0.25,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 0.0,
            seed: 13,
        });
        let coarse = mcl_clusters(
            &pg.graph,
            &MclParams {
                inflation: 1.4,
                ..Default::default()
            },
        );
        let fine = mcl_clusters(
            &pg.graph,
            &MclParams {
                inflation: 6.0,
                ..Default::default()
            },
        );
        assert!(
            fine.n_groups() >= coarse.n_groups(),
            "fine {} < coarse {}",
            fine.n_groups(),
            coarse.n_groups()
        );
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let mut el: EdgeList = [(0, 1)].into_iter().collect();
        let g = Csr::from_edges(4, &mut el);
        let p = mcl_clusters(&g, &MclParams::default());
        assert_eq!(p.group_of(0), p.group_of(1));
        for v in [2u32, 3] {
            let gid = p.group_of(v).unwrap();
            assert_eq!(p.group(gid as usize), &[v]);
        }
    }

    #[test]
    fn empty_graph() {
        let mut el = EdgeList::new();
        let g = Csr::from_edges(0, &mut el);
        let p = mcl_clusters(&g, &MclParams::default());
        assert_eq!(p.n_groups(), 0);
    }

    #[test]
    fn deterministic() {
        let pg = planted_partition(&PlantedConfig {
            group_sizes: vec![10, 14],
            n_noise_vertices: 3,
            p_intra: 0.7,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 0.5,
            seed: 17,
        });
        let a = mcl_clusters(&pg.graph, &MclParams::default());
        let b = mcl_clusters(&pg.graph, &MclParams::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "inflation")]
    fn rejects_sub_one_inflation() {
        let mut el = EdgeList::new();
        let g = Csr::from_edges(1, &mut el);
        mcl_clusters(
            &g,
            &MclParams {
                inflation: 0.5,
                ..Default::default()
            },
        );
    }
}
