//! Connected-component decomposition preprocessing.
//!
//! pClust's driver stage: "In order to process the large scale input
//! graph, connected component detection is applied to the input graph to
//! break down the large problem instance into subproblems of much smaller
//! size. For each connected component, [Shingling is applied] to report
//! clusters."
//!
//! Decomposition has two payoffs:
//!
//! * **memory** — each component's pass-I structures exist only while that
//!   component is clustered;
//! * **device batching** — components smaller than the device batch
//!   capacity never split adjacency lists.
//!
//! Decomposition cannot change the result: clusters never span components
//! (shingles are neighbor subsets), which the tests assert by comparing
//! against whole-graph runs.

use crate::pipeline::GpClust;
use crate::serial::SerialShingling;
use gpclust_gpu::DeviceError;
use gpclust_graph::subgraph::component_subgraphs;
use gpclust_graph::{Csr, Partition, UnionFind};

/// Serial pClust with component decomposition: cluster each connected
/// component independently, then merge the per-component partitions.
pub fn cluster_by_components_serial(alg: &SerialShingling, g: &Csr) -> Partition {
    let mut uf = UnionFind::new(g.n());
    for sub in component_subgraphs(g) {
        let local = alg.cluster(&sub.graph);
        merge_local_partition(&mut uf, &sub.members, &local);
    }
    Partition::from_union_find(&mut uf)
}

/// gpClust with component decomposition.
pub fn cluster_by_components_gpu(pipeline: &GpClust, g: &Csr) -> Result<Partition, DeviceError> {
    let mut uf = UnionFind::new(g.n());
    for sub in component_subgraphs(g) {
        let local = pipeline.cluster(&sub.graph)?.partition;
        merge_local_partition(&mut uf, &sub.members, &local);
    }
    Ok(Partition::from_union_find(&mut uf))
}

/// Union the groups of a component-local partition into the global
/// union–find, translating local → global ids.
fn merge_local_partition(uf: &mut UnionFind, members: &[u32], local: &Partition) {
    for grp in local.groups() {
        for w in grp.windows(2) {
            uf.union(members[w[0] as usize], members[w[1] as usize]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ShinglingParams;
    use gpclust_gpu::{DeviceConfig, Gpu};
    use gpclust_graph::generate::{planted_partition, PlantedConfig};

    fn multi_component_graph(seed: u64) -> Csr {
        // Several disconnected dense groups + isolated noise vertices.
        planted_partition(&PlantedConfig {
            group_sizes: vec![20, 15, 30, 8, 12],
            n_noise_vertices: 10,
            p_intra: 0.8,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 0.0,
            seed,
        })
        .graph
    }

    /// Decomposition is invisible in the result — but only as a *partition
    /// refinement equivalence* on clusters, because the shingling hash ids
    /// inside each component see local vertex numbering. We therefore
    /// compare cluster structure via co-membership of planted groups.
    #[test]
    fn decomposed_serial_covers_planted_groups() {
        let pg = planted_partition(&PlantedConfig {
            group_sizes: vec![20, 15, 30],
            n_noise_vertices: 5,
            p_intra: 0.9,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 0.0,
            seed: 3,
        });
        let alg = SerialShingling::new(ShinglingParams::light(7)).unwrap();
        let p = cluster_by_components_serial(&alg, &pg.graph);
        for grp in pg.truth.groups() {
            let c0 = p.group_of(grp[0]);
            for &v in grp {
                assert_eq!(p.group_of(v), c0);
            }
        }
    }

    #[test]
    fn decomposed_gpu_matches_decomposed_serial() {
        let g = multi_component_graph(5);
        let params = ShinglingParams::light(11);
        let alg = SerialShingling::new(params).unwrap();
        let serial = cluster_by_components_serial(&alg, &g);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let pipeline = GpClust::new(params, gpu).unwrap();
        let device = cluster_by_components_gpu(&pipeline, &g).unwrap();
        assert_eq!(serial, device);
    }

    #[test]
    fn clusters_never_span_components() {
        let g = multi_component_graph(9);
        let cc = gpclust_graph::components::bfs_components(&g);
        let alg = SerialShingling::new(ShinglingParams::light(13)).unwrap();
        let p = cluster_by_components_serial(&alg, &g);
        for grp in p.groups() {
            for w in grp.windows(2) {
                assert_eq!(cc.labels[w[0] as usize], cc.labels[w[1] as usize]);
            }
        }
    }

    #[test]
    fn isolated_vertices_stay_singletons() {
        let g = multi_component_graph(15);
        let alg = SerialShingling::new(ShinglingParams::light(17)).unwrap();
        let p = cluster_by_components_serial(&alg, &g);
        for v in 0..g.n() as u32 {
            if g.degree(v) == 0 {
                let gid = p.group_of(v).unwrap();
                assert_eq!(p.group(gid as usize), &[v]);
            }
        }
    }
}
