//! Weighted-graph Shingling — an extension beyond the paper's scope.
//!
//! The paper restricts itself to unweighted inputs ("although information
//! is sometimes available to assign edge weights in this graph based on
//! the degree of pairwise relationship, the scope of this paper is
//! restricted to unweighted inputs"). Homology graphs, however, carry
//! natural weights (alignment scores), and the min-wise machinery extends
//! cleanly: instead of ranking a neighborhood by `h(v)`, rank it by the
//! *exponential-clock* key
//!
//! ```text
//! key_j(v) = −ln(u_j(v)) / w(v),   u_j(v) = (h_j(v) + 1) / P  ∈ (0, 1]
//! ```
//!
//! which realizes weighted min-wise sampling: the probability that `v`
//! holds the minimum key is `w(v) / Σ w` (the classic exponential-races
//! argument), so heavier neighbors dominate the shingles and two vertices
//! share shingles in proportion to the *weighted* overlap of their
//! neighborhoods. With unit weights this reduces exactly to an order-
//! preserving transform of the unweighted permutation, so the unweighted
//! algorithm is the special case (tested below).

use crate::aggregate::StreamAggregator;
use crate::minwise::HashFamily;
use crate::params::{ShinglingParams, PRIME_P};
use crate::report;
use crate::shingle::AdjacencyInput;
use gpclust_graph::{Partition, UnionFind};

/// A weighted adjacency input: lists plus per-edge weights, parallel to
/// [`AdjacencyInput::flat`].
pub trait WeightedAdjacency: AdjacencyInput {
    /// Weight of the `idx`-th entry of the flat adjacency array.
    fn weight_at(&self, idx: usize) -> f32;
}

/// A CSR graph paired with per-edge weights (same layout as `targets`).
#[derive(Debug, Clone)]
pub struct WeightedCsr {
    graph: gpclust_graph::Csr,
    weights: Vec<f32>,
}

impl WeightedCsr {
    /// Pair a graph with its per-directed-edge weights.
    ///
    /// # Panics
    /// Panics if the weight array does not match the adjacency array, or
    /// any weight is non-positive / non-finite.
    pub fn new(graph: gpclust_graph::Csr, weights: Vec<f32>) -> Self {
        assert_eq!(weights.len(), graph.targets().len(), "weights shape");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive and finite"
        );
        WeightedCsr { graph, weights }
    }

    /// Uniform weights (reduces to the unweighted algorithm).
    pub fn unit(graph: gpclust_graph::Csr) -> Self {
        let weights = vec![1.0; graph.targets().len()];
        WeightedCsr { graph, weights }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &gpclust_graph::Csr {
        &self.graph
    }
}

impl AdjacencyInput for WeightedCsr {
    fn n_nodes(&self) -> usize {
        self.graph.n()
    }
    fn offsets(&self) -> &[u64] {
        self.graph.offsets()
    }
    fn flat(&self) -> &[u32] {
        self.graph.targets()
    }
}

impl WeightedAdjacency for WeightedCsr {
    fn weight_at(&self, idx: usize) -> f32 {
        self.weights[idx]
    }
}

/// Exponential-clock key for one (hashed) neighbor. Smaller = earlier.
#[inline]
fn clock_key(hash: u32, weight: f32) -> f64 {
    let u = (hash as f64 + 1.0) / PRIME_P as f64; // in (0, 1]
    -u.ln() / weight as f64
}

/// One weighted shingling pass: like the serial pass, but neighbors are
/// ranked by exponential-clock keys. Streams `(trial, node, elements)`
/// where `elements` are the s earliest-clock neighbors, in clock order.
pub fn weighted_pass_foreach<W: WeightedAdjacency>(
    input: &W,
    s: usize,
    family: &HashFamily,
    mut f: impl FnMut(u32, u32, &[u32]),
) {
    let offsets = input.offsets();
    let flat = input.flat();
    let mut top: Vec<(f64, u32)> = Vec::with_capacity(s + 1);
    let mut elements: Vec<u32> = Vec::with_capacity(s);
    for trial in 0..family.len() {
        for node in 0..input.n_nodes() {
            let (lo, hi) = (offsets[node] as usize, offsets[node + 1] as usize);
            if hi - lo < s {
                continue;
            }
            top.clear();
            #[allow(clippy::needless_range_loop)] // idx also keys weight_at
            for idx in lo..hi {
                let v = flat[idx];
                let key = clock_key(family.hash(trial, v), input.weight_at(idx));
                // s-sized insertion buffer, as in the unweighted TopS.
                if top.len() == s {
                    if key >= top[s - 1].0 {
                        continue;
                    }
                    top.pop();
                }
                let pos = top.partition_point(|&(k, _)| k < key);
                top.insert(pos, (key, v));
            }
            elements.clear();
            elements.extend(top.iter().map(|&(_, v)| v));
            f(trial as u32, node as u32, &elements);
        }
    }
}

/// Weighted serial Shingling clustering (the extension's end-to-end path):
/// weighted pass I, aggregation, weighted pass II over the (unweighted)
/// generator lists, streaming Phase III.
pub fn cluster_weighted(wg: &WeightedCsr, params: &ShinglingParams) -> Result<Partition, String> {
    params.validate()?;
    let mut agg1 = StreamAggregator::new(params.s1);
    weighted_pass_foreach(wg, params.s1, &params.family_pass1(), |t, n, elems| {
        // Re-sort elements ascending by (hash, id) packing convention used
        // by the aggregator: clock order is already deterministic, so pack
        // rank as the "hash" half.
        let pairs: Vec<u64> = elems
            .iter()
            .enumerate()
            .map(|(rank, &v)| ((rank as u64) << 32) | v as u64)
            .collect();
        agg1.push(t, n, &pairs);
    });
    let first = agg1.finish();
    let mut uf = UnionFind::new(wg.n_nodes());
    // Pass II runs on the shingle graph's generator lists, which carry no
    // weights — use the standard unweighted pass.
    crate::serial::shingle_pass_foreach(
        &first,
        params.s2,
        &params.family_pass2(),
        |_, node, pairs| {
            report::union_second_level_record(
                &mut uf,
                &first,
                node,
                pairs.iter().map(|&p| crate::minwise::unpack_element(p)),
            );
        },
    );
    Ok(Partition::from_union_find(&mut uf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpclust_graph::generate::{planted_partition, PlantedConfig};
    use gpclust_graph::{Csr, EdgeList};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn unit_weights_recover_planted_cliques() {
        let pg = planted_partition(&PlantedConfig {
            group_sizes: vec![15, 20, 10],
            n_noise_vertices: 5,
            p_intra: 0.9,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 0.0,
            seed: 3,
        });
        let wg = WeightedCsr::unit(pg.graph.clone());
        let p = cluster_weighted(&wg, &ShinglingParams::light(7)).unwrap();
        for grp in pg.truth.groups() {
            let c0 = p.group_of(grp[0]);
            for &v in grp {
                assert_eq!(p.group_of(v), c0);
            }
        }
    }

    #[test]
    fn heavy_neighbors_dominate_shingles() {
        // Star with one heavy neighbor: the heavy one must appear in
        // nearly every 1-element shingle of the hub.
        let mut el: EdgeList = (1..50u32).map(|v| (0, v)).collect();
        let g = Csr::from_edges(50, &mut el);
        let heavy: u32 = 7;
        let weights: Vec<f32> = (0..g.targets().len())
            .map(|i| if g.targets()[i] == heavy { 100.0 } else { 1.0 })
            .collect();
        let wg = WeightedCsr::new(g, weights);
        let family = HashFamily::new(200, 9);
        let mut heavy_hits = 0usize;
        let mut total = 0usize;
        weighted_pass_foreach(&wg, 1, &family, |_, node, elems| {
            if node == 0 {
                total += 1;
                if elems[0] == heavy {
                    heavy_hits += 1;
                }
            }
        });
        assert_eq!(total, 200);
        // Expected hit rate: 100 / (100 + 48) ≈ 0.676.
        let rate = heavy_hits as f64 / total as f64;
        assert!((0.5..0.85).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn weight_proportional_sampling_rate() {
        // Two neighbors with weights 3:1 — the heavier is the minimum of
        // the exponential race with probability 3/4.
        let mut el: EdgeList = [(0, 1), (0, 2)].into_iter().collect();
        let g = Csr::from_edges(3, &mut el);
        let weights: Vec<f32> = (0..g.targets().len())
            .map(|i| if g.targets()[i] == 1 { 3.0 } else { 1.0 })
            .collect();
        let wg = WeightedCsr::new(g, weights);
        let family = HashFamily::new(3_000, 11);
        let mut hits = 0usize;
        weighted_pass_foreach(&wg, 1, &family, |_, node, elems| {
            if node == 0 && elems[0] == 1 {
                hits += 1;
            }
        });
        let rate = hits as f64 / 3_000.0;
        assert!((rate - 0.75).abs() < 0.05, "rate = {rate}");
    }

    #[test]
    fn robust_to_a_single_heavy_bridge() {
        // Two cliques joined by one bridge edge of enormous weight. The
        // bridge endpoints' shingles now almost always contain the partner
        // endpoint — but those shingles are generated by *one* vertex each,
        // so they never gather multiple generators and never induce a
        // merge: weighted Shingling keeps the cliques apart. (A single
        // heavy edge is exactly the spurious-link case clustering should
        // resist.)
        let mut el = EdgeList::new();
        for a in 0..8u32 {
            for b in a + 1..8 {
                el.push(a, b);
            }
        }
        for a in 8..16u32 {
            for b in a + 1..16 {
                el.push(a, b);
            }
        }
        el.push(0, 8);
        let g = Csr::from_edges(16, &mut el);

        let params = ShinglingParams::light(5);
        let p_unit = cluster_weighted(&WeightedCsr::unit(g.clone()), &params).unwrap();
        assert_ne!(p_unit.group_of(1), p_unit.group_of(9), "cliques distinct");

        // Exactly the two directed halves of the 0-8 bridge get the huge
        // weight; flat indices located through the CSR offsets.
        let mut weights = vec![1.0f32; g.targets().len()];
        for (src, dst) in [(0u32, 8u32), (8, 0)] {
            let lo = g.offsets()[src as usize] as usize;
            let hi = g.offsets()[src as usize + 1] as usize;
            let idx = (lo..hi).find(|&i| g.targets()[i] == dst).unwrap();
            weights[idx] = 10_000.0;
        }
        let heavy = WeightedCsr::new(g.clone(), weights.clone());
        let p_heavy = cluster_weighted(&heavy, &params).unwrap();
        assert_eq!(p_unit, p_heavy, "a single heavy bridge must not merge");

        // The weights *do* change what is sampled: the bridge endpoints'
        // first-level shingles differ between the unit and heavy runs.
        let family = params.family_pass1();
        let collect = |wg: &WeightedCsr| {
            let mut shingles = Vec::new();
            weighted_pass_foreach(wg, params.s1, &family, |_, node, elems| {
                if node == 0 {
                    shingles.push(elems.to_vec());
                }
            });
            shingles
        };
        let unit_shingles = collect(&WeightedCsr::unit(g.clone()));
        let heavy_shingles = collect(&heavy);
        assert_ne!(unit_shingles, heavy_shingles);
        let with_8 = heavy_shingles.iter().filter(|s| s.contains(&8)).count();
        assert!(
            with_8 * 10 >= heavy_shingles.len() * 9,
            "heavy neighbor in {with_8}/{} shingles",
            heavy_shingles.len()
        );
    }

    #[test]
    fn random_weights_still_partition_validly() {
        let pg = planted_partition(&PlantedConfig {
            group_sizes: vec![12, 18],
            n_noise_vertices: 4,
            p_intra: 0.8,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 0.5,
            seed: 21,
        });
        let mut rng = StdRng::seed_from_u64(5);
        let weights: Vec<f32> = (0..pg.graph.targets().len())
            .map(|_| rng.gen_range(0.1..10.0f32))
            .collect();
        let wg = WeightedCsr::new(pg.graph.clone(), weights);
        let p = cluster_weighted(&wg, &ShinglingParams::light(3)).unwrap();
        assert_eq!(p.assigned_count(), pg.graph.n());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_weights() {
        let mut el: EdgeList = [(0, 1)].into_iter().collect();
        let g = Csr::from_edges(2, &mut el);
        WeightedCsr::new(g, vec![1.0, 0.0]);
    }
}
